"""Fig. 12/13/14 — DSMF under churn (throughput, ACT, AE vs dynamic factor).

Paper claims reproduced here:
* throughput degrades as the dynamic factor grows (Fig. 12);
* completed workflows keep relatively stable finish time and efficiency
  for df <= 0.2 (Fig. 13/14) — "no notable performance degradation under
  the ratio of 20% churning nodes".
"""

from __future__ import annotations

import pytest
from conftest import once, run_one

pytestmark = pytest.mark.slow

DFS = (0.0, 0.1, 0.2, 0.4)


@pytest.fixture(scope="module")
def sweep():
    return {df: run_one(algorithm="dsmf", dynamic_factor=df) for df in DFS}


def test_bench_fig12_churn_throughput(benchmark, sweep):
    once(benchmark, lambda: run_one(algorithm="dsmf", dynamic_factor=0.2))

    done = {df: sweep[df].n_done for df in DFS}
    # Heavy churn hurts throughput vs the static run...
    assert done[0.4] < done[0.0]
    # ...while moderate churn costs little (paper: stable up to df=0.2).
    assert done[0.2] >= 0.85 * done[0.0]
    assert done[0.1] >= 0.95 * done[0.0]


def test_bench_fig13_churn_finish_time(sweep):
    """ACT of *finished* workflows degrades gracefully up to df=0.2
    (Fig. 13's curves for df<=0.2 track the static one)."""
    base = sweep[0.0].act
    assert sweep[0.1].act < 1.25 * base
    assert sweep[0.2].act < 1.5 * base
    # Churn never *helps*: the static run is the fastest.
    assert base == min(r.act for r in sweep.values())


def test_bench_fig14_churn_efficiency(sweep):
    """AE of finished workflows degrades gracefully with df."""
    base = sweep[0.0].ae
    assert sweep[0.1].ae > 0.6 * base
    assert sweep[0.2].ae > 0.5 * base
    # No failures under suspend churn semantics.
    for df in DFS:
        assert sweep[df].n_failed == 0
