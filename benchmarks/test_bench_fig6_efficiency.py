"""Fig. 6 — average efficiency (AE, Eq. 3) of the eight algorithms.

Paper claims reproduced here: SMF reaches the highest efficiency; DSMF is
the best decentralized algorithm, improving markedly over the rivals
(paper: 37.5%~90%); DHEFT is worst.
"""

from __future__ import annotations

import pytest
from conftest import once, run_one

from repro.experiments.figures import fig6_efficiency

pytestmark = pytest.mark.slow

DECENTRALIZED_RIVALS = ("min-min", "max-min", "sufferage", "dheft", "dsdf")


def test_bench_fig6_efficiency(benchmark, static_suite):
    once(benchmark, lambda: run_one(algorithm="sufferage"))

    ae = {alg: r.ae for alg, r in static_suite.items()}

    assert max(ae, key=ae.get) == "smf"          # SMF best overall
    for rival in DECENTRALIZED_RIVALS:
        assert ae["dsmf"] > ae[rival], (rival, ae)
    assert ae["dheft"] == min(ae.values())        # longest-rank-first worst
    # Paper's improvement band is 37.5%~90%; require >= 15% at bench scale.
    rival_mean = sum(ae[r] for r in DECENTRALIZED_RIVALS) / len(DECENTRALIZED_RIVALS)
    assert ae["dsmf"] > 1.15 * rival_mean


def test_fig6_values_physical(static_suite):
    fig = fig6_efficiency(results=static_suite)
    for alg, (_, ys) in fig.series.items():
        assert all(0.0 <= y <= 2.0 for y in ys), alg
