"""Fig. 4 — throughput of the eight algorithms in a static grid.

Paper claims reproduced here:
* HEFT and DHEFT have the lowest throughput in the beginning stage;
* SMF performs best early; DSMF is second / best decentralized.
"""

from __future__ import annotations

import pytest
from conftest import BENCH, once, run_one

from repro.core.heuristics.registry import PAPER_ALGORITHMS
from repro.experiments.figures import fig4_throughput

pytestmark = pytest.mark.slow


def _tp_at(result, hour: int) -> float:
    times, tp = result.series("throughput")
    for t, v in zip(times, tp):
        if t >= hour:
            return v
    return tp[-1]


def test_bench_fig4_throughput(benchmark, static_suite):
    """Times one representative DSMF run; asserts Fig. 4's early ordering."""
    once(benchmark, lambda: run_one(algorithm="dsmf"))

    quarter = int(BENCH["total_time"] / 3600 / 4)
    early = {alg: _tp_at(r, quarter) for alg, r in static_suite.items()}

    # SMF and DSMF lead the early phase...
    leaders = sorted(early, key=early.get, reverse=True)[:3]
    assert "dsmf" in leaders
    assert "smf" in leaders
    # ... while the longest-rank-first algorithms trail.
    assert early["dheft"] <= min(early["dsmf"], early["smf"])

    # By the (converged) horizon everyone has finished essentially all
    # workflows — the paper's curves meet at the right edge of Fig. 4.
    for alg, r in static_suite.items():
        assert r.n_done >= 0.9 * r.n_workflows, alg


def test_fig4_harness_produces_full_series(static_suite):
    fig = fig4_throughput(results=static_suite)
    assert set(fig.series) == set(PAPER_ALGORITHMS)
    for xs, ys in fig.series.values():
        assert len(xs) == len(ys) > 4
