"""Fig. 9 — average finish time under the four CCR combinations.

Paper claims reproduced here: heavier data (higher CCR) and heavier loads
raise ACT for everyone; DSMF remains the winner among the decentralized
algorithms across all four combinations.
"""

from __future__ import annotations

import pytest
from conftest import once, run_one

from repro.experiments.figures import CCR_CASES

pytestmark = pytest.mark.slow

ALGS = ("dsmf", "min-min", "dheft")


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for name, loads, data in CCR_CASES:
        for alg in ALGS:
            out[(alg, name)] = run_one(
                algorithm=alg, load_range=loads, data_range=data
            )
    return out


def test_bench_fig9_ccr(benchmark, sweep):
    case = CCR_CASES[0]
    once(
        benchmark,
        lambda: run_one(algorithm="dsmf", load_range=case[1], data_range=case[2]),
    )

    light, heavy_data = CCR_CASES[0][0], CCR_CASES[1][0]
    heavy_load, heavy_both = CCR_CASES[2][0], CCR_CASES[3][0]

    for alg in ALGS:
        # More data (same loads) slows completion.
        assert sweep[(alg, heavy_data)].act > sweep[(alg, light)].act, alg
        # More computation also slows completion.
        assert sweep[(alg, heavy_load)].act > sweep[(alg, light)].act, alg
        # Both together is the slowest case of the row.
        assert sweep[(alg, heavy_both)].act >= sweep[(alg, light)].act, alg

    # DSMF wins among the decentralized algorithms in every case.
    for name, _, _ in CCR_CASES:
        for rival in ("min-min", "dheft"):
            assert sweep[("dsmf", name)].act <= sweep[(rival, name)].act * 1.05, (
                name,
                rival,
            )
