"""Fig. 8 — average efficiency vs load factor.

Paper claims reproduced here: AE decreases as the load factor grows
(queueing dilutes efficiency), and DSMF retains an efficiency advantage
over the decentralized rivals under high competition.
"""

from __future__ import annotations

import pytest
from conftest import once, run_one

pytestmark = pytest.mark.slow

LOAD_FACTORS = (1, 4, 8)
ALGS = ("dsmf", "min-min", "dheft")


@pytest.fixture(scope="module")
def sweep():
    return {
        (alg, lf): run_one(algorithm=alg, load_factor=lf)
        for alg in ALGS
        for lf in LOAD_FACTORS
    }


def test_bench_fig8_load_factor(benchmark, sweep):
    once(benchmark, lambda: run_one(algorithm="min-min", load_factor=4))

    for alg in ALGS:
        aes = [sweep[(alg, lf)].ae for lf in LOAD_FACTORS]
        assert aes[0] > aes[-1], (alg, aes)  # efficiency falls with load

    hi = LOAD_FACTORS[-1]
    for rival in ("min-min", "dheft"):
        assert sweep[("dsmf", hi)].ae > sweep[(rival, hi)].ae, rival


def test_fig8_efficiency_band(sweep):
    """Converged AE sits in the paper's plotted band (0–0.7)."""
    for (alg, lf), r in sweep.items():
        assert 0.0 < r.ae < 1.0, (alg, lf, r.ae)
