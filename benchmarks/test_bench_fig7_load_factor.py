"""Fig. 7 — average finish time vs load factor (1..8).

Paper claims reproduced here: ACT grows with the load factor (more
resource competition), and DSMF stays among the best decentralized
algorithms as competition intensifies (the paper highlights lf = 6..8).
"""

from __future__ import annotations

import pytest
from conftest import once, run_one

pytestmark = pytest.mark.slow

LOAD_FACTORS = (1, 4, 8)
ALGS = ("dsmf", "min-min", "max-min", "dheft")


@pytest.fixture(scope="module")
def sweep():
    return {
        (alg, lf): run_one(algorithm=alg, load_factor=lf)
        for alg in ALGS
        for lf in LOAD_FACTORS
    }


def test_bench_fig7_load_factor(benchmark, sweep):
    once(benchmark, lambda: run_one(algorithm="dsmf", load_factor=4))

    # ACT increases with resource competition for every algorithm.
    for alg in ALGS:
        acts = [sweep[(alg, lf)].act for lf in LOAD_FACTORS]
        assert acts[0] < acts[-1], (alg, acts)

    # At the highest competition DSMF beats the decentralized rivals.
    hi = LOAD_FACTORS[-1]
    for rival in ("min-min", "max-min", "dheft"):
        assert sweep[("dsmf", hi)].act < sweep[(rival, hi)].act, rival


def test_fig7_completion_rate_degrades_gracefully(sweep):
    """Higher load factors leave more work unfinished at the horizon, but
    DSMF keeps finishing a solid share."""
    rates = [sweep[("dsmf", lf)].completion_rate for lf in LOAD_FACTORS]
    assert rates[0] >= rates[-1]
    assert rates[-1] > 0.3
