"""Fig. 11 — system scalability of DSMF.

Paper claims reproduced here:
(a) the number of resource nodes known per node (RSS size) stays bounded by
    a small constant (< 30) as the system scales — O(log2 n) space;
(b/c) DSMF's average efficiency and finish time stay roughly stable with
    scale, thanks to the fully decentralized design.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import once, run_one

pytestmark = pytest.mark.slow

SCALES = (50, 100, 200)


@pytest.fixture(scope="module")
def sweep():
    return {n: run_one(algorithm="dsmf", n_nodes=n) for n in SCALES}


def test_bench_fig11_scalability(benchmark, sweep):
    once(benchmark, lambda: run_one(algorithm="dsmf", n_nodes=SCALES[-1]))

    # (a) RSS stays small and sub-linear: growing the system 4x grows the
    # per-node view by at most ~2 entries (log2 growth), never beyond 30.
    rss = [sweep[n].rss_mean for n in SCALES]
    assert all(r < 30 for r in rss)
    assert rss[-1] <= rss[0] + 2 * np.log2(SCALES[-1] / SCALES[0]) + 2

    # (b, c) quality is roughly flat with scale (same per-node workload).
    aes = [sweep[n].ae for n in SCALES]
    acts = [sweep[n].act for n in SCALES]
    assert max(aes) / max(min(aes), 1e-9) < 2.0
    assert max(acts) / min(acts) < 2.0


def test_fig11_rss_capacity_tracks_log2(sweep):
    """The configured bound is 2*ceil(log2 n) — observed means respect it."""
    for n in SCALES:
        assert sweep[n].rss_mean <= 2 * np.ceil(np.log2(n)) + 1e-9
