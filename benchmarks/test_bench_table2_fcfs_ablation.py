""""Table II" — the §IV.B prose comparison: heuristic vs FCFS second phase.

Paper numbers: min-min/max-min/sufferage/DHEFT converge to ACT
31977/33495/30321/30728 with their heuristic second phases, versus
32874/33746/32781/32636 with FCFS (a ~2–8% penalty) — "FCFS is not
suggested to take over the ready task scheduling work."

What reproduces robustly in our simulator (recorded in EXPERIMENTS.md):

* the *DSMF* second phase (Formula 10) is worth a double-digit ACT
  improvement over FCFS — the heart of the dual-phase design;
* min-min's STF second phase beats FCFS;
* the LTF (max-min) and longest-RPM (DHEFT) second phases do **not** beat
  FCFS here — a documented deviation: the paper's advantage for those two
  is within a few percent, smaller than the substrate difference between
  our simulator and the authors' testbed.
"""

from __future__ import annotations

import pytest
from conftest import once, run_one

pytestmark = pytest.mark.slow

BASES = ("min-min", "max-min", "sufferage", "dheft", "dsmf")


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for base in BASES:
        out[base] = run_one(algorithm=base)
        out[f"{base}-fcfs"] = run_one(algorithm=f"{base}-fcfs")
    return out


def test_bench_table2_fcfs_ablation(benchmark, sweep):
    once(benchmark, lambda: run_one(algorithm="min-min-fcfs"))

    # The dual-phase heart of the paper: DSMF's ready-set scheduling
    # (Formula 10) clearly beats FCFS at resource nodes.
    assert sweep["dsmf"].act < 0.95 * sweep["dsmf-fcfs"].act

    # min-min's STF and sufferage's LSF land within a few percent of FCFS
    # (the paper's own gaps are 2.8% and 7.5% — our substrate reproduces
    # the *scale* of the effect but not reliably its sign; EXPERIMENTS.md
    # documents this deviation).
    assert sweep["min-min"].act <= sweep["min-min-fcfs"].act * 1.03
    assert sweep["sufferage"].act <= sweep["sufferage-fcfs"].act * 1.05

    # All bundles converge (finish everything) so ACT is comparable.
    for name, r in sweep.items():
        assert r.n_done == r.n_workflows, name


def test_table2_dsmf_gain_is_large(sweep):
    """DSMF's phase-2 gain exceeds every other bundle's phase-2 gain —
    evidence that *both* phases of the dual-phase design matter."""
    gain = sweep["dsmf-fcfs"].act - sweep["dsmf"].act
    minmin_gain = sweep["min-min-fcfs"].act - sweep["min-min"].act
    assert gain > minmin_gain
