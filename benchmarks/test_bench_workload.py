"""Workload scenarios — paper-default identity and arrival-process shape.

The scenario registry must never change the science silently: the
``paper-fig4`` preset has to reproduce the plain Table-I batch run
bit-identically, while the streaming scenarios (Poisson, bursty) must
actually spread submissions over the horizon and still converge.
"""

from __future__ import annotations

from conftest import bench_config, once, run_sweep

from repro.experiments.campaign import result_digest
from repro.grid.system import P2PGridSystem


def test_bench_paper_scenario_is_bit_identical(benchmark):
    """`paper-fig4` replays the default batch workload exactly."""
    plain = P2PGridSystem(bench_config()).run()
    scenario = once(
        benchmark, lambda: P2PGridSystem(bench_config(scenario="paper-fig4")).run()
    )
    assert result_digest(scenario) == result_digest(plain)


def test_bench_streaming_scenarios_converge():
    """Poisson and bursty arrivals run end-to-end through the campaign
    runner and finish (nearly) everything within the bench horizon."""
    results = run_sweep(
        {
            "batch": {},
            "poisson": {"scenario": "poisson-steady"},
            "storm": {"scenario": "burst-storm"},
        }
    )
    for label, r in results.items():
        assert r.n_done >= 0.9 * r.n_workflows, label
        assert r.act > 0 and r.ae > 0, label

    # Streaming runs really do stagger submissions (batch: all at t=0).
    batch_subs = {rec.submit_time for rec in results["batch"].records}
    assert batch_subs == {0.0}
    for label in ("poisson", "storm"):
        subs = sorted(rec.submit_time for rec in results[label].records)
        assert subs[-1] > 0.0, label
        horizon = bench_config().total_time
        assert subs[-1] <= horizon

    # With arrivals spread over the horizon the early system is less
    # contended, so finished workflows respond at least as fast on
    # average as the t=0 burst.
    assert results["poisson"].act <= results["batch"].act * 1.5
