"""Campaign runner — parallel fan-out speedup and cache effectiveness.

A 2-algorithm × 4-seed sweep (the shape of one paper-figure cell) run
three ways: serial, fanned out across worker processes, and replayed from
the result cache.  The parallel path must be bit-identical to the serial
one; the speedup assertion is gated on the host actually having more than
one core (CI runners vary).
"""

from __future__ import annotations

import os
from time import perf_counter

import pytest
from conftest import once

from repro.experiments.campaign import CampaignRunner, sweep_specs
from repro.experiments.config import ExperimentConfig

#: Sweep cell small enough that the whole bench stays under a minute even
#: serially on one core.
SWEEP_BASE = ExperimentConfig(
    n_nodes=40,
    load_factor=1,
    total_time=6 * 3600.0,
    task_range=(2, 12),
)

JOBS = 4


def _specs():
    return sweep_specs(["dsmf", "dheft"], [1, 2, 3, 4], base=SWEEP_BASE)


@pytest.mark.slow  # wall-time ratio gate: keep off shared CI runners
def test_bench_campaign_parallel_speedup(benchmark):
    """Times the parallel sweep; asserts identity with (and, given cores,
    speedup over) the serial path."""
    t0 = perf_counter()
    serial = CampaignRunner(jobs=1, use_cache=False).run(_specs())
    serial_wall = perf_counter() - t0

    parallel = once(
        benchmark, lambda: CampaignRunner(jobs=JOBS, use_cache=False).run(_specs())
    )

    # Fan-out must never change the science: bit-identical outcomes.
    assert parallel.fingerprint() == serial.fingerprint()
    assert [r.label for r in parallel] == [r.label for r in serial]

    if (os.cpu_count() or 1) >= 2:
        # With real cores the 8-run sweep should overlap meaningfully;
        # 1.3x is a deliberately loose floor for noisy shared CI runners.
        assert parallel.wall_seconds < serial_wall / 1.3


def test_bench_campaign_cache_replay(tmp_path):
    specs = _specs()
    cold = CampaignRunner(jobs=1, cache_dir=tmp_path).run(specs)
    assert cold.n_cached == 0

    warm = CampaignRunner(jobs=1, cache_dir=tmp_path).run(specs)
    assert warm.n_cached == len(specs)
    assert warm.fingerprint() == cold.fingerprint()
    # The replay reads eight pickles; anything near the cold wall time
    # means the cache is broken.  (The acceptance bar is <10%.)
    assert warm.wall_seconds < cold.wall_seconds * 0.1
