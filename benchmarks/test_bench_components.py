"""Micro-benchmarks for the performance-critical components.

These are true repeated-measurement benchmarks (pytest-benchmark defaults)
for the hot paths identified while profiling, per the hpc-parallel guides:
the event loop, the vectorized FT evaluation, the RPM backward pass, the
all-pairs bottleneck computation, gossip cycles and the full-ahead planner.
"""

from __future__ import annotations

import numpy as np

from repro.core.estimates import ResourceView
from repro.core.fullahead.heft import HeftPlanner
from repro.core.fullahead.planner import GlobalView
from repro.grid.state import WorkflowExecution
from repro.gossip.aggregation import AggregationGossip
from repro.gossip.epidemic import EpidemicGossip
from repro.gossip.newscast import NewscastOverlay
from repro.net.bottleneck import all_pairs_bottleneck
from repro.net.waxman import generate_waxman
from repro.sim.engine import Simulator
from repro.sim.rng import spawn_generator
from repro.workflow.analysis import rest_path_after
from repro.workflow.generator import WorkflowParams, random_workflow


def test_bench_event_loop_throughput(benchmark):
    """Schedule+execute 10k trivial events."""

    def run():
        sim = Simulator()
        for i in range(10_000):
            sim.schedule(float(i % 100), lambda: None)
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 10_000


def test_bench_ft_vector(benchmark):
    """One vectorized Formula-(9) evaluation over a 24-candidate RSS."""

    class Flat:
        def bw_between(self, src, targets):
            return np.full(len(targets), 5.0)

        def latency_between(self, src, targets):
            return np.full(len(targets), 0.01)

    view = ResourceView(
        list(range(24)),
        [float(1 + i % 16) for i in range(24)],
        [float(100 * i) for i in range(24)],
        Flat(),
        home_id=0,
    )
    inputs = [(1, 500.0), (2, 800.0), (3, 120.0)]
    out = benchmark(lambda: view.ft_vector(5000.0, 50.0, inputs))
    assert len(out) == 24


def test_bench_rpm_backward_pass(benchmark):
    """Rest-path computation over a Table-I-sized workflow (Eq. 7)."""
    wf = random_workflow(
        "w", spawn_generator(3, "bench"), WorkflowParams(task_range=(30, 30))
    )
    out = benchmark(lambda: rest_path_after(wf, 6.2, 1.5))
    assert len(out) == wf.n_tasks


def test_bench_bottleneck_matrix(benchmark):
    """All-pairs widest-path over a 300-node Waxman graph."""
    g = generate_waxman(300, spawn_generator(4, "bench"))
    widths = spawn_generator(5, "bench").uniform(0.1, 10.0, size=g.m)
    mat = benchmark(lambda: all_pairs_bottleneck(g.n, g.edges, widths))
    assert mat.shape == (300, 300)


def test_bench_gossip_cycle(benchmark):
    """One full mixed-gossip cycle on 200 nodes."""
    ov = NewscastOverlay(list(range(200)), spawn_generator(6, "bench"))
    ep = EpidemicGossip(ov, lambda i: (0.0, 4.0), spawn_generator(7, "bench"))
    ag = AggregationGossip(ov, spawn_generator(8, "bench"))
    ag.register_metric("cap", lambda i: float(i % 5))
    clock = {"t": 0.0}

    def cycle():
        clock["t"] += 300.0
        ov.run_cycle(clock["t"])
        ep.run_cycle(clock["t"])
        ag.run_cycle(clock["t"])

    benchmark(cycle)
    assert ep.mean_known_nodes() > 0


def test_bench_fullahead_planner(benchmark):
    """HEFT planning of 60 workflows over 100 nodes (vectorized EFT)."""
    rng = spawn_generator(9, "bench")
    wxs = [
        WorkflowExecution(random_workflow(f"w{i}", rng), i % 10, 0.0, 1.0)
        for i in range(60)
    ]
    n = 100
    bw = np.full((n, n), 5.0)
    np.fill_diagonal(bw, np.inf)
    view = GlobalView(
        node_ids=np.arange(n, dtype=np.int64),
        capacities=np.asarray([1.0 + (i % 16) for i in range(n)]),
        bandwidth=bw,
        latency=np.zeros((n, n)),
        avg_capacity=6.2,
        avg_bandwidth=5.0,
    )
    plan = benchmark.pedantic(
        lambda: HeftPlanner().plan(view, wxs), rounds=3, iterations=1
    )
    assert len(plan.assignment) > 0
