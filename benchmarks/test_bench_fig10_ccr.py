"""Fig. 10 — average efficiency under the four CCR combinations.

Paper claims reproduced here: DSMF keeps an efficiency lead over the
decentralized rivals across CCR regimes; efficiency values sit in the
paper's plotted 0–0.4 band under the heavier combinations.
"""

from __future__ import annotations

import pytest
from conftest import once, run_one

from repro.experiments.figures import CCR_CASES

pytestmark = pytest.mark.slow

ALGS = ("dsmf", "sufferage", "dheft")


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for name, loads, data in CCR_CASES:
        for alg in ALGS:
            out[(alg, name)] = run_one(
                algorithm=alg, load_range=loads, data_range=data
            )
    return out


def test_bench_fig10_ccr(benchmark, sweep):
    case = CCR_CASES[3]
    once(
        benchmark,
        lambda: run_one(algorithm="dheft", load_range=case[1], data_range=case[2]),
    )

    for name, _, _ in CCR_CASES:
        for rival in ("sufferage", "dheft"):
            assert sweep[("dsmf", name)].ae >= sweep[(rival, name)].ae * 0.95, (
                name,
                rival,
            )

    # DSMF strictly beats DHEFT (the weakest) in every combination.
    for name, _, _ in CCR_CASES:
        assert sweep[("dsmf", name)].ae > sweep[("dheft", name)].ae, name


def test_fig10_values_physical(sweep):
    for key, r in sweep.items():
        assert 0.0 < r.ae < 1.5, key
