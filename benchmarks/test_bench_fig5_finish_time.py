"""Fig. 5 — average finish time (ACT, Eq. 2) of the eight algorithms.

Paper claims reproduced here: DSMF outperforms the other decentralized
algorithms (min-min, max-min, sufferage, DHEFT, DSDF) and full-ahead HEFT
by a double-digit percentage on converged ACT; SMF/DSMF are the two best.
"""

from __future__ import annotations

import pytest
from conftest import once, run_one

from repro.experiments.figures import fig5_finish_time

pytestmark = pytest.mark.slow

DECENTRALIZED_RIVALS = ("min-min", "max-min", "sufferage", "dheft", "dsdf")


def test_bench_fig5_finish_time(benchmark, static_suite):
    once(benchmark, lambda: run_one(algorithm="min-min"))

    act = {alg: r.act for alg, r in static_suite.items()}

    # DSMF beats every decentralized rival on ACT.
    for rival in DECENTRALIZED_RIVALS:
        assert act["dsmf"] < act[rival], (rival, act)

    # The paper quotes 20%~60% reduction; require at least 10% vs the
    # rival average at bench scale.
    rival_mean = sum(act[r] for r in DECENTRALIZED_RIVALS) / len(DECENTRALIZED_RIVALS)
    assert act["dsmf"] < 0.9 * rival_mean

    # DSMF also beats full-ahead HEFT.
    assert act["dsmf"] < act["heft"]

    # The two best algorithms overall are SMF and DSMF.
    best_two = sorted(act, key=act.get)[:2]
    assert "dsmf" in best_two


def test_fig5_series_monotone_after_warmup(static_suite):
    """Cumulative ACT rises as longer workflows complete."""
    fig = fig5_finish_time(results=static_suite)
    for alg, (xs, ys) in fig.series.items():
        nonzero = [y for y in ys if y > 0]
        assert nonzero, alg
        assert nonzero[-1] >= nonzero[0] * 0.5
