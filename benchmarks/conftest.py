"""Shared infrastructure for the benchmark harness.

Every paper table/figure has one ``test_bench_*`` module.  Simulations are
deterministic (fixed seeds), so each bench runs its simulation exactly once
(``benchmark.pedantic(..., rounds=1)``) and then asserts the paper's
qualitative *shape* claims on the result — who wins, by roughly what
factor, how trends move.  Absolute numbers differ from the paper (different
testbed), which is expected; EXPERIMENTS.md records the comparison.

The benches run a reduced scale (``BENCH`` below) so the whole suite
finishes in minutes; the CLI regenerates any figure at ``medium``/``paper``
scale.
"""

from __future__ import annotations

import os

import pytest

from repro.core.heuristics.registry import PAPER_ALGORITHMS
from repro.experiments.campaign import CampaignRunner, RunSpec
from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem

#: Fan-out for the sweep fixtures (the timed benches themselves always run
#: inline).  Results are deterministic per config, so the worker count only
#: affects wall time, never the asserted numbers.
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "0")) or (os.cpu_count() or 1)

#: Opt-in result cache for the sweep fixtures.  Off by default so bench
#: timings stay honest; set REPRO_BENCH_CACHE_DIR to iterate on assertion
#: thresholds without re-simulating.
BENCH_CACHE_DIR = os.environ.get("REPRO_BENCH_CACHE_DIR")

#: Reduced-scale bench setting (validated to preserve the paper's ordering).
#: 24 simulated hours let every algorithm converge (finish its workload) so
#: ACT/AE comparisons are apples-to-apples, like the paper's quoted
#: "converged" numbers.
BENCH = dict(
    n_nodes=60,
    load_factor=3,
    total_time=24 * 3600.0,
    seed=7,
    task_range=(2, 30),
)


def bench_config(scenario: str | None = None, **overrides) -> ExperimentConfig:
    """The Fig. 4–6 base setting at bench scale.

    ``scenario`` applies a named workload preset from
    :mod:`repro.workload.scenarios`; explicit ``overrides`` win over it.
    """
    params = dict(BENCH)
    if scenario is not None:
        from repro.workload.scenarios import get_scenario

        params.update(get_scenario(scenario).overrides)
        params["scenario"] = scenario
    params.update(overrides)
    return ExperimentConfig(**params)


def run_one(**overrides):
    """Build and run one system; returns the RunResult."""
    return P2PGridSystem(bench_config(**overrides)).run()


def run_sweep(variants: dict[str, dict], **common) -> dict:
    """Run named bench-config variants through the campaign runner.

    ``variants`` maps a label to its config overrides; ``common`` overrides
    apply to every variant.  Fans out across :data:`BENCH_JOBS` processes
    and returns ``label -> RunResult`` — bit-identical to running each
    variant serially via :func:`run_one`.
    """
    specs = [
        RunSpec(label, bench_config(**{**common, **overrides}))
        for label, overrides in variants.items()
    ]
    runner = CampaignRunner(
        jobs=min(BENCH_JOBS, len(specs)),
        cache_dir=BENCH_CACHE_DIR,
        use_cache=BENCH_CACHE_DIR is not None,
    )
    return runner.run(specs).results()


@pytest.fixture(scope="session")
def static_suite():
    """One static run per paper algorithm, shared by Fig. 4/5/6 benches."""
    return run_sweep({alg: {"algorithm": alg} for alg in PAPER_ALGORITHMS})


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
