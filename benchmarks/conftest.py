"""Shared infrastructure for the benchmark harness.

Every paper table/figure has one ``test_bench_*`` module.  Simulations are
deterministic (fixed seeds), so each bench runs its simulation exactly once
(``benchmark.pedantic(..., rounds=1)``) and then asserts the paper's
qualitative *shape* claims on the result — who wins, by roughly what
factor, how trends move.  Absolute numbers differ from the paper (different
testbed), which is expected; EXPERIMENTS.md records the comparison.

The benches run a reduced scale (``BENCH`` below) so the whole suite
finishes in minutes; the CLI regenerates any figure at ``medium``/``paper``
scale.
"""

from __future__ import annotations

import pytest

from repro.core.heuristics.registry import PAPER_ALGORITHMS
from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem

#: Reduced-scale bench setting (validated to preserve the paper's ordering).
#: 24 simulated hours let every algorithm converge (finish its workload) so
#: ACT/AE comparisons are apples-to-apples, like the paper's quoted
#: "converged" numbers.
BENCH = dict(
    n_nodes=60,
    load_factor=3,
    total_time=24 * 3600.0,
    seed=7,
    task_range=(2, 30),
)


def bench_config(**overrides) -> ExperimentConfig:
    """The Fig. 4–6 base setting at bench scale."""
    params = dict(BENCH)
    params.update(overrides)
    return ExperimentConfig(**params)


def run_one(**overrides):
    """Build and run one system; returns the RunResult."""
    return P2PGridSystem(bench_config(**overrides)).run()


@pytest.fixture(scope="session")
def static_suite():
    """One static run per paper algorithm, shared by Fig. 4/5/6 benches."""
    return {alg: run_one(algorithm=alg) for alg in PAPER_ALGORITHMS}


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
