"""Ablation benches for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each isolates one model ingredient
(partial information, staleness, bandwidth estimation error, scheduling
interval, transfer contention, rescheduling) and quantifies its effect.
"""

from __future__ import annotations

import pytest
from conftest import once, run_one, run_sweep

pytestmark = pytest.mark.slow


class TestRssSizeAblation:
    """Partial information: how much does the O(log n) RSS bound cost?"""

    @pytest.fixture(scope="class")
    def sweep(self):
        import numpy as np

        log2n = int(np.ceil(np.log2(60)))
        # The bench's default 24 h horizon is validated to converge every
        # algorithm under the paper's 2*log2(n) RSS, but the deliberately
        # handicapped half-size view makes placements bad enough that the
        # slowest tail (large transfers over ~0.1 Mb/s links) is still in
        # flight at 24 h.  The paper quotes *converged* numbers, so this
        # ablation runs a 36 h horizon (= Table I's experimental time, at
        # which every variant below finishes all 180 workflows) rather
        # than asserting completion mid-tail.
        return run_sweep(
            {
                "half": {"rss_capacity": max(2, log2n // 2)},
                "paper": {"rss_capacity": 2 * log2n},
                "quad": {"rss_capacity": 4 * log2n},
                "oracle": {"rss_mode": "oracle"},
            },
            total_time=36 * 3600.0,
        )

    def test_bench_ablation_rss_size(self, benchmark, sweep):
        once(benchmark, lambda: run_one(rss_mode="oracle"))
        # Bigger views help (or at least never hurt much) ...
        assert sweep["quad"].act <= sweep["half"].act * 1.15
        # ... and the paper's 2*log2(n) sits within 30% of full oracle
        # knowledge — the core "random bounded RSS suffices" claim.
        assert sweep["paper"].act <= sweep["oracle"].act * 1.3

    def test_everything_completes(self, sweep):
        for label, r in sweep.items():
            assert r.n_done == r.n_workflows, label


class TestGossipStalenessAblation:
    """Staleness of load records: longer gossip cycles, worse decisions."""

    @pytest.fixture(scope="class")
    def sweep(self):
        return run_sweep(
            {
                "fresh": {"gossip_interval": 60.0},
                "paper": {"gossip_interval": 300.0},
                "stale": {"gossip_interval": 1800.0},
            }
        )

    def test_bench_ablation_gossip_staleness(self, benchmark, sweep):
        once(benchmark, lambda: run_one(gossip_interval=1800.0))
        # Fresh info should not be worse than very stale info.
        assert sweep["fresh"].act <= sweep["stale"].act * 1.10

    def test_all_complete(self, sweep):
        for label, r in sweep.items():
            assert r.completion_rate > 0.9, label


class TestLandmarkAblation:
    """Bandwidth estimation error vs an oracle bandwidth matrix."""

    def test_bench_ablation_landmarks(self, benchmark):
        landmark = once(benchmark, lambda: run_one(use_landmark_bandwidth=True))
        oracle = run_one(use_landmark_bandwidth=False)
        # Estimation error costs a bounded amount (same order of magnitude).
        assert landmark.act <= oracle.act * 1.35
        assert landmark.n_done == landmark.n_workflows


class TestIntervalAblation:
    """Periodic (paper) vs immediate (event-driven) phase-1 dispatch."""

    def test_bench_ablation_interval(self, benchmark):
        periodic = once(benchmark, lambda: run_one(load_factor=1))
        immediate = run_one(load_factor=1, immediate_dispatch=True)
        # Removing the cycle wait can only speed workflows up at light load.
        assert immediate.act <= periodic.act


class TestContentionAblation:
    """The paper's contention-free transfer assumption, quantified."""

    def test_bench_ablation_contention(self, benchmark):
        free = once(benchmark, lambda: run_one(data_range=(100.0, 10_000.0)))
        shared = run_one(data_range=(100.0, 10_000.0), transfer_contention=True)
        # Sharing inbound links can only slow things down.
        assert shared.act >= free.act * 0.99


class TestRescheduleAblation:
    """The paper's future-work fix under harsh fail-churn semantics."""

    def test_bench_ablation_reschedule(self, benchmark):
        plain = once(
            benchmark,
            lambda: run_one(dynamic_factor=0.2, churn_mode="fail", load_factor=2),
        )
        fixed = run_one(
            dynamic_factor=0.2,
            churn_mode="fail",
            load_factor=2,
            reschedule_failed=True,
        )
        assert fixed.n_done > plain.n_done
        assert fixed.n_failed == 0
