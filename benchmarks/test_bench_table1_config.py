"""Table I — the experimental setting, as implemented.

Verifies that the default configuration *is* Table I, and benchmarks the
system-construction cost (topology generation + all-pairs matrices +
gossip bootstrap + workflow generation) at a few hundred nodes, since that
is the fixed overhead every experiment pays.
"""

from __future__ import annotations

from conftest import bench_config, once

from repro.experiments.figures import table1_settings
from repro.grid.system import P2PGridSystem


def test_bench_table1_config(benchmark):
    system = once(
        benchmark, lambda: P2PGridSystem(bench_config(n_nodes=200))
    )
    # Construction builds the full substrate stack.
    assert system.topology.n == 200
    assert len(system.executions) == 600  # load factor 3
    assert len(system.overlay.live) == 200


def test_table1_values_match_paper():
    rows = dict(table1_settings())
    assert rows["# of tasks per workflow"] == "2 ~ 30"
    assert rows["computing amount per task"] == "100 ~ 10000 MI"
    assert rows["image size per task"] == "10 ~ 100 Mb"
    assert rows["network bandwidth"] == "0.1 ~ 10 Mb/s"
    assert rows["node capacity"] == "1, 2, 4, 8 or 16 MIPS"
    assert rows["fan-out per task"] == "1 ~ 5"
    assert rows["total experimental time"] == "36 hours"
    assert rows["scheduling interval"] == "15 minutes"


def test_capacity_distribution_covers_all_tiers():
    system = P2PGridSystem(bench_config(n_nodes=200))
    caps = {n.capacity for n in system.nodes}
    assert caps == {1.0, 2.0, 4.0, 8.0, 16.0}


def test_workload_within_table1_ranges():
    system = P2PGridSystem(bench_config(n_nodes=100))
    for wx in system.executions.values():
        real = [t for t in wx.wf.tasks.values() if not t.virtual]
        assert 2 <= len(real) <= 30
        for t in real:
            assert 100.0 <= t.load <= 10_000.0
            assert 10.0 <= t.image_size <= 100.0
