#!/usr/bin/env python
"""Domain example: an astronomy mosaic campaign on a P2P grid.

The paper's introduction motivates P2P grids with scientific workflows;
the archetype is Montage (sky-mosaic assembly: project -> diff -> fit ->
background-correct -> add).  This example submits a campaign of
Montage-shaped workflows of varying sizes from several collaborating labs
(home nodes) and compares how DSMF and decentralized HEFT treat the mix of
small quick-look mosaics and large survey mosaics.

The point the paper makes — and this example shows — is that
longest-rank-first (DHEFT) starves the small mosaics behind the big ones,
while DSMF's shortest-makespan-first keeps the interactive quick-looks
flowing without hurting the survey jobs much.

Run with ``python examples/montage_campaign.py``.
"""

import numpy as np

from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem
from repro.workflow.generator import montage_like_workflow


def build_campaign(seed: int):
    """60 quick-look (4-input) and 15 survey (12-input) mosaics from 5 labs."""
    rng = np.random.default_rng(seed)
    workflows = []
    labs = [0, 1, 2, 3, 4]
    for i in range(60):
        wf = montage_like_workflow(
            f"quicklook{i:03d}", 4, rng, load_scale=800.0, data_scale=100.0
        )
        workflows.append((labs[i % len(labs)], wf))
    for i in range(15):
        wf = montage_like_workflow(
            f"survey{i:03d}", 12, rng, load_scale=3000.0, data_scale=400.0
        )
        workflows.append((labs[i % len(labs)], wf))
    return workflows


def run(algorithm: str, seed: int = 11):
    cfg = ExperimentConfig(
        algorithm=algorithm,
        n_nodes=60,
        load_factor=1,          # ignored: we submit an explicit campaign
        total_time=18 * 3600.0,
        seed=seed,
    )
    system = P2PGridSystem(cfg, workflows=build_campaign(seed))
    return system.run()


def digest(label: str, result) -> None:
    quick = [r for r in result.records if r.wid.startswith("quicklook") and r.ct]
    survey = [r for r in result.records if r.wid.startswith("survey") and r.ct]
    q_act = np.mean([r.ct for r in quick]) if quick else float("nan")
    s_act = np.mean([r.ct for r in survey]) if survey else float("nan")
    print(f"{label:10s} finished {result.n_done}/{result.n_workflows}  "
          f"quick-look ACT {q_act:>8.0f}s ({len(quick)} done)   "
          f"survey ACT {s_act:>8.0f}s ({len(survey)} done)")


def main() -> None:
    print("Montage campaign: 60 quick-look + 15 survey mosaics, 60-node grid")
    print()
    results = {alg: run(alg) for alg in ("dsmf", "dheft", "min-min")}
    for alg, r in results.items():
        digest(alg, r)
    print()
    dsmf_q = np.mean([r.ct for r in results["dsmf"].records
                      if r.wid.startswith("quicklook") and r.ct])
    dheft_q = np.mean([r.ct for r in results["dheft"].records
                       if r.wid.startswith("quicklook") and r.ct])
    print(f"DSMF serves quick-looks {dheft_q / dsmf_q:.1f}x faster than "
          f"decentralized HEFT on this campaign — the paper's core claim in action.")


if __name__ == "__main__":
    main()
