#!/usr/bin/env python
"""Domain example: how much churn can a desktop-grid campaign absorb?

Reproduces the paper's §IV.B dynamic-environment study (Fig. 12–14) as a
practical capacity question: a lab submits a fixed campaign to a grid in
which half the machines are volatile desktop nodes that join and leave
every scheduling interval.  We sweep the dynamic factor and report
throughput, ACT and AE of the completed workflows — then show the paper's
proposed future-work fix (rescheduling lost tasks) closing the gap under
the harsher fail-churn semantics.

Run with ``python examples/churn_resilience.py``.
"""

from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem


def run(df: float, churn_mode: str = "suspend", reschedule: bool = False):
    cfg = ExperimentConfig(
        algorithm="dsmf",
        n_nodes=80,
        load_factor=2,
        total_time=18 * 3600.0,
        seed=9,
        dynamic_factor=df,
        churn_mode=churn_mode,
        reschedule_failed=reschedule,
    )
    return P2PGridSystem(cfg).run()


def main() -> None:
    print("Churn sweep (suspend semantics — Fig. 12/13/14 shape):")
    print(f"  {'df':>4}  {'finished':>8}  {'failed':>6}  {'ACT (s)':>8}  {'AE':>6}")
    for df in (0.0, 0.1, 0.2, 0.3, 0.4):
        r = run(df)
        print(f"  {df:>4.1f}  {r.n_done:>8}  {r.n_failed:>6}  {r.act:>8.0f}  {r.ae:>6.3f}")
    print()
    print("Harsh fail-churn semantics at df=0.2, with and without the")
    print("rescheduling extension (the paper's future work):")
    plain = run(0.2, churn_mode="fail")
    fixed = run(0.2, churn_mode="fail", reschedule=True)
    print(f"  no rescheduling : {plain.n_done} finished, {plain.n_failed} failed")
    print(f"  rescheduling on : {fixed.n_done} finished, {fixed.n_failed} failed")
    print()
    print("Takeaway: with suspend churn the finished workflows keep stable")
    print("ACT/AE up to df~0.2 (as the paper reports); abrupt task loss is")
    print("catastrophic without rescheduling, which is why the paper flags")
    print("it as the key piece of future work.")


if __name__ == "__main__":
    main()
