#!/usr/bin/env python
"""Quickstart: run DSMF on a small P2P grid and read the results.

This is the three-line entry point to the library::

    from repro import quick_run
    result = quick_run(algorithm="dsmf", n_nodes=80, seed=7)
    print(result.summary())

plus a peek at the hourly metric samples and the per-workflow records.
Run it with ``python examples/quickstart.py``.
"""

from repro import available_algorithms, quick_run


def main() -> None:
    print("Available algorithm bundles:", ", ".join(available_algorithms()))
    print()

    # A 80-node P2P grid, two workflows submitted per node, 12 simulated
    # hours, everything else per the paper's Table I.
    result = quick_run(
        algorithm="dsmf",
        n_nodes=80,
        load_factor=2,
        duration_hours=12,
        seed=7,
    )
    print(result.summary())
    print()

    print("Hourly progress (cumulative):")
    print(f"  {'hour':>4}  {'finished':>8}  {'ACT (s)':>9}  {'AE':>6}")
    for s in result.samples:
        print(
            f"  {s.time / 3600:>4.0f}  {s.throughput:>8}  {s.act:>9.0f}  {s.ae:>6.3f}"
        )
    print()

    # Individual workflow records: who finished, when, how efficiently.
    done = [r for r in result.records if r.status == "done"]
    slowest = max(done, key=lambda r: r.ct or 0.0)
    fastest = min(done, key=lambda r: r.ct or 0.0)
    print(f"Fastest workflow: {fastest.wid} ({fastest.n_tasks} tasks) "
          f"ct={fastest.ct:.0f}s efficiency={fastest.efficiency:.2f}")
    print(f"Slowest workflow: {slowest.wid} ({slowest.n_tasks} tasks) "
          f"ct={slowest.ct:.0f}s efficiency={slowest.efficiency:.2f}")


if __name__ == "__main__":
    main()
