#!/usr/bin/env python
"""Walk through the paper's Fig. 3 worked example, step by step.

Two workflows (A and B) sit at one scheduler node; tasks A2, A3, B2 and B3
are the current schedule points, and three resource nodes X, Y, Z are known
through the gossiped resource set.  The paper derives:

* RPM(A2)=80, RPM(A3)=115, RPM(B2)=65, RPM(B3)=60  (Eq. 7)
* ms(A)=115, ms(B)=65                              (Eq. 8)
* DSMF dispatch order:  B2, B3, A3, A2
* HEFT (longest RPM):   A3, A2, B2, B3
* min-min starts with A2; max-min starts with B2.

This script reproduces all of those numbers with the library's actual
policy implementations (the same code the simulator runs) and prints the
reasoning as it goes.  Run with ``python examples/fig3_walkthrough.py``.
"""

import numpy as np

from repro.core.heuristics.base import SchedulingContext
from repro.core.heuristics.dheft import DheftPhase1
from repro.core.heuristics.dsmf import DsmfPhase1
from repro.core.heuristics.listfree import MaxMinPhase1, MinMinPhase1
from repro.core.rpm import compute_priorities
from repro.grid.state import WorkflowExecution
from repro.workflow.dag import Workflow
from repro.workflow.task import Task

# Schedule-point loads double as lookup keys into the published FT matrix.
A2, A3, B2, B3 = 1001.0, 1002.0, 1003.0, 1004.0
NODE_NAMES = {10: "X", 11: "Y", 12: "Z"}

FT_MATRIX = {
    A2: [15.0, 10.0, 30.0],
    A3: [30.0, 50.0, 40.0],
    B2: [50.0, 60.0, 40.0],
    B3: [40.0, 20.0, 30.0],
}


class PaperMatrixView:
    """Resource view returning exactly the finish times printed in Fig. 3."""

    ids = np.asarray(sorted(NODE_NAMES), dtype=np.int64)

    def ft_vector(self, load, image, inputs):
        return np.asarray(FT_MATRIX[load])

    def best_ft(self, load, image, inputs):
        return float(self.ft_vector(load, image, inputs).min())

    def best(self, load, image, inputs):
        ft = self.ft_vector(load, image, inputs)
        k = int(np.argmin(ft))
        return int(self.ids[k]), float(ft[k])

    def add_load(self, node_id, load, on_update=None):
        pass  # the worked example keeps the matrix fixed


def build_workflow_a() -> WorkflowExecution:
    """A1 -> {A2, A3} with offspring chains totalling 70 / 85 time units."""
    tasks = [
        Task(tid=1, load=5.0, name="A1"),
        Task(tid=2, load=A2, name="A2"),
        Task(tid=3, load=A3, name="A3"),
        Task(tid=4, load=20.0, name="A4"),
        Task(tid=5, load=20.0, name="A5"),
        Task(tid=6, load=5.0, name="A6"),
    ]
    edges = {
        (1, 2): 0.0, (1, 3): 0.0,
        (2, 4): 30.0, (3, 5): 40.0,
        (4, 6): 15.0, (5, 6): 20.0,
    }
    wx = WorkflowExecution(Workflow("A", tasks, edges), 0, 0.0, eft=1.0)
    wx.mark_finished(1, 0, 0.0)
    return wx


def build_workflow_b() -> WorkflowExecution:
    """B1 -> {B2, B3} with offspring rest paths 25 / 40."""
    tasks = [
        Task(tid=1, load=20.0, name="B1"),
        Task(tid=2, load=B2, name="B2"),
        Task(tid=3, load=B3, name="B3"),
        Task(tid=4, load=10.0, name="B4"),
        Task(tid=5, load=5.0, name="B5"),
    ]
    edges = {(1, 2): 0.0, (1, 3): 0.0, (2, 4): 10.0, (3, 4): 25.0, (4, 5): 0.0}
    wx = WorkflowExecution(Workflow("B", tasks, edges), 0, 0.0, eft=1.0)
    wx.mark_finished(1, 0, 0.0)
    return wx


def main() -> None:
    wa, wb = build_workflow_a(), build_workflow_b()
    view = PaperMatrixView()
    ctx = SchedulingContext(
        home_id=0, now=0.0, workflows=[wa, wb], view=view,
        avg_capacity=1.0, avg_bandwidth=1.0,
    )

    print("Estimated finish-time matrix (paper Fig. 3):")
    print(f"      {'X':>5} {'Y':>5} {'Z':>5}")
    for key, name in ((A2, "A2"), (A3, "A3"), (B2, "B2"), (B3, "B3")):
        row = FT_MATRIX[key]
        print(f"  {name}  {row[0]:>5.0f} {row[1]:>5.0f} {row[2]:>5.0f}")
    print()

    print("Step 1 — RPM of every schedule point (Eq. 7: best FT + rest path):")
    for wx in (wa, wb):
        prio = compute_priorities(wx, view, 1.0, 1.0)
        for tid, rpm in sorted(prio.rpm.items()):
            name = wx.wf.tasks[tid].name
            print(f"  RPM({name}) = {view.best_ft(wx.wf.tasks[tid].load, 0, []):g}"
                  f" + {prio.restpath[tid]:g} = {rpm:g}")
        print(f"  => ms({wx.wf.wid}) = {prio.makespan:g}   (Eq. 8)")
    print()

    print("Step 2 — dispatch orders chosen by each phase-1 policy:")
    for policy, label in (
        (DsmfPhase1(), "DSMF (shortest makespan first)"),
        (DheftPhase1(), "HEFT rule (longest RPM first)"),
        (MinMinPhase1(), "min-min"),
        (MaxMinPhase1(), "max-min"),
    ):
        # Fresh executions per policy: planning mutates nothing here, but
        # stay faithful to one-shot semantics.
        ctx2 = SchedulingContext(
            home_id=0, now=0.0, workflows=[build_workflow_a(), build_workflow_b()],
            view=PaperMatrixView(), avg_capacity=1.0, avg_bandwidth=1.0,
        )
        decisions = policy.plan(ctx2)
        order = " -> ".join(
            f"{d.wx.wf.tasks[d.tid].name}@{NODE_NAMES[d.target]}" for d in decisions
        )
        print(f"  {label:35s} {order}")
    print()
    print("Matches the paper: DSMF = B2, B3, A3, A2; HEFT = A3, A2, B2, B3;")
    print("min-min picks A2 first; max-min picks B2 first.")


if __name__ == "__main__":
    main()
