"""Workload scenarios: the same grid under different submission regimes.

The paper evaluates one workload shape — every workflow submitted at
t = 0.  The `repro.workload` subsystem opens that up: this example runs
DSMF on an identical grid under the batch baseline, a steady Poisson
stream, and on/off burst storms, then compares how the three regimes
stress the scheduler.

Run:  PYTHONPATH=src python examples/workload_scenarios.py
"""

from __future__ import annotations

from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem
from repro.workload import apply_scenario, get_scenario, scenario_names

BASE = ExperimentConfig(
    algorithm="dsmf",
    n_nodes=60,
    load_factor=2,
    total_time=24 * 3600.0,
    seed=11,
    task_range=(2, 15),
)

SCENARIOS = ["paper-fig4", "poisson-steady", "burst-storm"]


def main() -> None:
    print("Registered scenarios:")
    for name in scenario_names():
        print(f"  {name:20s} {get_scenario(name).description}")
    print()

    print(f"{'scenario':16s} {'done':>9s} {'ACT (s)':>9s} {'AE':>6s} {'last arrival':>13s}")
    for name in SCENARIOS:
        result = P2PGridSystem(apply_scenario(BASE, name)).run()
        last = max(r.submit_time for r in result.records)
        print(
            f"{name:16s} {result.n_done:4d}/{result.n_workflows:<4d} "
            f"{result.act:9.0f} {result.ae:6.3f} {last / 3600.0:11.1f} h"
        )
    print(
        "\nSame DAGs in every run (the arrival layer draws from its own RNG "
        "stream); only the submission instants differ."
    )


if __name__ == "__main__":
    main()
