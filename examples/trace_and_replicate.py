#!/usr/bin/env python
"""Power-user example: trace a schedule and quantify seed noise.

Two library extensions beyond the paper:

1. **Tracing** — attach a :class:`repro.trace.TraceRecorder` to a system to
   capture every dispatch/start/finish event, then render a per-node ASCII
   Gantt chart and a waiting-time breakdown.  This is how you *see* what a
   scheduling policy actually did.
2. **Replication** — rerun the same configuration under several seeds and
   report mean ± confidence interval, so algorithm comparisons are not
   single-draw anecdotes.

Run with ``python examples/trace_and_replicate.py``.
"""


from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import run_replications
from repro.grid.system import P2PGridSystem
from repro.trace import TraceRecorder, gantt_ascii, node_utilization, waiting_time_breakdown
from repro.workflow.generator import chain_workflow, fork_join_workflow


def trace_demo() -> None:
    print("=== 1. Tracing a small schedule (DSMF, 8 nodes) ===")
    workflows = [
        (0, chain_workflow("chainA", 4, load=4000.0, data=50.0)),
        (1, fork_join_workflow("forkB", 3, load=3000.0, data=50.0)),
        (2, chain_workflow("chainC", 2, load=2000.0, data=50.0)),
    ]
    cfg = ExperimentConfig(
        algorithm="dsmf", n_nodes=8, load_factor=1,
        total_time=8 * 3600.0, seed=3,
    )
    system = P2PGridSystem(cfg, workflows=workflows)
    recorder = TraceRecorder().attach(system)
    system.run()

    print(gantt_ascii(recorder, width=64))
    print()
    stats = waiting_time_breakdown(recorder)
    print(f"tasks executed: {stats['tasks']:.0f}; "
          f"mean wait {stats['mean_wait']:.0f}s; "
          f"mean execution {stats['mean_exec']:.0f}s")
    util = node_utilization(recorder, horizon=cfg.total_time)
    busiest = max(util, key=util.get)
    print(f"busiest node: {busiest} at {util[busiest] * 100:.1f}% utilization")
    print()


def replication_demo() -> None:
    print("=== 2. Is DSMF's win over min-min significant? (5 seeds) ===")
    base = ExperimentConfig(
        n_nodes=50, load_factor=2, total_time=16 * 3600.0, task_range=(2, 20)
    )
    dsmf = run_replications(base.with_(algorithm="dsmf"), seeds=range(1, 6), jobs=5)
    minmin = run_replications(base.with_(algorithm="min-min"), seeds=range(1, 6), jobs=5)
    print(f"  DSMF    ACT: {dsmf.act}")
    print(f"  min-min ACT: {minmin.act}")
    verdict = "do NOT overlap -> significant" if not dsmf.overlaps(minmin, "act") \
        else "overlap -> need more seeds"
    print(f"  95% confidence intervals {verdict}")


def main() -> None:
    trace_demo()
    replication_demo()


if __name__ == "__main__":
    main()
