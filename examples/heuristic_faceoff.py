#!/usr/bin/env python
"""Domain example: choose a scheduling policy for your deployment.

A downstream user's first question is "which bundle should I run?".  This
example benchmarks all eight of the paper's algorithms on the same
workload/topology (identical seeds) across two regimes:

* a compute-bound regime (CCR ~ 0.16 — the paper's base setting), and
* a communication-bound regime (CCR ~ 16 — big data, slow links),

and prints a recommendation matrix.  It also demonstrates the second-phase
ablation: the same phase-1 heuristic with FCFS at resource nodes.

Run with ``python examples/heuristic_faceoff.py``.
"""

from repro.core.heuristics.registry import PAPER_ALGORITHMS
from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem


def run(algorithm: str, data_range, seed: int = 21):
    cfg = ExperimentConfig(
        algorithm=algorithm,
        n_nodes=70,
        load_factor=3,
        total_time=24 * 3600.0,
        seed=seed,
        data_range=data_range,
    )
    return P2PGridSystem(cfg).run()


def sweep(label: str, data_range) -> dict[str, object]:
    print(f"--- {label} ---")
    print(f"  {'algorithm':12s} {'finished':>8} {'ACT (s)':>9} {'AE':>6}")
    results = {}
    for alg in PAPER_ALGORITHMS:
        r = run(alg, data_range)
        results[alg] = r
        print(f"  {alg:12s} {r.n_done:>8} {r.act:>9.0f} {r.ae:>6.3f}")
    best_act = min(results, key=lambda a: results[a].act)
    best_ae = max(results, key=lambda a: results[a].ae)
    print(f"  best ACT: {best_act}; best AE: {best_ae}")
    print()
    return results


def main() -> None:
    sweep("compute-bound (CCR ~ 0.16, data 10-1000 Mb)", (10.0, 1000.0))
    sweep("communication-bound (CCR ~ 16, data 100-10000 Mb)", (100.0, 10_000.0))

    print("--- second-phase ablation (does Algorithm 2 matter?) ---")
    for base in ("min-min", "sufferage", "dsmf"):
        with_h = run(base, (10.0, 1000.0))
        with_f = run(f"{base}-fcfs", (10.0, 1000.0))
        delta = (with_f.act - with_h.act) / with_h.act * 100.0
        print(f"  {base:12s} ACT {with_h.act:>8.0f}s -> FCFS {with_f.act:>8.0f}s "
              f"({delta:+.1f}%)")
    print()
    print("Reading: DSMF is the safe decentralized default, and its own")
    print("second phase (Formula 10) is where the big win lives; the")
    print("adapted rivals' second phases hover within a few percent of")
    print("FCFS either way (see EXPERIMENTS.md, Table II).")


if __name__ == "__main__":
    main()
