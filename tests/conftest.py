"""Shared fixtures for the test suite.

Simulation fixtures are deliberately tiny (tens of nodes, a few simulated
hours) so the whole suite stays fast; the paper-scale runs live in
``benchmarks/`` and the CLI harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.net.topology import Topology
from repro.sim.rng import RngHub


@pytest.fixture
def hub() -> RngHub:
    return RngHub(seed=1234)


@pytest.fixture
def rng(hub) -> np.random.Generator:
    return hub.stream("test")


@pytest.fixture(scope="session")
def small_topology() -> Topology:
    """A 30-node Waxman topology shared across tests (construction is the
    expensive part; the object is treated as read-only)."""
    return Topology.waxman(30, RngHub(seed=99).stream("topology"))


@pytest.fixture
def tiny_config() -> ExperimentConfig:
    """A config small enough for sub-second end-to-end runs."""
    return ExperimentConfig(
        algorithm="dsmf",
        n_nodes=24,
        load_factor=1,
        total_time=6 * 3600.0,
        seed=5,
        task_range=(2, 10),
    )
