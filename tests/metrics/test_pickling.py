"""RunResult must be pickleable: the replication and collection harnesses
ship results across process boundaries."""

from __future__ import annotations

import pickle

from repro.api import quick_run


def test_run_result_pickle_roundtrip():
    r = quick_run(algorithm="dsmf", n_nodes=20, load_factor=1,
                  duration_hours=3, seed=2, task_range=(2, 5))
    blob = pickle.dumps(r)
    back = pickle.loads(blob)
    assert back.act == r.act
    assert back.ae == r.ae
    assert len(back.records) == len(r.records)
    assert back.samples[0].time == r.samples[0].time
    assert back.config == r.config


def test_config_dict_is_plain_data():
    r = quick_run(algorithm="heft", n_nodes=20, load_factor=1,
                  duration_hours=3, seed=2, task_range=(2, 5))
    # describe() output must be JSON-able (used by collect_experiments).
    import json

    json.dumps(r.config)
