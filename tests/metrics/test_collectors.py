"""Tests for metric collection (Eq. 2 ACT, Eq. 3 AE, throughput)."""

from __future__ import annotations

import pytest

from repro.metrics.collectors import MetricsCollector, RunResult, WorkflowRecord


def _done(wid="w", eft=500.0, submit=0.0, complete=1000.0):
    return WorkflowRecord(
        wid=wid, home_id=0, n_tasks=5, eft=eft, submit_time=submit,
        status="done", completion_time=complete,
    )


def _failed(wid="f"):
    return WorkflowRecord(
        wid=wid, home_id=0, n_tasks=5, eft=100.0, submit_time=0.0,
        status="failed", failure_reason="churn",
    )


class TestWorkflowRecord:
    def test_ct_and_efficiency(self):
        r = _done(eft=400.0, submit=100.0, complete=900.0)
        assert r.ct == 800.0
        assert r.efficiency == pytest.approx(0.5)

    def test_unfinished_record(self):
        r = _failed()
        assert r.ct is None
        assert r.efficiency is None


class TestCollector:
    def test_act_is_mean_ct(self):
        c = MetricsCollector()
        c.workflow_done(_done(wid="a", complete=1000.0))
        c.workflow_done(_done(wid="b", complete=3000.0))
        assert c.act == 2000.0
        assert c.n_done == 2

    def test_ae_is_mean_efficiency(self):
        c = MetricsCollector()
        c.workflow_done(_done(wid="a", eft=500.0, complete=1000.0))   # 0.5
        c.workflow_done(_done(wid="b", eft=250.0, complete=1000.0))   # 0.25
        assert c.ae == pytest.approx(0.375)

    def test_failed_excluded_from_act_ae(self):
        c = MetricsCollector()
        c.workflow_done(_done())
        c.workflow_failed(_failed())
        assert c.n_done == 1
        assert c.n_failed == 1
        assert c.act == 1000.0

    def test_empty_collector_zero_metrics(self):
        c = MetricsCollector()
        assert c.act == 0.0
        assert c.ae == 0.0

    def test_samples_capture_cumulative_state(self):
        c = MetricsCollector()
        c.sample(3600.0)
        c.workflow_done(_done())
        c.sample(7200.0, rss_mean=5.0, alive_nodes=10)
        assert c.samples[0].throughput == 0
        assert c.samples[1].throughput == 1
        assert c.samples[1].rss_mean == 5.0
        assert c.samples[1].alive_nodes == 10


class TestRunResult:
    def _result(self):
        c = MetricsCollector()
        c.workflow_done(_done())
        c.sample(3600.0)
        c.sample(7200.0)
        return RunResult(
            algorithm="dsmf", seed=1, n_nodes=10, n_workflows=4,
            total_time=7200.0, act=c.act, ae=c.ae, n_done=c.n_done,
            n_failed=0, events_executed=100, wall_seconds=0.5, rss_mean=3.0,
            records=c.records, samples=c.samples,
        )

    def test_series_in_hours(self):
        times, tp = self._result().series("throughput")
        assert times == [1.0, 2.0]
        assert tp == [1.0, 1.0]

    def test_completion_rate(self):
        assert self._result().completion_rate == 0.25

    def test_summary_mentions_key_numbers(self):
        s = self._result().summary()
        assert "dsmf" in s
        assert "1/4" in s
        assert "ACT" in s
