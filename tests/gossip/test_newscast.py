"""Tests for the Newscast membership overlay."""

from __future__ import annotations

import numpy as np

from repro.gossip.newscast import NewscastOverlay
from repro.sim.rng import spawn_generator


def _overlay(n=40, cache=None, seed=0):
    return NewscastOverlay(list(range(n)), spawn_generator(seed, "nc"), cache_size=cache)


def test_cache_size_default_is_logarithmic():
    ov = _overlay(64)
    assert ov.cache_size == max(8, 2 * int(np.ceil(np.log2(64))))


def test_bootstrap_fills_caches():
    ov = _overlay(40)
    for i in range(40):
        assert 0 < len(ov.cache[i]) <= ov.cache_size
        assert i not in ov.cache[i]


def test_cache_bounded_after_cycles():
    ov = _overlay(50)
    for c in range(20):
        ov.run_cycle(float(c))
    for i in range(50):
        assert len(ov.cache[i]) <= ov.cache_size
        assert i not in ov.cache[i]


def test_sample_returns_live_distinct_peers():
    ov = _overlay(40)
    for c in range(5):
        ov.run_cycle(float(c))
    s = ov.sample(0, 5)
    assert len(s) == len(set(s)) <= 5
    assert all(p in ov.live and p != 0 for p in s)


def test_sample_from_unknown_node_is_empty():
    ov = _overlay(10)
    assert ov.sample(999, 3) == []


def test_remove_node_stops_sampling_it():
    ov = _overlay(30, seed=3)
    ov.remove_node(7)
    for c in range(10):
        ov.run_cycle(float(c))
    for i in ov.live:
        assert 7 not in ov.sample(i, 30)


def test_add_node_rejoins_overlay():
    ov = _overlay(30, seed=4)
    ov.remove_node(5)
    for c in range(3):
        ov.run_cycle(float(c))
    ov.add_node(5, 3.0)
    assert 5 in ov.live
    assert len(ov.cache[5]) > 0
    # After a few cycles the rejoined node spreads back into caches.
    for c in range(4, 14):
        ov.run_cycle(float(c))
    known_by = sum(1 for i in ov.live if 5 in ov.cache.get(i, {}))
    assert known_by > 0


def test_overlay_connects_everyone_over_time():
    """Random shuffles mix descriptors: every node gets sampled eventually."""
    ov = _overlay(25, seed=5)
    seen: set[int] = set()
    for c in range(30):
        ov.run_cycle(float(c))
        for i in ov.live:
            seen.update(ov.sample(i, 3))
    assert seen == set(range(25))


def test_known_live_excludes_dead():
    ov = _overlay(20, seed=6)
    for c in range(5):
        ov.run_cycle(float(c))
    ov.remove_node(3)
    for i in ov.live:
        assert 3 not in ov.known_live(i)
