"""Tests for aggregation (averaging) gossip."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gossip.aggregation import AggregationGossip
from repro.gossip.newscast import NewscastOverlay
from repro.sim.rng import spawn_generator


def _setup(n=40, seed=0, restart=None):
    ov = NewscastOverlay(list(range(n)), spawn_generator(seed, "nc"))
    ag = AggregationGossip(ov, spawn_generator(seed, "ag"), restart_cycles=restart)
    return ov, ag


def _cycles(ov, ag, k):
    for c in range(k):
        ov.run_cycle(float(c))
        ag.run_cycle(float(c))


def test_estimates_converge_to_true_mean():
    ov, ag = _setup(50, seed=1)
    ag.register_metric("cap", lambda i: float(i % 5))
    _cycles(ov, ag, 25)
    true = ag.true_mean("cap")
    for i in range(50):
        assert ag.estimate("cap", i) == pytest.approx(true, rel=0.05)


def test_spread_decreases_monotonically_in_expectation():
    ov, ag = _setup(60, seed=2)
    ag.register_metric("x", lambda i: float(i))
    s0 = ag.estimate_spread("x")
    _cycles(ov, ag, 10)
    s1 = ag.estimate_spread("x")
    _cycles(ov, ag, 10)
    s2 = ag.estimate_spread("x")
    assert s1 < s0
    assert s2 < s1


def test_mean_is_invariant_under_cycles():
    """Push-pull averaging conserves the sum of estimates."""
    ov, ag = _setup(30, seed=3)
    ag.register_metric("x", lambda i: float(i))
    before = np.mean([ag.estimate("x", i) for i in range(30)])
    _cycles(ov, ag, 15)
    after = np.mean([ag.estimate("x", i) for i in range(30)])
    assert after == pytest.approx(before, rel=1e-9)


def test_multiple_metrics_tracked_independently():
    ov, ag = _setup(40, seed=4)
    ag.register_metric("a", lambda i: 10.0)
    ag.register_metric("b", lambda i: float(i % 2))
    _cycles(ov, ag, 20)
    assert ag.estimate("a", 0) == pytest.approx(10.0)
    assert ag.estimate("b", 0) == pytest.approx(0.5, rel=0.2)


def test_unknown_node_estimate_falls_back_to_truth():
    ov, ag = _setup(10, seed=5)
    ag.register_metric("x", lambda i: 7.0)
    assert ag.estimate("x", 999) == 7.0


def test_restart_reseeds_from_truth():
    values = {i: float(i) for i in range(20)}
    ov = NewscastOverlay(list(range(20)), spawn_generator(6, "nc"))
    ag = AggregationGossip(ov, spawn_generator(6, "ag"), restart_cycles=5)
    ag.register_metric("x", lambda i: values[i])
    _cycles(ov, ag, 4)
    # Change the ground truth; the epoch restart should pick it up.
    for i in values:
        values[i] = 100.0
    _cycles(ov, ag, 2)  # cycle 5 triggers the restart
    assert ag.estimate("x", 3) == pytest.approx(100.0)


def test_churn_add_remove_nodes():
    ov, ag = _setup(30, seed=7, restart=8)
    ag.register_metric("x", lambda i: float(i % 3))
    _cycles(ov, ag, 5)
    ov.remove_node(4)
    ag.remove_node(4)
    ov.add_node(4, 5.0)
    ag.add_node(4)
    _cycles(ov, ag, 10)
    assert ag.estimate("x", 4) == pytest.approx(ag.true_mean("x"), rel=0.3)


def test_empty_overlay_true_mean_zero():
    ov = NewscastOverlay([], spawn_generator(8, "nc"))
    ag = AggregationGossip(ov, spawn_generator(8, "ag"))
    ag.register_metric("x", lambda i: 1.0)
    assert ag.true_mean("x") == 0.0
    assert ag.estimate_spread("x") == 0.0
