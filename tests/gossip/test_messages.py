"""Tests for gossip message payloads."""

from __future__ import annotations


from repro.gossip.messages import (
    MESSAGE_HEADER_BYTES,
    MESSAGE_PAYLOAD_BYTES,
    NodeStateRecord,
)


def _rec(**kw):
    base = dict(node_id=1, capacity=4.0, total_load=100.0, timestamp=10.0, ttl=4)
    base.update(kw)
    return NodeStateRecord(**base)


def test_aged_decrements_ttl_only():
    rec = _rec()
    aged = rec.aged()
    assert aged.ttl == 3
    assert aged.node_id == rec.node_id
    assert aged.total_load == rec.total_load
    assert aged.timestamp == rec.timestamp


def test_aged_returns_new_record():
    rec = _rec()
    assert rec.aged() is not rec
    assert rec.ttl == 4  # frozen original untouched


def test_fresher_than_compares_timestamps():
    old = _rec(timestamp=5.0)
    new = _rec(timestamp=9.0)
    assert new.fresher_than(old)
    assert not old.fresher_than(new)
    assert not old.fresher_than(old)


def test_records_hashable_and_equal_by_value():
    assert _rec() == _rec()
    assert hash(_rec()) == hash(_rec())


def test_paper_message_size_accounting():
    """§IV.A sizes each message at ~100 bytes total."""
    assert MESSAGE_PAYLOAD_BYTES + MESSAGE_HEADER_BYTES == 100
