"""Tests for epidemic state dissemination."""

from __future__ import annotations


from repro.gossip.epidemic import EpidemicGossip
from repro.gossip.messages import NodeStateRecord
from repro.gossip.newscast import NewscastOverlay
from repro.sim.rng import spawn_generator


def _setup(n=40, loads=None, seed=0, **kw):
    ov = NewscastOverlay(list(range(n)), spawn_generator(seed, "nc"))
    loads = loads or {}

    def provider(i):
        return float(loads.get(i, 0.0)), float(1 + i % 5)

    ep = EpidemicGossip(ov, provider, spawn_generator(seed, "ep"), **kw)
    return ov, ep, loads


def _cycles(ov, ep, k, t0=0.0, dt=300.0):
    for c in range(k):
        now = t0 + c * dt
        ov.run_cycle(now)
        ep.run_cycle(now)


def test_rss_fills_up_to_capacity():
    ov, ep, _ = _setup(50)
    _cycles(ov, ep, 10)
    sizes = [len(ep.rss_view(i)) for i in range(50)]
    assert min(sizes) > 0
    assert max(sizes) <= ep.rss_capacity


def test_rss_never_contains_self():
    ov, ep, _ = _setup(30)
    _cycles(ov, ep, 8)
    for i in range(30):
        assert i not in ep.rss_view(i)


def test_records_carry_capacity_and_load():
    loads = {3: 1234.0}
    ov, ep, _ = _setup(20, loads=loads, seed=2)
    _cycles(ov, ep, 10)
    found = 0
    for i in range(20):
        rec = ep.rss_view(i).get(3)
        if rec is not None:
            found += 1
            assert rec.total_load == 1234.0
            assert rec.capacity == 1 + 3 % 5
    assert found > 0


def test_fresher_records_replace_staler():
    loads = {5: 0.0}
    ov, ep, _ = _setup(20, loads=loads, seed=3)
    _cycles(ov, ep, 6)
    loads[5] = 999.0
    _cycles(ov, ep, 8, t0=6 * 300.0)
    stale = [
        i
        for i in range(20)
        if (r := ep.rss_view(i).get(5)) is not None and r.total_load != 999.0
    ]
    # Everyone holding a record of node 5 should have converged to the new
    # load after several cycles.
    assert stale == []


def test_expiry_evicts_old_records():
    ov, ep, _ = _setup(20, seed=4, expiry=600.0)
    _cycles(ov, ep, 4)
    ov.remove_node(7)
    ep.remove_node(7)
    # After expiry horizon passes, node 7 vanishes from every RSS.
    _cycles(ov, ep, 6, t0=4 * 300.0)
    for i in ov.live:
        assert 7 not in ep.rss_view(i)


def test_apply_local_update_overwrites_load():
    ov, ep, _ = _setup(20, seed=5)
    _cycles(ov, ep, 6)
    home = next(i for i in range(20) if len(ep.rss_view(i)) > 0)
    target = next(iter(ep.rss_view(home)))
    ep.apply_local_update(home, target, 777.0, now=2000.0)
    assert ep.rss_view(home)[target].total_load == 777.0


def test_apply_local_update_ignores_unknown_target():
    ov, ep, _ = _setup(10, seed=6)
    ep.apply_local_update(0, 99, 5.0, now=0.0)  # no crash


def test_ttl_limits_forwarding():
    rec = NodeStateRecord(node_id=1, capacity=2.0, total_load=0.0, timestamp=0.0, ttl=1)
    assert rec.aged().ttl == 0


def test_mean_known_nodes_bounded_by_capacity():
    ov, ep, _ = _setup(60, seed=7)
    _cycles(ov, ep, 12)
    assert 0 < ep.mean_known_nodes() <= ep.rss_capacity


def test_rss_capacity_scales_with_log_n():
    _, ep_small, _ = _setup(16)
    _, ep_big, _ = _setup(256)
    assert ep_small.rss_capacity == 2 * 4
    assert ep_big.rss_capacity == 2 * 8


def test_message_counters_advance():
    ov, ep, _ = _setup(20, seed=8)
    _cycles(ov, ep, 3)
    assert ep.messages_sent > 0
    assert ep.records_shipped >= ep.messages_sent
