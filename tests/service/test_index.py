"""The persistent experiment index (``repro.service.index``): crash-safe
journalling, dedup-on-reload, and cache-dir rebuild."""

from __future__ import annotations

import json
import pickle

from repro.experiments.campaign import CampaignRunner, config_hash
from repro.service.index import ExperimentIndex, entry_from_result

H1 = "a" * 64
H2 = "b" * 64


def _entry(config_hash_: str, **extra) -> dict:
    return {"config_hash": config_hash_, "act": 1.0, **extra}


def test_record_and_reload(tmp_path):
    path = tmp_path / "experiments.jsonl"
    index = ExperimentIndex(path)
    assert len(index) == 0
    index.record(_entry(H1, label="first"))
    index.record(_entry(H2))
    index.close()

    reloaded = ExperimentIndex(path)
    assert len(reloaded) == 2
    assert H1 in reloaded and H2 in reloaded
    assert reloaded.skipped_lines == 0
    assert [e["config_hash"] for e in reloaded.entries()] == [H1, H2]


def test_latest_record_wins_but_order_is_first_seen(tmp_path):
    index = ExperimentIndex(tmp_path / "e.jsonl")
    index.record(_entry(H1, act=1.0))
    index.record(_entry(H2))
    index.record(_entry(H1, act=2.0))  # refresh, not duplicate
    entries = index.entries()
    assert [e["config_hash"] for e in entries] == [H1, H2]
    assert entries[0]["act"] == 2.0
    # The journal keeps all three lines; the listing dedupes.
    assert len((tmp_path / "e.jsonl").read_text().splitlines()) == 3
    reloaded = ExperimentIndex(tmp_path / "e.jsonl")
    assert len(reloaded) == 2
    assert reloaded.entries()[0]["act"] == 2.0


def test_corrupt_lines_are_skipped(tmp_path):
    path = tmp_path / "e.jsonl"
    lines = [
        json.dumps(_entry(H1)),
        "{torn garbage",
        json.dumps(["not", "a", "dict"]),
        json.dumps({"no_hash": True}),
        json.dumps(_entry(H2)),
    ]
    path.write_text("\n".join(lines) + "\n")
    index = ExperimentIndex(path)
    assert len(index) == 2
    assert index.skipped_lines == 3


def test_torn_tail_is_terminated_before_next_append(tmp_path):
    """A crash mid-write leaves a partial line with no newline; the next
    record must start on its own line instead of corrupting itself."""
    path = tmp_path / "e.jsonl"
    path.write_text(json.dumps(_entry(H1)) + "\n" + '{"config_hash": "cafe')
    index = ExperimentIndex(path)
    assert len(index) == 1
    assert index.skipped_lines == 1
    index.record(_entry(H2))
    index.close()

    reloaded = ExperimentIndex(path)
    assert len(reloaded) == 2  # the new record survived the torn tail
    assert reloaded.skipped_lines == 1


def test_entry_from_result_summarizes(tiny_run):
    config, result = tiny_run
    key = config_hash(config)
    entry = entry_from_result(key, result, label="dsmf@s5", campaign_id="c1",
                              source="service", recorded_at=123.0)
    assert entry["config_hash"] == key
    assert entry["algorithm"] == "dsmf"
    assert entry["seed"] == 5
    assert entry["n_nodes"] == 24
    assert entry["recorded_at"] == 123.0
    assert json.dumps(entry)  # journal-safe


def test_rebuild_from_cache(tmp_path, tiny_run):
    config, result = tiny_run
    cache_dir = tmp_path / "cache"
    key = config_hash(config)
    CampaignRunner(cache_dir=cache_dir)._cache_store(key, result)
    # Foreign files must not take the rebuild down (or be indexed).
    (cache_dir / "notahash.pkl").write_bytes(pickle.dumps({"foreign": True}))
    (cache_dir / f"{H1}.pkl").write_bytes(b"corrupt pickle")
    (cache_dir / f"{H2}.pkl").write_bytes(pickle.dumps("not a RunResult"))

    index = ExperimentIndex(tmp_path / "e.jsonl")
    assert index.rebuild_from_cache(cache_dir) == 1
    [entry] = index.entries()
    assert entry["config_hash"] == key
    assert entry["source"] == "cache-rebuild"
    assert entry["from_cache"] is True
    # Idempotent: already-known hashes are not re-added.
    assert index.rebuild_from_cache(cache_dir) == 0
    assert index.rebuild_from_cache(tmp_path / "missing") == 0
