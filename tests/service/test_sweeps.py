"""End-to-end and validation tests for ``POST /sweeps``.

The live-server tests inject an analytic runner (completion rate as a
function of ``workload_scale``) so a full adaptive search finishes in
milliseconds while exercising the real queue/HTTP/report plumbing.
"""

from __future__ import annotations

import threading

import pytest

from repro.experiments.sweep import validate_envelope
from repro.metrics.collectors import RunResult
from repro.service.app import build_server
from repro.service.client import ServiceClient, ServiceError
from repro.service.schemas import ManifestError, sweep_request

#: dsmf saturates at 1.5x nominal, heft below nominal — both search
#: directions are exercised in one sweep.
CAPACITY = {"dsmf": 1.5, "dheft": 1.5, "heft": 0.6, "smf": 0.6}

SWEEP_MANIFEST = {
    "scenarios": ["paper-fig4"],
    "algorithms": ["dsmf", "heft"],
    "seeds": [1],
    "overrides": {"n_nodes": 20, "load_factor": 2, "total_time": 3600.0},
    "resolution": 0.5,
    "max_scale": 4.0,
}


def analytic_runner(config) -> RunResult:
    cap = CAPACITY[config.algorithm]
    scale = config.workload_scale
    rate = 1.0 if scale <= cap else max(0.0, 1.0 - (scale - cap))
    n_workflows = max(1, round(config.load_factor * config.n_nodes * scale))
    n_done = round(rate * n_workflows)
    return RunResult(
        algorithm=config.algorithm, seed=config.seed, n_nodes=config.n_nodes,
        n_workflows=n_workflows, total_time=config.total_time,
        act=900.0, ae=rate, n_done=n_done, n_failed=n_workflows - n_done,
        events_executed=5, wall_seconds=0.0, rss_mean=1.0,
        records=[], samples=[],
    )


@pytest.fixture
def sweep_service(tmp_path):
    server = build_server(
        port=0, cache_dir=tmp_path / "cache", jobs=1, runner=analytic_runner
    )
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=15.0)
    try:
        yield server, client
    finally:
        server.shutdown()
        server.server_close()
        server.state.close()
        thread.join(5)


def test_submit_poll_report_and_cache_replay(sweep_service):
    _, client = sweep_service
    record = client.submit_sweep(SWEEP_MANIFEST)
    assert record["kind"] == "sweep"
    assert record["status"] in ("queued", "running")
    assert record["url"] == f"/campaigns/{record['id']}"
    assert record["progress"]["total"] == 0  # probes are chosen adaptively

    record = client.wait(record["id"], timeout=60)
    assert record["status"] == "done"
    assert record["error"] is None
    assert validate_envelope(record["report"]) == []
    cells = record["report"]["scenarios"][0]["heuristics"]
    assert cells["dsmf"]["saturation_scale"] > 1.0  # bisected upward
    assert 0.0 < cells["heft"]["saturation_scale"] < 1.0  # bisected downward
    # Every probe surfaced as a completed run with its real config hash.
    assert record["runs"] and all(r["status"] == "done" for r in record["runs"])
    assert record["progress"]["completed"] == len(record["runs"])
    assert all(r["label"].startswith("paper-fig4/") for r in record["runs"])
    result = client.result(record["runs"][0]["config_hash"])
    assert result["result_digest"]

    # Resubmission replays every probe from the shared cache.
    replay = client.wait(client.submit_sweep(SWEEP_MANIFEST)["id"], timeout=30)
    assert replay["status"] == "done"
    assert all(r["from_cache"] for r in replay["runs"])
    # Identical search path and conclusions; only cache provenance differs.
    for alg in ("dsmf", "heft"):
        first = record["report"]["scenarios"][0]["heuristics"][alg]
        second = replay["report"]["scenarios"][0]["heuristics"][alg]
        assert second["saturation_scale"] == first["saturation_scale"]
        assert [p["scale"] for p in second["probes"]] == [
            p["scale"] for p in first["probes"]
        ]
        assert second["n_cached"] == second["n_probes"]

    # Both appear in the campaign listing, tagged by kind.
    kinds = {c["id"]: c["kind"] for c in client.campaigns()}
    assert kinds == {record["id"]: "sweep", replay["id"]: "sweep"}


def test_sweep_and_campaign_share_one_queue(sweep_service):
    _, client = sweep_service
    campaign = client.submit(
        {"scenario": "paper-fig4", "algorithms": ["dsmf"], "seeds": [1],
         "overrides": SWEEP_MANIFEST["overrides"]}
    )
    sweep = client.submit_sweep(SWEEP_MANIFEST)
    assert campaign["kind"] == "campaign"
    assert client.wait(campaign["id"], timeout=30)["status"] == "done"
    done = client.wait(sweep["id"], timeout=60)
    assert done["status"] == "done"
    # The campaign's x1 cell and the sweep's x1 probe share one hash, so
    # the sweep's 1.0 probe was served from cache.
    x1 = next(r for r in done["runs"] if "@x1#" in r["label"])
    assert x1["from_cache"] is True


@pytest.mark.parametrize(
    "mutate, code",
    [
        (lambda m: m.pop("scenarios"), "invalid-scenarios"),
        (lambda m: m.update(scenarios=[]), "invalid-scenarios"),
        (lambda m: m.update(scenarios=["nope"]), "unknown-scenario"),
        (lambda m: m.update(scenarios=["paper-fig4", "paper-fig4"]), "invalid-scenarios"),
        (lambda m: m.update(scenarios=["gwa-replay-small"]), "unsweepable-scenario"),
        (lambda m: m.update(scenario="paper-fig4"), "unknown-field"),
        (lambda m: m.update(threshold="high"), "invalid-criterion"),
        (lambda m: m.update(threshold=0.0), "invalid-criterion"),
        (lambda m: m.update(max_scale=0.25), "invalid-criterion"),
        (lambda m: m.update(algorithms=["nope"]), "unknown-algorithm"),
        (lambda m: m.update(algorithms=["dsmf", "dsmf"]), "invalid-algorithms"),
        (lambda m: m.update(seeds=[]), "invalid-seeds"),
        (lambda m: m.update(overrides={"algorithm": "heft"}), "invalid-overrides"),
        (lambda m: m.update(overrides={"n_nodes": -4}), "invalid-overrides"),
    ],
)
def test_sweep_request_validation(mutate, code):
    manifest = {k: (list(v) if isinstance(v, list) else v)
                for k, v in SWEEP_MANIFEST.items()}
    manifest["overrides"] = dict(SWEEP_MANIFEST["overrides"])
    mutate(manifest)
    with pytest.raises(ManifestError) as excinfo:
        sweep_request(manifest)
    assert excinfo.value.code == code


def test_sweep_request_applies_defaults():
    request = sweep_request({"scenarios": ["paper-fig4"]})
    assert request["algorithms"] == ["dsmf", "dheft", "heft", "smf"]
    assert request["seeds"] == [1]
    assert request["threshold"] == 0.95
    assert request["resolution"] == 0.25
    assert request["max_scale"] == 8.0


def test_http_rejections_are_structured(sweep_service):
    _, client = sweep_service
    with pytest.raises(ServiceError) as excinfo:
        client.submit_sweep({"scenarios": ["trace-replay"]})
    assert excinfo.value.status == 400
    assert excinfo.value.code == "unsweepable-scenario"
    with pytest.raises(ServiceError) as excinfo:
        client.submit_sweep({"scenarios": ["paper-fig4"], "bogus": 1})
    assert excinfo.value.code == "unknown-field"
