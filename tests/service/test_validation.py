"""HTTP-level validation: every malformed submission yields a structured
4xx — never a 500, and never a wedged worker (proved by running a valid
campaign to completion afterwards)."""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.service.client import ServiceError
from repro.service.schemas import MAX_SEEDS



def _post_raw(client, body: bytes, path: str = "/campaigns"):
    """POST arbitrary bytes (the client's submit() always sends valid JSON)."""
    request = urllib.request.Request(
        client.base_url + path, data=body, method="POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=10.0) as response:
        return response.status, json.loads(response.read())


def _expect_error(client, manifest, status: int, code: str, field=None):
    with pytest.raises(ServiceError) as exc_info:
        client.submit(manifest)
    err = exc_info.value
    assert (err.status, err.code) == (status, code), err
    return err


def test_malformed_json_body_is_400(service):
    _, client = service
    with pytest.raises(urllib.error.HTTPError) as exc_info:
        _post_raw(client, b"{definitely not json")
    assert exc_info.value.code == 400
    assert json.loads(exc_info.value.read())["error"]["code"] == "malformed-json"


def test_non_object_manifest_is_400(service):
    _, client = service
    _expect_error(client, [1, 2, 3], 400, "malformed-manifest")


def test_unknown_scenario_is_400(service):
    _, client = service
    _expect_error(client, {"scenario": "nope"}, 400, "unknown-scenario")


def test_unknown_algorithm_is_400(service):
    _, client = service
    _expect_error(client, {"algorithms": ["bogus"]}, 400, "unknown-algorithm")


def test_unknown_manifest_field_is_400(service):
    _, client = service
    _expect_error(client, {"algos": ["dsmf"]}, 400, "unknown-field")


def test_bad_override_type_is_400(service):
    _, client = service
    _expect_error(client, {"overrides": {"n_nodes": "lots"}}, 400, "invalid-overrides")


def test_oversized_seed_list_is_400(service):
    _, client = service
    _expect_error(
        client, {"seeds": list(range(MAX_SEEDS + 1))}, 400, "too-many-seeds"
    )


def test_oversized_body_is_413(service):
    _, client = service
    manifest = {"overrides": {"note": "x" * (300 * 1024)}}
    _expect_error(client, manifest, 413, "body-too-large")


def test_missing_content_length_is_411(service):
    _, client = service
    # urllib always sets Content-Length for bytes bodies, so drive the
    # socket directly to send a length-less POST.
    import http.client
    host, port = client.base_url.rsplit(":", 1)
    conn = http.client.HTTPConnection(host.replace("http://", ""), int(port), timeout=10)
    try:
        conn.putrequest("POST", "/campaigns", skip_host=False)
        conn.putheader("Content-Type", "application/json")
        conn.endheaders()
        response = conn.getresponse()
        assert response.status in (411, 400)
    finally:
        conn.close()


def test_unknown_routes_are_404(service):
    _, client = service
    for method, path in (("GET", "/nope"), ("POST", "/results/abc")):
        with pytest.raises(ServiceError) as exc_info:
            client._request(method, path, payload={} if method == "POST" else None)
        assert exc_info.value.status == 404


def test_result_hash_validation(service):
    _, client = service
    with pytest.raises(ServiceError) as exc_info:
        client.result("ZZZ")
    assert (exc_info.value.status, exc_info.value.code) == (400, "invalid-hash")
    with pytest.raises(ServiceError) as exc_info:
        client.result("c" * 64)
    assert (exc_info.value.status, exc_info.value.code) == (404, "not-found")


def test_worker_survives_a_barrage_of_bad_manifests(service, tiny_manifest):
    """The acceptance criterion: after every kind of rejection above, a
    valid submission still runs to completion — rejections never reach
    (or wedge) the worker."""
    _, client = service
    bad_manifests = [
        [1],
        {"scenario": "nope"},
        {"algorithms": ["bogus"]},
        {"seeds": list(range(MAX_SEEDS + 1))},
        {"overrides": {"n_nodes": "lots"}},
        {"unknown_field": 1},
    ]
    for manifest in bad_manifests:
        with pytest.raises(ServiceError):
            client.submit(manifest)
    assert client.campaigns() == []  # nothing invalid was enqueued

    manifest = tiny_manifest
    record = client.wait(client.submit(manifest)["id"], timeout=60)
    assert record["status"] == "done"
    assert record["runs"][0]["n_done"] > 0
