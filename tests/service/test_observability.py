"""Service observability: ``GET /metrics`` and campaign long-polling."""

from __future__ import annotations

import threading
import time

import pytest

from repro.obs.telemetry import PROMETHEUS_CONTENT_TYPE, parse_prometheus
from repro.service.app import MAX_WAIT_SECONDS, ServiceMetrics, _route_label
from repro.service.client import ServiceError


class TestMetricsEndpoint:
    def test_scrape_parses_and_counts_requests(self, service):
        _, client = service
        client.health()
        client.health()
        try:
            client.campaign("c999999")
        except ServiceError:
            pass
        samples = parse_prometheus(client.metrics())  # parse = format assert
        assert samples[
            'repro_http_requests_total{method="GET",route="/healthz",status="200"}'
        ] == 2
        assert samples[
            'repro_http_requests_total{method="GET",route="/campaigns/{id}",status="404"}'
        ] == 1
        assert samples['repro_http_request_seconds_count{route="/healthz"}'] == 2
        assert samples['repro_http_request_seconds_sum{route="/healthz"}'] >= 0
        assert samples['repro_service_campaigns{state="done"}'] == 0
        assert samples["repro_service_experiments"] == 0

    def test_content_type(self, service):
        import urllib.request

        _, client = service
        with urllib.request.urlopen(client.base_url + "/metrics", timeout=10) as resp:
            assert resp.headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE

    def test_campaign_gauge_tracks_completion(self, service, tiny_manifest):
        _, client = service
        record = client.wait(client.submit(tiny_manifest)["id"], timeout=60)
        assert record["status"] == "done"
        samples = parse_prometheus(client.metrics())
        assert samples['repro_service_campaigns{state="done"}'] == 1
        assert samples["repro_service_experiments"] == 1

    def test_result_json_carries_telemetry(self, service, tiny_manifest):
        _, client = service
        tiny_manifest["overrides"]["telemetry"] = True
        record = client.wait(client.submit(tiny_manifest)["id"], timeout=60)
        result = client.result(record["runs"][0]["config_hash"])
        assert result["telemetry"] is not None
        assert result["telemetry"]["counters"]["sim.events_executed"] > 0

    def test_result_json_telemetry_null_when_disabled(self, service, tiny_manifest):
        _, client = service
        record = client.wait(client.submit(tiny_manifest)["id"], timeout=60)
        result = client.result(record["runs"][0]["config_hash"])
        assert result["telemetry"] is None


class TestServiceMetricsUnit:
    def test_observe_accumulates(self):
        m = ServiceMetrics()
        m.observe("GET", "/healthz", 200, 0.01)
        m.observe("GET", "/healthz", 200, 0.02)
        m.observe("POST", "/campaigns", 400, 0.005)
        requests, count_fam, sum_fam = m.families()
        by_labels = {tuple(sorted(labels.items())): v for labels, v in requests[3]}
        key = tuple(sorted({"method": "GET", "route": "/healthz", "status": "200"}.items()))
        assert by_labels[key] == 2
        [healthz_sum] = [v for labels, v in sum_fam[3] if labels["route"] == "/healthz"]
        assert healthz_sum == pytest.approx(0.03)

    def test_route_labels_are_bounded(self):
        assert _route_label("GET", "/") == "/healthz"
        assert _route_label("GET", "/campaigns/c000001") == "/campaigns/{id}"
        assert _route_label("GET", "/results/" + "a" * 64) == "/results/{hash}"
        assert _route_label("GET", "/metrics") == "/metrics"
        assert _route_label("GET", "/nope/deeper") == "(unmatched)"


class TestLongPoll:
    def test_version_bumps_with_progress(self, service, tiny_manifest):
        _, client = service
        record = client.submit(tiny_manifest)
        assert record["version"] == 0
        done = client.wait(record["id"], timeout=60)
        assert done["version"] > 0

    def test_terminal_campaign_returns_immediately(self, service, tiny_manifest):
        _, client = service
        record = client.wait(client.submit(tiny_manifest)["id"], timeout=60)
        t0 = time.monotonic()
        held = client.campaign(record["id"], wait=10.0)
        assert time.monotonic() - t0 < 5.0  # no park on a done campaign
        assert held["status"] == "done"

    def test_wait_returns_early_on_state_change(self, service):
        """A parked long-poll wakes the moment the queue mutates state."""
        server, client = service
        # Submit through the queue with the worker not yet processing —
        # easiest deterministic hook: park a GET, then bump the state
        # from this thread via the internal API.
        record = client.submit(
            {"algorithms": ["dsmf"], "seeds": [9],
             "overrides": {"n_nodes": 16, "load_factor": 1,
                           "total_time": 3600.0, "task_range": [2, 4]}}
        )
        # By the time we long-poll the campaign may be anywhere between
        # queued and done; the guarantee under test is just that the call
        # returns well before the full wait whenever a change/terminal
        # state happens — which this tiny run reaches in << 8s.
        t0 = time.monotonic()
        held = client.campaign(record["id"], wait=8.0)
        elapsed = time.monotonic() - t0
        assert elapsed < 8.0
        assert held["version"] >= record["version"]
        client.wait(record["id"], timeout=60)  # drain

    def test_unknown_id_404_even_with_wait(self, service):
        _, client = service
        with pytest.raises(ServiceError) as err:
            client.campaign("c999999", wait=5.0)
        assert err.value.status == 404

    def test_invalid_wait_is_400(self, service, tiny_manifest):
        import urllib.error
        import urllib.request

        _, client = service
        record = client.submit(tiny_manifest)
        for bad in ("abc", "-1"):
            try:
                urllib.request.urlopen(
                    f"{client.base_url}/campaigns/{record['id']}?wait={bad}",
                    timeout=10,
                )
            except urllib.error.HTTPError as exc:
                assert exc.code == 400
            else:
                raise AssertionError(f"wait={bad} should be rejected")
        client.wait(record["id"], timeout=60)  # drain

    def test_wait_capped_at_max(self, service, tiny_manifest):
        """An absurd wait is clamped server-side, not honored."""
        _, client = service
        record = client.wait(client.submit(tiny_manifest)["id"], timeout=60)
        t0 = time.monotonic()
        client.campaign(record["id"], wait=MAX_WAIT_SECONDS * 100)
        assert time.monotonic() - t0 < MAX_WAIT_SECONDS  # terminal: instant

    def test_queue_get_long_poll_unit(self, service):
        """Direct CampaignQueue.get(wait=) returns on a version bump."""
        server, _ = service
        queue = server.state.queue
        record = queue.submit(
            {"algorithms": ["dsmf"], "seeds": [11],
             "overrides": {"n_nodes": 16, "load_factor": 1,
                           "total_time": 3600.0, "task_range": [2, 4]}}
        )
        cid = record["id"]

        results = {}

        def poller():
            results["record"] = queue.get(cid, wait=20.0)

        thread = threading.Thread(target=poller)
        thread.start()
        thread.join(25.0)
        assert not thread.is_alive()
        # The worker drove the campaign through at least one transition
        # while the poller was parked.
        assert results["record"]["version"] > record["version"] or (
            results["record"]["status"] in ("done", "failed")
        )
