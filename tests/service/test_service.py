"""End-to-end tests against a live ``repro serve`` stack: submit, poll,
cache replay, result fetch, index persistence across restarts."""

from __future__ import annotations


from repro.experiments.campaign import result_digest
from repro.service.app import ServiceState
from repro.service.client import ServiceClient



def test_healthz_and_root(service):
    _, client = service
    for record in (client.health(), client._request("GET", "/")):
        assert record["status"] == "ok"
        assert record["campaigns"] == 0
        assert record["experiments"] == 0


def test_submit_poll_fetch_and_cache_replay(service, tiny_manifest):
    server, client = service
    record = client.submit(tiny_manifest)
    assert record["status"] in ("queued", "running")
    assert record["url"] == f"/campaigns/{record['id']}"
    assert record["progress"] == {"completed": 0, "total": 1}

    record = client.wait(record["id"], timeout=60)
    assert record["status"] == "done"
    assert record["error"] is None
    [run] = record["runs"]
    assert run["status"] == "done"
    assert run["from_cache"] is False
    assert run["n_done"] > 0  # 6 simulated hours finish real workflows
    assert run["wall_seconds"] > 0

    # The cached result is served by hash, digest included.
    result = client.result(run["config_hash"])
    assert result["config_hash"] == run["config_hash"]
    assert result["act"] == run["act"]
    assert result["result_digest"]

    # Resubmitting the identical manifest replays fully from cache.
    replay = client.wait(client.submit(tiny_manifest)["id"], timeout=30)
    assert replay["status"] == "done"
    assert replay["n_cached"] == 1
    assert replay["runs"][0]["from_cache"] is True
    assert replay["runs"][0]["config_hash"] == run["config_hash"]
    assert client.result(run["config_hash"])["result_digest"] == result["result_digest"]

    # Both campaigns are listed; the index has exactly one distinct hash.
    assert [c["id"] for c in client.campaigns()] == [record["id"], replay["id"]]
    [entry] = client.experiments()
    assert entry["config_hash"] == run["config_hash"]
    assert entry["source"] == "service"


def test_multi_cell_campaign_progress_shape(service, tiny_manifest):
    _, client = service
    manifest = tiny_manifest
    manifest["seeds"] = [5, 6]
    record = client.wait(client.submit(manifest)["id"], timeout=120)
    assert record["status"] == "done"
    assert record["progress"] == {"completed": 2, "total": 2}
    assert len({r["config_hash"] for r in record["runs"]}) == 2
    assert len(client.experiments()) == 2


def test_unknown_campaign_404(service):
    _, client = service
    from repro.service.client import ServiceError
    try:
        client.campaign("c999999")
    except ServiceError as exc:
        assert exc.status == 404 and exc.code == "not-found"
    else:
        raise AssertionError("expected a 404")


def test_index_survives_restart_with_and_without_journal(service, tmp_path, tiny_manifest):
    server, client = service
    record = client.wait(client.submit(tiny_manifest)["id"], timeout=60)
    run_hash = record["runs"][0]["config_hash"]
    cache_dir = server.state.cache_dir
    index_path = server.state.index.path

    # Restart: a fresh ServiceState on the same dirs lists the prior run.
    restarted = ServiceState(cache_dir=cache_dir, index_path=index_path)
    try:
        assert restarted.index_rebuilt == 0  # journal already knew it
        assert [e["config_hash"] for e in restarted.index.entries()] == [run_hash]
    finally:
        restarted.close(timeout=5)

    # Even with the journal lost, the cache rebuild recovers the entry.
    recovered = ServiceState(cache_dir=cache_dir, index_path=tmp_path / "fresh.jsonl")
    try:
        assert recovered.index_rebuilt == 1
        [entry] = recovered.index.entries()
        assert entry["config_hash"] == run_hash
        assert entry["source"] == "cache-rebuild"
    finally:
        recovered.close(timeout=5)


def test_served_result_digest_matches_local_pickle(service, tiny_manifest):
    """The JSON the service hands out fingerprints the same simulated
    outcome as the pickled cache entry."""
    server, client = service
    record = client.wait(client.submit(tiny_manifest)["id"], timeout=60)
    run_hash = record["runs"][0]["config_hash"]
    from repro.experiments.campaign import load_cached_result

    local = load_cached_result(run_hash, cache_dir=server.state.cache_dir)
    assert local is not None
    assert client.result(run_hash)["result_digest"] == result_digest(local)


def test_client_wait_times_out_cleanly(service, tiny_manifest):
    _, client = service
    record = client.submit(tiny_manifest)
    probe = ServiceClient(client.base_url, timeout=5.0)
    try:
        probe.wait(record["id"], timeout=0.0, poll=0.01)
    except TimeoutError as exc:
        assert record["id"] in str(exc)
    else:  # pragma: no cover - only on an implausibly instant run
        pass
    client.wait(record["id"], timeout=60)  # leave the queue drained
