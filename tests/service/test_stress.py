"""Concurrent-submission stress: N client threads with overlapping
manifests must coalesce to exactly one simulation per distinct config
hash (the service's core guarantee — serial campaign worker + shared
content-addressed cache + within-campaign dedup)."""

from __future__ import annotations

import threading

import pytest

from repro.api import run_experiment
from repro.experiments.campaign import config_hash
from repro.service.app import build_server
from repro.service.client import ServiceClient
from repro.service.schemas import manifest_specs

N_CLIENTS = 8

#: Each client's manifest shares seeds {1, 2} with everyone and adds one
#: from {3..6} — heavy overlap, 6 distinct configs across 24 submitted runs.
STRESS_OVERRIDES = {"n_nodes": 16, "load_factor": 1, "total_time": 2 * 3600.0}


def _manifest(i: int) -> dict:
    return {
        "algorithms": ["dsmf"],
        "seeds": [1, 2, 3 + i % 4],
        "overrides": STRESS_OVERRIDES,
    }


@pytest.fixture
def counting_service(tmp_path):
    """A live server whose injected runner counts real executions."""
    calls: list[str] = []
    lock = threading.Lock()

    def counting_runner(config):
        with lock:
            calls.append(config_hash(config))
        return run_experiment(config)

    server = build_server(
        port=0, cache_dir=tmp_path / "cache", jobs=1, runner=counting_runner
    )
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    try:
        yield ServiceClient(f"http://{host}:{port}", timeout=15.0), calls
    finally:
        server.shutdown()
        server.server_close()
        server.state.close()
        thread.join(5)


def test_concurrent_overlapping_submissions_coalesce(counting_service):
    client, calls = counting_service
    records: dict[int, dict] = {}
    errors: list[BaseException] = []

    def submit_and_wait(i: int) -> None:
        try:
            record = client.submit(_manifest(i))
            records[i] = client.wait(record["id"], timeout=120)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [
        threading.Thread(target=submit_and_wait, args=(i,)) for i in range(N_CLIENTS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join(180)
    assert not errors, errors
    assert len(records) == N_CLIENTS

    expected_hashes = {
        config_hash(spec.config)
        for i in range(N_CLIENTS)
        for spec in manifest_specs(_manifest(i))
    }
    assert len(expected_hashes) == 6

    # The guarantee: every distinct config simulated exactly once, no
    # matter how the 8 clients' campaigns interleaved.
    assert sorted(calls) == sorted(expected_hashes)

    # Every campaign finished, and every submitted cell has a result.
    for record in records.values():
        assert record["status"] == "done"
        assert record["progress"]["completed"] == record["progress"]["total"] == 3
        for run in record["runs"]:
            assert run["status"] == "done"
            assert client.result(run["config_hash"])["result_digest"]

    # The index lists exactly the distinct hashes (no duplicates).
    index_hashes = {e["config_hash"] for e in client.experiments()}
    assert index_hashes == expected_hashes
    assert len(client.experiments()) == 6
