"""Manifest validation (``repro.service.schemas``) — every rejection is a
structured :class:`ManifestError`, never a bare exception."""

from __future__ import annotations

import json

import pytest

from repro.experiments.campaign import config_hash, result_digest
from repro.service.schemas import (
    MAX_ALGORITHMS,
    MAX_BODY_BYTES,
    MAX_SEEDS,
    ManifestError,
    manifest_specs,
    parse_manifest,
    result_to_dict,
)


def _error(callable_, *args):
    with pytest.raises(ManifestError) as exc_info:
        callable_(*args)
    return exc_info.value


# ----------------------------------------------------------- parse_manifest
def test_parse_manifest_good_body():
    manifest = parse_manifest(b'{"algorithms": ["dsmf"], "seeds": [1]}')
    assert manifest == {"algorithms": ["dsmf"], "seeds": [1]}


def test_parse_manifest_rejects_oversized_body():
    err = _error(parse_manifest, b"x" * (MAX_BODY_BYTES + 1))
    assert err.code == "body-too-large"


def test_parse_manifest_rejects_malformed_json():
    err = _error(parse_manifest, b"{not json")
    assert err.code == "malformed-json"
    err = _error(parse_manifest, b"\xff\xfe")
    assert err.code == "malformed-json"


def test_parse_manifest_rejects_non_object():
    err = _error(parse_manifest, b"[1, 2, 3]")
    assert err.code == "malformed-manifest"
    assert "list" in err.message


# ------------------------------------------------------------ manifest_specs
def test_manifest_specs_full_grid():
    specs = manifest_specs({
        "scenario": "poisson-steady",
        "algorithms": ["dsmf", "dheft"],
        "seeds": [1, 2, 3],
        "overrides": {"n_nodes": 40},
    })
    assert len(specs) == 6
    for spec in specs:
        assert spec.config.n_nodes == 40  # explicit override wins
        assert spec.config.scenario == "poisson-steady"
    assert {s.config.algorithm for s in specs} == {"dsmf", "dheft"}
    assert {s.config.seed for s in specs} == {1, 2, 3}


def test_manifest_specs_defaults():
    [spec] = manifest_specs({})
    assert spec.config.algorithm == "dsmf"
    assert spec.config.seed == 1


def test_manifest_specs_unknown_field():
    err = _error(manifest_specs, {"algos": ["dsmf"]})
    assert err.code == "unknown-field"
    assert err.field == "algos"


def test_manifest_specs_non_mapping():
    assert _error(manifest_specs, ["dsmf"]).code == "malformed-manifest"


@pytest.mark.parametrize("bad", ["dsmf", [], [1], None])
def test_manifest_specs_invalid_algorithms(bad):
    err = _error(manifest_specs, {"algorithms": bad})
    assert err.code == "invalid-algorithms"
    assert err.field == "algorithms"


def test_manifest_specs_too_many_algorithms():
    err = _error(manifest_specs, {"algorithms": ["dsmf"] * (MAX_ALGORITHMS + 1)})
    assert err.code == "too-many-algorithms"


def test_manifest_specs_unknown_algorithm():
    err = _error(manifest_specs, {"algorithms": ["dsmf", "bogus"]})
    assert err.code == "unknown-algorithm"
    assert "bogus" in err.message


@pytest.mark.parametrize("bad", [5, [], ["1"], [1.5], [True], [-1]])
def test_manifest_specs_invalid_seeds(bad):
    err = _error(manifest_specs, {"seeds": bad})
    assert err.code == "invalid-seeds"
    assert err.field == "seeds"


def test_manifest_specs_oversized_seed_list():
    err = _error(manifest_specs, {"seeds": list(range(MAX_SEEDS + 1))})
    assert err.code == "too-many-seeds"
    assert "oversized" in err.message


def test_manifest_specs_unknown_scenario():
    err = _error(manifest_specs, {"scenario": "nope"})
    assert err.code == "unknown-scenario"
    assert err.field == "scenario"


@pytest.mark.parametrize("bad", ["nope", [], {"1": 2, 3: 4}])
def test_manifest_specs_invalid_overrides_shape(bad):
    err = _error(manifest_specs, {"overrides": bad})
    assert err.code == "invalid-overrides"


@pytest.mark.parametrize("key", ["algorithm", "seed", "scenario"])
def test_manifest_specs_reserved_override(key):
    err = _error(manifest_specs, {"overrides": {key: "x"}})
    assert err.code == "invalid-overrides"
    assert "reserved" in err.message


def test_manifest_specs_unknown_override_field():
    err = _error(manifest_specs, {"overrides": {"warp_factor": 9}})
    assert err.code == "invalid-overrides"


def test_manifest_specs_bad_override_type():
    err = _error(manifest_specs, {"overrides": {"n_nodes": "lots"}})
    assert err.code == "invalid-overrides"
    assert err.field == "overrides"


def test_manifest_specs_bad_override_value():
    err = _error(manifest_specs, {"overrides": {"n_nodes": -3}})
    assert err.code == "invalid-overrides"


def test_manifest_error_to_dict():
    err = _error(manifest_specs, {"scenario": "nope"})
    body = err.to_dict()
    assert body["error"]["code"] == "unknown-scenario"
    assert body["error"]["field"] == "scenario"
    assert json.dumps(body)  # JSON-safe as-is


# ------------------------------------------------------------ result_to_dict
def test_result_to_dict_round_trips_as_json(tiny_run):
    config, result = tiny_run
    payload = json.loads(json.dumps(result_to_dict(result)))
    assert payload["algorithm"] == "dsmf"
    assert payload["seed"] == 5
    assert payload["n_nodes"] == 24
    assert payload["result_digest"] == result_digest(result)
    assert payload["n_done"] == len(
        [r for r in payload["records"] if r["status"] == "done"]
    )
    assert payload["samples"], "hourly samples missing"
    # The embedded config hashes identically to the live one.
    assert config_hash(payload["config"]) == config_hash(config)
