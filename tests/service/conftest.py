"""Shared fixtures for the service-layer tests.

``service`` boots the real threaded HTTP server on an ephemeral port with
an isolated cache/index under ``tmp_path`` — the same stack ``repro
serve`` runs, minus the process boundary — plus a :class:`ServiceClient`
against it.  Simulation payloads reuse the suite-wide tiny scale (24
nodes, 6 simulated hours) so every end-to-end test stays sub-second.
"""

from __future__ import annotations

import threading

import pytest

from repro.experiments.config import ExperimentConfig
from repro.service.app import build_server
from repro.service.client import ServiceClient

#: Manifest-shaped spelling of the suite's ``tiny_config`` fixture.
TINY_OVERRIDES = {
    "n_nodes": 24,
    "load_factor": 1,
    "total_time": 6 * 3600.0,
    "task_range": [2, 10],
}
TINY_MANIFEST = {"algorithms": ["dsmf"], "seeds": [5], "overrides": TINY_OVERRIDES}


@pytest.fixture
def tiny_manifest() -> dict:
    """A fresh copy per test (manifests get mutated for variants)."""
    import copy

    return copy.deepcopy(TINY_MANIFEST)


@pytest.fixture(scope="session")
def tiny_run():
    """One real tiny simulation shared by the whole service suite."""
    from repro.api import run_experiment

    config = ExperimentConfig(
        algorithm="dsmf",
        n_nodes=24,
        load_factor=1,
        total_time=6 * 3600.0,
        seed=5,
        task_range=(2, 10),
    )
    return config, run_experiment(config)


@pytest.fixture
def service(tmp_path):
    """A live server + client pair; yields ``(server, client)``."""
    server = build_server(port=0, cache_dir=tmp_path / "cache", jobs=1)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=15.0)
    try:
        yield server, client
    finally:
        server.shutdown()
        server.server_close()
        server.state.close()
        thread.join(5)
