"""Regression tests for the long-poll version race.

The race: a client reads a campaign at version N, the campaign transitions
(version bump) *between* that response and the client's next ``?wait=``
request, and the next poll — which captures the version at call time —
parks for the full wait despite the change it is waiting for having
already happened.  The fix threads the client's last-observed version
through (``since`` in :meth:`CampaignQueue.get`, ``?version=`` over HTTP):
a poll whose ``since`` is already stale returns immediately.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.service.app import ServiceServer, ServiceState
from repro.service.client import ServiceClient, ServiceError
from repro.service.index import ExperimentIndex
from repro.service.queue import CampaignQueue

TINY_MANIFEST = {
    "algorithms": ["dsmf"],
    "seeds": [5],
    "overrides": {
        "n_nodes": 24,
        "load_factor": 1,
        "total_time": 6 * 3600.0,
        "task_range": [2, 10],
    },
}

#: A wait long enough that "parked for the full wait" vs "returned
#: immediately" is unambiguous even on a noisy CI runner.
_LONG_WAIT = 5.0


@pytest.fixture
def idle_queue(tmp_path):
    """A queue whose worker never starts: campaigns stay ``queued``, so the
    only version bumps are the ones the test injects — the transition
    timing is fully under test control."""
    index = ExperimentIndex(tmp_path / "experiments.jsonl")
    queue = CampaignQueue(cache_dir=tmp_path / "cache", index=index)
    try:
        yield queue
    finally:
        index.close()


def _bump_campaign(queue: CampaignQueue, campaign_id: str) -> None:
    """Inject one observable state mutation (what the worker thread does)."""
    with queue._lock:
        queue._bump(queue._campaigns[campaign_id])


def test_stale_since_returns_immediately(idle_queue):
    """The forced interleaving: the bump lands *before* the poll starts.

    Without ``since`` the poll re-reads the already-bumped version and
    parks anyway (the racy behavior, asserted below as contrast); with the
    stale ``since`` it must return without waiting.
    """
    cid = idle_queue.submit(TINY_MANIFEST)["id"]
    seen = idle_queue.get(cid)["version"]

    # The transition the client hasn't seen yet.
    _bump_campaign(idle_queue, cid)

    t0 = time.monotonic()
    record = idle_queue.get(cid, wait=_LONG_WAIT, since=seen)
    elapsed = time.monotonic() - t0
    assert record["version"] == seen + 1
    assert elapsed < 1.0, f"stale-since poll parked {elapsed:.2f}s"

    # Contrast: a since-less poll after the same missed bump parks the
    # full wait — exactly the race the parameter exists to close.
    t0 = time.monotonic()
    idle_queue.get(cid, wait=0.2)
    assert time.monotonic() - t0 >= 0.2


def test_current_since_still_parks_until_notified(idle_queue):
    """``since`` equal to the live version keeps normal long-poll behavior:
    the call parks, then wakes the moment a bump arrives."""
    cid = idle_queue.submit(TINY_MANIFEST)["id"]
    seen = idle_queue.get(cid)["version"]

    bumper = threading.Timer(0.2, _bump_campaign, args=(idle_queue, cid))
    t0 = time.monotonic()
    bumper.start()
    try:
        record = idle_queue.get(cid, wait=_LONG_WAIT, since=seen)
    finally:
        bumper.join()
    elapsed = time.monotonic() - t0
    assert record["version"] == seen + 1
    assert 0.2 <= elapsed < 1.0, f"poll neither parked nor woke early: {elapsed:.2f}s"


@pytest.fixture
def idle_service(tmp_path):
    """A live HTTP server over an idle queue (worker never started)."""
    state = ServiceState(cache_dir=tmp_path / "cache")
    server = ServiceServer(("127.0.0.1", 0), state)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
    )
    thread.start()
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}", timeout=15.0)
    try:
        yield state, client
    finally:
        server.shutdown()
        server.server_close()
        state.index.close()
        thread.join(5)


def test_http_version_param_closes_the_race(idle_service):
    """End-to-end over HTTP: ``?wait=&version=`` with a stale version
    returns immediately; an unparseable version is a 400."""
    state, client = idle_service
    cid = client.submit(TINY_MANIFEST)["id"]
    seen = client.campaign(cid)["version"]

    _bump_campaign(state.queue, cid)

    t0 = time.monotonic()
    record = client.campaign(cid, wait=_LONG_WAIT, version=seen)
    elapsed = time.monotonic() - t0
    assert record["version"] == seen + 1
    assert elapsed < 1.0, f"stale-version long-poll parked {elapsed:.2f}s"

    with pytest.raises(ServiceError) as excinfo:
        client._request("GET", f"/campaigns/{cid}?wait=1&version=latest")
    assert excinfo.value.status == 400
    assert excinfo.value.code == "invalid-version"
