"""Tests for the top-level convenience API."""

from __future__ import annotations

import pytest

import repro
from repro import available_algorithms, quick_run, run_experiment
from repro.experiments.config import ExperimentConfig


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_available_algorithms_contains_paper_set():
    names = available_algorithms()
    for alg in ("dsmf", "heft", "smf", "min-min", "max-min", "sufferage",
                "dheft", "dsdf"):
        assert alg in names


def test_quick_run_smoke():
    r = quick_run(algorithm="dsmf", n_nodes=24, load_factor=1,
                  duration_hours=4, seed=2, task_range=(2, 6))
    assert r.algorithm == "dsmf"
    assert r.n_workflows == 24
    assert r.n_done > 0


def test_quick_run_forwards_overrides():
    r = quick_run(n_nodes=24, load_factor=1, duration_hours=4, seed=2,
                  rss_mode="oracle", task_range=(2, 6))
    assert r.config["rss_mode"] == "oracle"


def test_quick_run_rejects_bad_algorithm():
    with pytest.raises(ValueError):
        quick_run(algorithm="bogus", n_nodes=24)


def test_run_experiment_with_config():
    cfg = ExperimentConfig(n_nodes=24, load_factor=1, total_time=4 * 3600.0,
                           seed=2, task_range=(2, 6))
    r = run_experiment(cfg)
    assert r.n_workflows == 24
