"""Tests for the top-level convenience API."""

from __future__ import annotations

import pytest

import repro
from repro import available_algorithms, available_scenarios, quick_run, run_experiment
from repro.experiments.config import ExperimentConfig


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_available_algorithms_contains_paper_set():
    names = available_algorithms()
    for alg in ("dsmf", "heft", "smf", "min-min", "max-min", "sufferage",
                "dheft", "dsdf"):
        assert alg in names


def test_quick_run_smoke():
    r = quick_run(algorithm="dsmf", n_nodes=24, load_factor=1,
                  duration_hours=4, seed=2, task_range=(2, 6))
    assert r.algorithm == "dsmf"
    assert r.n_workflows == 24
    assert r.n_done > 0


def test_quick_run_forwards_overrides():
    r = quick_run(n_nodes=24, load_factor=1, duration_hours=4, seed=2,
                  rss_mode="oracle", task_range=(2, 6))
    assert r.config["rss_mode"] == "oracle"


def test_quick_run_rejects_bad_algorithm():
    with pytest.raises(ValueError):
        quick_run(algorithm="bogus", n_nodes=24)


def test_available_scenarios_contains_presets():
    names = available_scenarios()
    assert "paper-fig4" in names
    assert "poisson-steady" in names


def test_quick_run_with_scenario():
    r = quick_run(n_nodes=24, load_factor=1, duration_hours=6, seed=2,
                  task_range=(2, 6), scenario="poisson-steady")
    assert r.config["scenario"] == "poisson-steady"
    assert r.config["arrival_process"] == "poisson"
    assert r.n_done > 0


def test_quick_run_explicit_args_win_over_scenario():
    # diurnal-week sets total_time to a week; the explicit duration wins.
    r = quick_run(n_nodes=24, load_factor=1, duration_hours=6, seed=2,
                  task_range=(2, 6), scenario="diurnal-week")
    assert r.total_time == 6 * 3600.0
    assert r.config["arrival_process"] == "diurnal"


def test_quick_run_omitted_args_yield_to_scenario():
    """Omitting duration_hours lets the preset's week-long total_time
    through (regression: argparse/API defaults used to shadow it)."""
    r = quick_run(n_nodes=24, load_factor=1, seed=2, task_range=(2, 6),
                  scenario="diurnal-week")
    assert r.total_time == 7 * 86400.0
    assert max(rec.submit_time for rec in r.records) > 24 * 3600.0


def test_quick_run_rejects_bad_scenario():
    with pytest.raises(ValueError, match="unknown scenario"):
        quick_run(n_nodes=24, scenario="nope")


def test_run_campaign_scenario_paper_default_is_bit_identical(tmp_path):
    """`paper-fig4` and the plain config yield identical fingerprints."""
    from repro import run_campaign

    kw = dict(
        algorithms=["dsmf", "dheft"], seeds=[1, 2], use_cache=False,
        n_nodes=24, load_factor=1, total_time=4 * 3600.0, task_range=(2, 6),
    )
    plain = run_campaign(**kw)
    preset = run_campaign(scenario="paper-fig4", **kw)
    assert preset.fingerprint() == plain.fingerprint()


def test_run_experiment_with_config():
    cfg = ExperimentConfig(n_nodes=24, load_factor=1, total_time=4 * 3600.0,
                           seed=2, task_range=(2, 6))
    r = run_experiment(cfg)
    assert r.n_workflows == 24
