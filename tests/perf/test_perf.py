"""Tests for the performance harness (``repro.perf`` / ``repro bench``)."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.cli import main
from repro.perf.bench import (
    BENCH_SCHEMA,
    bench_scenario_names,
    discover_baseline,
    get_bench_scenario,
    run_bench,
    speedup_regressions,
    validate_report,
    write_report,
)


def test_scenario_registry_names():
    names = bench_scenario_names()
    assert names == [
        "paper-fig4", "poisson-steady", "fig11-grid", "fig10-dynamic",
        "metro-1k", "metro-10k",
    ]
    with pytest.raises(ValueError, match="unknown bench scenario"):
        get_bench_scenario("nope")


def test_scenario_configs_build_both_sizes():
    for name in bench_scenario_names():
        sc = get_bench_scenario(name)
        full = sc.config(quick=False)
        quick = sc.config(quick=True)
        assert quick.n_nodes <= full.n_nodes
        assert quick.total_time <= full.total_time
    assert get_bench_scenario("fig11-grid").config().n_nodes == 240


def test_metro_preset_keeps_thousand_nodes_in_quick_mode():
    """The point of metro-1k is the node count: quick shrinks the horizon
    only, so the 1000-node code paths stay exercised in smoke jobs."""
    sc = get_bench_scenario("metro-1k")
    full = sc.config(quick=False)
    quick = sc.config(quick=True)
    assert full.n_nodes == quick.n_nodes == 1000
    assert quick.total_time < full.total_time
    assert full.scenario == "metro-1k"
    assert full.churn_model == "sessions"
    assert full.recovery_policy == "reschedule"


@pytest.fixture(scope="module")
def quick_report():
    """One timed quick run of the smallest scenario, shared by the tests."""
    return run_bench(scenarios=["paper-fig4"], quick=True, profile_top=5)


def test_run_bench_produces_valid_report(quick_report):
    assert validate_report(quick_report) == []
    assert quick_report["schema"] == BENCH_SCHEMA
    [entry] = quick_report["scenarios"]
    assert entry["name"] == "paper-fig4"
    assert entry["quick"] is True
    assert entry["events"] > 0
    assert entry["wall_seconds"] > 0
    assert entry["events_per_sec"] > 0
    assert entry["n_done"] <= entry["n_workflows"]
    assert entry["peak_rss_kb"] is None or entry["peak_rss_kb"] > 0
    # cProfile integration: repo functions captured
    assert entry["profile_top"], "profile_top requested but empty"
    assert all("function" in row and "cumtime" in row for row in entry["profile_top"])


def test_speedup_against_baseline(quick_report):
    report = run_bench(scenarios=["paper-fig4"], quick=True, baseline=quick_report)
    assert "paper-fig4" in report["speedup"]
    assert report["speedup"]["paper-fig4"] > 0
    assert report["baseline"]["scenarios"]["paper-fig4"]["wall_seconds"] > 0
    # Same config, same code: the simulated outcome must be identical.
    assert (
        report["scenarios"][0]["result_digest"]
        == quick_report["scenarios"][0]["result_digest"]
    )


def test_baseline_quick_mismatch_is_rejected(quick_report):
    """A full-size baseline against a quick run (or vice versa) would yield
    a size-artifact "speedup" — or, worse, a silently empty speedup map
    that makes any --regression-threshold gate pass vacuously.  Mixed-mode
    comparison must fail loudly before any timing runs."""
    full_shaped = {
        "version": "x",
        "quick": False,
        "scenarios": [
            {**quick_report["scenarios"][0], "quick": False}
        ],
    }
    with pytest.raises(ValueError, match="baseline mode mismatch"):
        run_bench(scenarios=["paper-fig4"], quick=True, baseline=full_shaped)
    with pytest.raises(ValueError, match="baseline mode mismatch"):
        run_bench(scenarios=["paper-fig4"], quick=False, baseline=quick_report)


def test_cli_bench_explicit_baseline_mode_mismatch(tmp_path, monkeypatch, quick_report):
    """The CLI path: an explicitly passed full-size baseline report must be
    rejected for a --quick run with the clear mode-mismatch error (this was
    the bug: auto-discovery filtered by mode but explicit paths did not)."""
    monkeypatch.chdir(tmp_path)
    full_shaped = json.loads(json.dumps(quick_report))
    full_shaped["quick"] = False
    (tmp_path / "BENCH_FULL.json").write_text(json.dumps(full_shaped))
    with pytest.raises(SystemExit, match="baseline mode mismatch"):
        main([
            "bench", "--quick", "--scenarios", "paper-fig4",
            "--output", "b.json", "--baseline", "BENCH_FULL.json", "--quiet",
        ])


def test_rss_fallback_reports_no_delta(quick_report, monkeypatch):
    """Without the kernel high-water reset, ru_maxrss is process-lifetime
    cumulative: a per-scenario delta would be misleading, so the entry must
    carry peak_rss_isolated=False and a null delta instead."""
    import repro.perf.bench as bench_mod

    monkeypatch.setattr(bench_mod, "_reset_peak_rss", lambda: False)
    report = run_bench(scenarios=["paper-fig4"], quick=True)
    [entry] = report["scenarios"]
    assert entry["peak_rss_isolated"] is False
    assert entry["peak_rss_delta_kb"] is None
    assert validate_report(report) == []  # delta is not a required field


def test_validate_report_catches_problems():
    assert validate_report({}) != []
    assert validate_report({"schema": BENCH_SCHEMA, "scenarios": []}) != []
    bad_entry = {"schema": BENCH_SCHEMA, "scenarios": [{"name": "x"}]}
    problems = validate_report(bad_entry)
    assert any("missing" in p for p in problems)


def test_write_report_roundtrip(tmp_path, quick_report):
    path = write_report(quick_report, tmp_path / "BENCH_TEST.json")
    loaded = json.loads(path.read_text())
    assert validate_report(loaded) == []
    assert loaded["scenarios"][0]["events"] == quick_report["scenarios"][0]["events"]


def test_cli_bench_quick(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    rc = main([
        "bench", "--quick", "--scenarios", "paper-fig4",
        "--output", "BENCH_CLI.json", "--quiet",
    ])
    assert rc == 0
    assert os.path.exists(tmp_path / "BENCH_CLI.json")
    report = json.loads((tmp_path / "BENCH_CLI.json").read_text())
    assert validate_report(report) == []
    out = capsys.readouterr().out
    assert "BENCH_CLI.json" in out


def test_cli_bench_unknown_scenario(tmp_path):
    with pytest.raises(SystemExit, match="unknown bench scenario"):
        main([
            "bench", "--quick", "--scenarios", "paper-fig4", "bogus",
            "--output", str(tmp_path / "b.json"),
        ])


def test_run_bench_rejects_unknown_scenario_before_timing():
    with pytest.raises(ValueError, match="unknown bench scenario"):
        run_bench(scenarios=["bogus", "paper-fig4"], quick=True)


def test_cli_bench_bad_baseline(tmp_path):
    with pytest.raises(SystemExit, match="cannot read baseline"):
        main([
            "bench", "--quick", "--scenarios", "paper-fig4",
            "--output", str(tmp_path / "b.json"),
            "--baseline", str(tmp_path / "missing.json"),
        ])


def test_per_scenario_rss_is_isolated(quick_report):
    """On Linux the high-water mark is reset per scenario, so the delta is
    the scenario's own footprint (not a 0-floored cumulative leftover).

    The delta itself can legitimately be 0 when the allocator serves the
    run entirely from pages already resident (e.g. mid-test-suite), so
    only the measurement plumbing is asserted here.
    """
    [entry] = quick_report["scenarios"]
    if not entry.get("peak_rss_isolated"):
        pytest.skip("kernel peak-RSS reset unavailable on this platform")
    assert entry["peak_rss_delta_kb"] is not None
    assert entry["peak_rss_delta_kb"] >= 0
    assert entry["peak_rss_kb"] > 0


def test_discover_baseline_picks_highest_pr(tmp_path):
    (tmp_path / "BENCH_PR3.json").write_text("{}")
    (tmp_path / "BENCH_PR5.json").write_text("{}")
    (tmp_path / "BENCH_PRx.json").write_text("{}")  # not a PR number
    found = discover_baseline(tmp_path)
    assert found is not None and found.name == "BENCH_PR5.json"
    # The report being written is excluded so a re-run doesn't compare
    # against its own previous output.
    found = discover_baseline(tmp_path, exclude=tmp_path / "BENCH_PR5.json")
    assert found is not None and found.name == "BENCH_PR3.json"
    assert discover_baseline(tmp_path / "empty") is None


def test_discover_baseline_is_quick_aware(tmp_path):
    """Speedups only compare same-size runs, so a quick gate must find the
    committed *quick* baseline even when a newer full report exists."""
    (tmp_path / "BENCH_PR4.json").write_text(json.dumps({"quick": True}))
    (tmp_path / "BENCH_PR5.json").write_text(json.dumps({"quick": False}))
    (tmp_path / "BENCH_PR6.json").write_text("not json")  # skipped when filtering
    found = discover_baseline(tmp_path, quick=True)
    assert found is not None and found.name == "BENCH_PR4.json"
    found = discover_baseline(tmp_path, quick=False)
    assert found is not None and found.name == "BENCH_PR5.json"
    # Without the filter, newest-by-PR-number wins regardless of mode
    # (unreadable files only matter when their quick flag must be read).
    found = discover_baseline(tmp_path)
    assert found is not None and found.name == "BENCH_PR6.json"


def test_speedup_regressions_flags_slowdowns():
    report = {"speedup": {"paper-fig4": 1.3, "fig11-grid": 0.7}}
    assert speedup_regressions(report, 0.8) == [
        "fig11-grid: 0.700x vs baseline is below the "
        "--regression-threshold floor of 0.8x"
    ]
    assert speedup_regressions(report, 0.5) == []
    assert speedup_regressions({}, 0.8) == []


def test_speedup_regressions_reciprocates_slowdown_factors():
    """1.25 and 0.8 are the same gate: values above 1 are read as the max
    tolerated slowdown factor (the spelling the CI job uses)."""
    report = {"speedup": {"paper-fig4": 0.7}}
    assert speedup_regressions(report, 1.25) == speedup_regressions(report, 0.8)
    assert speedup_regressions({"speedup": {"paper-fig4": 0.85}}, 1.25) == []
    with pytest.raises(ValueError, match="must be positive"):
        speedup_regressions(report, 0.0)


def test_cli_bench_auto_baseline_and_threshold(tmp_path, monkeypatch, quick_report, capsys):
    """--baseline with no path discovers the newest quick BENCH_PR*.json;
    an injected slowdown (baseline claiming a near-zero wall time) must
    exit non-zero under the CI gate's --regression-threshold 1.25."""
    monkeypatch.chdir(tmp_path)
    write_report(quick_report, tmp_path / "BENCH_PR3.json")
    rc = main([
        "bench", "--quick", "--scenarios", "paper-fig4",
        "--output", "BENCH_NEW.json", "--baseline", "--quiet",
    ])
    assert rc == 0
    report = json.loads((tmp_path / "BENCH_NEW.json").read_text())
    assert "paper-fig4" in report["speedup"]
    # Injected slowdown: a baseline that "ran" in 1 microsecond makes any
    # real run look catastrophically slower, so the gate must trip.
    injected = json.loads(json.dumps(quick_report))
    injected["scenarios"][0]["wall_seconds"] = 1e-6
    (tmp_path / "BENCH_FAST.json").write_text(json.dumps(injected))
    with pytest.raises(SystemExit, match="performance regression"):
        main([
            "bench", "--quick", "--scenarios", "paper-fig4",
            "--output", "BENCH_NEW.json", "--baseline", "BENCH_FAST.json",
            "--regression-threshold", "1.25", "--quiet",
        ])


def test_cli_bench_auto_baseline_requires_existing_report(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    with pytest.raises(SystemExit, match="no quick BENCH_PR"):
        main([
            "bench", "--quick", "--scenarios", "paper-fig4",
            "--output", "b.json", "--baseline", "--quiet",
        ])
    # A full-size BENCH_PR*.json alone doesn't satisfy a --quick gate.
    (tmp_path / "BENCH_PR5.json").write_text(json.dumps({"quick": False}))
    with pytest.raises(SystemExit, match="no quick BENCH_PR"):
        main([
            "bench", "--quick", "--scenarios", "paper-fig4",
            "--output", "b.json", "--baseline", "--quiet",
        ])


def test_cli_bench_threshold_requires_baseline(tmp_path):
    with pytest.raises(SystemExit, match="requires --baseline"):
        main([
            "bench", "--quick", "--scenarios", "paper-fig4",
            "--output", str(tmp_path / "b.json"),
            "--regression-threshold", "0.8",
        ])
