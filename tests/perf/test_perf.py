"""Tests for the performance harness (``repro.perf`` / ``repro bench``)."""

from __future__ import annotations

import json
import os

import pytest

from repro.experiments.cli import main
from repro.perf.bench import (
    BENCH_SCHEMA,
    bench_scenario_names,
    get_bench_scenario,
    run_bench,
    validate_report,
    write_report,
)


def test_scenario_registry_names():
    names = bench_scenario_names()
    assert names == ["paper-fig4", "poisson-steady", "fig11-grid", "fig10-dynamic"]
    with pytest.raises(ValueError, match="unknown bench scenario"):
        get_bench_scenario("nope")


def test_scenario_configs_build_both_sizes():
    for name in bench_scenario_names():
        sc = get_bench_scenario(name)
        full = sc.config(quick=False)
        quick = sc.config(quick=True)
        assert quick.n_nodes <= full.n_nodes
        assert quick.total_time <= full.total_time
    assert get_bench_scenario("fig11-grid").config().n_nodes == 240


@pytest.fixture(scope="module")
def quick_report():
    """One timed quick run of the smallest scenario, shared by the tests."""
    return run_bench(scenarios=["paper-fig4"], quick=True, profile_top=5)


def test_run_bench_produces_valid_report(quick_report):
    assert validate_report(quick_report) == []
    assert quick_report["schema"] == BENCH_SCHEMA
    [entry] = quick_report["scenarios"]
    assert entry["name"] == "paper-fig4"
    assert entry["quick"] is True
    assert entry["events"] > 0
    assert entry["wall_seconds"] > 0
    assert entry["events_per_sec"] > 0
    assert entry["n_done"] <= entry["n_workflows"]
    assert entry["peak_rss_kb"] is None or entry["peak_rss_kb"] > 0
    # cProfile integration: repo functions captured
    assert entry["profile_top"], "profile_top requested but empty"
    assert all("function" in row and "cumtime" in row for row in entry["profile_top"])


def test_speedup_against_baseline(quick_report):
    report = run_bench(scenarios=["paper-fig4"], quick=True, baseline=quick_report)
    assert "paper-fig4" in report["speedup"]
    assert report["speedup"]["paper-fig4"] > 0
    assert report["baseline"]["scenarios"]["paper-fig4"]["wall_seconds"] > 0
    # Same config, same code: the simulated outcome must be identical.
    assert (
        report["scenarios"][0]["result_digest"]
        == quick_report["scenarios"][0]["result_digest"]
    )


def test_baseline_quick_mismatch_yields_no_speedup(quick_report):
    full_shaped = {
        "version": "x",
        "scenarios": [
            {**quick_report["scenarios"][0], "quick": False}
        ],
    }
    report = run_bench(scenarios=["paper-fig4"], quick=True, baseline=full_shaped)
    assert report["speedup"] == {}


def test_validate_report_catches_problems():
    assert validate_report({}) != []
    assert validate_report({"schema": BENCH_SCHEMA, "scenarios": []}) != []
    bad_entry = {"schema": BENCH_SCHEMA, "scenarios": [{"name": "x"}]}
    problems = validate_report(bad_entry)
    assert any("missing" in p for p in problems)


def test_write_report_roundtrip(tmp_path, quick_report):
    path = write_report(quick_report, tmp_path / "BENCH_TEST.json")
    loaded = json.loads(path.read_text())
    assert validate_report(loaded) == []
    assert loaded["scenarios"][0]["events"] == quick_report["scenarios"][0]["events"]


def test_cli_bench_quick(tmp_path, capsys, monkeypatch):
    monkeypatch.chdir(tmp_path)
    rc = main([
        "bench", "--quick", "--scenarios", "paper-fig4",
        "--output", "BENCH_CLI.json", "--quiet",
    ])
    assert rc == 0
    assert os.path.exists(tmp_path / "BENCH_CLI.json")
    report = json.loads((tmp_path / "BENCH_CLI.json").read_text())
    assert validate_report(report) == []
    out = capsys.readouterr().out
    assert "BENCH_CLI.json" in out


def test_cli_bench_unknown_scenario(tmp_path):
    with pytest.raises(SystemExit, match="unknown bench scenario"):
        main([
            "bench", "--quick", "--scenarios", "paper-fig4", "bogus",
            "--output", str(tmp_path / "b.json"),
        ])


def test_run_bench_rejects_unknown_scenario_before_timing():
    with pytest.raises(ValueError, match="unknown bench scenario"):
        run_bench(scenarios=["bogus", "paper-fig4"], quick=True)


def test_cli_bench_bad_baseline(tmp_path):
    with pytest.raises(SystemExit, match="cannot read baseline"):
        main([
            "bench", "--quick", "--scenarios", "paper-fig4",
            "--output", str(tmp_path / "b.json"),
            "--baseline", str(tmp_path / "missing.json"),
        ])
