"""Tests for the README bench-trajectory renderer
(``scripts/render_experiments.py --bench-readme``)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
SCRIPT = REPO_ROOT / "scripts" / "render_experiments.py"


@pytest.fixture(scope="module")
def renderer():
    spec = importlib.util.spec_from_file_location("render_experiments", SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _write_report(path: Path, quick: bool, scenarios: dict[str, tuple[float, float]]):
    path.write_text(json.dumps({
        "quick": quick,
        "scenarios": [
            {"name": name, "wall_seconds": wall, "events_per_sec": eps}
            for name, (wall, eps) in scenarios.items()
        ],
    }))


def test_load_bench_reports_skips_quick_and_unreadable(renderer, tmp_path):
    _write_report(tmp_path / "BENCH_PR3.json", False, {"paper-fig4": (1.2, 9000.0)})
    _write_report(tmp_path / "BENCH_PR5.json", False, {"paper-fig4": (1.0, 10000.0)})
    _write_report(tmp_path / "BENCH_PR6.json", True, {"paper-fig4": (0.2, 14000.0)})
    (tmp_path / "BENCH_PR7.json").write_text("not json")
    (tmp_path / "BENCH_PRx.json").write_text("{}")
    reports = renderer.load_bench_reports(tmp_path)
    assert [pr for pr, _ in reports] == [3, 5]


def test_render_bench_trajectory_table(renderer, tmp_path):
    _write_report(tmp_path / "BENCH_PR3.json", False, {"paper-fig4": (1.2, 9000.0)})
    _write_report(tmp_path / "BENCH_PR5.json", False, {
        "paper-fig4": (0.6, 12000.0), "metro-1k": (9.0, 4500.0),
    })
    md = renderer.render_bench_trajectory(renderer.load_bench_reports(tmp_path))
    lines = md.splitlines()
    assert lines[0] == "| scenario | PR 3 wall | PR 5 wall | speedup | PR 5 events/s |"
    assert "| `paper-fig4` | 1.20 s | 0.60 s | 2.00x | 12000 |" in lines
    # metro-1k only exists in PR 5: no old wall, no speedup, but events/s.
    assert "| `metro-1k` | — | 9.00 s | — | 4500 |" in lines
    assert "BENCH_PR" in renderer.render_bench_trajectory([])  # empty fallback


def test_update_bench_readme_roundtrip_and_check(renderer, tmp_path, capsys):
    _write_report(tmp_path / "BENCH_PR3.json", False, {"paper-fig4": (1.2, 9000.0)})
    readme = tmp_path / "README.md"
    readme.write_text(
        f"intro\n\n{renderer.BENCH_BEGIN}\nstale\n{renderer.BENCH_END}\n\noutro\n"
    )
    # --check on stale content: non-zero, file untouched.
    assert renderer.update_bench_readme(readme, check=True) == 1
    assert "stale" in readme.read_text()
    # Rewrite, then re-run both modes: up to date, exit 0.
    assert renderer.update_bench_readme(readme) == 0
    text = readme.read_text()
    assert "`paper-fig4`" in text and "stale" not in text
    assert text.startswith("intro") and text.rstrip().endswith("outro")
    assert renderer.update_bench_readme(readme, check=True) == 0
    assert renderer.update_bench_readme(readme) == 0
    assert readme.read_text() == text


def test_update_bench_readme_requires_markers(renderer, tmp_path, capsys):
    readme = tmp_path / "README.md"
    readme.write_text("no markers here\n")
    assert renderer.update_bench_readme(readme) == 2


def test_committed_readme_is_current(renderer):
    """The repo's own README must match its committed bench reports (the
    same invariant the CI drift step enforces)."""
    assert renderer.update_bench_readme(REPO_ROOT / "README.md", check=True) == 0
