"""Campaigns under injected fault schedules.

The acceptance bar: a schedule of worker crashes, cache corruptions and a
torn journal append must leave the campaign's fingerprint **bit-identical**
to a fault-free run, with every distinct config executed effectively once
(coalesced through the content-addressed cache)."""

from __future__ import annotations

import pytest

from repro.experiments.campaign import (
    QUARANTINE_DIR,
    CampaignError,
    CampaignRunner,
    RunSpec,
)
from repro.experiments.journal import RunJournal, request_identity
from repro.faults import FaultPlan, FaultSpec

from chaos_helpers import tiny_specs


def test_acceptance_schedule_bit_identical(tmp_path):
    """3 worker crashes + 2 corrupt cache writes + 1 torn journal append."""
    specs = tiny_specs(algorithms=("dsmf", "dheft"), seeds=(1, 2, 3))  # 6 cells
    clean = CampaignRunner(jobs=1, use_cache=False).run(specs)

    plan = FaultPlan([
        # Crash three distinct cells on their first attempt (keyed by the
        # sweep-cell index, so retries are fresh eligible checks).
        FaultSpec("worker.crash", at=1, key="0"),
        FaultSpec("worker.crash", at=1, key="2"),
        FaultSpec("worker.crash", at=1, key="5"),
        # Tear two of the six cache writes (quarantined on the next read).
        FaultSpec("cache.corrupt", at=2),
        FaultSpec("cache.corrupt", at=5),
        # Tear one journal append mid-line.
        FaultSpec("index.append", at=3),
    ])
    cache = tmp_path / "cache"
    journal = RunJournal(tmp_path / "run.jsonl", faults=plan)
    identity = request_identity("campaign", [(s.label, "") for s in specs])
    journal.begin("campaign", identity, {})
    runner = CampaignRunner(
        jobs=1, cache_dir=cache, max_retries=2, retry_backoff=0.0,
        faults=plan,
        progress=lambda run: journal.record_done(run.cache_key, run.label, run.digest()),
    )
    chaotic = runner.run(specs)
    journal.finish(chaotic.fingerprint())
    journal.close()

    # Identical results despite the whole schedule firing.
    assert chaotic.fingerprint() == clean.fingerprint()
    assert plan.fired_count("worker.crash") == 3
    assert plan.fired_count("cache.corrupt") == 2
    assert plan.fired_count("index.append") == 1
    assert chaotic.stats["campaign.injected_crashes"] == 3
    assert chaotic.stats["campaign.retries"] == 3
    crashed = [run for run in chaotic.runs if run.attempts > 1]
    assert len(crashed) == 3

    # Exactly-once per distinct config hash: one cache entry per cell.
    assert len(list(cache.glob("*.pkl"))) == len(specs)
    assert journal.append_errors == 1
    state = RunJournal.load(tmp_path / "run.jsonl")
    assert state.finished and state.fingerprint == chaotic.fingerprint()
    assert len(state.done) == len(specs) - 1  # the torn append lost one

    # Second pass: the two torn entries are quarantined on read and
    # re-executed; the other four replay as hits.  Fingerprint unchanged.
    with pytest.warns(RuntimeWarning, match="quarantined corrupt cache entry"):
        second = CampaignRunner(jobs=1, cache_dir=cache).run(specs)
    assert second.fingerprint() == clean.fingerprint()
    assert second.n_cached == len(specs) - 2
    assert second.stats["campaign.cache_quarantined"] == 2
    assert len(list((cache / QUARANTINE_DIR).glob("*.pkl"))) == 2

    # Third pass: fresh writes replaced the quarantined entries.
    third = CampaignRunner(jobs=1, cache_dir=cache).run(specs)
    assert third.n_cached == len(specs)
    assert third.fingerprint() == clean.fingerprint()


def test_pool_chaos_bit_identical(tmp_path):
    """Injected worker.crash under a real process pool: os._exit breaks
    the pool; rebuilt pools re-run the victims to identical results."""
    specs = tiny_specs(algorithms=("dsmf",), seeds=(1, 2, 3))
    clean = CampaignRunner(jobs=1, use_cache=False).run(specs)
    plan = FaultPlan([FaultSpec("worker.crash", at=1, key="1")])
    chaotic = CampaignRunner(
        jobs=2, use_cache=False, mp_context="fork",
        max_retries=2, retry_backoff=0.0, faults=plan,
    ).run(specs)
    assert chaotic.fingerprint() == clean.fingerprint()
    assert plan.fired_count("worker.crash") == 1
    assert chaotic.stats["campaign.pool_rebuilds"] >= 1
    victim = chaotic.runs[1]
    assert victim.attempts >= 2


def test_crash_every_attempt_exhausts_retries():
    specs = tiny_specs(algorithms=("dsmf",), seeds=(1, 2))
    # Cell 0 dies on every one of its first 10 attempts; retries cap out.
    plan = FaultPlan([FaultSpec("worker.crash", at=1, count=10, key="0")])
    runner = CampaignRunner(
        jobs=1, use_cache=False, max_retries=2, retry_backoff=0.0, faults=plan
    )
    with pytest.raises(CampaignError) as err:
        runner.run(specs)
    assert len(err.value.failures) == 1
    assert "injected worker crash" in str(err.value)
    assert runner.stats["campaign.retries"] == 2  # both retries consumed


def test_cache_read_error_is_a_counted_miss(tmp_path):
    specs = tiny_specs(algorithms=("dsmf",), seeds=(1,))
    CampaignRunner(jobs=1, cache_dir=tmp_path).run(specs)
    plan = FaultPlan([FaultSpec("cache.read", at=1)])
    runner = CampaignRunner(jobs=1, cache_dir=tmp_path, faults=plan)
    campaign = runner.run(specs)
    assert campaign.n_cached == 0  # the read error forced a re-run
    assert campaign.stats["campaign.cache_read_errors"] == 1
    # The entry itself is intact: the next run hits.
    assert CampaignRunner(jobs=1, cache_dir=tmp_path).run(specs).n_cached == 1


def test_cache_write_error_does_not_fail_the_campaign(tmp_path):
    specs = tiny_specs(algorithms=("dsmf",), seeds=(1,))
    plan = FaultPlan([FaultSpec("cache.write", at=1)])
    runner = CampaignRunner(jobs=1, cache_dir=tmp_path, faults=plan)
    with pytest.warns(RuntimeWarning, match="cache write failed"):
        campaign = runner.run(specs)
    assert campaign.stats["campaign.cache_write_errors"] == 1
    assert len(list(tmp_path.glob("*.pkl"))) == 0  # nothing half-written
    # No tmp turds left behind either.
    assert not [p for p in tmp_path.iterdir() if p.suffix != ".pkl"]


def test_dedup_coalesces_under_chaos(tmp_path):
    """Duplicate specs still execute once even when that one execution
    needed crash retries."""
    base = tiny_specs(algorithms=("dsmf",), seeds=(1,))[0]
    specs = [base, RunSpec("again", base.config)]
    plan = FaultPlan([FaultSpec("worker.crash", at=1, key="0")])
    campaign = CampaignRunner(
        jobs=1, cache_dir=tmp_path, max_retries=2, retry_backoff=0.0, faults=plan
    ).run(specs)
    assert campaign.runs[0].result is campaign.runs[1].result
    assert campaign.runs[0].attempts == 2
    assert campaign.runs[1].attempts == 0  # the coalesced copy never ran
    assert len(list(tmp_path.glob("*.pkl"))) == 1


def test_retry_stats_surface_in_telemetry_summary():
    specs = tiny_specs(algorithms=("dsmf",), seeds=(1,))
    plan = FaultPlan([FaultSpec("worker.crash", at=1, key="0")])
    campaign = CampaignRunner(
        jobs=1, use_cache=False, max_retries=1, retry_backoff=0.0, faults=plan
    ).run(specs)
    summary = campaign.telemetry_summary()
    assert summary.counters["campaign.retries"] == 1.0
    assert summary.counters["campaign.injected_crashes"] == 1.0


def test_null_faults_leave_stats_empty(tmp_path):
    """The disabled plane is invisible: no stats keys, no fired log, and
    the fingerprint matches a pre-fault-plane run by construction."""
    specs = tiny_specs(algorithms=("dsmf",), seeds=(1,))
    campaign = CampaignRunner(jobs=1, cache_dir=tmp_path).run(specs)
    assert campaign.stats == {}
    assert campaign.telemetry_summary().counters["campaign.retries"] == 0.0
