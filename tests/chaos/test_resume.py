"""Kill-and-resume: a real ``repro campaign`` process is SIGKILLed
mid-campaign and resumed with ``--resume`` — the journal plus the
content-addressed cache must hand back an identical campaign."""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

ARGS = [
    "--algorithms", "dsmf", "dheft",
    "--seeds", "1", "2", "3",
    "--profile", "small",
    "--set", "n_nodes=24",
    "--set", "load_factor=1",
    "--set", "total_time=14400",
]


def _campaign(journal, cache, *extra, **popen_kwargs):
    cmd = [
        sys.executable, "-m", "repro.experiments.cli", "campaign", *ARGS,
        "--cache-dir", str(cache), "--journal", str(journal), *extra,
    ]
    env = dict(os.environ)
    return subprocess.Popen(
        cmd, env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
        text=True, **popen_kwargs,
    )


def _journal_events(path) -> list[dict]:
    if not path.is_file():
        return []
    events = []
    for line in path.read_text().splitlines():
        try:
            events.append(json.loads(line))
        except ValueError:
            continue
    return events


def _fingerprint(stdout: str) -> str:
    for line in stdout.splitlines():
        if "fingerprint" in line:
            return line.rsplit(" ", 1)[-1]
    raise AssertionError(f"no fingerprint line in output:\n{stdout}")


def test_sigkill_then_resume_completes_identically(tmp_path):
    journal = tmp_path / "campaign.jsonl"
    cache = tmp_path / "cache"

    # Phase 1: start the campaign, kill it after at least one cell lands.
    proc = _campaign(journal, cache)
    deadline = time.monotonic() + 90.0
    try:
        while True:
            done = [e for e in _journal_events(journal) if e.get("event") == "done"]
            if done:
                break
            if proc.poll() is not None:
                out, err = proc.communicate()
                pytest.fail(f"campaign finished before it could be killed:\n{err}")
            if time.monotonic() > deadline:
                pytest.fail("no journaled cell within 90s")
            time.sleep(0.01)
        proc.send_signal(signal.SIGKILL)
    finally:
        proc.wait(30)
    events = _journal_events(journal)
    assert events[0]["event"] == "begin"
    journaled_done = [e for e in events if e.get("event") == "done"]
    assert journaled_done and not any(e.get("event") == "finish" for e in events)

    # Phase 2: --resume completes the campaign on the same dirs.
    resumed = _campaign(journal, cache, "--resume")
    out, err = resumed.communicate(timeout=120)
    assert resumed.returncode == 0, err
    assert "resuming:" in err
    assert "resume verified" in err
    events = _journal_events(journal)
    assert any(e.get("event") == "finish" for e in events)
    # Every cell journaled before the kill replayed from cache.
    cached = int(out.split(" runs (")[1].split(" from cache")[0])
    assert cached >= len(journaled_done)

    # Phase 3: the resumed fingerprint matches a from-scratch run.
    fresh = _campaign(tmp_path / "fresh.jsonl", tmp_path / "fresh-cache")
    fresh_out, fresh_err = fresh.communicate(timeout=120)
    assert fresh.returncode == 0, fresh_err
    assert _fingerprint(out) == _fingerprint(fresh_out)


def test_resume_without_journal_is_an_error(tmp_path):
    proc = _campaign(tmp_path / "missing.jsonl", tmp_path / "cache", "--resume")
    out, err = proc.communicate(timeout=120)
    assert proc.returncode != 0
    assert "no journal at" in err
