"""Tiny-scale config helpers shared by the chaos tests (kept out of
conftest so test modules can import them without package plumbing)."""

from __future__ import annotations

from repro.experiments.campaign import RunSpec, sweep_specs
from repro.experiments.config import ExperimentConfig

TINY = dict(
    n_nodes=24,
    load_factor=1,
    total_time=4 * 3600.0,
    task_range=(2, 10),
)

TINY_MANIFEST = {
    "algorithms": ["dsmf"],
    "seeds": [5],
    "overrides": {
        "n_nodes": 24,
        "load_factor": 1,
        "total_time": 6 * 3600.0,
        "task_range": [2, 10],
    },
}


def tiny_config(**overrides) -> ExperimentConfig:
    return ExperimentConfig(**{**TINY, **overrides})


def tiny_specs(algorithms=("dsmf", "dheft"), seeds=(1, 2)) -> "list[RunSpec]":
    return sweep_specs(algorithms, seeds, base=tiny_config())
