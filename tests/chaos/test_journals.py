"""Crash-safety tests for the two JSONL journals: the campaign/sweep run
journal (``--resume``) and the service submission journal."""

from __future__ import annotations

import json

from repro.experiments.journal import RunJournal, request_identity
from repro.faults import FaultPlan, FaultSpec
from repro.service.journal import ServiceJournal


class TestRequestIdentity:
    def test_deterministic_and_sensitive(self):
        cells = [("dsmf#s1", "abc"), ("dsmf#s2", "def")]
        assert request_identity("campaign", cells) == request_identity("campaign", cells)
        assert request_identity("campaign", cells) != request_identity("sweep", cells)
        assert request_identity("campaign", cells) != request_identity(
            "campaign", list(reversed(cells))
        )


class TestRunJournal:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        identity = request_identity("campaign", [("a", "h1")])
        with RunJournal(path) as journal:
            journal.begin("campaign", identity, {"algorithms": ["dsmf"]})
            journal.record_done("h1", "a", "digest-1")
            journal.finish("fp")
        state = RunJournal.load(path)
        assert state.kind == "campaign"
        assert state.identity == identity
        assert state.done == {"h1": "digest-1"}
        assert state.finished and state.fingerprint == "fp"
        assert state.skipped_lines == 0

    def test_load_missing_or_headerless(self, tmp_path):
        assert RunJournal.load(tmp_path / "nope.jsonl") is None
        orphan = tmp_path / "orphan.jsonl"
        orphan.write_text('{"event":"done","key":"h","digest":"d"}\n')
        assert RunJournal.load(orphan) is None

    def test_torn_tail_is_skipped_and_repaired(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.begin("campaign", "id", {})
            journal.record_done("h1", "a", "d1")
        # Simulate a writer killed mid-append: half a record, no newline.
        with path.open("a") as fh:
            fh.write('{"event":"done","key":"h2"')
        state = RunJournal.load(path)
        assert state.done == {"h1": "d1"}
        assert state.skipped_lines == 1
        # A resuming writer terminates the torn tail before appending.
        with RunJournal(path) as journal:
            journal.record_done("h3", "c", "d3")
        state = RunJournal.load(path)
        assert state.done == {"h1": "d1", "h3": "d3"}

    def test_rebegin_same_identity_keeps_done(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.begin("campaign", "same", {})
            journal.record_done("h1", "a", "d1")
            journal.begin("campaign", "same", {})  # a --resume re-begins
            journal.record_done("h2", "b", "d2")
        assert RunJournal.load(path).done == {"h1": "d1", "h2": "d2"}

    def test_rebegin_different_identity_resets_done(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with RunJournal(path) as journal:
            journal.begin("campaign", "one", {})
            journal.record_done("h1", "a", "d1")
            journal.begin("campaign", "two", {})
        assert RunJournal.load(path).done == {}

    def test_injected_torn_append_recovers(self, tmp_path):
        plan = FaultPlan([FaultSpec("index.append", at=2)])
        path = tmp_path / "run.jsonl"
        with RunJournal(path, faults=plan) as journal:
            journal.begin("campaign", "id", {})
            journal.record_done("h1", "a", "d1")  # torn (check #2 fires)
            journal.record_done("h2", "b", "d2")  # reopens, repairs, lands
            assert journal.append_errors == 1
        assert plan.fired_count("index.append") == 1
        state = RunJournal.load(path)
        assert state.done == {"h2": "d2"}
        assert state.skipped_lines == 1


class TestServiceJournal:
    def test_unfinished_survive_and_seq_advances(self, tmp_path):
        path = tmp_path / "service.jsonl"
        journal = ServiceJournal(path)
        journal.submitted("c000001", "campaign", {"algorithms": ["dsmf"]})
        journal.submitted("c000002", "sweep", {"scenarios": ["poisson-steady"]})
        journal.finished("c000001", "done")
        journal.close()

        reloaded = ServiceJournal(path)
        assert reloaded.max_seq == 2
        assert [rec["id"] for rec in reloaded.unfinished] == ["c000002"]
        assert reloaded.unfinished[0]["kind"] == "sweep"
        reloaded.close()

    def test_torn_tail_skipped(self, tmp_path):
        path = tmp_path / "service.jsonl"
        journal = ServiceJournal(path)
        journal.submitted("c000001", "campaign", {"a": 1})
        journal.close()
        with path.open("a") as fh:
            fh.write('{"event":"submitted","id":"c0000')
        reloaded = ServiceJournal(path)
        assert reloaded.skipped_lines == 1
        assert [rec["id"] for rec in reloaded.unfinished] == ["c000001"]
        # The reopened writer terminates the torn tail first, so the new
        # record lands on its own parseable line.
        reloaded.finished("c000001", "done")
        reloaded.close()
        assert json.loads(path.read_text().splitlines()[-1])["event"] == "finished"
        final = ServiceJournal(path)
        assert final.unfinished == []
        final.close()
