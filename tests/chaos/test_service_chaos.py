"""Service stack under injected faults: dropped connections, slow
responses, bounded-queue overload, torn index appends, and restart
resume from the submission journal."""

from __future__ import annotations

import copy
import http.client
import json
import time

import pytest

from chaos_helpers import TINY_MANIFEST
from repro.faults import FaultPlan, FaultSpec
from repro.service.client import ServiceError


def tiny_manifest(**overrides) -> dict:
    manifest = copy.deepcopy(TINY_MANIFEST)
    manifest["overrides"].update(overrides)
    return manifest


# --------------------------------------------------------------------------
# Connection-level faults
# --------------------------------------------------------------------------

class TestConnectionFaults:
    def test_reset_retried_by_client(self, make_service):
        plan = FaultPlan([FaultSpec("http.reset", at=1)])
        server, client = make_service(client_retries=2, faults=plan)
        record = client.health()  # first attempt reset, retry succeeds
        assert record["status"] == "ok"
        assert plan.fired_count("http.reset") == 1

    def test_reset_without_retries_surfaces(self, make_service):
        plan = FaultPlan([FaultSpec("http.reset", at=1)])
        server, client = make_service(client_retries=0, faults=plan)
        with pytest.raises((OSError, http.client.HTTPException)):
            client.health()
        # The server carried on: the next request answers normally.
        assert client.health()["status"] == "ok"

    def test_slow_response_stalls_then_answers(self, make_service):
        plan = FaultPlan([FaultSpec("http.slow", at=1, delay=0.3)])
        server, client = make_service(client_retries=0, faults=plan)
        t0 = time.monotonic()
        assert client.health()["status"] == "ok"
        assert time.monotonic() - t0 >= 0.25
        assert client.health()  # only the scheduled request stalls
        assert plan.fired_count("http.slow") == 1


# --------------------------------------------------------------------------
# Bounded queue: 429 + Retry-After
# --------------------------------------------------------------------------

class TestOverload:
    def test_full_queue_answers_429_with_retry_after(self, make_service):
        server, client = make_service(client_retries=0, max_pending=1)
        first = client.submit(tiny_manifest(total_time=12 * 3600.0))
        with pytest.raises(ServiceError) as err:
            client.submit({**tiny_manifest(), "seeds": [6]})
        assert err.value.status == 429
        assert err.value.code == "queue-full"
        assert err.value.retry_after is not None and err.value.retry_after > 0
        # Once the backlog drains, the same submission is accepted.
        client.wait(first["id"], timeout=60.0, poll=1.0)
        accepted = client.submit({**tiny_manifest(), "seeds": [6]})
        assert accepted["status"] in ("queued", "running")

    def test_retrying_client_rides_out_the_429(self, make_service):
        server, client = make_service(client_retries=6, max_pending=1)
        client.backoff = 0.2
        first = client.submit(tiny_manifest(total_time=12 * 3600.0))
        # Submitted while the queue is full: the client honors Retry-After
        # and lands the manifest once the first campaign finishes.
        second = client.submit({**tiny_manifest(), "seeds": [7]})
        assert second["id"] != first["id"]
        done = client.wait(second["id"], timeout=60.0, poll=1.0)
        assert done["status"] == "done"


# --------------------------------------------------------------------------
# Torn index appends behind the live service
# --------------------------------------------------------------------------

class TestTornIndex:
    def test_index_append_tear_recovers(self, make_service, tmp_path):
        plan = FaultPlan([FaultSpec("index.append", at=1)])
        server, client = make_service(client_retries=1, faults=plan)
        record = client.submit(tiny_manifest())
        assert client.wait(record["id"], timeout=60.0, poll=1.0)["status"] == "done"
        assert plan.fired_count("index.append") == 1
        assert server.state.index.append_errors == 1
        # The in-memory listing kept the entry despite the torn journal.
        assert len(client.experiments()) == 1
        metrics = client.metrics()
        assert "repro_index_append_errors_total 1" in metrics
        assert "repro_faults_injected_total" in metrics


# --------------------------------------------------------------------------
# Restart resume from the submission journal
# --------------------------------------------------------------------------

class TestRestartResume:
    def test_journaled_unfinished_campaign_resumes(self, make_service, tmp_path):
        journal_path = tmp_path / "service.jsonl"
        # A previous process accepted this campaign and was killed before
        # finishing it: the journal has `submitted` with no `finished`.
        journal_path.write_text(
            json.dumps(
                {
                    "event": "submitted",
                    "id": "c000001",
                    "kind": "campaign",
                    "manifest": tiny_manifest(),
                }
            )
            + "\n"
        )
        server, client = make_service(client_retries=1, journal_path=journal_path)
        assert client.health()["resumed_campaigns"] == 1
        record = client.wait("c000001", timeout=60.0, poll=1.0)
        assert record["status"] == "done"
        assert record["resumed"] is True
        assert "repro_service_resumed_campaigns_total 1" in client.metrics()
        # New ids are seeded past the journaled one — never reissued.
        fresh = client.submit({**tiny_manifest(), "seeds": [8]})
        assert fresh["id"] == "c000002"
        assert fresh["resumed"] is False
        # The finish was journaled: a third boot replays nothing.
        client.wait("c000002", timeout=60.0, poll=1.0)

    def test_invalid_journaled_manifest_fails_cleanly(self, make_service, tmp_path):
        journal_path = tmp_path / "service.jsonl"
        journal_path.write_text(
            json.dumps(
                {
                    "event": "submitted",
                    "id": "c000003",
                    "kind": "campaign",
                    "manifest": {"algorithms": ["no-such-algorithm"], "seeds": [1]},
                }
            )
            + "\n"
        )
        server, client = make_service(client_retries=1, journal_path=journal_path)
        record = client.campaign("c000003")
        assert record["status"] == "failed"
        assert "no longer valid" in record["error"]
        # ... and the failure was journaled, so it won't replay again.
        from repro.service.journal import ServiceJournal

        server.state.close()
        reloaded = ServiceJournal(journal_path)
        assert reloaded.unfinished == []
        reloaded.close()
