"""Shared fixtures for the chaos suite.

Chaos tests run *real* campaigns and a *real* threaded HTTP server under
deterministic fault schedules (:mod:`repro.faults`) and assert the stack
recovers to bit-identical results.  Everything uses the suite-wide tiny
scale so even crash-retry-reexecute flows stay sub-second.
"""

from __future__ import annotations

import threading

import pytest

from repro.service.app import build_server
from repro.service.client import ServiceClient


@pytest.fixture
def make_service(tmp_path):
    """Factory for live fault-injected servers; yields ``(server, client)``
    pairs and tears every one of them down afterwards."""
    live = []

    def make(client_retries: int = 0, **state_kwargs):
        state_kwargs.setdefault("cache_dir", tmp_path / "cache")
        state_kwargs.setdefault("jobs", 1)
        server = build_server(port=0, **state_kwargs)
        thread = threading.Thread(
            target=server.serve_forever, kwargs={"poll_interval": 0.05}, daemon=True
        )
        thread.start()
        host, port = server.server_address[:2]
        client = ServiceClient(
            f"http://{host}:{port}", timeout=15.0,
            retries=client_retries, backoff=0.05,
        )
        live.append((server, thread))
        return server, client

    try:
        yield make
    finally:
        for server, thread in live:
            server.shutdown()
            server.server_close()
            server.state.close()
            thread.join(5)
