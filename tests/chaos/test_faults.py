"""Unit tests for the fault plan itself: scheduling, determinism, the
null object, and (de)serialisation."""

from __future__ import annotations

import pickle

import pytest

from repro.faults import NULL_FAULTS, SITES, FaultPlan, FaultSpec, load_fault_plan


class TestFaultSpec:
    def test_validation(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec("cache.explode")
        with pytest.raises(ValueError, match="1-based"):
            FaultSpec("cache.read", at=0)
        with pytest.raises(ValueError, match="count"):
            FaultSpec("cache.read", count=0)
        with pytest.raises(ValueError, match="delay"):
            FaultSpec("http.slow", delay=-1.0)

    def test_dict_round_trip(self):
        spec = FaultSpec("http.slow", at=3, count=2, key="7", delay=0.5)
        assert FaultSpec.from_dict(spec.to_dict()) == spec
        with pytest.raises(ValueError, match="unknown FaultSpec field"):
            FaultSpec.from_dict({"site": "cache.read", "when": 2})


class TestFaultPlanCheck:
    def test_fires_on_the_nth_check(self):
        plan = FaultPlan([FaultSpec("cache.read", at=3)])
        assert plan.check("cache.read") is None
        assert plan.check("cache.read") is None
        assert plan.check("cache.read") is not None
        assert plan.check("cache.read") is None
        assert plan.fired == [("cache.read", None, 3)]

    def test_count_window_fires_consecutively(self):
        plan = FaultPlan([FaultSpec("worker.crash", at=2, count=2)])
        fired = [plan.check("worker.crash") is not None for _ in range(5)]
        assert fired == [False, True, True, False, False]

    def test_keyed_specs_count_per_key(self):
        plan = FaultPlan([FaultSpec("worker.crash", at=2, key="b")])
        # Global checks of other keys never advance key "b"'s counter.
        assert plan.check("worker.crash", key="a") is None
        assert plan.check("worker.crash", key="a") is None
        assert plan.check("worker.crash", key="b") is None  # b's 1st
        assert plan.check("worker.crash", key="b") is not None  # b's 2nd
        assert plan.fired_count("worker.crash") == 1

    def test_sites_are_independent(self):
        plan = FaultPlan([FaultSpec("cache.read", at=1)])
        assert plan.check("cache.write") is None
        assert plan.check("cache.read") is not None
        assert plan.fired_count() == 1
        assert plan.fired_count("cache.write") == 0

    def test_rejects_non_specs(self):
        with pytest.raises(TypeError):
            FaultPlan([{"site": "cache.read"}])


class TestSeeded:
    def test_same_seed_same_schedule(self):
        kwargs = dict(worker_crashes=3, cache_corruptions=2, torn_appends=1)
        a = FaultPlan.seeded(42, **kwargs)
        b = FaultPlan.seeded(42, **kwargs)
        assert a.to_dict() == b.to_dict()
        assert FaultPlan.seeded(43, **kwargs).to_dict() != a.to_dict()

    def test_counts_land_in_horizon(self):
        plan = FaultPlan.seeded(7, worker_crashes=4, horizon=6)
        ats = [s.at for s in plan.specs]
        assert len(ats) == len(set(ats)) == 4
        assert all(1 <= at <= 6 for at in ats)

    def test_overfull_horizon_rejected(self):
        with pytest.raises(ValueError, match="horizon"):
            FaultPlan.seeded(1, worker_crashes=9, horizon=8)


class TestNullPlan:
    def test_disabled_and_inert(self):
        assert NULL_FAULTS.enabled is False
        assert NULL_FAULTS.check("cache.read") is None
        assert NULL_FAULTS.check("worker.crash", key="0") is None
        assert NULL_FAULTS.fired_count() == 0
        assert NULL_FAULTS.fired == ()

    def test_every_site_is_documented(self):
        # The null object must stay in sync with the site table.
        assert len(SITES) == 7
        for site in SITES:
            assert NULL_FAULTS.check(site) is None


class TestSerialisation:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan.seeded(11, worker_crashes=2, slow_responses=1)
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        loaded = load_fault_plan(path)
        assert loaded.to_dict() == plan.to_dict()

    def test_load_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_fault_plan(bad)
        bad.write_text('{"schema": 99, "specs": []}')
        with pytest.raises(ValueError, match="schema"):
            load_fault_plan(bad)
        bad.write_text('{"schema": 1, "specs": "nope"}')
        with pytest.raises(ValueError, match="specs"):
            load_fault_plan(bad)

    def test_pickle_resets_counters(self):
        plan = FaultPlan([FaultSpec("cache.read", at=1)])
        assert plan.check("cache.read") is not None
        copy = pickle.loads(pickle.dumps(plan))
        assert copy.specs == plan.specs
        assert copy.fired == []
        assert copy.check("cache.read") is not None
