"""Bit-exactness tests for :mod:`repro.sim.fastrand`.

Every fast path must replicate NumPy's draws *value- and state-exactly*:
after any interleaving of sampler calls and (sync'd) direct ``Generator``
calls, an identically seeded plain ``Generator`` must produce the same
values from the same stream position.  These tests are the contract that
keeps the gossip golden fingerprints replayable on any NumPy whose bounded
generation matches today's (a future NumPy that changes the algorithm
would fail here first, loudly).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.fastrand import FastSampler
from repro.sim.rng import spawn_generator

SHAPES = [
    (16, 8), (12, 6), (16, 4), (5, 4), (20, 1), (7, 7), (33, 16),
    (3, 2), (2, 1), (9, 8), (17, 5), (100, 7), (2, 2), (64, 33), (1, 1),
]


def _pair(seed):
    """Identically seeded (reference Generator, FastSampler) pair."""
    return np.random.default_rng(seed), FastSampler(np.random.default_rng(seed))


@pytest.mark.parametrize("seed", range(25))
def test_choice_indices_matches_numpy(seed):
    ref, fast = _pair(seed)
    for n, k in SHAPES:
        expected = [int(x) for x in ref.choice(n, size=k, replace=False)]
        assert fast.choice_indices(n, k) == expected, (n, k)
    # stream positions stayed aligned throughout
    assert int(ref.integers(0, 10**6)) == fast.integers(10**6)


@pytest.mark.parametrize("seed", range(25))
def test_integers_and_pick_match_numpy(seed):
    ref, fast = _pair(seed)
    seq = list(range(50))
    for n in (2, 3, 5, 7, 12, 16, 100, 1000, 2**31):
        assert fast.integers(n) == int(ref.integers(0, n))
        arr = np.asarray(seq[:n] if n <= 50 else seq, dtype=np.int64)
        assert fast.pick(list(arr)) == int(ref.choice(arr))


def test_integers_range_of_one_consumes_nothing():
    ref, fast = _pair(99)
    assert fast.integers(1) == 0
    assert fast.integers(0) == 0
    # NumPy consumes nothing for an empty range either: streams still equal.
    assert fast.integers(17) == int(ref.integers(0, 17))


@pytest.mark.parametrize("seed", range(10))
def test_vector_choice_over_array_matches(seed):
    """newscast bootstrap: choice(ids, size=m, replace=False) == ids[idx]."""
    ref, fast = _pair(seed)
    ids = np.arange(100, 140, dtype=np.int64)
    expected = [int(x) for x in ref.choice(ids, size=9, replace=False)]
    got = [int(ids[t]) for t in fast.choice_indices(len(ids), 9)]
    assert got == expected


@pytest.mark.parametrize("seed", range(10))
def test_shuffle_sync_keeps_streams_aligned(seed):
    ref, fast = _pair(seed)
    # Put the mirror mid-buffer (odd number of 32-bit draws), then shuffle.
    assert fast.integers(7) == int(ref.integers(0, 7))
    a = np.arange(41)
    b = np.arange(41)
    ref.shuffle(a)
    fast.shuffle(b)
    assert list(a) == list(b)
    assert fast.choice_indices(11, 5) == [
        int(x) for x in ref.choice(11, size=5, replace=False)
    ]


def test_interleaving_every_api(seed=7):
    ref, fast = _pair(seed)
    rnd = np.random.default_rng(1234)  # independent driver
    seq = list(range(200))
    for _ in range(300):
        op = int(rnd.integers(0, 4))
        n = int(rnd.integers(2, 40))
        if op == 0:
            assert fast.integers(n) == int(ref.integers(0, n))
        elif op == 1:
            k = int(rnd.integers(1, n + 1))
            assert fast.choice_indices(n, k) == [
                int(x) for x in ref.choice(n, size=k, replace=False)
            ]
        elif op == 2:
            assert fast.pick(seq[:n]) == seq[int(ref.integers(0, n))]
        else:
            a = np.arange(n)
            b = np.arange(n)
            ref.shuffle(a)
            fast.shuffle(b)
            assert list(a) == list(b)


def test_spawned_streams_use_fast_path():
    """RngHub streams are PCG64-family: the emulation must be active."""
    gen = spawn_generator(3, "newscast")
    fast = FastSampler(gen)
    assert not fast.native
    ref = spawn_generator(3, "newscast")
    assert fast.choice_indices(14, 6) == [
        int(x) for x in ref.choice(14, size=6, replace=False)
    ]


@pytest.mark.parametrize("seed", range(25))
def test_integers_batch_matches_scalar_numpy_stream(seed):
    """A batch of ``size`` draws is word-for-word the scalar sequence."""
    ref, fast = _pair(seed)
    for n, size in [(2, 1), (5, 3), (17, 40), (999, 129), (40, 64), (3, 200)]:
        expected = [int(ref.integers(0, n)) for _ in range(size)]
        assert fast.integers_batch(n, size).tolist() == expected, (n, size)
    # stream positions stayed aligned throughout
    assert fast.integers(10**6) == int(ref.integers(0, 10**6))


@pytest.mark.parametrize("seed", range(25))
def test_random_batch_matches_numpy(seed):
    ref, fast = _pair(seed)
    for size in (1, 7, 64, 129):
        assert fast.random_batch(size).tolist() == ref.random(size).tolist()
    # doubles bypass the uint32 buffer: a buffered bounded draw before and
    # after must stay aligned too
    assert fast.integers(13) == int(ref.integers(0, 13))
    assert fast.random_batch(5).tolist() == ref.random(5).tolist()
    assert fast.integers(13) == int(ref.integers(0, 13))


def test_integers_batch_rejection_path_is_exact():
    """Near-2**32 ranges make Lemire reject ~50% of words, forcing the
    sequential tail replay; it must still match the scalar stream."""
    n = 2**32 - 3
    ref, fast = _pair(11)
    expected = [int(ref.integers(0, n)) for _ in range(100)]
    assert fast.integers_batch(n, 100).tolist() == expected
    assert fast.integers(17) == int(ref.integers(0, 17))


def test_batch_of_zero_or_degenerate_range_consumes_nothing():
    ref, fast = _pair(4)
    assert fast.integers_batch(7, 0).tolist() == []
    assert fast.integers_batch(1, 5).tolist() == [0] * 5
    assert fast.random_batch(0).tolist() == []
    assert fast.integers(23) == int(ref.integers(0, 23))


@pytest.mark.parametrize("seed", range(15))
def test_interleaved_batch_and_scalar_draws_with_rewind(seed):
    """The PR 8 contract: randomized interleavings of the batched round
    draws (integers_batch / random_batch), the scalar paths, and the
    ``advance(-n)``-rewinding sync used by delegated NumPy calls stay
    value- and state-exact against a plain ``numpy.random.Generator``.
    """
    ref, fast = _pair(seed)
    rnd = np.random.default_rng(seed + 4321)  # independent driver
    for _ in range(120):
        op = int(rnd.integers(0, 6))
        n = int(rnd.integers(2, 50))
        if op == 0:
            assert fast.integers(n) == int(ref.integers(0, n))
        elif op == 1:
            size = int(rnd.integers(1, 100))
            expected = [int(ref.integers(0, n)) for _ in range(size)]
            assert fast.integers_batch(n, size).tolist() == expected
        elif op == 2:
            size = int(rnd.integers(1, 100))
            assert fast.random_batch(size).tolist() == ref.random(size).tolist()
        elif op == 3:
            k = int(rnd.integers(1, n + 1))
            assert fast.choice_indices(n, k) == [
                int(x) for x in ref.choice(n, size=k, replace=False)
            ]
        elif op == 4:
            a = np.arange(n)
            b = np.arange(n)
            ref.shuffle(a)
            fast.shuffle(b)
            assert list(a) == list(b)
        else:
            # An explicit sync round-trip mid-stream: rewinds the prefetch
            # via bit_generator.advance(-unconsumed), pushes the buffer
            # mirror, and reads it back — the exact path every delegated
            # NumPy call takes, here interleaved at a random stream offset.
            fast.sync_to_numpy()
            assert int(fast.generator.integers(0, n)) == int(ref.integers(0, n))
            fast.sync_from_numpy()
    # final stream position identical
    assert fast.integers(10**6) == int(ref.integers(0, 10**6))


def test_rejection_path_is_exact():
    """Force the Lemire rejection branch with a near-2**32 range.

    For rng_excl just under 2**32 the rejection probability is ~50%, so a
    few hundred draws exercise the redraw loop (impossible to hit with
    gossip-sized ranges, but the branch must still be stream-exact).
    """
    n = 2**32 - 3
    ref, fast = _pair(5)
    for _ in range(200):
        assert fast.integers(n) == int(ref.integers(0, n))
    assert fast.choice_indices(9, 4) == [
        int(x) for x in ref.choice(9, size=4, replace=False)
    ]
