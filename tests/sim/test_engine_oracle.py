"""Randomized oracle test: the indexed entry-pool queue vs the legacy heap.

``_LegacySimulator`` below is a verbatim reference copy of the tuple-heap
engine that shipped before the entry-pool rewrite.  Both engines are driven
with identical randomized schedule/cancel/reschedule/step sequences and
must agree on *everything observable*: pop order (via fire logs), the
simulated clock at each firing, seq consumption, ``events_executed``,
``pending()`` and cancel-after-pop behavior.
"""

from __future__ import annotations

import heapq
import random

import pytest

from repro.sim.engine import Event, Simulator, SimulatorError


class _LegacyEvent:
    __slots__ = ("time", "seq", "callback", "cancelled", "label")

    def __init__(self, time, seq, callback, label=""):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label

    def cancel(self):
        self.cancelled = True


class _LegacySimulator:
    """The pre-rewrite heap engine, kept as the behavioral oracle."""

    def __init__(self, start_time=0.0):
        self._now = float(start_time)
        self._heap = []
        self._seq = 0
        self.events_executed = 0

    @property
    def now(self):
        return self._now

    def pending(self):
        return sum(1 for _, _, ev in self._heap if not ev.cancelled)

    def schedule(self, delay, callback, label=""):
        if delay < 0:
            raise SimulatorError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(self, time, callback, label=""):
        if time < self._now:
            raise SimulatorError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        ev = _LegacyEvent(time, self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._heap, (ev.time, ev.seq, ev))
        return ev

    def reschedule(self, event, delay):
        if delay < 0:
            raise SimulatorError(f"cannot schedule into the past (delay={delay})")
        event.time = self._now + delay
        event.seq = self._seq
        event.cancelled = False
        self._seq += 1
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    def step(self):
        while self._heap:
            time, _, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = time
            self.events_executed += 1
            ev.callback()
            return True
        return False

    def run(self, until=None):
        heap = self._heap
        while heap:
            time, _, ev = heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(heap)
            if ev.cancelled:
                continue
            self._now = time
            self.events_executed += 1
            ev.callback()
        if until is not None and self._now < until:
            self._now = until


class _Driver:
    """Applies one shared random operation script to one engine."""

    def __init__(self, sim):
        self.sim = sim
        self.log = []
        self.handles = []  # events scheduled so far, fired or not
        self.periodic_rearms = 0

    def fire(self, tag, handle_idx, periodic):
        ev = self.handles[handle_idx]
        self.log.append((tag, round(self.sim.now, 9), ev.seq))
        if periodic and self.periodic_rearms < 40:
            self.periodic_rearms += 1
            self.sim.reschedule(ev, 3.25)

    def apply(self, ops):
        for op in ops:
            kind = op[0]
            if kind == "schedule":
                _, delay, tag, periodic = op
                idx = len(self.handles)
                ev = self.sim.schedule(
                    delay, lambda i=idx, t=tag, p=periodic: self.fire(t, i, p), label=tag
                )
                self.handles.append(ev)
                self.log.append(("scheduled", ev.seq))
            elif kind == "schedule_at":
                _, at, tag = op
                idx = len(self.handles)
                try:
                    ev = self.sim.schedule_at(
                        at, lambda i=idx, t=tag: self.fire(t, i, False), label=tag
                    )
                except SimulatorError:
                    self.log.append(("rejected", round(at, 9)))
                    continue
                self.handles.append(ev)
                self.log.append(("scheduled", ev.seq))
            elif kind == "cancel":
                _, which = op
                if self.handles:
                    # Deterministic pick over the shared handle list; may hit
                    # fired events (cancel-after-pop must be a no-op).
                    self.handles[which % len(self.handles)].cancel()
                    self.log.append(("cancelled", which % len(self.handles)))
            elif kind == "step":
                ran = self.sim.step()
                self.log.append(("step", ran, round(self.sim.now, 9)))
            elif kind == "run_until":
                _, horizon = op
                self.sim.run(until=self.sim.now + horizon)
                self.log.append(("ran", round(self.sim.now, 9)))
            elif kind == "pending":
                self.log.append(("pending", self.sim.pending()))
        self.sim.run()
        self.log.append(("drained", round(self.sim.now, 9), self.sim.events_executed))


def _random_script(rnd, n_ops):
    ops = []
    for _ in range(n_ops):
        r = rnd.random()
        if r < 0.45:
            ops.append((
                "schedule",
                round(rnd.uniform(0.0, 20.0), 3),
                f"ev{len(ops)}",
                rnd.random() < 0.15,  # some events periodically re-arm
            ))
        elif r < 0.55:
            # Absolute-time scheduling, sometimes intentionally in the past.
            ops.append(("schedule_at", round(rnd.uniform(-5.0, 60.0), 3), f"at{len(ops)}"))
        elif r < 0.75:
            ops.append(("cancel", rnd.randrange(0, 64)))
        elif r < 0.85:
            ops.append(("step",))
        elif r < 0.95:
            ops.append(("run_until", round(rnd.uniform(0.0, 15.0), 3)))
        else:
            ops.append(("pending",))
    return ops


@pytest.mark.parametrize("seed", range(30))
def test_indexed_queue_matches_legacy_heap(seed):
    rnd = random.Random(seed)
    ops = _random_script(rnd, 120)
    new = _Driver(Simulator())
    old = _Driver(_LegacySimulator())
    new.apply(ops)
    old.apply(ops)
    assert new.log == old.log
    assert new.sim.events_executed == old.sim.events_executed
    # seq consumption is part of the contract (same-instant determinism).
    assert [ev.seq for ev in new.handles] == [ev.seq for ev in old.handles]
    assert new.sim._seq == old.sim._seq


def test_cancel_after_pop_is_noop_and_entry_not_leaked():
    sim = Simulator()
    fired = []
    ev = sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, lambda: fired.append("b"))
    assert sim.step()
    ev.cancel()  # already fired: must not disturb the queue
    assert sim.step()
    assert fired == ["a", "b"]
    assert sim.pending() == 0


def test_entry_pool_recycles_slots():
    sim = Simulator()
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert len(sim._free) == 5
    # Refilling the queue drains the pool instead of allocating.
    for _ in range(5):
        sim.schedule(1.0, lambda: None)
    assert len(sim._free) == 0
    sim.run()
    assert sim.events_executed == 10


def test_pool_entries_do_not_pin_events():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim._free and all(entry[2] is None for entry in sim._free)


def test_reschedule_reuses_event_object():
    sim = Simulator()
    fired = []
    holder = {}

    def cb():
        fired.append(sim.now)
        if len(fired) < 3:
            assert sim.reschedule(holder["ev"], 2.0) is holder["ev"]

    holder["ev"] = sim.schedule(1.0, cb)
    sim.run()
    assert fired == [1.0, 3.0, 5.0]
    assert isinstance(holder["ev"], Event)
