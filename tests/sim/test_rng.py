"""Tests for deterministic named random streams."""

from __future__ import annotations

import numpy as np

from repro.sim.rng import RngHub, spawn_generator


def test_same_seed_same_name_reproduces():
    a = spawn_generator(42, "gossip").random(16)
    b = spawn_generator(42, "gossip").random(16)
    assert np.array_equal(a, b)


def test_different_names_decorrelate():
    a = spawn_generator(42, "gossip").random(16)
    b = spawn_generator(42, "churn").random(16)
    assert not np.array_equal(a, b)


def test_different_seeds_decorrelate():
    a = spawn_generator(1, "gossip").random(16)
    b = spawn_generator(2, "gossip").random(16)
    assert not np.array_equal(a, b)


def test_hub_caches_streams():
    hub = RngHub(7)
    assert hub.stream("x") is hub.stream("x")


def test_hub_streams_match_spawn_generator():
    hub = RngHub(7)
    a = hub.stream("topology").random(8)
    b = spawn_generator(7, "topology").random(8)
    assert np.array_equal(a, b)


def test_fork_changes_seed_deterministically():
    a = RngHub(7).fork("rep0")
    b = RngHub(7).fork("rep0")
    c = RngHub(7).fork("rep1")
    assert a.seed == b.seed
    assert a.seed != c.seed


def test_stream_isolation_under_extra_draws():
    """Drawing more from one stream must not shift another stream."""
    hub1 = RngHub(11)
    hub1.stream("a").random(1000)
    x1 = hub1.stream("b").random(4)

    hub2 = RngHub(11)
    x2 = hub2.stream("b").random(4)
    assert np.array_equal(x1, x2)
