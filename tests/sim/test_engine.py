"""Unit tests for the discrete-event kernel."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Simulator, SimulatorError


class TestScheduling:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=10.0).now == 10.0

    def test_schedule_relative_delay(self):
        sim = Simulator()
        fired = []
        sim.schedule(3.5, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [3.5]

    def test_schedule_absolute_time(self):
        sim = Simulator()
        fired = []
        sim.schedule_at(7.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [7.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulatorError):
            Simulator().schedule(-1.0, lambda: None)

    def test_past_absolute_time_rejected(self):
        sim = Simulator(start_time=5.0)
        with pytest.raises(SimulatorError):
            sim.schedule_at(4.0, lambda: None)

    def test_zero_delay_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0.0, lambda: fired.append(True))
        sim.run()
        assert fired == [True]

    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(5.0, lambda: order.append("b"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(9.0, lambda: order.append("c"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        """Events at the same instant run in scheduling order (determinism)."""
        sim = Simulator()
        order = []
        for k in range(10):
            sim.schedule(2.0, lambda k=k: order.append(k))
        sim.run()
        assert order == list(range(10))

    def test_callback_can_schedule_more(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append(sim.now)
            sim.schedule(2.0, lambda: fired.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert fired == [1.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(True))
        ev.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        ev.cancel()
        ev.cancel()
        sim.run()

    def test_cancel_from_another_callback(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(5.0, lambda: fired.append("late"))
        sim.schedule(1.0, ev.cancel)
        sim.run()
        assert fired == []

    def test_pending_excludes_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending() == 2
        ev.cancel()
        assert sim.pending() == 1


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.now == 5.0

    def test_clock_advances_to_horizon_even_without_events(self):
        sim = Simulator()
        sim.run(until=42.0)
        assert sim.now == 42.0

    def test_remaining_events_run_on_second_call(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        sim.run(until=20.0)
        assert fired == [1, 10]

    def test_event_exactly_at_horizon_runs(self):
        sim = Simulator()
        fired = []
        sim.schedule(5.0, lambda: fired.append(True))
        sim.run(until=5.0)
        assert fired == [True]

    def test_run_not_reentrant(self):
        sim = Simulator()

        def nested():
            with pytest.raises(SimulatorError):
                sim.run()

        sim.schedule(1.0, nested)
        sim.run()

    def test_events_executed_counter(self):
        sim = Simulator()
        for _ in range(7):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_executed == 7


class TestStep:
    def test_step_runs_single_event(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_step_on_empty_queue(self):
        assert Simulator().step() is False

    def test_step_skips_cancelled(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(1))
        sim.schedule(2.0, lambda: fired.append(2))
        ev.cancel()
        assert sim.step() is True
        assert fired == [2]


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=50))
@settings(max_examples=50, deadline=None)
def test_property_execution_times_are_sorted(delays):
    """Whatever the scheduling order, callbacks observe nondecreasing time."""
    sim = Simulator()
    seen = []
    for d in delays:
        sim.schedule(d, lambda: seen.append(sim.now))
    sim.run()
    assert seen == sorted(seen)
    assert len(seen) == len(delays)


@given(
    delays=st.lists(
        st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30
    ),
    horizon=st.floats(min_value=0.0, max_value=120.0),
)
@settings(max_examples=50, deadline=None)
def test_property_run_until_partitions_events(delays, horizon):
    """run(until=h) fires exactly the events with time <= h."""
    sim = Simulator()
    fired = []
    for d in delays:
        sim.schedule(d, lambda d=d: fired.append(d))
    sim.run(until=horizon)
    assert sorted(fired) == sorted(d for d in delays if d <= horizon)
