"""Tests for the cycle-driven PeriodicActivity helper."""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator
from repro.sim.periodic import PeriodicActivity


def test_fires_every_period():
    sim = Simulator()
    times = []
    PeriodicActivity(sim, 10.0, lambda c: times.append(sim.now))
    sim.run(until=35.0)
    assert times == [10.0, 20.0, 30.0]


def test_cycle_indices_increment():
    sim = Simulator()
    cycles = []
    PeriodicActivity(sim, 5.0, cycles.append)
    sim.run(until=20.0)
    assert cycles == [0, 1, 2, 3]


def test_phase_zero_fires_immediately():
    sim = Simulator()
    times = []
    PeriodicActivity(sim, 10.0, lambda c: times.append(sim.now), phase=0.0)
    sim.run(until=25.0)
    assert times == [0.0, 10.0, 20.0]


def test_custom_phase_offsets_first_firing():
    sim = Simulator()
    times = []
    PeriodicActivity(sim, 10.0, lambda c: times.append(sim.now), phase=3.0)
    sim.run(until=25.0)
    assert times == [3.0, 13.0, 23.0]


def test_stop_prevents_future_firings():
    sim = Simulator()
    times = []
    act = PeriodicActivity(sim, 10.0, lambda c: times.append(sim.now))
    sim.schedule(25.0, act.stop)
    sim.run(until=60.0)
    assert times == [10.0, 20.0]


def test_stop_from_own_callback():
    sim = Simulator()
    fired = []
    act = PeriodicActivity(sim, 5.0, lambda c: (fired.append(c), act.stop()))
    sim.run(until=60.0)
    assert fired == [0]


def test_nonpositive_period_rejected():
    with pytest.raises(ValueError):
        PeriodicActivity(Simulator(), 0.0, lambda c: None)
    with pytest.raises(ValueError):
        PeriodicActivity(Simulator(), -5.0, lambda c: None)


def test_two_activities_same_instant_run_in_creation_order():
    """The grid relies on gossip (created first) running before the
    scheduler when both tick at the same timestamp."""
    sim = Simulator()
    order = []
    PeriodicActivity(sim, 10.0, lambda c: order.append("gossip"))
    PeriodicActivity(sim, 10.0, lambda c: order.append("sched"))
    sim.run(until=10.0)
    assert order == ["gossip", "sched"]


def test_callback_exception_does_not_kill_future_cycles():
    sim = Simulator()
    seen = []

    def flaky(c):
        seen.append(c)
        if c == 0:
            raise RuntimeError("transient")

    PeriodicActivity(sim, 10.0, flaky)
    with pytest.raises(RuntimeError):
        sim.run(until=10.0)
    sim.run(until=30.0)  # the activity re-armed itself before raising
    assert seen == [0, 1, 2]
