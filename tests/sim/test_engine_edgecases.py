"""Edge cases of the event kernel the hot-path optimizations lean on.

The lazy-deletion and allocation-free-re-arm machinery only works if the
kernel's corner semantics are pinned down: cancelling an event that already
popped, zero-delay self-rescheduling, strict ``seq`` ordering at equal
instants, past scheduling, and ``reschedule`` reuse.
"""

from __future__ import annotations

import pytest

from repro.sim.engine import Simulator, SimulatorError
from repro.sim.periodic import PeriodicActivity


class TestCancelAfterPop:
    def test_cancel_own_event_during_callback_is_noop(self):
        """An event may be cancelled while it is executing (it already
        popped): the callback still completes, nothing re-fires."""
        sim = Simulator()
        fired = []
        holder = {}

        def cb():
            holder["ev"].cancel()  # cancel *this* event mid-flight
            fired.append(sim.now)

        holder["ev"] = sim.schedule(1.0, cb)
        sim.run()
        assert fired == [1.0]
        assert sim.events_executed == 1

    def test_cancel_after_run_completes_is_noop(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.run()
        ev.cancel()  # already fired; must not blow up or corrupt the queue
        assert sim.pending() == 0
        sim.run()  # idempotent
        assert sim.events_executed == 1

    def test_cancelled_then_rescheduled_event_fires_fresh(self):
        """reschedule() after a cancel re-arms the same object cleanly."""
        sim = Simulator()
        fired = []
        ev = sim.schedule(1.0, lambda: fired.append(sim.now))
        ev.cancel()
        sim.run()
        assert fired == []
        sim.reschedule(ev, 2.0)
        assert not ev.cancelled
        sim.run()
        assert fired == [2.0]


class TestZeroDelaySelfRescheduling:
    def test_zero_delay_runs_after_events_already_queued_at_now(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: (order.append("a"), sim.schedule(0.0, lambda: order.append("a0"))))
        sim.schedule(1.0, lambda: order.append("b"))
        sim.run()
        # The zero-delay event lands *after* everything already scheduled
        # for t=1.0, by seq order.
        assert order == ["a", "b", "a0"]

    def test_zero_delay_chain_terminates_and_keeps_clock(self):
        sim = Simulator()
        counter = {"n": 0}

        def reschedule_self():
            counter["n"] += 1
            if counter["n"] < 50:
                sim.schedule(0.0, reschedule_self)

        sim.schedule(5.0, reschedule_self)
        sim.run()
        assert counter["n"] == 50
        assert sim.now == 5.0
        assert sim.events_executed == 50

    def test_periodic_zero_phase_with_zero_delay_events(self):
        sim = Simulator()
        seen = []
        PeriodicActivity(sim, 10.0, lambda c: seen.append((sim.now, c)), phase=0.0)
        sim.run(until=25.0)
        assert seen == [(0.0, 0), (10.0, 1), (20.0, 2)]


class TestSameInstantSeqOrdering:
    def test_interleaved_sources_ordered_by_seq(self):
        sim = Simulator()
        order = []
        sim.schedule(2.0, lambda: order.append(0))        # seq 0
        sim.schedule_at(2.0, lambda: order.append(1))     # seq 1
        sim.schedule(1.0, lambda: sim.schedule(1.0, lambda: order.append(2)))  # seq 3 at t=2
        sim.schedule(2.0, lambda: order.append(3))        # seq 3? no: seq assigned at schedule time
        sim.run()
        # seqs: 0,1,2(inner scheduled later),3 — inner event was created at
        # t=1 so it carries the *highest* seq and runs last.
        assert order == [0, 1, 3, 2]

    def test_reschedule_consumes_seq_like_schedule(self):
        """reschedule() must keep FIFO fairness with fresh events."""
        sim = Simulator()
        order = []
        activity = PeriodicActivity(sim, 1.0, lambda c: order.append(("p", c)))
        sim.schedule(2.0, lambda: order.append(("x",)))
        sim.run(until=2.0)
        # At t=2 the periodic event (re-armed at t=1, earlier seq than...)
        # — the plain event was scheduled at t=0 with seq 1, the re-arm
        # happened at t=1 with a later seq, so the plain event runs first.
        assert order == [("p", 0), ("x",), ("p", 1)]
        activity.stop()


class TestSchedulingInThePast:
    def test_negative_delay_raises(self):
        sim = Simulator()
        with pytest.raises(SimulatorError, match="past"):
            sim.schedule(-0.001, lambda: None)

    def test_absolute_time_before_now_raises(self):
        sim = Simulator(start_time=10.0)
        with pytest.raises(SimulatorError, match="past"):
            sim.schedule_at(9.999, lambda: None)

    def test_negative_reschedule_raises(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(SimulatorError, match="past"):
            sim.reschedule(ev, -1.0)

    def test_past_error_raised_from_inside_callback(self):
        sim = Simulator()

        def cb():
            sim.schedule_at(sim.now - 1.0, lambda: None)

        sim.schedule(5.0, cb)
        with pytest.raises(SimulatorError, match="past"):
            sim.run()


class TestRescheduleReuse:
    def test_periodic_reuses_one_event_object(self):
        """The allocation-free re-arm really does reuse the Event."""
        sim = Simulator()
        events = []
        activity = PeriodicActivity(sim, 1.0, lambda c: events.append(activity._event))
        sim.run(until=5.0)
        assert len(events) == 5
        assert len({id(e) for e in events}) == 1

    def test_rescheduled_event_updates_time_and_seq(self):
        sim = Simulator()
        ev = sim.schedule(1.0, lambda: None)
        first_seq = ev.seq
        sim.run()
        sim.reschedule(ev, 3.0)
        assert ev.time == 4.0
        assert ev.seq > first_seq
        fired_at = []
        ev.callback = lambda: fired_at.append(sim.now)
        sim.run()
        assert fired_at == [4.0]
