"""Availability-trace save/load and replay determinism."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.availability import (
    AvailabilityEvent,
    load_availability_trace,
    save_availability_trace,
)
from repro.experiments.campaign import result_digest
from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem
from repro.workload.scenarios import apply_scenario


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError, match="negative time"):
            AvailabilityEvent(-1.0, 3, "leave")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown availability event kind"):
            AvailabilityEvent(1.0, 3, "explode")


class TestRoundTrip:
    def test_save_load_identity(self, tmp_path):
        events = [
            AvailabilityEvent(0.0, 5, "leave"),
            AvailabilityEvent(0.0, 6, "leave"),
            AvailabilityEvent(90.5, 5, "join"),
        ]
        path = tmp_path / "trace.json"
        save_availability_trace(events, path)
        assert load_availability_trace(path) == events

    def test_numpy_scalars_normalized_on_save(self, tmp_path):
        """np.int64/np.float64 must serialize as plain JSON numbers and
        come back as Python int/float."""
        events = [
            AvailabilityEvent(np.float64(12.5), int(np.int64(7)), "leave"),
        ]
        path = tmp_path / "trace.json"
        save_availability_trace(
            [AvailabilityEvent(float(e.time), int(e.node), e.kind) for e in events],
            path,
        )
        [loaded] = load_availability_trace(path)
        assert type(loaded.node) is int
        assert type(loaded.time) is float
        raw = json.loads(path.read_text())
        assert raw["events"] == [[12.5, 7, "leave"]]

    def test_save_coerces_numpy_event_fields(self, tmp_path):
        # Even if a caller hands raw numpy-typed events, save() coerces.
        ev = AvailabilityEvent(np.float64(3.0), 4, "join")
        path = tmp_path / "trace.json"
        save_availability_trace([ev], path)
        [loaded] = load_availability_trace(path)
        assert loaded == AvailabilityEvent(3.0, 4, "join")


class TestLoadRejections:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ValueError, match="not found"):
            load_availability_trace(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            load_availability_trace(p)

    def test_wrong_schema(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"schema": 99, "events": []}))
        with pytest.raises(ValueError, match="unsupported trace schema"):
            load_availability_trace(p)

    def test_non_monotone_times(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps(
            {"schema": 1, "events": [[10.0, 3, "leave"], [5.0, 3, "join"]]}
        ))
        with pytest.raises(ValueError, match="back in time"):
            load_availability_trace(p)

    def test_non_integer_node(self, tmp_path):
        p = tmp_path / "bad.json"
        p.write_text(json.dumps({"schema": 1, "events": [[10.0, "x", "leave"]]}))
        with pytest.raises(ValueError, match="non-integer node"):
            load_availability_trace(p)


class TestReplayDeterminism:
    def test_session_run_replays_bit_identically_through_trace_model(self, tmp_path):
        """Record the availability events of a Weibull-session run, replay
        them through the trace model: the *entire simulated outcome* must
        be bit-identical (same kills at the same instants, same recovery,
        same metrics) — the availability analogue of workload trace
        replay."""
        base = ExperimentConfig(
            algorithm="dsmf", seed=2, n_nodes=30, load_factor=1,
            total_time=5 * 3600.0, task_range=(2, 8),
        )
        cfg = apply_scenario(base, "weibull-sessions")
        original = P2PGridSystem(cfg)
        result = original.run()
        assert original.availability_events, "session run produced no churn"

        path = tmp_path / "trace.json"
        save_availability_trace(original.availability_events, path)

        replay_cfg = apply_scenario(base, "trace-churn").with_(
            churn_mode=cfg.churn_mode,
            recovery_policy=cfg.recovery_policy,
            availability_path=str(path),
        )
        replay = P2PGridSystem(replay_cfg)
        replay_result = replay.run()
        assert result_digest(replay_result) == result_digest(result)
        assert replay.availability_events == original.availability_events

    def test_trace_events_beyond_horizon_are_dropped(self, tmp_path):
        path = tmp_path / "trace.json"
        save_availability_trace(
            [
                AvailabilityEvent(60.0, 29, "leave"),
                AvailabilityEvent(1e9, 29, "join"),  # far past the horizon
            ],
            path,
        )
        cfg = ExperimentConfig(
            algorithm="dsmf", seed=1, n_nodes=30, load_factor=1,
            total_time=2 * 3600.0, task_range=(2, 4),
            churn_model="trace", availability_path=str(path),
        )
        system = P2PGridSystem(cfg)
        result = system.run()
        assert result.n_departures == 1
        assert result.n_revivals == 0
        assert not system.nodes[29].alive
