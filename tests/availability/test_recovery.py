"""Recovery-policy semantics: fail, reschedule, checkpoint."""

from __future__ import annotations

import pytest

from repro.availability.recovery import (
    CheckpointRecovery,
    make_recovery_policy,
    recovery_policy_names,
)
from repro.experiments.config import ExperimentConfig
from repro.grid.state import WorkflowStatus
from repro.grid.system import P2PGridSystem


def _config(recovery: str, tmp_path=None, **kw):
    """A fail-mode config with volatile nodes but *no* background churn:
    an empty availability trace activates the volatile population while
    leaving every disconnection to the test's own probe."""
    base = dict(
        algorithm="dsmf",
        n_nodes=24,
        load_factor=2,
        total_time=24 * 3600.0,
        seed=3,
        task_range=(4, 16),
        data_range=(2000.0, 8000.0),  # big payloads -> long transfers
        churn_mode="fail",
        recovery_policy=recovery,
    )
    if tmp_path is not None and "churn_model" not in kw:
        from repro.availability import save_availability_trace

        trace = tmp_path / "empty_trace.json"
        save_availability_trace([], trace)
        base.update(churn_model="trace", availability_path=str(trace))
    base.update(kw)
    return ExperimentConfig(**base)


def _kill_first_busy_node(system):
    """In-sim probe: kill the first node caught with resident dispatches
    and transfers in flight (exactly how a churn model operates), then
    snapshot the owning workflows' state."""
    captured: dict = {}

    def probe():
        if captured:
            return
        for node in system.nodes:
            if (
                node.alive
                and not node.is_home
                and system.transfers.active_count(node.nid) > 0
                and (node.ready or node.running is not None)
            ):
                resident = list(node.ready) + (
                    [node.running] if node.running else []
                )
                captured["node"] = node
                captured["lost"] = [(d.wid, d.tid) for d in resident]
                captured["finished_before"] = {
                    wid: dict(system.executions[wid].finished)
                    for wid, _ in captured["lost"]
                }
                system.kill_node(node.nid)
                captured["post"] = {
                    (wid, tid): (
                        system.executions[wid].status,
                        tid in system.executions[wid].schedule_points,
                        tid in system.executions[wid].dispatched,
                    )
                    for wid, tid in captured["lost"]
                }
                captured["finished_after"] = {
                    wid: dict(system.executions[wid].finished)
                    for wid, _ in captured["lost"]
                }
                # A second kill must be a strict no-op (no double re-entry).
                before = {
                    wid: set(system.executions[wid].schedule_points)
                    for wid, _ in captured["lost"]
                }
                system.kill_node(node.nid)
                captured["idempotent"] = all(
                    set(system.executions[wid].schedule_points) == pts
                    for wid, pts in before.items()
                )
                return
        system.sim.schedule(60.0, probe, label="probe")

    system.sim.schedule(60.0, probe, label="probe")
    result = system.run()
    return captured, result


class TestRegistry:
    def test_names(self):
        assert recovery_policy_names() == ["checkpoint", "fail", "reschedule"]

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown recovery_policy"):
            make_recovery_policy("nope")
        with pytest.raises(ValueError, match="unknown recovery_policy"):
            ExperimentConfig(recovery_policy="nope")

    def test_legacy_flag_promotes_to_reschedule(self):
        cfg = ExperimentConfig(reschedule_failed=True)
        assert cfg.recovery_policy == "reschedule"

    def test_legacy_flag_does_not_override_explicit_policy(self):
        cfg = ExperimentConfig(reschedule_failed=True, recovery_policy="checkpoint")
        assert cfg.recovery_policy == "checkpoint"


class TestRescheduleExactlyOnce:
    def test_midtransfer_loss_reenters_each_task_once(self, tmp_path):
        system = P2PGridSystem(_config("reschedule", tmp_path))
        captured, result = _kill_first_busy_node(system)
        assert captured, "probe never found a busy volatile node"
        assert captured["lost"]
        for key, (status, is_sp, is_dispatched) in captured["post"].items():
            # Still running, re-entered the schedule-point set exactly once
            # (it is a set), and no longer counted as dispatched.
            assert status is WorkflowStatus.RUNNING
            assert is_sp
            assert not is_dispatched
        assert captured["idempotent"]
        assert result.n_tasks_lost == len(captured["lost"])
        # Recovered = re-entered AND finished; with a 24 h horizon every
        # re-entered task of this workload completes.
        assert result.n_tasks_recovered == len(captured["lost"])
        assert result.n_failed == 0


class TestCheckpointRecovery:
    def test_midtransfer_loss_keeps_predecessor_frontier(self, tmp_path):
        system = P2PGridSystem(_config("checkpoint", tmp_path))
        captured, result = _kill_first_busy_node(system)
        assert captured, "probe never found a busy volatile node"
        dead = captured["node"]
        for key, (status, is_sp, is_dispatched) in captured["post"].items():
            assert status is WorkflowStatus.RUNNING
            assert is_sp
            assert not is_dispatched
        # Checkpoint: the finished map is untouched by the kill — tasks
        # finished on the dead node STAY finished (their outputs were
        # checkpointed at the home on dispatch), so lost tasks re-enter at
        # their last completed predecessor frontier with no cascade.
        assert captured["finished_after"] == captured["finished_before"]
        assert dead is not None
        assert captured["idempotent"]
        assert result.n_failed == 0
        assert result.n_tasks_recovered == result.n_tasks_lost

    def test_dead_sources_are_served_from_the_home_checkpoint(self):
        policy = CheckpointRecovery()

        class _WX:
            home_id = 7

        patched = policy.on_dead_sources(
            None, _WX(), 3,
            inputs=[(2, 100.0), (5, 50.0), (9, 25.0)],
            dead_sources=[5, 9],
        )
        assert patched == [(2, 100.0), (7, 50.0), (7, 25.0)]

    def test_checkpoint_run_never_fails_workflows(self):
        cfg = _config("checkpoint", dynamic_factor=0.2)
        result = P2PGridSystem(cfg).run()
        assert result.n_departures > 0
        assert result.n_failed == 0


class TestFailRecovery:
    def test_lost_tasks_fail_their_workflows(self, tmp_path):
        system = P2PGridSystem(_config("fail", tmp_path))
        captured, result = _kill_first_busy_node(system)
        assert captured, "probe never found a busy volatile node"
        for key, (status, is_sp, is_dispatched) in captured["post"].items():
            assert status is WorkflowStatus.FAILED
        assert result.n_failed >= 1
        assert result.n_tasks_recovered == 0
