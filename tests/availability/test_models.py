"""Unit tests for the pluggable churn models."""

from __future__ import annotations

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.availability.models import (
    CorrelatedFailures,
    PaperIntervalChurn,
    SessionChurn,
    TraceChurn,
    churn_model_names,
    make_churn_model,
)
from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem
from repro.sim.rng import spawn_generator
from repro.workload.scenarios import apply_scenario


# ---------------------------------------------------------------------------
# A frozen copy of the pre-subsystem ``repro.grid.churn.ChurnProcess`` —
# the equivalence oracle.  Do not "fix" or modernize this class: it must
# stay byte-for-byte the legacy sampling logic.
# ---------------------------------------------------------------------------
class _LegacyChurnProcess:
    def __init__(self, system, rng):
        self.system = system
        self.rng = rng
        cfg = system.config
        self.batch = int(round(cfg.dynamic_factor * cfg.n_nodes))
        self.volatile_ids = [n.nid for n in system.nodes if n.volatile]
        self.departed = []
        self.total_departures = 0
        self.total_joins = 0

    def tick(self, cycle):
        if self.batch <= 0 or not self.volatile_ids:
            return
        joiners = self.departed
        self.departed = []
        for nid in joiners:
            self.system.revive_node(nid)
        self.total_joins += len(joiners)
        alive = [nid for nid in self.volatile_ids if self.system.nodes[nid].alive]
        k = min(self.batch, len(alive))
        if k == 0:
            return
        victims = self.rng.choice(np.asarray(alive, dtype=np.int64), size=k, replace=False)
        for nid in victims:
            nid = int(nid)
            self.system.kill_node(nid)
            self.departed.append(nid)
        self.total_departures += k


class _StubNode:
    def __init__(self, nid, volatile):
        self.nid = nid
        self.volatile = volatile
        self.alive = True
        self.is_home = not volatile


class _StubSystem:
    """Just enough of P2PGridSystem for a churn model to drive."""

    def __init__(self, n=30, n_perm=15, **config_overrides):
        cfg = dict(
            dynamic_factor=0.2,
            n_nodes=n,
            schedule_interval=900.0,
            total_time=12 * 3600.0,
            session_mean=3600.0,
            session_shape=1.0,
            rejoin_delay_mean=600.0,
            failure_interval=3600.0,
            ramp_direction="up",
            ramp_window=0.5,
            availability_path=None,
            churn_model="paper-interval",
        )
        cfg.update(config_overrides)
        self.config = SimpleNamespace(**cfg)
        self.nodes = [_StubNode(i, i >= n_perm) for i in range(n)]
        self.log: list[tuple[str, int]] = []

    def kill_node(self, nid):
        self.log.append(("kill", nid))
        self.nodes[nid].alive = False

    def revive_node(self, nid):
        self.log.append(("revive", nid))
        self.nodes[nid].alive = True


class TestPaperIntervalEquivalence:
    def test_kill_revive_sequence_matches_legacy_churn_process(self):
        """The new default model must consume the RNG and pick victims
        exactly as the legacy ``ChurnProcess`` did, tick for tick."""
        for seed in (1, 2, 7):
            legacy_sys = _StubSystem()
            new_sys = _StubSystem()
            legacy = _LegacyChurnProcess(legacy_sys, spawn_generator(seed, "churn"))
            new = PaperIntervalChurn(new_sys, spawn_generator(seed, "churn"))
            for cycle in range(12):
                legacy.tick(cycle)
                new.tick(cycle)
            assert legacy_sys.log == new_sys.log
            assert legacy.departed == new.departed
            assert (legacy.total_departures, legacy.total_joins) == (
                new.total_departures,
                new.total_joins,
            )

    def test_departed_pool_holds_python_ints(self):
        """Boundary normalization: no numpy scalars in the departed pool
        (they would break JSON trace round-trips and dict lookups)."""
        system = _StubSystem()
        model = PaperIntervalChurn(system, spawn_generator(1, "churn"))
        model.tick(0)
        assert model.departed
        assert all(type(nid) is int for nid in model.departed)
        assert all(type(nid) is int for _, nid in system.log)


class TestSessionChurn:
    def _model(self, **cfg):
        return SessionChurn(_StubSystem(**cfg), spawn_generator(3, "churn"))

    def test_exponential_lifetime_mean(self):
        model = self._model(session_mean=3600.0, session_shape=1.0)
        draws = [model.lifetime() for _ in range(4000)]
        assert all(d >= 0 for d in draws)
        assert np.mean(draws) == pytest.approx(3600.0, rel=0.10)

    def test_weibull_lifetime_mean_and_tail(self):
        """Shape 0.7 keeps the requested mean but grows the tail."""
        model = self._model(session_mean=3600.0, session_shape=0.7)
        draws = np.array([model.lifetime() for _ in range(6000)])
        assert np.mean(draws) == pytest.approx(3600.0, rel=0.10)
        # Heavy tail: the 99th percentile exceeds the exponential's ~4.6x
        # mean (for k=0.7 it is ~8.9x the mean).
        assert np.quantile(draws, 0.99) > 6.0 * 3600.0

    def test_weibull_scale_formula(self):
        model = self._model(session_mean=1000.0, session_shape=0.7)
        assert model._scale == pytest.approx(1000.0 / math.gamma(1 + 1 / 0.7))

    def test_zero_rejoin_delay_is_instant(self):
        model = self._model(rejoin_delay_mean=0.0)
        assert model.rejoin_delay() == 0.0

    def test_nodes_cycle_through_sessions_end_to_end(self):
        cfg = ExperimentConfig(
            algorithm="dsmf", n_nodes=30, load_factor=1, total_time=8 * 3600.0,
            seed=5, task_range=(2, 6), churn_model="sessions",
            session_mean=1800.0, rejoin_delay_mean=600.0,
        )
        system = P2PGridSystem(cfg)
        result = system.run()
        assert result.n_departures > 0
        assert result.n_revivals > 0
        assert 0.0 < result.avg_alive_fraction < 1.0
        assert result.availability_ae == pytest.approx(
            result.ae * result.avg_alive_fraction
        )


class TestGridRamp:
    def _run(self, direction):
        cfg = ExperimentConfig(
            algorithm="dsmf", n_nodes=30, load_factor=1, total_time=6 * 3600.0,
            seed=4, task_range=(2, 6), churn_model="ramp",
            ramp_direction=direction, ramp_window=0.5,
        )
        system = P2PGridSystem(cfg)
        return system, system.run()

    def test_rampup_starts_empty_and_fills(self):
        system, result = self._run("up")
        n_volatile = sum(1 for n in system.nodes if n.volatile)
        assert n_volatile > 0
        # Every volatile node left at t=0 and came back during the window.
        assert result.n_departures == n_volatile
        assert result.n_revivals == n_volatile
        assert all(n.alive for n in system.nodes)
        ups = [e for e in system.availability_events if e.kind == "join"]
        assert [e.time for e in ups] == sorted(e.time for e in ups)
        assert result.avg_alive_fraction < 1.0

    def test_rampdown_drains_the_volatile_population(self):
        system, result = self._run("down")
        n_volatile = sum(1 for n in system.nodes if n.volatile)
        assert result.n_departures == n_volatile
        assert result.n_revivals == 0
        assert all(n.alive == n.is_home for n in system.nodes)


class TestCorrelatedFailures:
    def _system(self):
        base = ExperimentConfig(
            algorithm="dsmf", n_nodes=40, load_factor=1, total_time=6 * 3600.0,
            seed=9, task_range=(2, 6),
        )
        return P2PGridSystem(apply_scenario(base, "flash-crowd-failure"))

    def test_subtree_is_connected_volatile_and_bounded(self):
        system = self._system()
        model = system.churn
        assert isinstance(model, CorrelatedFailures)
        root = next(n.nid for n in system.nodes if n.volatile)
        victims = model.subtree(root)
        assert victims[0] == root
        assert 1 <= len(victims) <= model.batch
        assert all(system.nodes[v].volatile for v in victims)
        # Connected: every victim after the root has a neighbor earlier in
        # the BFS order.
        for i, v in enumerate(victims[1:], start=1):
            assert any(u in model.adjacency[v] for u in victims[:i])

    def test_batch_rejoins_together(self):
        base = ExperimentConfig(
            algorithm="dsmf", n_nodes=40, load_factor=1, total_time=6 * 3600.0,
            seed=9, task_range=(2, 6),
        )
        cfg = apply_scenario(base, "flash-crowd-failure").with_(
            failure_interval=1200.0, rejoin_delay_mean=600.0
        )
        system = P2PGridSystem(cfg)
        result = system.run()
        assert result.n_departures > 0
        # Every departure is matched by a revival (rejoin delay 30 min,
        # horizon 6 h) except possibly the last batch.
        assert result.n_revivals >= result.n_departures - system.churn.batch


class TestFactoryAndValidation:
    def test_registry_names(self):
        assert churn_model_names() == [
            "correlated", "paper-interval", "ramp", "sessions", "trace",
        ]

    def test_unknown_model_rejected_by_factory(self):
        stub = _StubSystem(churn_model="nope")
        with pytest.raises(ValueError, match="unknown churn_model"):
            make_churn_model(stub, spawn_generator(1, "churn"))

    def test_unknown_model_rejected_by_config(self):
        with pytest.raises(ValueError, match="unknown churn_model"):
            ExperimentConfig(churn_model="nope")

    def test_trace_model_requires_availability_path(self):
        stub = _StubSystem(churn_model="trace", availability_path=None)
        with pytest.raises(ValueError, match="availability_path"):
            TraceChurn(stub, spawn_generator(1, "churn"))

    def test_trace_model_rejects_non_volatile_node_events(self, tmp_path):
        from repro.availability import AvailabilityEvent, save_availability_trace

        path = tmp_path / "trace.json"
        # Node 0 is a home (permanent) node in the stub: must be rejected —
        # homes and permanent nodes never churn, whatever the trace says.
        save_availability_trace([AvailabilityEvent(10.0, 0, "leave")], path)
        stub = _StubSystem(churn_model="trace", availability_path=str(path))
        with pytest.raises(ValueError, match="not volatile"):
            TraceChurn(stub, spawn_generator(1, "churn"))

    def test_trace_model_rejects_out_of_range_nodes(self, tmp_path):
        from repro.availability import AvailabilityEvent, save_availability_trace

        path = tmp_path / "trace.json"
        save_availability_trace([AvailabilityEvent(10.0, 99, "leave")], path)
        stub = _StubSystem(churn_model="trace", availability_path=str(path))
        with pytest.raises(ValueError, match="outside"):
            TraceChurn(stub, spawn_generator(1, "churn"))

    def test_non_default_model_enables_churn_without_df(self):
        cfg = ExperimentConfig(churn_model="sessions")
        assert cfg.churn_enabled()
        assert not ExperimentConfig().churn_enabled()
        assert ExperimentConfig(dynamic_factor=0.1).churn_enabled()
