"""Tests for eft / critical path / RPM backward pass (Eq. 1, 7, 8)."""

from __future__ import annotations

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import spawn_generator
from repro.workflow.analysis import (
    critical_path,
    expected_finish_time,
    expected_times,
    rest_path_after,
    upward_rank,
)
from repro.workflow.dag import Workflow
from repro.workflow.generator import chain_workflow, diamond_workflow, random_workflow
from repro.workflow.task import Task


def test_expected_times_scale():
    wf = chain_workflow("c", 3, load=100.0, data=50.0)
    eet, ett = expected_times(wf, avg_capacity=4.0, avg_bandwidth=5.0)
    assert eet[0] == 25.0
    assert ett[(0, 1)] == 10.0


def test_expected_times_invalid_averages():
    wf = chain_workflow("c", 2)
    with pytest.raises(ValueError):
        expected_times(wf, 0.0, 1.0)
    with pytest.raises(ValueError):
        expected_times(wf, 1.0, -1.0)


def test_chain_eft_is_sum():
    wf = chain_workflow("c", 4, load=100.0, data=50.0)
    # 4 * (100/2) + 3 * (50/5) = 200 + 30
    assert expected_finish_time(wf, 2.0, 5.0) == pytest.approx(230.0)


def test_diamond_takes_heavier_branch():
    wf = diamond_workflow("d", load=100.0, data=0.0)
    # B has load 200 => path A,B,D = 100+200+100 = 400 at capacity 1.
    assert expected_finish_time(wf, 1.0, 1.0) == pytest.approx(400.0)
    assert critical_path(wf, 1.0, 1.0) == [0, 1, 3]


def test_upward_rank_of_exit_is_its_eet():
    wf = chain_workflow("c", 3, load=100.0)
    rank = upward_rank(wf, 2.0, 1.0)
    assert rank[2] == pytest.approx(50.0)


def test_upward_rank_decreases_along_chain():
    wf = chain_workflow("c", 5)
    rank = upward_rank(wf, 1.0, 1.0)
    for i in range(4):
        assert rank[i] > rank[i + 1]


def test_rest_path_after_is_rank_minus_eet():
    wf = random_workflow("w", spawn_generator(0, "a"))
    rank = upward_rank(wf, 3.0, 2.0)
    after = rest_path_after(wf, 3.0, 2.0)
    eet, _ = expected_times(wf, 3.0, 2.0)
    for tid in wf.tasks:
        assert after[tid] == pytest.approx(rank[tid] - eet[tid])


def test_rest_path_after_exit_is_zero():
    wf = chain_workflow("c", 3)
    after = rest_path_after(wf, 1.0, 1.0)
    assert after[wf.exit_id] == 0.0


def test_critical_path_starts_entry_ends_exit():
    for seed in range(10):
        wf = random_workflow("w", spawn_generator(seed, "a"))
        path = critical_path(wf, 2.0, 3.0)
        assert path[0] == wf.entry_id
        assert path[-1] == wf.exit_id
        for u, v in zip(path, path[1:]):
            assert v in wf.successors[u]


def test_critical_path_length_equals_eft():
    for seed in range(10):
        wf = random_workflow("w", spawn_generator(seed + 100, "a"))
        eet, ett = expected_times(wf, 2.0, 3.0)
        path = critical_path(wf, 2.0, 3.0)
        total = sum(eet[t] for t in path) + sum(
            ett[(u, v)] for u, v in zip(path, path[1:])
        )
        assert total == pytest.approx(expected_finish_time(wf, 2.0, 3.0))


def _eft_via_networkx(wf, cap, bw):
    """Reference: longest entry->exit path via networkx DAG longest path."""
    g = nx.DiGraph()
    eet, ett = expected_times(wf, cap, bw)
    for tid in wf.tasks:
        g.add_node(tid)
    for (u, v), _ in wf.edges.items():
        # node weight folded into incoming edges; add entry eet at the end.
        g.add_edge(u, v, weight=ett[(u, v)] + eet[v])
    lengths = nx.dag_longest_path_length(g, weight="weight")
    return lengths + eet[wf.entry_id]


@given(seed=st.integers(0, 2**20))
@settings(max_examples=30, deadline=None)
def test_property_eft_matches_networkx_longest_path(seed):
    wf = random_workflow("w", spawn_generator(seed, "a"))
    ours = expected_finish_time(wf, 2.5, 1.5)
    # networkx longest path from *anywhere*; our DAGs are single-entry and
    # every node is reachable from it, so the global longest path starts at
    # the entry task.
    ref = _eft_via_networkx(wf, 2.5, 1.5)
    assert ours == pytest.approx(ref)


@given(
    seed=st.integers(0, 2**20),
    cap=st.floats(min_value=0.5, max_value=16.0),
    bw=st.floats(min_value=0.1, max_value=10.0),
)
@settings(max_examples=30, deadline=None)
def test_property_eft_monotone_in_capacity_and_bandwidth(seed, cap, bw):
    """Faster nodes / faster network can only shrink the expected makespan."""
    wf = random_workflow("w", spawn_generator(seed, "a"))
    base = expected_finish_time(wf, cap, bw)
    assert expected_finish_time(wf, cap * 2, bw) <= base + 1e-9
    assert expected_finish_time(wf, cap, bw * 2) <= base + 1e-9


def test_virtual_tasks_do_not_add_cost():
    t = [Task(tid=i, load=100.0) for i in range(2)]
    wf = Workflow("w", t, {}).normalized()  # two disconnected tasks
    # Critical path: ventry -> task -> vexit = 100 at capacity 1.
    assert expected_finish_time(wf, 1.0, 1.0) == pytest.approx(100.0)
