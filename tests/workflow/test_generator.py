"""Tests for workflow generators (random + structured families)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import spawn_generator
from repro.workflow.generator import (
    WorkflowParams,
    chain_workflow,
    diamond_workflow,
    fork_join_workflow,
    montage_like_workflow,
    random_workflow,
)


class TestRandomWorkflow:
    def test_respects_table1_ranges(self):
        rng = spawn_generator(0, "g")
        p = WorkflowParams()
        for k in range(30):
            wf = random_workflow(f"w{k}", rng, p)
            real = [t for t in wf.tasks.values() if not t.virtual]
            assert p.task_range[0] <= len(real) <= p.task_range[1]
            for t in real:
                assert p.load_range[0] <= t.load <= p.load_range[1]
                assert p.image_range[0] <= t.image_size <= p.image_range[1]
            for (u, v), d in wf.edges.items():
                if not (wf.tasks[u].virtual or wf.tasks[v].virtual):
                    assert p.data_range[0] <= d <= p.data_range[1]

    def test_fanout_bounded(self):
        rng = spawn_generator(1, "g")
        p = WorkflowParams(task_range=(10, 30))
        for k in range(20):
            wf = random_workflow(f"w{k}", rng, p)
            for tid, succ in wf.successors.items():
                if not wf.tasks[tid].virtual:
                    assert len(succ) <= p.fanout_range[1]

    def test_single_entry_single_exit(self):
        rng = spawn_generator(2, "g")
        for k in range(30):
            wf = random_workflow(f"w{k}", rng)
            assert len(wf.entry_ids) == 1
            assert len(wf.exit_ids) == 1

    def test_every_task_reachable_from_entry(self):
        rng = spawn_generator(3, "g")
        for k in range(20):
            wf = random_workflow(f"w{k}", rng)
            reached = {wf.entry_id}
            for tid in wf.topo_order:
                if tid in reached:
                    reached.update(wf.successors[tid])
            assert reached == set(wf.tasks)

    def test_deterministic_with_same_stream(self):
        a = random_workflow("w", spawn_generator(5, "g"))
        b = random_workflow("w", spawn_generator(5, "g"))
        assert a.edges == b.edges
        assert {t.tid: t.load for t in a.tasks.values()} == {
            t.tid: t.load for t in b.tasks.values()
        }

    def test_custom_ranges(self):
        p = WorkflowParams(load_range=(10.0, 1000.0), data_range=(100.0, 10_000.0))
        wf = random_workflow("w", spawn_generator(6, "g"), p)
        for t in wf.tasks.values():
            if not t.virtual:
                assert 10.0 <= t.load <= 1000.0

    def test_invalid_params_rejected(self):
        with pytest.raises(ValueError):
            WorkflowParams(task_range=(5, 2))
        with pytest.raises(ValueError):
            WorkflowParams(task_range=(0, 5))
        with pytest.raises(ValueError):
            WorkflowParams(fanout_range=(0, 3))

    @given(seed=st.integers(0, 2**20))
    @settings(max_examples=40, deadline=None)
    def test_property_generated_dags_valid(self, seed):
        wf = random_workflow("w", spawn_generator(seed, "g"))
        # toposort succeeded in the constructor => acyclic; check precedence.
        pos = {t: i for i, t in enumerate(wf.topo_order)}
        for u, v in wf.edges:
            assert pos[u] < pos[v]
        assert len(wf.entry_ids) == 1 and len(wf.exit_ids) == 1


class TestFamilies:
    def test_chain_structure(self):
        wf = chain_workflow("c", 5)
        assert wf.n_tasks == 5
        assert wf.n_edges == 4
        assert wf.entry_id == 0
        assert wf.exit_id == 4

    def test_chain_length_one(self):
        wf = chain_workflow("c", 1)
        assert wf.entry_id == wf.exit_id == 0

    def test_chain_invalid_length(self):
        with pytest.raises(ValueError):
            chain_workflow("c", 0)

    def test_fork_join_structure(self):
        wf = fork_join_workflow("f", 4)
        assert wf.n_tasks == 6
        assert len(wf.successors[0]) == 4
        assert len(wf.precedents[5]) == 4

    def test_diamond_structure(self):
        wf = diamond_workflow("d")
        assert wf.n_tasks == 4
        assert wf.ready_successors({0}) == [1, 2]

    def test_montage_shape(self):
        wf = montage_like_workflow("m", 4, spawn_generator(7, "g"))
        assert len(wf.entry_ids) == 1
        assert len(wf.exit_ids) == 1
        names = {t.name for t in wf.tasks.values()}
        assert any(n.startswith("mProject") for n in names)
        assert "mAdd" in names

    def test_montage_minimum_inputs(self):
        with pytest.raises(ValueError):
            montage_like_workflow("m", 1, spawn_generator(8, "g"))
