"""Tests for workflow JSON serialization and DOT export."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import spawn_generator
from repro.workflow.dag import WorkflowError
from repro.workflow.generator import diamond_workflow, random_workflow
from repro.workflow.io import (
    load_workflow,
    save_workflow,
    workflow_from_dict,
    workflow_to_dict,
    workflow_to_dot,
)


def test_dict_roundtrip_diamond():
    wf = diamond_workflow("d")
    back = workflow_from_dict(workflow_to_dict(wf))
    assert back.wid == wf.wid
    assert back.edges == wf.edges
    assert set(back.tasks) == set(wf.tasks)
    for tid in wf.tasks:
        assert back.tasks[tid] == wf.tasks[tid]


def test_roundtrip_preserves_loads_exactly():
    wf = random_workflow("w", spawn_generator(9, "io"))
    back = workflow_from_dict(workflow_to_dict(wf))
    for tid, t in wf.tasks.items():
        assert back.tasks[tid].load == t.load
        assert back.tasks[tid].image_size == t.image_size


def test_file_roundtrip(tmp_path):
    wf = random_workflow("w", spawn_generator(4, "io"))
    path = save_workflow(wf, tmp_path / "w.json")
    back = load_workflow(path)
    assert back.edges == wf.edges
    assert back.topo_order == wf.topo_order


def test_virtual_flag_survives():
    wf = random_workflow("w", spawn_generator(5, "io"))
    back = workflow_from_dict(workflow_to_dict(wf))
    for tid, t in wf.tasks.items():
        assert back.tasks[tid].virtual == t.virtual


def test_from_dict_validates():
    payload = {
        "wid": "bad",
        "tasks": [{"tid": 0, "load": 1.0}, {"tid": 1, "load": 1.0}],
        "edges": [{"src": 0, "dst": 1, "data": 1.0}, {"src": 1, "dst": 0, "data": 1.0}],
    }
    with pytest.raises(Exception):
        workflow_from_dict(payload)  # cycle


@pytest.mark.parametrize(
    "payload",
    [
        {},  # everything missing
        {"wid": "w", "tasks": [{"tid": 0}], "edges": []},  # task missing load
        {"wid": "w", "tasks": [{"tid": 0, "load": "heavy"}], "edges": []},
        {"wid": "w", "tasks": [{"tid": 0, "load": 1.0}], "edges": [{"src": 0}]},
        {"wid": "w", "tasks": 7, "edges": []},  # wrong container shape
    ],
)
def test_from_dict_malformed_payload_raises_workflow_error(payload):
    with pytest.raises(WorkflowError, match="malformed workflow payload"):
        workflow_from_dict(payload)


def test_load_workflow_malformed_inputs_raise_cleanly(tmp_path):
    missing = tmp_path / "nope.json"
    with pytest.raises(WorkflowError, match="not found"):
        load_workflow(missing)

    bad_json = tmp_path / "bad.json"
    bad_json.write_text("{ this is not json")
    with pytest.raises(WorkflowError, match="not valid JSON"):
        load_workflow(bad_json)

    not_object = tmp_path / "list.json"
    not_object.write_text("[1, 2, 3]")
    with pytest.raises(WorkflowError, match="JSON object"):
        load_workflow(not_object)

    missing_keys = tmp_path / "payload.json"
    missing_keys.write_text('{"wid": "w"}')
    with pytest.raises(WorkflowError, match="malformed workflow payload"):
        load_workflow(missing_keys)


def test_dot_export_mentions_every_task_and_edge():
    wf = diamond_workflow("d")
    dot = workflow_to_dot(wf)
    assert dot.startswith('digraph "d"')
    for tid in wf.tasks:
        assert f"t{tid}" in dot
    assert dot.count("->") == wf.n_edges
    for (u, v) in wf.edges:
        assert f"t{u} -> t{v}" in dot


def test_dot_export_every_edge_random():
    wf = random_workflow("w", spawn_generator(12, "io"))
    dot = workflow_to_dot(wf)
    for (u, v) in wf.edges:
        assert f"t{u} -> t{v}" in dot


@given(seed=st.integers(0, 2**20))
@settings(max_examples=25, deadline=None)
def test_property_roundtrip_preserves_structure(seed):
    wf = random_workflow("w", spawn_generator(seed, "io"))
    back = workflow_from_dict(workflow_to_dict(wf))
    assert back.edges == wf.edges
    assert back.entry_ids == wf.entry_ids
    assert back.exit_ids == wf.exit_ids
