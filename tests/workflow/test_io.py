"""Tests for workflow JSON serialization and DOT export."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import spawn_generator
from repro.workflow.generator import diamond_workflow, random_workflow
from repro.workflow.io import (
    load_workflow,
    save_workflow,
    workflow_from_dict,
    workflow_to_dict,
    workflow_to_dot,
)


def test_dict_roundtrip_diamond():
    wf = diamond_workflow("d")
    back = workflow_from_dict(workflow_to_dict(wf))
    assert back.wid == wf.wid
    assert back.edges == wf.edges
    assert set(back.tasks) == set(wf.tasks)
    for tid in wf.tasks:
        assert back.tasks[tid] == wf.tasks[tid]


def test_file_roundtrip(tmp_path):
    wf = random_workflow("w", spawn_generator(4, "io"))
    path = save_workflow(wf, tmp_path / "w.json")
    back = load_workflow(path)
    assert back.edges == wf.edges
    assert back.topo_order == wf.topo_order


def test_virtual_flag_survives():
    wf = random_workflow("w", spawn_generator(5, "io"))
    back = workflow_from_dict(workflow_to_dict(wf))
    for tid, t in wf.tasks.items():
        assert back.tasks[tid].virtual == t.virtual


def test_from_dict_validates():
    payload = {
        "wid": "bad",
        "tasks": [{"tid": 0, "load": 1.0}, {"tid": 1, "load": 1.0}],
        "edges": [{"src": 0, "dst": 1, "data": 1.0}, {"src": 1, "dst": 0, "data": 1.0}],
    }
    with pytest.raises(Exception):
        workflow_from_dict(payload)  # cycle


def test_dot_export_mentions_every_task_and_edge():
    wf = diamond_workflow("d")
    dot = workflow_to_dot(wf)
    assert dot.startswith('digraph "d"')
    for tid in wf.tasks:
        assert f"t{tid}" in dot
    assert dot.count("->") == wf.n_edges


@given(seed=st.integers(0, 2**20))
@settings(max_examples=25, deadline=None)
def test_property_roundtrip_preserves_structure(seed):
    wf = random_workflow("w", spawn_generator(seed, "io"))
    back = workflow_from_dict(workflow_to_dict(wf))
    assert back.edges == wf.edges
    assert back.entry_ids == wf.entry_ids
    assert back.exit_ids == wf.exit_ids
