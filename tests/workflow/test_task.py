"""Tests for the Task model."""

from __future__ import annotations

import pytest

from repro.workflow.task import Task


def test_execution_time_scales_with_capacity():
    t = Task(tid=0, load=1000.0)
    assert t.execution_time(1.0) == 1000.0
    assert t.execution_time(16.0) == pytest.approx(62.5)


def test_zero_load_executes_instantly():
    assert Task(tid=0, load=0.0).execution_time(4.0) == 0.0


def test_negative_load_rejected():
    with pytest.raises(ValueError):
        Task(tid=0, load=-1.0)


def test_negative_image_rejected():
    with pytest.raises(ValueError):
        Task(tid=0, load=1.0, image_size=-1.0)


def test_virtual_must_be_zero_cost():
    with pytest.raises(ValueError):
        Task(tid=0, load=5.0, virtual=True)
    with pytest.raises(ValueError):
        Task(tid=0, load=0.0, image_size=5.0, virtual=True)
    Task(tid=0, load=0.0, image_size=0.0, virtual=True)  # fine


def test_nonpositive_capacity_rejected():
    t = Task(tid=0, load=10.0)
    with pytest.raises(ValueError):
        t.execution_time(0.0)
    with pytest.raises(ValueError):
        t.execution_time(-2.0)


def test_name_not_part_of_identity():
    assert Task(tid=1, load=5.0, name="a") == Task(tid=1, load=5.0, name="b")


def test_frozen():
    t = Task(tid=0, load=1.0)
    with pytest.raises(AttributeError):
        t.load = 2.0  # type: ignore[misc]
