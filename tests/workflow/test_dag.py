"""Tests for the Workflow DAG model."""

from __future__ import annotations

import pytest

from repro.workflow.dag import Workflow, WorkflowError
from repro.workflow.task import Task


def _tasks(n, load=10.0):
    return [Task(tid=i, load=load) for i in range(n)]


class TestConstruction:
    def test_simple_chain(self):
        wf = Workflow("w", _tasks(3), {(0, 1): 5.0, (1, 2): 5.0})
        assert wf.n_tasks == 3
        assert wf.n_edges == 2
        assert wf.entry_id == 0
        assert wf.exit_id == 2

    def test_empty_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow("w", [], {})

    def test_duplicate_task_ids_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow("w", [Task(tid=0, load=1.0), Task(tid=0, load=2.0)], {})

    def test_dangling_edge_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow("w", _tasks(2), {(0, 5): 1.0})

    def test_self_loop_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow("w", _tasks(2), {(0, 0): 1.0})

    def test_negative_data_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow("w", _tasks(2), {(0, 1): -1.0})

    def test_cycle_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow("w", _tasks(3), {(0, 1): 1.0, (1, 2): 1.0, (2, 0): 1.0})

    def test_two_cycle_rejected(self):
        with pytest.raises(WorkflowError):
            Workflow("w", _tasks(2), {(0, 1): 1.0, (1, 0): 1.0})


class TestStructure:
    def test_topo_order_respects_edges(self):
        wf = Workflow(
            "w", _tasks(5), {(0, 2): 1.0, (2, 4): 1.0, (0, 1): 1.0, (1, 3): 1.0, (3, 4): 1.0}
        )
        pos = {t: i for i, t in enumerate(wf.topo_order)}
        for u, v in wf.edges:
            assert pos[u] < pos[v]

    def test_adjacency_mirrors_edges(self):
        wf = Workflow("w", _tasks(3), {(0, 1): 2.0, (0, 2): 3.0})
        assert wf.successors[0] == {1: 2.0, 2: 3.0}
        assert wf.precedents[1] == {0: 2.0}
        assert wf.precedents[2] == {0: 3.0}
        assert wf.successors[1] == {}

    def test_iteration_in_topo_order(self):
        wf = Workflow("w", _tasks(3), {(0, 1): 1.0, (1, 2): 1.0})
        assert [t.tid for t in wf] == wf.topo_order

    def test_total_load_and_data(self):
        wf = Workflow("w", _tasks(3, load=7.0), {(0, 1): 2.0, (1, 2): 3.0})
        assert wf.total_load() == 21.0
        assert wf.total_data() == 5.0


class TestNormalization:
    def test_already_normalized_returns_self(self):
        wf = Workflow("w", _tasks(3), {(0, 1): 1.0, (1, 2): 1.0})
        assert wf.normalized() is wf

    def test_multiple_entries_get_virtual_entry(self):
        wf = Workflow("w", _tasks(3), {(0, 2): 1.0, (1, 2): 1.0}).normalized()
        assert len(wf.entry_ids) == 1
        entry = wf.tasks[wf.entry_id]
        assert entry.virtual
        assert entry.load == 0.0
        assert set(wf.successors[entry.tid]) == {0, 1}
        assert all(d == 0.0 for d in wf.successors[entry.tid].values())

    def test_multiple_exits_get_virtual_exit(self):
        wf = Workflow("w", _tasks(3), {(0, 1): 1.0, (0, 2): 1.0}).normalized()
        assert len(wf.exit_ids) == 1
        assert wf.tasks[wf.exit_id].virtual

    def test_both_normalizations_at_once(self):
        # Two disconnected chains: two entries, two exits.
        wf = Workflow("w", _tasks(4), {(0, 1): 1.0, (2, 3): 1.0}).normalized()
        assert len(wf.entry_ids) == 1
        assert len(wf.exit_ids) == 1
        assert wf.n_tasks == 6

    def test_entry_property_raises_unnormalized(self):
        wf = Workflow("w", _tasks(3), {(0, 2): 1.0, (1, 2): 1.0})
        with pytest.raises(WorkflowError):
            _ = wf.entry_id


class TestReadySuccessors:
    def test_initially_only_entry(self):
        wf = Workflow("w", _tasks(3), {(0, 1): 1.0, (1, 2): 1.0})
        assert wf.ready_successors(set()) == [0]

    def test_after_entry_finishes(self):
        wf = Workflow("w", _tasks(4), {(0, 1): 1.0, (0, 2): 1.0, (1, 3): 1.0, (2, 3): 1.0})
        assert wf.ready_successors({0}) == [1, 2]
        assert wf.ready_successors({0, 1}) == [2]
        assert wf.ready_successors({0, 1, 2}) == [3]
