"""Tests for all-pairs widest-path bottleneck bandwidth.

The descending-Kruskal implementation is checked against a brute-force
widest-path computation via networkx on random graphs (property test).
"""

from __future__ import annotations

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.bottleneck import all_pairs_bottleneck


def _brute_force(n, edges, widths):
    """Widest path via max-spanning-tree property in networkx."""
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for (u, v), w in zip(edges, widths):
        g.add_edge(int(u), int(v), weight=float(w))
    out = np.zeros((n, n))
    np.fill_diagonal(out, np.inf)
    if g.number_of_edges() == 0:
        return out
    mst = nx.maximum_spanning_tree(g)
    for u in range(n):
        if u not in mst:
            continue
        lengths = {}
        # DFS carrying the min edge weight along the tree path.
        stack = [(u, np.inf)]
        seen = {u}
        while stack:
            x, w = stack.pop()
            for y in mst.neighbors(x):
                if y in seen:
                    continue
                seen.add(y)
                w2 = min(w, mst[x][y]["weight"])
                lengths[y] = w2
                stack.append((y, w2))
        for v, w in lengths.items():
            out[u, v] = w
    return out


def test_triangle():
    # 0-1 width 10, 1-2 width 2, 0-2 width 5: widest 0->2 is direct (5).
    edges = np.array([[0, 1], [1, 2], [0, 2]])
    widths = np.array([10.0, 2.0, 5.0])
    b = all_pairs_bottleneck(3, edges, widths)
    assert b[0, 1] == 10.0
    assert b[0, 2] == 5.0
    assert b[1, 2] == 5.0  # via 0: min(10, 5) = 5 beats direct 2


def test_chain_bottleneck_is_min_edge():
    edges = np.array([[0, 1], [1, 2], [2, 3]])
    widths = np.array([7.0, 3.0, 9.0])
    b = all_pairs_bottleneck(4, edges, widths)
    assert b[0, 3] == 3.0
    assert b[1, 3] == 3.0
    assert b[2, 3] == 9.0


def test_disconnected_pairs_are_zero():
    edges = np.array([[0, 1]])
    widths = np.array([4.0])
    b = all_pairs_bottleneck(3, edges, widths)
    assert b[0, 1] == 4.0
    assert b[0, 2] == 0.0
    assert b[1, 2] == 0.0


def test_diagonal_is_infinite():
    b = all_pairs_bottleneck(3, np.array([[0, 1]]), np.array([1.0]))
    assert np.all(np.isinf(np.diag(b)))


def test_symmetry():
    rng = np.random.default_rng(0)
    n = 20
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(len(iu)) < 0.2
    edges = np.stack([iu[mask], ju[mask]], axis=1)
    widths = rng.uniform(0.1, 10, size=len(edges))
    b = all_pairs_bottleneck(n, edges, widths)
    assert np.array_equal(b, b.T)


def test_empty_graph():
    b = all_pairs_bottleneck(4, np.empty((0, 2), dtype=np.int64), np.empty(0))
    assert np.all(b[~np.eye(4, dtype=bool)] == 0.0)


def test_single_node():
    b = all_pairs_bottleneck(1, np.empty((0, 2), dtype=np.int64), np.empty(0))
    assert b.shape == (1, 1)
    assert np.isinf(b[0, 0])


def test_mismatched_lengths_rejected():
    import pytest

    with pytest.raises(ValueError):
        all_pairs_bottleneck(3, np.array([[0, 1]]), np.array([1.0, 2.0]))


def test_parallel_widths_keep_max():
    """Two routes between components: the wider one defines the bottleneck."""
    edges = np.array([[0, 1], [0, 2], [1, 3], [2, 3]])
    widths = np.array([1.0, 8.0, 1.0, 8.0])
    b = all_pairs_bottleneck(4, edges, widths)
    assert b[0, 3] == 8.0  # via node 2


@given(
    n=st.integers(min_value=2, max_value=14),
    seed=st.integers(0, 2**20),
    p=st.floats(min_value=0.1, max_value=0.9),
)
@settings(max_examples=40, deadline=None)
def test_property_matches_networkx_brute_force(n, seed, p):
    rng = np.random.default_rng(seed)
    iu, ju = np.triu_indices(n, k=1)
    mask = rng.random(len(iu)) < p
    edges = np.stack([iu[mask], ju[mask]], axis=1)
    widths = rng.uniform(0.1, 10.0, size=len(edges))
    ours = all_pairs_bottleneck(n, edges, widths)
    ref = _brute_force(n, edges, widths)
    assert np.allclose(ours, ref)
