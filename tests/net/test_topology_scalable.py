"""Equivalence tests for the scalable (non-eager) topology representation.

``exact_paths=False`` swaps the O(n^2) all-pairs matrices for a widest-path
forest plus latency landmarks.  Bottleneck bandwidth must stay *exactly*
equal to the eager Kruskal matrix; latency becomes a landmark upper bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.topology import Topology
from repro.sim.rng import spawn_generator


def _pair(n=48, seed=7):
    """Same graph + same link draws, eager vs scalable."""
    eager = Topology.waxman(n, spawn_generator(seed, "t"))
    lazy = Topology.waxman(n, spawn_generator(seed, "t"), exact_paths=False)
    assert eager.exact_paths and not lazy.exact_paths
    np.testing.assert_array_equal(eager.link_bandwidth, lazy.link_bandwidth)
    return eager, lazy


@pytest.fixture(scope="module")
def topo_pair():
    return _pair()


def test_pairwise_bandwidth_exactly_equal(topo_pair):
    eager, lazy = topo_pair
    n = eager.n
    for u in range(n):
        for v in range(n):
            assert lazy.bandwidth(u, v) == eager._bandwidth[u, v]


def test_bandwidth_rows_and_columns_equal(topo_pair):
    eager, lazy = topo_pair
    for u in range(eager.n):
        np.testing.assert_array_equal(lazy.bandwidth_row(u), eager._bandwidth[u])
    ids = np.array([0, 3, eager.n - 1])
    np.testing.assert_array_equal(
        lazy.bandwidth_columns(ids), eager._bandwidth[:, ids]
    )


def test_materialized_matrix_matches_eager(topo_pair):
    eager, lazy = topo_pair
    np.testing.assert_array_equal(lazy._bandwidth, eager._bandwidth)


def test_latency_is_an_upper_bound(topo_pair):
    eager, lazy = topo_pair
    n = eager.n
    for u in range(n):
        row = lazy.latency_row(u)
        assert row[u] == 0.0
        assert np.all(row >= eager._latency[u] - 1e-12)
        assert np.all(np.isfinite(row))  # waxman repairs connectivity


def test_latency_exact_from_a_landmark(topo_pair):
    _, lazy = topo_pair
    lm = int(lazy._lat_landmarks[0])
    # From a landmark itself the bound lat(lm,k)+lat(k,v) is tight at k=lm.
    np.testing.assert_allclose(
        lazy.latency_row(lm), lazy._lat_lm[list(lazy._lat_landmarks).index(lm)]
    )


def test_latency_between_matches_scalar(topo_pair):
    _, lazy = topo_pair
    targets = np.array([0, 5, 9, 5])
    got = lazy.latency_between(5, targets)
    want = [lazy.latency(5, int(t)) for t in targets]
    np.testing.assert_allclose(got, want)
    assert got[1] == 0.0 and got[3] == 0.0


def test_mean_bandwidth_matches_eager(topo_pair):
    eager, lazy = topo_pair
    assert lazy.mean_bandwidth() == pytest.approx(eager.mean_bandwidth(), rel=1e-12)


def test_transfer_time_consistent(topo_pair):
    _, lazy = topo_pair
    u, v = 1, 7
    t = lazy.transfer_time(u, v, 80.0)
    assert t == 80.0 / lazy.bandwidth(u, v) + lazy.latency(u, v)
    assert lazy.transfer_time(u, u, 80.0) == 0.0
    assert lazy.transfer_time(u, v, 0.0) == 0.0


def test_landmark_estimator_measurements_identical():
    """The probe columns served without the matrix match the eager slice."""
    from repro.net.landmarks import LandmarkEstimator

    eager, lazy = _pair(seed=11)
    le = LandmarkEstimator(eager, spawn_generator(3, "lm"))
    ll = LandmarkEstimator(lazy, spawn_generator(3, "lm"))
    np.testing.assert_array_equal(le.landmarks, ll.landmarks)
    np.testing.assert_array_equal(le.measurements, ll.measurements)


def test_single_component_forest_depth_query():
    """Deep-path regression: chain-ish graphs exercise multi-level lifting."""
    eager, lazy = _pair(n=96, seed=23)
    rng = np.random.default_rng(5)
    for _ in range(200):
        u, v = map(int, rng.integers(0, 96, size=2))
        assert lazy.bandwidth(u, v) == eager._bandwidth[u, v]
