"""Tests for the Waxman topology generator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.waxman import generate_waxman
from repro.sim.rng import spawn_generator


def _components(n, edges):
    parent = list(range(n))

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in edges:
        parent[find(int(u))] = find(int(v))
    return len({find(i) for i in range(n)})


def test_basic_shape():
    g = generate_waxman(50, spawn_generator(1, "w"))
    assert g.n == 50
    assert g.positions.shape == (50, 2)
    assert g.edges.shape[1] == 2
    assert len(g.distances) == g.m


def test_connected_output():
    for seed in range(5):
        g = generate_waxman(40, spawn_generator(seed, "w"))
        assert _components(g.n, g.edges) == 1


def test_edges_are_canonical_and_unique():
    g = generate_waxman(60, spawn_generator(3, "w"))
    assert np.all(g.edges[:, 0] < g.edges[:, 1])
    pairs = {tuple(e) for e in g.edges.tolist()}
    assert len(pairs) == g.m


def test_distances_match_positions():
    g = generate_waxman(30, spawn_generator(4, "w"))
    d = np.linalg.norm(g.positions[g.edges[:, 0]] - g.positions[g.edges[:, 1]], axis=1)
    assert np.allclose(d, g.distances)


def test_positions_within_plane():
    g = generate_waxman(30, spawn_generator(5, "w"), plane_size=500.0)
    assert g.positions.min() >= 0.0
    assert g.positions.max() <= 500.0


def test_single_node():
    g = generate_waxman(1, spawn_generator(6, "w"))
    assert g.n == 1
    assert g.m == 0


def test_two_nodes_connected():
    g = generate_waxman(2, spawn_generator(7, "w"))
    assert g.m >= 1


def test_higher_alpha_gives_more_edges():
    sparse = generate_waxman(80, spawn_generator(8, "w"), alpha=0.05)
    dense = generate_waxman(80, spawn_generator(8, "w"), alpha=0.9)
    assert dense.m > sparse.m


def test_deterministic_given_stream():
    a = generate_waxman(40, spawn_generator(9, "w"))
    b = generate_waxman(40, spawn_generator(9, "w"))
    assert np.array_equal(a.edges, b.edges)
    assert np.allclose(a.positions, b.positions)


def test_degree_array_sums_to_twice_edges():
    g = generate_waxman(50, spawn_generator(10, "w"))
    assert g.degree_array().sum() == 2 * g.m


@pytest.mark.parametrize(
    "kwargs",
    [
        {"n": 0},
        {"n": 10, "alpha": 0.0},
        {"n": 10, "alpha": 1.5},
        {"n": 10, "beta": -0.1},
    ],
)
def test_invalid_parameters_rejected(kwargs):
    n = kwargs.pop("n")
    with pytest.raises(ValueError):
        generate_waxman(n, spawn_generator(0, "w"), **kwargs)


@given(n=st.integers(min_value=2, max_value=60), seed=st.integers(0, 2**20))
@settings(max_examples=30, deadline=None)
def test_property_always_connected(n, seed):
    g = generate_waxman(n, spawn_generator(seed, "w"))
    assert _components(g.n, g.edges) == 1
