"""Tests for the Topology facade (end-to-end bandwidth/latency/transfers)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.net.topology import Topology
from repro.sim.rng import spawn_generator


def test_bandwidth_within_link_range(small_topology):
    top = small_topology
    n = top.n
    off = ~np.eye(n, dtype=bool)
    vals = top._bandwidth[off]
    assert vals.min() >= 0.1 - 1e-12
    assert vals.max() <= 10.0 + 1e-12


def test_bandwidth_symmetric(small_topology):
    assert np.array_equal(small_topology._bandwidth, small_topology._bandwidth.T)


def test_latency_positive_offdiagonal(small_topology):
    top = small_topology
    off = ~np.eye(top.n, dtype=bool)
    assert np.all(top._latency[off] > 0)
    assert np.all(np.diag(top._latency) == 0)


def test_latency_triangle_inequality(small_topology):
    """Shortest-path latencies satisfy the triangle inequality."""
    lat = small_topology._latency
    n = small_topology.n
    rng = np.random.default_rng(0)
    for _ in range(200):
        a, b, c = rng.integers(0, n, size=3)
        assert lat[a, c] <= lat[a, b] + lat[b, c] + 1e-9


def test_self_transfer_is_free(small_topology):
    assert small_topology.transfer_time(3, 3, 1e9) == 0.0


def test_zero_bytes_is_free(small_topology):
    assert small_topology.transfer_time(0, 1, 0.0) == 0.0


def test_transfer_time_formula(small_topology):
    top = small_topology
    t = top.transfer_time(0, 1, 100.0)
    assert t == pytest.approx(100.0 / top.bandwidth(0, 1) + top.latency(0, 1))


def test_transfer_time_monotone_in_size(small_topology):
    top = small_topology
    assert top.transfer_time(0, 1, 200.0) > top.transfer_time(0, 1, 100.0)


def test_rows_match_matrix(small_topology):
    top = small_topology
    assert np.array_equal(top.bandwidth_row(2), top._bandwidth[2])
    assert np.array_equal(top.latency_row(2), top._latency[2])


def test_mean_bandwidth_positive(small_topology):
    mb = small_topology.mean_bandwidth()
    assert 0.1 <= mb <= 10.0


def test_invalid_bandwidth_range_rejected():
    from repro.net.waxman import generate_waxman

    g = generate_waxman(5, spawn_generator(0, "t"))
    with pytest.raises(ValueError):
        Topology(g, bw_min=0.0, bw_max=1.0)
    with pytest.raises(ValueError):
        Topology(g, bw_min=5.0, bw_max=1.0)


def test_single_node_topology():
    top = Topology.waxman(1, spawn_generator(1, "t"))
    assert top.n == 1
    assert top.transfer_time(0, 0, 100.0) == 0.0


def test_waxman_factory_deterministic():
    a = Topology.waxman(20, spawn_generator(5, "t"))
    b = Topology.waxman(20, spawn_generator(5, "t"))
    assert np.allclose(a._bandwidth, b._bandwidth)
    assert np.allclose(a._latency, b._latency)
