"""Tests for landmark-based bandwidth estimation."""

from __future__ import annotations

import numpy as np

from repro.net.landmarks import LandmarkEstimator
from repro.sim.rng import spawn_generator


def _estimator(small_topology, n_landmarks=None, seed=0):
    return LandmarkEstimator(
        small_topology, spawn_generator(seed, "lm"), n_landmarks=n_landmarks
    )


def test_default_landmark_count_is_log2(small_topology):
    est = _estimator(small_topology)
    assert est.n_landmarks == int(np.ceil(np.log2(small_topology.n)))


def test_estimates_never_exceed_truth(small_topology):
    """min over a relay path is a lower bound on the widest-path value."""
    est = _estimator(small_topology)
    truth = small_topology._bandwidth
    mat = est.matrix()
    n = small_topology.n
    off = ~np.eye(n, dtype=bool)
    assert np.all(mat[off] <= truth[off] + 1e-9)


def test_self_estimate_is_infinite(small_topology):
    est = _estimator(small_topology)
    assert est.estimate(4, 4) == np.inf


def test_estimate_symmetric(small_topology):
    est = _estimator(small_topology)
    assert est.estimate(1, 7) == est.estimate(7, 1)


def test_estimate_row_matches_scalar(small_topology):
    est = _estimator(small_topology)
    row = est.estimate_row(3)
    for v in (0, 5, 9):
        if v != 3:
            assert row[v] == est.estimate(3, v)


def test_more_landmarks_reduce_error(small_topology):
    few = _estimator(small_topology, n_landmarks=1, seed=2)
    many = _estimator(small_topology, n_landmarks=small_topology.n, seed=2)
    assert many.mean_absolute_relative_error() <= few.mean_absolute_relative_error() + 1e-9


def test_full_landmarks_give_reasonable_error(small_topology):
    """With every node a landmark, the relay bound is usually tight."""
    est = _estimator(small_topology, n_landmarks=small_topology.n)
    assert est.mean_absolute_relative_error() < 0.25


def test_estimates_positive(small_topology):
    est = _estimator(small_topology)
    mat = est.matrix()
    off = ~np.eye(small_topology.n, dtype=bool)
    assert np.all(mat[off] > 0)
