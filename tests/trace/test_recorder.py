"""Tests for the trace recorder and schedule analysis."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem
from repro.trace import (
    TraceRecorder,
    gantt_ascii,
    node_utilization,
    waiting_time_breakdown,
)
from repro.workflow.generator import chain_workflow, diamond_workflow


def _traced_system(workflows=None, **kw):
    base = dict(
        algorithm="dsmf",
        n_nodes=16,
        load_factor=1,
        total_time=6 * 3600.0,
        seed=17,
        task_range=(2, 6),
    )
    base.update(kw)
    system = P2PGridSystem(ExperimentConfig(**base), workflows=workflows)
    recorder = TraceRecorder().attach(system)
    return system, recorder


class TestRecorder:
    def test_records_dispatch_start_finish(self):
        wf = chain_workflow("c", 3, load=500.0, data=10.0)
        system, rec = _traced_system([(0, wf)])
        system.run()
        assert len(rec.of_kind("dispatch")) == 3
        assert len(rec.of_kind("start")) == 3
        assert len(rec.of_kind("finish")) == 3

    def test_event_order_per_task(self):
        wf = chain_workflow("c", 2, load=500.0, data=10.0)
        system, rec = _traced_system([(0, wf)])
        system.run()
        for tid in (0, 1):
            times = {
                e.kind: e.time for e in rec.for_workflow("c") if e.tid == tid
            }
            assert times["dispatch"] <= times["start"] <= times["finish"]

    def test_task_intervals_pair_up(self):
        wf = diamond_workflow("d", load=500.0, data=10.0)
        system, rec = _traced_system([(0, wf)])
        system.run()
        intervals = rec.task_intervals()
        assert len(intervals) == 4
        for _, _, _, start, finish in intervals:
            assert finish >= start

    def test_churn_events_recorded(self):
        system, rec = _traced_system(
            load_factor=1, n_nodes=20, dynamic_factor=0.2, total_time=4 * 3600.0
        )
        system.run()
        assert len(rec.of_kind("node_down")) > 0
        assert len(rec.of_kind("node_up")) > 0

    def test_cannot_attach_twice(self):
        system, rec = _traced_system()
        with pytest.raises(RuntimeError):
            rec.attach(system)

    def test_for_node_filter(self):
        wf = chain_workflow("c", 3, load=500.0, data=10.0)
        system, rec = _traced_system([(0, wf)])
        system.run()
        node = rec.of_kind("start")[0].node
        assert all(e.node == node for e in rec.for_node(node))


class TestAnalysis:
    @pytest.fixture()
    def traced(self):
        wf1 = chain_workflow("a", 3, load=2000.0, data=10.0)
        wf2 = chain_workflow("b", 2, load=1000.0, data=10.0)
        system, rec = _traced_system([(0, wf1), (1, wf2)])
        system.run()
        return system, rec

    def test_utilization_between_zero_and_one(self, traced):
        system, rec = traced
        util = node_utilization(rec, horizon=system.config.total_time)
        assert util
        assert all(0.0 < u <= 1.0 for u in util.values())

    def test_waiting_breakdown_counts_all_tasks(self, traced):
        _, rec = traced
        stats = waiting_time_breakdown(rec)
        assert stats["tasks"] == 5
        assert stats["mean_exec"] > 0
        assert stats["mean_wait"] >= 0

    def test_gantt_renders(self, traced):
        _, rec = traced
        chart = gantt_ascii(rec, width=40)
        assert "node" in chart
        assert "a" in chart.split("\n")[-1] or "b" in chart.split("\n")[-1]

    def test_gantt_empty_trace(self):
        assert gantt_ascii(TraceRecorder()) == "(no executed tasks)"
