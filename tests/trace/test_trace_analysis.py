"""Tests for schedule analysis over recorded traces."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem
from repro.trace import (
    TraceRecorder,
    gantt_ascii,
    gossip_round_stats,
    node_utilization,
    time_attribution,
    transfer_stats,
    waiting_time_breakdown,
)
from repro.workflow.generator import chain_workflow


@pytest.fixture(scope="module")
def traced():
    """One recorded tiny run shared across the module."""
    config = ExperimentConfig(
        algorithm="dsmf",
        n_nodes=16,
        load_factor=1,
        total_time=6 * 3600.0,
        seed=17,
        task_range=(2, 6),
    )
    system = P2PGridSystem(config)
    recorder = TraceRecorder().attach(system)
    result = system.run()
    return recorder, result


class TestUtilizationAndWaits:
    def test_node_utilization_bounds(self, traced):
        recorder, result = traced
        util = node_utilization(recorder, horizon=result.total_time)
        assert util
        for frac in util.values():
            assert 0.0 <= frac <= 1.0

    def test_waiting_time_breakdown(self, traced):
        recorder, _ = traced
        breakdown = waiting_time_breakdown(recorder)
        assert breakdown["tasks"] > 0
        assert breakdown["mean_wait"] >= 0
        assert breakdown["mean_exec"] > 0

    def test_empty_recorder(self):
        rec = TraceRecorder()
        assert waiting_time_breakdown(rec) == {
            "mean_wait": 0.0, "mean_exec": 0.0, "tasks": 0.0,
        }
        assert node_utilization(rec, horizon=1.0) == {}
        assert gantt_ascii(rec) == "(no executed tasks)"


class TestTransfers:
    def test_transfer_stats_pair_counts(self, traced):
        recorder, _ = traced
        stats = transfer_stats(recorder)
        n_starts = len(recorder.of_kind("transfer_start"))
        n_done = len(recorder.of_kind("transfer_done"))
        assert stats["transfers"] == n_done
        assert stats["unfinished"] == n_starts - n_done
        assert stats["mean_seconds"] > 0
        assert stats["total_megabits"] > 0

    def test_transfer_counts_match_system(self, traced):
        """The trace sees exactly what the TransferManager counted."""
        recorder, result = traced
        stats = transfer_stats(recorder)
        telemetry_free_total = stats["transfers"] + stats["unfinished"]
        assert telemetry_free_total == len(recorder.of_kind("transfer_start"))
        # completed transfers moved all accounted megabits (tolerance:
        # the two sides sum the same floats in different orders)
        started = sum(e.size for e in recorder.of_kind("transfer_start"))
        assert stats["total_megabits"] <= started + 1e-6 * max(started, 1.0)

    def test_empty(self):
        stats = transfer_stats(TraceRecorder())
        assert stats == {
            "transfers": 0.0, "unfinished": 0.0,
            "mean_seconds": 0.0, "total_megabits": 0.0,
        }


class TestGossip:
    def test_round_stats(self, traced):
        recorder, _ = traced
        stats = gossip_round_stats(recorder)
        assert stats["rounds"] > 0
        assert stats["messages"] > 0
        assert stats["mean_messages_per_round"] == pytest.approx(
            stats["messages"] / stats["rounds"]
        )

    def test_empty(self):
        assert gossip_round_stats(TraceRecorder()) == {
            "rounds": 0.0, "messages": 0.0, "mean_messages_per_round": 0.0,
        }


class TestAttribution:
    def test_components_compose(self, traced):
        recorder, _ = traced
        attribution = time_attribution(recorder)
        breakdown = waiting_time_breakdown(recorder)
        assert attribution["tasks"] == breakdown["tasks"]
        assert attribution["wait_seconds"] == pytest.approx(
            breakdown["mean_wait"] * breakdown["tasks"]
        )
        assert attribution["exec_seconds"] > 0
        assert attribution["transfer_seconds"] > 0


class TestGantt:
    def test_renders_rows_and_legend(self):
        wf = chain_workflow("c", 3, load=500.0, data=10.0)
        config = ExperimentConfig(
            algorithm="dsmf", n_nodes=8, load_factor=1,
            total_time=2 * 3600.0, seed=3, task_range=(2, 4),
        )
        system = P2PGridSystem(config, workflows=[(0, wf)])
        recorder = TraceRecorder().attach(system)
        system.run()
        chart = gantt_ascii(recorder, width=40)
        assert "node" in chart
        assert "t=0" in chart
        assert "=c" in chart  # legend maps a marker to the workflow
