"""Unit tests for the churn process and node suspend/resume mechanics."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem


def _system(**kw):
    base = dict(
        algorithm="dsmf",
        n_nodes=30,
        load_factor=1,
        total_time=6 * 3600.0,
        seed=11,
        dynamic_factor=0.2,
        task_range=(2, 6),
    )
    base.update(kw)
    return P2PGridSystem(ExperimentConfig(**base))


class TestChurnProcess:
    def test_batch_size_follows_dynamic_factor(self):
        system = _system(dynamic_factor=0.2)
        assert system.churn is not None
        assert system.churn.batch == 6  # 0.2 * 30

    def test_volatile_population_excludes_homes(self):
        system = _system(permanent_fraction=0.5)
        assert system.churn is not None
        homes = {n.nid for n in system.home_nodes}
        assert not set(system.churn.volatile_ids) & homes

    def test_tick_kills_then_revives(self):
        system = _system()
        churn = system.churn
        churn.tick(0)
        dead_after_first = [nid for nid in churn.volatile_ids
                            if not system.nodes[nid].alive]
        assert len(dead_after_first) == churn.batch
        churn.tick(1)
        # First batch revived; a new batch is down.
        assert churn.total_joins == churn.batch
        assert churn.total_departures == 2 * churn.batch

    def test_zero_dynamic_factor_means_no_churn_process(self):
        system = _system(dynamic_factor=0.0)
        assert system.churn is None

    def test_permanent_nodes_never_victims(self):
        system = _system(dynamic_factor=0.4)
        for c in range(5):
            system.churn.tick(c)
        for node in system.home_nodes:
            assert node.alive


class TestSuspendSemantics:
    def test_kill_preserves_ready_set(self):
        system = _system(churn_mode="suspend")
        node = next(n for n in system.nodes if n.volatile)
        from repro.grid.state import TaskDispatch

        d = TaskDispatch(wid=list(system.executions)[0], tid=0, load=10.0,
                         image_size=0.0, home_id=0, target_id=node.nid,
                         dispatch_time=0.0, seq=1)
        node.enqueue(d)
        system.kill_node(node.nid)
        assert not node.alive
        assert node.ready == [d]  # kept, not lost

    def test_revive_restores_alive_and_overlay(self):
        system = _system(churn_mode="suspend")
        node = next(n for n in system.nodes if n.volatile)
        system.kill_node(node.nid)
        assert node.nid not in system.overlay.live
        system.revive_node(node.nid)
        assert node.alive
        assert node.nid in system.overlay.live

    def test_suspended_running_task_resumes_with_remaining_time(self):
        system = _system(churn_mode="suspend")
        sim = system.sim
        node = next(n for n in system.nodes if n.volatile)
        from repro.grid.state import TaskDispatch

        wid = list(system.executions)[0]
        d = TaskDispatch(wid=wid, tid=0, load=node.capacity * 1000.0,
                         image_size=0.0, home_id=0, target_id=node.nid,
                         dispatch_time=0.0, seq=1)
        node.enqueue(d)
        node.start(d, now=0.0)
        node.completion_event = sim.schedule(1000.0, lambda: None)
        sim.run(until=400.0)
        system.kill_node(node.nid)
        assert node.suspended_remaining == pytest.approx(600.0)
        system.revive_node(node.nid)
        assert node.running is d
        assert node.completion_event is not None
        assert node.completion_event.time == pytest.approx(1000.0)


class TestFailSemantics:
    def test_kill_clears_tasks_and_fails_workflows(self):
        system = _system(churn_mode="fail")
        node = next(n for n in system.nodes if n.volatile)
        wid = list(system.executions)[0]
        wx = system.executions[wid]
        from repro.grid.state import TaskDispatch

        tid = next(iter(wx.schedule_points))
        wx.mark_dispatched(tid)
        d = TaskDispatch(wid=wid, tid=tid, load=10.0, image_size=0.0,
                         home_id=wx.home_id, target_id=node.nid,
                         dispatch_time=0.0, seq=1)
        system.dispatch_index[d.key()] = d
        node.enqueue(d)
        system.kill_node(node.nid)
        assert node.ready == []
        assert wx.status.value == "failed"

    def test_revive_after_fail_resets_node(self):
        system = _system(churn_mode="fail")
        node = next(n for n in system.nodes if n.volatile)
        system.kill_node(node.nid)
        system.revive_node(node.nid)
        assert node.alive
        assert node.ready == []
        assert node.running is None


class TestChurnEndToEnd:
    def test_alive_count_stays_near_n(self):
        system = _system(dynamic_factor=0.2, total_time=8 * 3600.0)
        result = system.run()
        alive_series = [s.alive_nodes for s in result.samples if s.alive_nodes]
        n = system.config.n_nodes
        assert all(n - 2 * system.churn.batch <= a <= n for a in alive_series)

    def test_suspend_runs_have_no_failures(self):
        result = _system(dynamic_factor=0.3).run()
        assert result.n_failed == 0
