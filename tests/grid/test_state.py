"""Tests for WorkflowExecution / TaskDispatch runtime state."""

from __future__ import annotations

import pytest

from repro.grid.state import TaskDispatch, WorkflowExecution
from repro.workflow.generator import chain_workflow, diamond_workflow


def _wx(wf=None):
    wf = wf or diamond_workflow("d")
    return WorkflowExecution(wf, home_id=0, submit_time=0.0, eft=500.0)


class TestScheduleFlow:
    def test_initial_schedule_point_is_entry(self):
        wx = _wx()
        assert wx.schedule_points == {0}

    def test_dispatch_removes_schedule_point(self):
        wx = _wx()
        wx.mark_dispatched(0)
        assert wx.schedule_points == set()
        assert 0 in wx.dispatched

    def test_dispatch_non_schedule_point_rejected(self):
        wx = _wx()
        with pytest.raises(ValueError):
            wx.mark_dispatched(3)

    def test_finish_unlocks_successors(self):
        wx = _wx()
        wx.mark_dispatched(0)
        newly = wx.mark_finished(0, node_id=5, time=10.0)
        assert set(newly) == {1, 2}
        assert wx.schedule_points == {1, 2}

    def test_join_waits_for_all_precedents(self):
        wx = _wx()
        wx.mark_finished(0, 1, 1.0)
        wx.mark_dispatched(1)
        wx.mark_dispatched(2)
        assert wx.mark_finished(1, 2, 5.0) == []
        assert wx.mark_finished(2, 3, 6.0) == [3]

    def test_double_finish_rejected(self):
        wx = _wx()
        wx.mark_finished(0, 1, 1.0)
        with pytest.raises(ValueError):
            wx.mark_finished(0, 1, 2.0)

    def test_dispatched_successor_not_readded(self):
        """After an invalidation cascade a dispatched task must not become a
        schedule point again (double-execution guard)."""
        wx = _wx()
        wx.mark_finished(0, 1, 1.0)
        wx.mark_dispatched(1)
        wx.mark_dispatched(2)
        wx.invalidate_task(0)  # node 1 churned out with 0's data
        assert wx.schedule_points == {0}
        wx.mark_finished(0, 4, 20.0)  # re-executed elsewhere
        assert wx.schedule_points == set()  # 1, 2 still dispatched

    def test_is_complete(self):
        wf = chain_workflow("c", 2, data=0.0)
        wx = _wx(wf)
        wx.mark_finished(0, 1, 1.0)
        assert not wx.is_complete
        wx.mark_finished(1, 1, 2.0)
        assert wx.is_complete


class TestInvalidation:
    def test_invalidate_finished_restores_pending(self):
        wx = _wx()
        wx.mark_finished(0, 1, 1.0)
        assert wx.schedule_points == {1, 2}
        wx.invalidate_task(0)
        assert wx.schedule_points == {0}
        assert 0 not in wx.finished

    def test_invalidate_dispatched_returns_to_schedule_point(self):
        wx = _wx()
        wx.mark_dispatched(0)
        wx.invalidate_task(0)
        assert wx.schedule_points == {0}


class TestMetricsAccessors:
    def test_inputs_for_reports_finished_locations(self):
        wx = _wx()
        wx.mark_finished(0, node_id=7, time=1.0)
        inputs = wx.inputs_for(1)
        assert inputs == [(7, wx.wf.precedents[1][0])]

    def test_completion_duration_and_efficiency(self):
        wx = _wx()
        wx.completion_time = 1000.0
        assert wx.completion_duration() == 1000.0
        assert wx.efficiency() == pytest.approx(0.5)

    def test_unfinished_metrics_are_none(self):
        wx = _wx()
        assert wx.completion_duration() is None
        assert wx.efficiency() is None

    def test_node_of(self):
        wx = _wx()
        wx.mark_finished(0, node_id=9, time=1.0)
        assert wx.node_of(0) == 9


class TestTaskDispatch:
    def test_runnable_requires_no_pending_inputs(self):
        d = TaskDispatch(
            wid="w", tid=0, load=1.0, image_size=0.0, home_id=0, target_id=1,
            dispatch_time=0.0, seq=0, pending_inputs=2,
        )
        assert not d.runnable
        d.pending_inputs = 0
        assert d.runnable

    def test_started_task_not_runnable(self):
        d = TaskDispatch(
            wid="w", tid=0, load=1.0, image_size=0.0, home_id=0, target_id=1,
            dispatch_time=0.0, seq=0,
        )
        d.start_time = 5.0
        assert not d.runnable

    def test_cancelled_task_not_runnable(self):
        d = TaskDispatch(
            wid="w", tid=0, load=1.0, image_size=0.0, home_id=0, target_id=1,
            dispatch_time=0.0, seq=0,
        )
        d.cancelled = True
        assert not d.runnable

    def test_key(self):
        d = TaskDispatch(
            wid="w", tid=3, load=1.0, image_size=0.0, home_id=0, target_id=1,
            dispatch_time=0.0, seq=0,
        )
        assert d.key() == ("w", 3)
