"""Execution-semantics tests for the full-ahead (static) scheduling model."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.grid.state import WorkflowStatus
from repro.grid.system import P2PGridSystem
from repro.workflow.generator import chain_workflow, diamond_workflow


def _system(workflows, algorithm="heft", **kw):
    base = dict(
        algorithm=algorithm,
        n_nodes=12,
        load_factor=1,
        total_time=8 * 3600.0,
        seed=21,
    )
    base.update(kw)
    return P2PGridSystem(ExperimentConfig(**base), workflows=workflows)


def test_all_tasks_dispatched_at_time_zero():
    wf = chain_workflow("c", 4, load=500.0, data=20.0)
    system = _system([(0, wf)])
    group = system.submissions
    system.sim.schedule(0.0, lambda: system._submit_group(group))
    system.sim.schedule(0.0, lambda: system._fullahead_plan_group(group))
    system.sim.run(until=0.0)
    wx = system.executions["c"]
    assert wx.dispatched | set(wx.finished) == set(wf.tasks)
    queued = sum(len(n.ready) for n in system.nodes) + sum(
        1 for n in system.nodes if n.running
    )
    assert queued == 4


def test_execution_follows_the_plan():
    wf = chain_workflow("c", 3, load=500.0, data=20.0)
    system = _system([(0, wf)])
    system.run()
    wx = system.executions["c"]
    assert wx.status is WorkflowStatus.DONE
    plan = system._fullahead_plan
    for tid in wf.tasks:
        assert wx.finished[tid][0] == plan.node_for("c", tid)


def test_colocated_dependent_tasks_execute_in_order():
    """Regression: a successor placed on its precedent's node must still
    wait for the precedent (no data transfer does not mean no dependency)."""
    # Force co-location by providing a single-capable system: 2 nodes, and a
    # heavy data edge so the planner keeps the chain together.
    wf = chain_workflow("c", 3, load=100.0, data=100_000.0)
    system = _system([(0, wf)], n_nodes=8)
    system.run()
    wx = system.executions["c"]
    assert wx.status is WorkflowStatus.DONE
    finishes = [wx.finished[t][1] for t in (0, 1, 2)]
    assert finishes[0] < finishes[1] < finishes[2]
    # And the planner did co-locate at least one dependent pair.
    nodes = [wx.finished[t][0] for t in (0, 1, 2)]
    assert len(set(nodes)) < 3


def test_deferred_transfer_starts_after_producer():
    """The data edge's transfer cannot complete before its producer ends."""
    wf = diamond_workflow("d", load=2000.0, data=500.0)
    system = _system([(0, wf)])
    system.run()
    wx = system.executions["d"]
    # Join (3) can only start after both branches' data arrived, which is
    # at least each branch finish + transfer; check starts via finish-et.
    join_node = wx.finished[3][0]
    join_finish = wx.finished[3][1]
    join_et = wf.tasks[3].load / system.nodes[join_node].capacity
    join_start = join_finish - join_et
    for branch in (1, 2):
        b_node, b_finish = wx.finished[branch]
        if b_node != join_node:
            expected_arrival = b_finish + system.topology.transfer_time(
                b_node, join_node, wf.edges[(branch, 3)]
            )
            assert join_start >= expected_arrival - 1e-6


def test_smf_bundle_runs_same_machinery():
    wf = chain_workflow("c", 3, load=500.0, data=20.0)
    system = _system([(0, wf)], algorithm="smf")
    result = system.run()
    assert result.n_done == 1


def test_fullahead_with_streaming_arrivals_completes():
    """Full-ahead bundles plan each arrival group at its instant."""
    cfg = ExperimentConfig(
        algorithm="heft", n_nodes=16, load_factor=1, total_time=12 * 3600.0,
        seed=5, task_range=(2, 8), arrival_process="poisson",
    )
    system = P2PGridSystem(cfg)
    result = system.run()
    assert result.n_done == result.n_workflows
    assert max(r.submit_time for r in result.records) > 0.0
    # Every non-virtual task of every arrival group made it into the
    # merged plan.
    plan = system._fullahead_plan
    for wx in system.executions.values():
        for tid, task in wx.wf.tasks.items():
            if not task.virtual:
                assert (wx.wf.wid, tid) in plan.assignment


def test_eft_state_seeds_availability_from_resident_load():
    """Mid-run plans see the occupied grid: a node with queued work is
    avoided when an equal-capacity idle node exists."""
    import numpy as np

    from repro.core.fullahead.planner import GlobalView, _EftState

    def view(loads):
        n = 2
        return GlobalView(
            node_ids=np.arange(n, dtype=np.int64),
            capacities=np.full(n, 4.0),
            bandwidth=np.full((n, n), 10.0),
            latency=np.zeros((n, n)),
            avg_capacity=4.0,
            avg_bandwidth=10.0,
            loads=loads,
        )

    idle = _EftState(view(None))
    assert (idle.avail == 0.0).all()
    busy = _EftState(view(np.asarray([8000.0, 0.0])))
    assert busy.avail[0] == pytest.approx(2000.0)  # 8000 MI / 4 MIPS
    assert busy.avail[1] == 0.0


def test_fcfs_order_respects_plan_sequence():
    """Two independent single-task workflows pinned to the same node run in
    plan (seq) order under FCFS."""
    wa = chain_workflow("a", 1, load=1000.0, data=0.0)
    wb = chain_workflow("b", 1, load=1000.0, data=0.0)
    system = _system([(0, wa), (0, wb)], n_nodes=2)
    system.run()
    fa = system.executions["a"].finished[0]
    fb = system.executions["b"].finished[0]
    if fa[0] == fb[0]:  # same node: strictly ordered, no overlap
        assert abs(fa[1] - fb[1]) >= 1000.0 / system.nodes[fa[0]].capacity - 1e-6
