"""Tests for the PeerNode CPU / ready-set mechanics."""

from __future__ import annotations

import pytest

from repro.grid.node import PeerNode
from repro.grid.state import TaskDispatch


def _dispatch(tid=0, load=100.0, pending=0, seq=0):
    d = TaskDispatch(
        wid="w", tid=tid, load=load, image_size=0.0, home_id=0, target_id=1,
        dispatch_time=0.0, seq=seq,
    )
    d.pending_inputs = pending
    return d


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PeerNode(0, capacity=0.0)


def test_total_load_sums_ready_and_running():
    node = PeerNode(0, capacity=2.0)
    node.enqueue(_dispatch(tid=0, load=100.0))
    node.enqueue(_dispatch(tid=1, load=50.0, seq=1))
    assert node.total_load() == 150.0
    node.start(node.ready[0], now=0.0)
    assert node.total_load() == 150.0  # running task still counts (paper)


def test_runnable_excludes_pending_inputs():
    node = PeerNode(0, capacity=2.0)
    a = _dispatch(tid=0, pending=1)
    b = _dispatch(tid=1, seq=1)
    node.enqueue(a)
    node.enqueue(b)
    assert node.runnable_tasks() == [b]


def test_start_computes_execution_time():
    node = PeerNode(0, capacity=4.0)
    d = _dispatch(load=100.0)
    node.enqueue(d)
    et = node.start(d, now=10.0)
    assert et == 25.0
    assert node.busy
    assert d.start_time == 10.0


def test_start_busy_cpu_rejected():
    node = PeerNode(0, capacity=1.0)
    a, b = _dispatch(tid=0), _dispatch(tid=1, seq=1)
    node.enqueue(a)
    node.enqueue(b)
    node.start(a, 0.0)
    with pytest.raises(RuntimeError):
        node.start(b, 0.0)


def test_start_nonrunnable_rejected():
    node = PeerNode(0, capacity=1.0)
    d = _dispatch(pending=1)
    node.enqueue(d)
    with pytest.raises(RuntimeError):
        node.start(d, 0.0)


def test_finish_running_frees_cpu():
    node = PeerNode(0, capacity=1.0)
    d = _dispatch()
    node.enqueue(d)
    node.start(d, 0.0)
    out = node.finish_running(now=100.0)
    assert out is d
    assert d.finish_time == 100.0
    assert not node.busy
    assert node.tasks_executed == 1


def test_finish_idle_cpu_rejected():
    with pytest.raises(RuntimeError):
        PeerNode(0, capacity=1.0).finish_running(0.0)


def test_remove_tolerates_absent_dispatch():
    node = PeerNode(0, capacity=1.0)
    node.remove(_dispatch())  # no error


def test_reset_for_rejoin_wipes_state():
    node = PeerNode(0, capacity=1.0)
    node.enqueue(_dispatch())
    node.alive = False
    node.reset_for_rejoin(epoch=3)
    assert node.alive
    assert node.epoch == 3
    assert node.ready == []
    assert node.running is None
