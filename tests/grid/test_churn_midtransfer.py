"""Churn regression: a node departing mid-transfer cancels everything once.

The perf optimizations lean on the kernel's lazy event deletion (cancelled
events stay heap-resident) and on ready-set pruning; this pins the exact
cancellation contract: when a node churns out in ``fail`` mode, its
in-flight inbound transfers and its execution event are each cancelled
*exactly once*, its dispatches are cancelled, and a second ``kill_node``
is a strict no-op.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem
from repro.sim.engine import Event


@pytest.fixture
def cancel_counter(monkeypatch):
    """Count Event.cancel() invocations per event object."""
    counts: dict[int, int] = {}
    orig = Event.cancel

    def counting(self):
        counts[id(self)] = counts.get(id(self), 0) + 1
        return orig(self)

    monkeypatch.setattr(Event, "cancel", counting)
    return counts


def _run_and_kill_midtransfer():
    """Full run with an in-sim probe that kills the first node caught with
    transfers in flight (exactly how the churn process operates).

    Returns ``(system, result, captured)`` where ``captured`` holds the
    victim state snapshotted at the kill instant.
    """
    config = ExperimentConfig(
        n_nodes=24,
        load_factor=2,
        total_time=24 * 3600.0,
        seed=3,
        task_range=(4, 16),
        data_range=(2000.0, 8000.0),  # big payloads -> long transfers
        churn_mode="fail",
    )
    system = P2PGridSystem(config)
    captured: dict = {}

    def probe():
        if captured:
            return
        for node in system.nodes:
            if node.alive and system.transfers.active_count(node.nid) > 0:
                transfers = list(system.transfers.inbound[node.nid])
                captured["node"] = node
                captured["kill_time"] = system.sim.now
                captured["transfer_events"] = [
                    tr.event for tr in transfers if tr.event is not None
                ]
                captured["exec_event"] = node.completion_event
                captured["resident"] = list(node.ready) + (
                    [node.running] if node.running else []
                )
                system.kill_node(node.nid)
                # Immediate post-kill state, before any other event runs:
                captured["post_ready"] = list(node.ready)
                captured["post_running"] = node.running
                captured["post_completion_event"] = node.completion_event
                captured["post_active"] = system.transfers.active_count(node.nid)
                captured["second_cancel_count"] = system.transfers.cancel_inbound(
                    node.nid
                )
                return
        system.sim.schedule(60.0, probe, label="probe")

    system.sim.schedule(60.0, probe, label="probe")
    result = system.run()
    assert captured, "no mid-transfer moment found; scenario needs retuning"
    return system, result, captured


def test_kill_mid_transfer_cancels_each_event_exactly_once(cancel_counter):
    system, _, cap = _run_and_kill_midtransfer()
    node = cap["node"]

    assert not node.alive
    assert cap["transfer_events"], "victim should have armed transfer events"
    # Every in-flight inbound transfer event: cancelled exactly once.
    for ev in cap["transfer_events"]:
        assert ev.cancelled
        assert cancel_counter[id(ev)] == 1
    # The execution event (if the CPU was busy): cancelled exactly once.
    if cap["exec_event"] is not None:
        assert cap["exec_event"].cancelled
        assert cancel_counter[id(cap["exec_event"])] == 1
    # Transfer bookkeeping was gone immediately; the second cancel pass at
    # the kill instant found nothing left to cancel.
    assert cap["post_active"] == 0
    assert cap["second_cancel_count"] == 0
    # Resident dispatches are cancelled (the flag the lazy ready-set
    # pruning relies on) and the node was emptied at the kill instant.
    for dispatch in cap["resident"]:
        assert dispatch.cancelled
    assert cap["post_ready"] == [] and cap["post_running"] is None
    assert cap["post_completion_event"] is None

    # kill_node is idempotent: nothing new gets cancelled on a second call.
    before = dict(cancel_counter)
    system.kill_node(node.nid)
    assert cancel_counter == before


def test_simulation_survives_and_finishes_after_midrun_kill():
    system, result, cap = _run_and_kill_midtransfer()
    node = cap["node"]
    owners = {d.wid for d in cap["resident"]}
    assert owners, "victim should have held at least one dispatch"
    # Owning workflows failed (fail churn mode, no rescheduling), with the
    # churn reason recorded; the rest of the system kept going.
    for wid in owners:
        wx = system.executions[wid]
        assert wx.status.value == "failed"
        assert "churned node" in wx.failure_reason
    assert result.n_failed >= len(owners)
    assert result.n_done > 0, "unaffected workflows must still complete"
    # The dead node never executed anything after the kill instant.
    assert all(
        d.finish_time is None or d.finish_time <= cap["kill_time"]
        for d in cap["resident"]
    )
    assert node.running is None and node.completion_event is None
