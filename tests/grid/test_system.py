"""Integration tests for the full P2P grid system."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.grid.state import WorkflowStatus
from repro.grid.system import P2PGridSystem
from repro.workflow.generator import chain_workflow, diamond_workflow


def _config(**kw):
    base = dict(
        algorithm="dsmf",
        n_nodes=24,
        load_factor=1,
        total_time=8 * 3600.0,
        seed=3,
        task_range=(2, 10),
    )
    base.update(kw)
    return ExperimentConfig(**base)


class TestBasicRuns:
    def test_all_workflows_finish_in_static_run(self):
        result = P2PGridSystem(_config()).run()
        assert result.n_done == result.n_workflows
        assert result.n_failed == 0

    def test_act_and_ae_are_positive(self):
        result = P2PGridSystem(_config()).run()
        assert result.act > 0
        assert 0 < result.ae

    def test_determinism_same_seed(self):
        a = P2PGridSystem(_config()).run()
        b = P2PGridSystem(_config()).run()
        assert a.act == b.act
        assert a.ae == b.ae
        assert a.events_executed == b.events_executed

    def test_different_seeds_differ(self):
        a = P2PGridSystem(_config(seed=1)).run()
        b = P2PGridSystem(_config(seed=2)).run()
        assert a.act != b.act

    def test_system_runs_only_once(self):
        system = P2PGridSystem(_config())
        system.run()
        with pytest.raises(RuntimeError):
            system.run()

    def test_samples_cover_horizon(self):
        result = P2PGridSystem(_config()).run()
        times, _ = result.series("throughput")
        assert times[0] == pytest.approx(1.0)  # first hourly sample
        assert times[-1] == pytest.approx(8.0)

    def test_throughput_series_monotone(self):
        result = P2PGridSystem(_config()).run()
        _, tp = result.series("throughput")
        assert tp == sorted(tp)

    @pytest.mark.parametrize("algorithm", ["heft", "smf", "min-min", "dsdf"])
    def test_other_algorithms_complete(self, algorithm):
        result = P2PGridSystem(_config(algorithm=algorithm)).run()
        assert result.n_done == result.n_workflows


class TestExplicitWorkflows:
    def test_single_chain_executes_in_order(self):
        wf = chain_workflow("c", 3, load=1000.0, data=10.0)
        cfg = _config()
        system = P2PGridSystem(cfg, workflows=[(0, wf)])
        system.run()
        wx = system.executions["c"]
        assert wx.status is WorkflowStatus.DONE
        times = [wx.finished[t][1] for t in (0, 1, 2)]
        assert times == sorted(times)

    def test_diamond_completion_after_both_branches(self):
        wf = diamond_workflow("d", load=1000.0, data=10.0)
        system = P2PGridSystem(_config(), workflows=[(0, wf)])
        system.run()
        wx = system.executions["d"]
        assert wx.status is WorkflowStatus.DONE
        join_time = wx.finished[3][1]
        assert join_time >= max(wx.finished[1][1], wx.finished[2][1])

    def test_ct_includes_initial_scheduling_wait(self):
        """JIT model: nothing dispatches before the first scheduling cycle."""
        wf = chain_workflow("c", 2, load=100.0, data=0.0)
        cfg = _config(schedule_interval=900.0)
        system = P2PGridSystem(cfg, workflows=[(0, wf)])
        system.run()
        wx = system.executions["c"]
        assert wx.completion_time is not None
        assert wx.completion_time >= 900.0

    def test_immediate_dispatch_skips_cycle_wait(self):
        wf = chain_workflow("c", 2, load=100.0, data=0.0)
        cfg = _config(immediate_dispatch=True)
        system = P2PGridSystem(cfg, workflows=[(0, wf)])
        system.run()
        wx = system.executions["c"]
        assert wx.completion_time is not None
        assert wx.completion_time < 900.0


class TestGossipIntegration:
    def test_rss_mean_bounded(self):
        result = P2PGridSystem(_config()).run()
        assert 0 < result.rss_mean <= 2 * 5  # 2*ceil(log2(24))

    def test_oracle_mode_runs(self):
        result = P2PGridSystem(_config(rss_mode="oracle")).run()
        assert result.n_done == result.n_workflows

    def test_oracle_bandwidth_runs(self):
        result = P2PGridSystem(_config(use_landmark_bandwidth=False)).run()
        assert result.n_done == result.n_workflows


class TestChurnIntegration:
    def test_suspend_churn_keeps_workflows_alive(self):
        result = P2PGridSystem(
            _config(dynamic_factor=0.2, total_time=10 * 3600.0)
        ).run()
        assert result.n_failed == 0
        assert result.n_done > 0

    def test_fail_churn_fails_some_workflows(self):
        result = P2PGridSystem(
            _config(
                dynamic_factor=0.3,
                churn_mode="fail",
                load_factor=2,
                total_time=10 * 3600.0,
            )
        ).run()
        assert result.n_failed > 0

    def test_reschedule_extension_recovers(self):
        base = _config(
            dynamic_factor=0.3,
            churn_mode="fail",
            load_factor=2,
            total_time=10 * 3600.0,
        )
        plain = P2PGridSystem(base).run()
        resched = P2PGridSystem(base.with_(reschedule_failed=True)).run()
        assert resched.n_done > plain.n_done
        assert resched.n_failed == 0

    def test_home_nodes_never_churn(self):
        system = P2PGridSystem(_config(dynamic_factor=0.4))
        system.run()
        for node in system.home_nodes:
            assert node.alive

    def test_fail_churn_records_have_reasons(self):
        system = P2PGridSystem(
            _config(dynamic_factor=0.4, churn_mode="fail", total_time=6 * 3600.0)
        )
        result = system.run()
        failed = [r for r in result.records if r.status == "failed"]
        assert all(r.failure_reason for r in failed)


class TestContentionExtension:
    def test_contention_mode_completes(self):
        result = P2PGridSystem(_config(transfer_contention=True)).run()
        assert result.n_done == result.n_workflows

    def test_contention_never_faster(self):
        fast = P2PGridSystem(_config()).run()
        slow = P2PGridSystem(_config(transfer_contention=True)).run()
        assert slow.act >= fast.act * 0.99
