"""Tests for the transfer manager (contention-free and contended modes)."""

from __future__ import annotations

import pytest

from repro.grid.transfers import TransferManager
from repro.net.topology import Topology
from repro.sim.engine import Simulator
from repro.sim.rng import spawn_generator


@pytest.fixture(scope="module")
def topo():
    return Topology.waxman(10, spawn_generator(42, "xfer"))


def test_transfer_completes_after_expected_delay(topo):
    sim = Simulator()
    tm = TransferManager(sim, topo)
    done = []
    tm.start(0, 1, 100.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(topo.transfer_time(0, 1, 100.0))]


def test_local_transfer_is_instant(topo):
    sim = Simulator()
    tm = TransferManager(sim, topo)
    done = []
    tm.start(3, 3, 1e6, lambda: done.append(sim.now))
    sim.run()
    assert done == [0.0]


def test_concurrent_transfers_do_not_contend_by_default(topo):
    """The paper's model: concurrent inbound transfers overlap freely."""
    sim = Simulator()
    tm = TransferManager(sim, topo)
    done = {}
    tm.start(0, 2, 100.0, lambda: done.setdefault("a", sim.now))
    tm.start(1, 2, 100.0, lambda: done.setdefault("b", sim.now))
    sim.run()
    assert done["a"] == pytest.approx(topo.transfer_time(0, 2, 100.0))
    assert done["b"] == pytest.approx(topo.transfer_time(1, 2, 100.0))


def test_cancel_inbound_stops_completions(topo):
    sim = Simulator()
    tm = TransferManager(sim, topo)
    done = []
    tm.start(0, 1, 100.0, lambda: done.append(True))
    tm.start(2, 1, 100.0, lambda: done.append(True))
    assert tm.cancel_inbound(1) == 2
    sim.run()
    assert done == []
    assert tm.active_count(1) == 0


def test_counters(topo):
    sim = Simulator()
    tm = TransferManager(sim, topo)
    tm.start(0, 1, 100.0, lambda: None)
    tm.start(0, 2, 50.0, lambda: None)
    sim.run()
    assert tm.completed == 2
    assert tm.bytes_moved == 150.0


def test_contention_slows_concurrent_inbound(topo):
    """With contention on, two equal inbound flows each get half the rate."""
    sim = Simulator()
    tm = TransferManager(sim, topo, contention=True)
    done = {}
    tm.start(0, 2, 100.0, lambda: done.setdefault("a", sim.now))
    tm.start(1, 2, 100.0, lambda: done.setdefault("b", sim.now))
    sim.run()
    solo_a = topo.transfer_time(0, 2, 100.0)
    assert done["a"] > solo_a  # sharing made it slower


def test_contention_single_flow_matches_solo_rate(topo):
    sim = Simulator()
    tm = TransferManager(sim, topo, contention=True)
    done = []
    tm.start(0, 1, 100.0, lambda: done.append(sim.now))
    sim.run()
    assert done[0] == pytest.approx(topo.transfer_time(0, 1, 100.0))


def test_contention_conserves_volume(topo):
    """Staggered arrivals: all transfers eventually complete exactly once."""
    sim = Simulator()
    tm = TransferManager(sim, topo, contention=True)
    done = []
    tm.start(0, 2, 200.0, lambda: done.append("a"))
    sim.schedule(1.0, lambda: tm.start(1, 2, 50.0, lambda: done.append("b")))
    sim.schedule(2.0, lambda: tm.start(3, 2, 80.0, lambda: done.append("c")))
    sim.run()
    assert sorted(done) == ["a", "b", "c"]
    assert tm.completed == 3
