"""Record the availability-preset golden fingerprints (and their trace).

Usage::

    PYTHONPATH=src python tests/regression/record_availability.py

Regenerates, in order:

1. ``data/availability_trace.json`` — the realized join/leave log of the
   ``weibull-sessions`` golden cell (the committed trace the
   ``trace-churn`` cell replays);
2. ``golden_availability.json`` — one result-digest fingerprint per
   availability scenario preset.

Only run this when a PR *intentionally* changes churn/recovery semantics;
refactors must replay the existing file bit-identically.  The workload
golden file (``golden_fingerprints.json``) is recorded separately by
``record_golden.py`` and must never move for the default churn model.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from regression.golden import (  # noqa: E402
    AVAILABILITY_GOLDEN_PATH,
    AVAILABILITY_TRACE_PATH,
    availability_config,
    availability_specs,
)

from repro.availability import save_availability_trace  # noqa: E402
from repro.experiments.campaign import result_digest  # noqa: E402
from repro.grid.system import P2PGridSystem  # noqa: E402


def record_trace() -> None:
    """Run the weibull-sessions cell and persist its availability log."""
    system = P2PGridSystem(availability_config("weibull-sessions"))
    system.run()
    AVAILABILITY_TRACE_PATH.parent.mkdir(parents=True, exist_ok=True)
    save_availability_trace(system.availability_events, AVAILABILITY_TRACE_PATH)
    print(f"wrote {AVAILABILITY_TRACE_PATH} "
          f"({len(system.availability_events)} events)")


def main() -> int:
    t0 = time.perf_counter()
    record_trace()
    fingerprints: dict[str, str] = {}
    for scenario, config in availability_specs():
        t1 = time.perf_counter()
        result = P2PGridSystem(config).run()
        digest = result_digest(result)
        fingerprints[scenario] = digest
        print(f"  {scenario:22s} {digest[:16]}  ({time.perf_counter() - t1:.2f}s, "
              f"{result.events_executed} events, dep={result.n_departures} "
              f"lost={result.n_tasks_lost} rec={result.n_tasks_recovered})")
    payload = {
        "_comment": (
            "Golden fingerprints (result_digest per availability scenario "
            "preset), dsmf seed 1 at the regression base scale. Regenerate "
            "only for intentional churn/recovery semantic changes: "
            "PYTHONPATH=src python tests/regression/record_availability.py"
        ),
        "fingerprints": fingerprints,
    }
    AVAILABILITY_GOLDEN_PATH.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"wrote {AVAILABILITY_GOLDEN_PATH} ({len(fingerprints)} cells, "
          f"{time.perf_counter() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
