"""Statistical-band goldens: the semantic-change companion to the
bit-exact fingerprints.

The fingerprint files (``golden_fingerprints.json`` & friends) pin the
*exact* outcome of one RNG stream: any refactor that moves a single draw
trips them.  That is the right tool for pure performance work, but it
cannot validate an **intentional** semantic change (e.g. PR 8's batched
gossip rounds), where the stream is deliberately different and the question
becomes "is the new stream *statistically* the same simulation?".

This module defines that procedure:

* :func:`stats_specs` — the band grid: every (algorithm, scenario) cell of
  the workload golden grid, the availability presets, and the metro-1k
  scale cell, each run across :data:`STATS_SEEDS` seeds.
* :func:`run_metrics` — the per-run observables that are banded: the
  paper's headline metrics (ACT, AE, throughput), the per-heuristic
  makespan distribution (ct quantiles), and the convergence curves (AE and
  mean-RSS-size over simulated time — Fig. 11's y-axes).
* :func:`make_bands` — records, per cell, the across-seed envelope
  (min/max/mean) of each observable from the *old* stream.
* :func:`validate_metrics` — asserts a *new*-stream run lands inside each
  envelope, widened by half the seed spread plus a small per-metric floor
  (an empirical confidence band: where seeds disagree the band is wide,
  where they agree it is tight).

``python tests/regression/record_stats.py`` (re)records
``golden_stats.json``.  Record it **before** a semantic change on the old
code, then verify the new code passes ``test_statistical_bands.py`` —
see ``tests/regression/README.md`` for the full procedure.
"""

from __future__ import annotations

import json
from pathlib import Path

from regression.golden import (
    AVAILABILITY_SCENARIOS,
    GOLDEN_ALGORITHMS,
    GOLDEN_SCENARIOS,
    availability_config,
    golden_config,
    metro_config,
)

__all__ = [
    "STATS_PATH",
    "STATS_SEEDS",
    "METRO_STATS_SEEDS",
    "load_stats",
    "make_bands",
    "run_metrics",
    "stats_specs",
    "validate_metrics",
]

STATS_PATH = Path(__file__).with_name("golden_stats.json")

#: Seeds the envelope is estimated from (old stream).  Eight independent
#: replicates give a min/max spread wide enough that a statistically
#: equivalent new stream lands inside it with high probability once the
#: widening below is applied.
STATS_SEEDS = (1, 2, 3, 4, 5, 6, 7, 8)

#: The 1000-node cell costs seconds per run, so it uses a smaller replicate
#: set (its observables are means over ~1000 workflows and correspondingly
#: tight).
METRO_STATS_SEEDS = (1, 2, 3, 4)

#: Band widening: half the observed seed spread on each side, floored by a
#: per-metric absolute tolerance (so a degenerate zero-spread envelope —
#: e.g. every seed finishing all workflows — still tolerates benign noise).
_SPREAD_FACTOR = 0.5
_FLOORS = {
    "act": 120.0,  # seconds of simulated completion time
    "ae": 0.02,
    "ct_p50": 120.0,
    "ct_p90": 240.0,
    "n_done": 2.0,
    "n_failed": 2.0,
    "completion_rate": 0.02,
    "rss_mean": 1.0,
    "ae_curve": 0.03,
    "rss_curve": 1.5,
}


def stats_specs() -> list[tuple[str, int, object]]:
    """``(cell_key, seed, config)`` for every banded run, recording order."""
    specs: list[tuple[str, int, object]] = []
    for scenario in GOLDEN_SCENARIOS:
        for algorithm in GOLDEN_ALGORITHMS:
            for seed in STATS_SEEDS:
                cfg = golden_config(algorithm, seed, scenario)
                specs.append((f"{algorithm}@{scenario}", seed, cfg))
    for scenario in AVAILABILITY_SCENARIOS:
        for seed in STATS_SEEDS:
            cfg = availability_config(scenario).with_(seed=seed)
            specs.append((f"dsmf@{scenario}", seed, cfg))
    for seed in METRO_STATS_SEEDS:
        specs.append(("dsmf@metro-1k", seed, metro_config().with_(seed=seed)))
    return specs


def _quantile(sorted_vals: list[float], q: float) -> float:
    """Nearest-rank quantile (deterministic, no interpolation surprises)."""
    if not sorted_vals:
        return 0.0
    idx = min(len(sorted_vals) - 1, max(0, int(round(q * (len(sorted_vals) - 1)))))
    return float(sorted_vals[idx])


def run_metrics(result) -> dict:
    """The banded observables of one finished run."""
    cts = sorted(
        r.ct for r in result.records if r.status == "done" and r.ct is not None
    )
    return {
        "act": float(result.act),
        "ae": float(result.ae),
        "n_done": float(result.n_done),
        "n_failed": float(result.n_failed),
        "completion_rate": float(result.completion_rate),
        "ct_p50": _quantile(cts, 0.50),
        "ct_p90": _quantile(cts, 0.90),
        "rss_mean": float(result.rss_mean),
        "ae_curve": [float(s.ae) for s in result.samples],
        "rss_curve": [float(s.rss_mean) for s in result.samples],
    }


_SCALARS = (
    "act", "ae", "n_done", "n_failed", "completion_rate",
    "ct_p50", "ct_p90", "rss_mean",
)
_CURVES = ("ae_curve", "rss_curve")


def make_bands(per_seed: dict[int, dict]) -> dict:
    """Across-seed envelope of one cell's observables."""
    runs = list(per_seed.values())
    bands: dict = {"n_seeds": len(runs)}
    for name in _SCALARS:
        vals = [r[name] for r in runs]
        bands[name] = {
            "lo": min(vals),
            "hi": max(vals),
            "mean": sum(vals) / len(vals),
        }
    for name in _CURVES:
        n = min(len(r[name]) for r in runs)
        bands[name] = [
            {
                "lo": min(r[name][i] for r in runs),
                "hi": max(r[name][i] for r in runs),
            }
            for i in range(n)
        ]
    return bands


def _widen(lo: float, hi: float, floor: float) -> tuple[float, float]:
    pad = max(_SPREAD_FACTOR * (hi - lo), floor)
    return lo - pad, hi + pad


def validate_metrics(cell: str, bands: dict, metrics: dict) -> list[str]:
    """Band check of one new-stream run; returns problems (empty = pass)."""
    problems: list[str] = []
    for name in _SCALARS:
        band = bands[name]
        lo, hi = _widen(band["lo"], band["hi"], _FLOORS[name])
        val = metrics[name]
        if not (lo <= val <= hi):
            problems.append(
                f"{cell}: {name}={val:.4g} outside the recorded band "
                f"[{lo:.4g}, {hi:.4g}] (seed envelope "
                f"[{band['lo']:.4g}, {band['hi']:.4g}])"
            )
    for name in _CURVES:
        floor = _FLOORS[name]
        curve = metrics[name]
        for i, band in enumerate(bands[name]):
            if i >= len(curve):
                break
            lo, hi = _widen(band["lo"], band["hi"], floor)
            val = curve[i]
            if not (lo <= val <= hi):
                problems.append(
                    f"{cell}: {name}[{i}]={val:.4g} outside "
                    f"[{lo:.4g}, {hi:.4g}]"
                )
    return problems


def load_stats() -> dict:
    """The recorded band file as a dict."""
    with STATS_PATH.open() as fh:
        return json.load(fh)
