"""Golden fingerprints for the imported-trace scenario presets.

Replays each curated-trace preset (dsmf, seed 1) and asserts its
:func:`result_digest` matches ``golden_traces.json`` — pinning the
archive parsers, the curation outputs committed under ``data/traces/``
and the trace-replay machinery bit-for-bit, exactly as the other golden
files pin the synthetic grids.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from regression.golden import (
    TRACE_SCENARIOS,
    load_trace_golden,
    trace_config,
)

from repro.experiments.campaign import result_digest
from repro.grid.system import P2PGridSystem


def test_golden_file_covers_every_trace_preset():
    recorded = load_trace_golden()["fingerprints"]
    assert sorted(recorded) == sorted(TRACE_SCENARIOS), (
        "golden_traces.json is out of sync with the trace-preset grid; "
        "re-record via tests/regression/record_traces.py"
    )


def test_committed_trace_slices_exist():
    for scenario in TRACE_SCENARIOS:
        cfg = trace_config(scenario)
        path = cfg.workload_path or cfg.availability_path
        assert path and Path(path).exists(), (
            f"{scenario}: committed trace file {path} is missing; "
            "regenerate it via the commands in data/README.md"
        )


@pytest.mark.parametrize("scenario", TRACE_SCENARIOS)
def test_replay_matches_trace_fingerprint(scenario):
    recorded = load_trace_golden()["fingerprints"][scenario]
    result = P2PGridSystem(trace_config(scenario)).run()
    assert result.n_workflows > 0
    assert result_digest(result) == recorded, (
        f"{scenario} diverged from its recorded fingerprint — an archive "
        "parser, curation rule or trace-replay change altered the "
        "simulated outcome; if intentional, re-record via "
        "tests/regression/record_traces.py and say so in the PR"
    )
