"""Golden fingerprint for the 1000-node ``metro-1k`` preset.

One production-scale cell (dsmf, seed 1, bench ``--quick`` horizon)
replayed bit-identically on every regression run: this is what pins the
scale-out simulation core — the indexed event queue, the gossip fast
paths and the ``__slots__``-pooled runtime state — against a grid 25x
larger than the base golden cells, where any stream or ordering slip
would compound fastest.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from regression.golden import load_metro_golden, metro_config

from repro.experiments.campaign import result_digest
from repro.grid.system import P2PGridSystem


def test_replay_matches_metro_fingerprint():
    recorded = load_metro_golden()
    result = P2PGridSystem(metro_config()).run()
    assert result.events_executed == recorded["events_executed"], (
        "metro-1k event count drifted; if the semantic change is "
        "intentional, re-record via tests/regression/record_metro.py"
    )
    assert result_digest(result) == recorded["fingerprint"], (
        "metro-1k outcome drifted from golden_metro.json; if the semantic "
        "change is intentional, re-record via "
        "tests/regression/record_metro.py"
    )
