"""Record the metro-1k (1000-node) golden fingerprint.

Usage::

    PYTHONPATH=src python tests/regression/record_metro.py

Regenerates ``golden_metro.json``: the result-digest fingerprint of the
``metro-1k`` preset (dsmf, seed 1) at the bench ``--quick`` horizon.  Only
run this when a PR *intentionally* changes simulation semantics at scale;
perf refactors must replay the existing file bit-identically.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from regression.golden import METRO_GOLDEN_PATH, metro_config  # noqa: E402

from repro.experiments.campaign import result_digest  # noqa: E402
from repro.grid.system import P2PGridSystem  # noqa: E402


def main() -> int:
    t0 = time.perf_counter()
    config = metro_config()
    result = P2PGridSystem(config).run()
    payload = {
        "description": (
            "metro-1k (1000 nodes, structured-mix, weibull-sessions churn) "
            "dsmf seed-1 fingerprint at the bench --quick horizon; "
            "re-record only for intentional semantic changes"
        ),
        "config": {
            "algorithm": config.algorithm,
            "seed": config.seed,
            "n_nodes": config.n_nodes,
            "total_time": config.total_time,
            "scenario": config.scenario,
        },
        "events_executed": result.events_executed,
        "fingerprint": result_digest(result),
    }
    METRO_GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(
        f"wrote {METRO_GOLDEN_PATH} ({payload['fingerprint'][:16]}..., "
        f"{result.events_executed} events, {time.perf_counter() - t0:.1f}s)"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
