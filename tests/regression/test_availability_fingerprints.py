"""Golden fingerprints for the availability scenario presets.

Replays each churn-axis preset (dsmf, seed 1, regression base scale) and
asserts its :func:`result_digest` matches ``golden_availability.json`` —
pinning churn-model sampling, recovery-policy behavior and the replayed
trace bit-for-bit, exactly as ``test_golden_fingerprints`` pins the
default-churn workload grid.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from regression.golden import (
    AVAILABILITY_GOLDEN_PATH,
    AVAILABILITY_SCENARIOS,
    AVAILABILITY_TRACE_PATH,
    availability_config,
    load_availability_golden,
)

from repro.experiments.campaign import result_digest
from repro.grid.system import P2PGridSystem


def test_golden_file_covers_every_availability_preset():
    recorded = load_availability_golden()["fingerprints"]
    assert sorted(recorded) == sorted(AVAILABILITY_SCENARIOS), (
        "golden_availability.json is out of sync with the preset grid; "
        "re-record via tests/regression/record_availability.py"
    )


def test_committed_trace_is_loadable_and_nonempty():
    from repro.availability import load_availability_trace

    events = load_availability_trace(AVAILABILITY_TRACE_PATH)
    assert events, "the committed availability trace must not be empty"
    assert all(type(e.node) is int for e in events)


@pytest.mark.parametrize("scenario", AVAILABILITY_SCENARIOS)
def test_replay_matches_availability_fingerprint(scenario):
    recorded = load_availability_golden()["fingerprints"][scenario]
    result = P2PGridSystem(availability_config(scenario)).run()
    assert result_digest(result) == recorded, (
        f"{scenario} no longer replays bit-identically to the recorded "
        f"fingerprint ({AVAILABILITY_GOLDEN_PATH}). If this PR intentionally "
        "changes churn/recovery semantics, re-record via "
        "tests/regression/record_availability.py and call it out in the PR "
        "description."
    )
