"""Shared definition of the golden-fingerprint grid.

The regression harness pins the *complete observable outcome* of a fixed
grid of simulations: four algorithm bundles (the paper's contribution, its
closest dynamic rival, and both full-ahead baselines) × two seeds × two
workload scenarios.  Each cell's :func:`repro.experiments.campaign.result_digest`
— which folds in every workflow record, every metrics sample, the event
count and the RSS statistics — was recorded *before* the PR 3 hot-path
optimizations and must replay bit-identically forever after: any refactor
that changes a single scheduled event shows up as a digest mismatch.

``python tests/regression/record_golden.py`` re-records the file; do that
only for a PR that *intentionally* changes simulation semantics, and say so
in the PR description.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.config import ExperimentConfig
from repro.workload.scenarios import apply_scenario

__all__ = ["AVAILABILITY_GOLDEN_PATH", "AVAILABILITY_SCENARIOS", "AVAILABILITY_TRACE_PATH",
           "GOLDEN_ALGORITHMS", "GOLDEN_PATH", "GOLDEN_SCENARIOS", "GOLDEN_SEEDS",
           "METRO_GOLDEN_PATH", "TRACE_GOLDEN_PATH", "TRACE_SCENARIOS",
           "availability_config", "availability_specs",
           "golden_config", "golden_specs", "load_availability_golden", "load_golden",
           "load_metro_golden", "load_trace_golden", "metro_config", "trace_config",
           "trace_specs"]

GOLDEN_PATH = Path(__file__).with_name("golden_fingerprints.json")

GOLDEN_ALGORITHMS = ("dsmf", "dheft", "heft", "smf")
GOLDEN_SEEDS = (1, 2)
GOLDEN_SCENARIOS = ("paper-fig4", "poisson-steady")

# ------------------------- availability preset grid -----------------------
# The churn-axis presets get their own fingerprint file (the workload-axis
# file above is append-only history and must never move); dsmf, seed 1,
# same base scale.  ``trace-churn`` replays the committed trace below —
# itself the recorded availability log of the weibull-sessions cell, so
# the whole grid regenerates from one script.

AVAILABILITY_GOLDEN_PATH = Path(__file__).with_name("golden_availability.json")
AVAILABILITY_TRACE_PATH = Path(__file__).with_name("data") / "availability_trace.json"
AVAILABILITY_SCENARIOS = (
    "weibull-sessions",
    "flash-crowd-failure",
    "grid-rampup",
    "trace-churn",
)

#: Small enough that the 16-cell grid replays in well under a minute, large
#: enough that every subsystem (gossip views, landmark estimation, phase-1
#: cycles, full-ahead planning, transfers, phase-2 contention) is exercised.
_BASE = dict(
    n_nodes=40,
    load_factor=2,
    total_time=8 * 3600.0,
    task_range=(2, 30),
)


def golden_config(algorithm: str, seed: int, scenario: str) -> ExperimentConfig:
    """The exact config of one golden cell."""
    base = ExperimentConfig(algorithm=algorithm, seed=seed, **_BASE)
    return apply_scenario(base, scenario)


def golden_specs() -> list[tuple[str, ExperimentConfig]]:
    """``(cell_key, config)`` for every cell, in recording order."""
    specs = []
    for scenario in GOLDEN_SCENARIOS:
        for algorithm in GOLDEN_ALGORITHMS:
            for seed in GOLDEN_SEEDS:
                key = f"{algorithm}#s{seed}@{scenario}"
                specs.append((key, golden_config(algorithm, seed, scenario)))
    return specs


def load_golden() -> dict:
    """The recorded fingerprint file as a dict."""
    with GOLDEN_PATH.open() as fh:
        return json.load(fh)


def availability_config(scenario: str) -> ExperimentConfig:
    """The exact config of one availability-preset golden cell."""
    base = ExperimentConfig(algorithm="dsmf", seed=1, **_BASE)
    cfg = apply_scenario(base, scenario)
    if scenario == "trace-churn":
        cfg = cfg.with_(availability_path=str(AVAILABILITY_TRACE_PATH))
    return cfg


def availability_specs() -> list[tuple[str, ExperimentConfig]]:
    """``(scenario, config)`` per availability cell, in recording order."""
    return [(s, availability_config(s)) for s in AVAILABILITY_SCENARIOS]


def load_availability_golden() -> dict:
    """The recorded availability fingerprint file as a dict."""
    with AVAILABILITY_GOLDEN_PATH.open() as fh:
        return json.load(fh)


# ------------------------------ metro-1k cell ------------------------------
# The PR 5 scale-out core is pinned at production scale too: one
# 1000-node `metro-1k` cell (dsmf, seed 1) at the bench `--quick` horizon,
# so the regression job replays the indexed event queue, the batched
# gossip fast paths and the `__slots__`-pooled runtime state against a
# grid 25x larger than the base golden cells — in seconds, not minutes.

METRO_GOLDEN_PATH = Path(__file__).with_name("golden_metro.json")


def metro_config() -> ExperimentConfig:
    """The exact config of the metro-1k golden cell (bench quick shape)."""
    base = ExperimentConfig(algorithm="dsmf", seed=1, task_range=(2, 30))
    return apply_scenario(base, "metro-1k").with_(total_time=2 * 3600.0)


def load_metro_golden() -> dict:
    """The recorded metro fingerprint file as a dict."""
    with METRO_GOLDEN_PATH.open() as fh:
        return json.load(fh)


# -------------------------- imported-trace presets -------------------------
# The PR 9 archive-import pipeline is pinned end to end: each curated
# trace preset (a GWF slice, an SWF slice, an FTA availability slice —
# see docs/trace-formats.md) replays its committed ``data/traces/`` file
# bit-identically.  Curation is RNG-free, so these fingerprints cover the
# whole chain: archive parsing -> curation output -> trace replay.

TRACE_GOLDEN_PATH = Path(__file__).with_name("golden_traces.json")
_REPO_ROOT = Path(__file__).resolve().parents[2]
TRACE_SCENARIOS = ("gwa-replay-small", "pwa-replay-small", "fta-churn-small")


def trace_config(scenario: str) -> ExperimentConfig:
    """The exact config of one imported-trace golden cell.

    The presets carry repo-root-relative ``data/traces/`` paths; the
    golden cells absolutize them so the regression job is cwd-independent
    (paths are not part of the result digest).
    """
    base = ExperimentConfig(algorithm="dsmf", seed=1, task_range=(2, 30))
    cfg = apply_scenario(base, scenario)
    if cfg.workload_path:
        cfg = cfg.with_(workload_path=str(_REPO_ROOT / cfg.workload_path))
    if cfg.availability_path:
        cfg = cfg.with_(availability_path=str(_REPO_ROOT / cfg.availability_path))
    return cfg


def trace_specs() -> list[tuple[str, ExperimentConfig]]:
    """``(scenario, config)`` per imported-trace cell, in recording order."""
    return [(s, trace_config(s)) for s in TRACE_SCENARIOS]


def load_trace_golden() -> dict:
    """The recorded imported-trace fingerprint file as a dict."""
    with TRACE_GOLDEN_PATH.open() as fh:
        return json.load(fh)
