"""Statistical-band regression: the new stream must land in the old bands.

Unlike ``test_golden_fingerprints.py`` (bit-exact, trips on any moved RNG
draw), this suite replays one representative seed per banded cell and
asserts every headline metric and convergence curve falls inside the
across-seed envelope recorded in ``golden_stats.json`` — the check that
stays meaningful across *intentional* semantic changes like PR 8's
batched gossip rounds.  Both suites run in the CI regression job: the
fingerprints pin the current stream exactly, the bands pin what any
future stream must preserve.
"""

from __future__ import annotations

import pytest

from regression.golden import (
    AVAILABILITY_SCENARIOS,
    GOLDEN_ALGORITHMS,
    availability_config,
    golden_config,
    metro_config,
)
from regression.stats import load_stats, run_metrics, validate_metrics

from repro.grid.system import P2PGridSystem

#: One replay per cell: seed 1, the first seed of the recorded envelope.
_VALIDATE_SEED = 1

_WORKLOAD_CELLS = [
    (algorithm, scenario)
    for scenario in ("paper-fig4", "poisson-steady")
    for algorithm in GOLDEN_ALGORITHMS
]


@pytest.fixture(scope="module")
def stats_bands() -> dict:
    return load_stats()["bands"]


@pytest.mark.parametrize(
    "algorithm,scenario", _WORKLOAD_CELLS,
    ids=[f"{a}@{s}" for a, s in _WORKLOAD_CELLS],
)
def test_workload_cell_within_bands(stats_bands, algorithm, scenario):
    cell = f"{algorithm}@{scenario}"
    config = golden_config(algorithm, _VALIDATE_SEED, scenario)
    metrics = run_metrics(P2PGridSystem(config).run())
    problems = validate_metrics(cell, stats_bands[cell], metrics)
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize("scenario", AVAILABILITY_SCENARIOS)
def test_availability_cell_within_bands(stats_bands, scenario):
    cell = f"dsmf@{scenario}"
    config = availability_config(scenario).with_(seed=_VALIDATE_SEED)
    metrics = run_metrics(P2PGridSystem(config).run())
    problems = validate_metrics(cell, stats_bands[cell], metrics)
    assert not problems, "\n".join(problems)


def test_metro_cell_within_bands(stats_bands):
    cell = "dsmf@metro-1k"
    config = metro_config().with_(seed=_VALIDATE_SEED)
    metrics = run_metrics(P2PGridSystem(config).run())
    problems = validate_metrics(cell, stats_bands[cell], metrics)
    assert not problems, "\n".join(problems)


def test_band_file_covers_every_cell(stats_bands):
    """Recording and validation grids cannot drift apart silently."""
    expected = {f"{a}@{s}" for a, s in _WORKLOAD_CELLS}
    expected |= {f"dsmf@{s}" for s in AVAILABILITY_SCENARIOS}
    expected.add("dsmf@metro-1k")
    assert expected == set(stats_bands)
