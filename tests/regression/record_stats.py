"""Re-record the statistical-band goldens.

Usage::

    PYTHONPATH=src python tests/regression/record_stats.py

Run this on the **old** code *before* landing an intentional semantic
change (the bands must capture the pre-change stream's across-seed
distribution), then verify the changed code passes
``tests/regression/test_statistical_bands.py``.  See
``tests/regression/README.md`` for the full semantic-change procedure.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from regression.stats import STATS_PATH, make_bands, run_metrics, stats_specs  # noqa: E402

from repro.grid.system import P2PGridSystem  # noqa: E402


def main() -> int:
    per_cell: dict[str, dict[int, dict]] = {}
    t0 = time.perf_counter()
    for cell, seed, config in stats_specs():
        t1 = time.perf_counter()
        result = P2PGridSystem(config).run()
        metrics = run_metrics(result)
        per_cell.setdefault(cell, {})[seed] = metrics
        print(f"  {cell:28s} s{seed}  act={metrics['act']:9.1f} "
              f"ae={metrics['ae']:.4f} done={metrics['n_done']:4.0f}  "
              f"({time.perf_counter() - t1:.2f}s)")
    bands = {cell: make_bands(per_seed) for cell, per_seed in per_cell.items()}
    payload = {
        "_comment": (
            "Statistical-band goldens: across-seed envelopes of headline "
            "metrics and convergence curves, recorded from the pre-change "
            "stream. Regenerate only per the semantic-change procedure in "
            "tests/regression/README.md: "
            "PYTHONPATH=src python tests/regression/record_stats.py"
        ),
        "bands": bands,
    }
    STATS_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {STATS_PATH} ({len(bands)} cells, "
          f"{time.perf_counter() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
