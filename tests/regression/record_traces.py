"""Record the imported-trace preset golden fingerprints.

Usage::

    PYTHONPATH=src python tests/regression/record_traces.py

Regenerates ``golden_traces.json`` — one result-digest fingerprint per
curated-trace scenario preset (``gwa-replay-small`` / ``pwa-replay-small``
/ ``fta-churn-small``).  The committed ``data/traces/`` files these cells
replay are themselves regenerated deterministically by
``scripts/curate_trace.py`` (commands in ``data/README.md``), so this
recorder pins the whole archive-import chain.

Only run this when a PR *intentionally* changes trace-replay semantics or
re-curates the slices; refactors must replay the existing file
bit-identically.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from regression.golden import TRACE_GOLDEN_PATH, trace_specs  # noqa: E402

from repro.experiments.campaign import result_digest  # noqa: E402
from repro.grid.system import P2PGridSystem  # noqa: E402


def main() -> int:
    t0 = time.perf_counter()
    fingerprints: dict[str, str] = {}
    for scenario, config in trace_specs():
        t1 = time.perf_counter()
        result = P2PGridSystem(config).run()
        fingerprints[scenario] = result_digest(result)
        print(f"{scenario}: {fingerprints[scenario]} "
              f"({result.n_done}/{result.n_workflows} done, "
              f"{time.perf_counter() - t1:.1f}s)")
    payload = {
        "_comment": (
            "Golden result-digest per imported-trace scenario preset; "
            "recorded by tests/regression/record_traces.py. Re-record only "
            "for intentional semantic changes or re-curated slices."
        ),
        "fingerprints": fingerprints,
    }
    TRACE_GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {TRACE_GOLDEN_PATH} ({time.perf_counter() - t0:.1f}s total)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
