"""Re-record the golden determinism fingerprints.

Usage::

    PYTHONPATH=src python tests/regression/record_golden.py

Only run this when a PR *intentionally* changes simulation semantics (new
event ordering, different RNG consumption, a model fix); performance
refactors must replay the existing file bit-identically.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from regression.golden import GOLDEN_PATH, golden_specs  # noqa: E402

from repro.experiments.campaign import result_digest  # noqa: E402
from repro.grid.system import P2PGridSystem  # noqa: E402


def main() -> int:
    fingerprints: dict[str, str] = {}
    t0 = time.perf_counter()
    for key, config in golden_specs():
        t1 = time.perf_counter()
        result = P2PGridSystem(config).run()
        digest = result_digest(result)
        fingerprints[key] = digest
        print(f"  {key:30s} {digest[:16]}  ({time.perf_counter() - t1:.2f}s, "
              f"{result.events_executed} events)")
    payload = {
        "_comment": (
            "Golden determinism fingerprints (result_digest per cell), "
            "recorded before the PR 3 hot-path optimizations. Regenerate "
            "only for intentional semantic changes: "
            "PYTHONPATH=src python tests/regression/record_golden.py"
        ),
        "fingerprints": fingerprints,
    }
    GOLDEN_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {GOLDEN_PATH} ({len(fingerprints)} cells, "
          f"{time.perf_counter() - t0:.1f}s)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
