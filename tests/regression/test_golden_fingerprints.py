"""Golden-fingerprint regression harness.

Replays the recorded grid (4 bundles × 2 seeds × 2 scenarios) and asserts
every cell's :func:`result_digest` is bit-identical to the file recorded
*before* the hot-path optimizations.  This is the safety net that lets this
PR — and every future perf refactor — touch the scheduling core: a change
to a single scheduled event, RNG draw, or metric sample fails here.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from regression.golden import GOLDEN_PATH, golden_config, golden_specs, load_golden

from repro.experiments.campaign import result_digest
from repro.grid.system import P2PGridSystem

_KEYS = [key for key, _ in golden_specs()]


def test_golden_file_covers_the_full_grid():
    recorded = load_golden()["fingerprints"]
    assert sorted(recorded) == sorted(_KEYS), (
        "golden_fingerprints.json is out of sync with the spec grid; "
        "re-record via tests/regression/record_golden.py"
    )


@pytest.mark.parametrize("key", _KEYS)
def test_replay_matches_golden_fingerprint(key):
    recorded = load_golden()["fingerprints"][key]
    algorithm, rest = key.split("#s", 1)
    seed, scenario = rest.split("@", 1)
    config = golden_config(algorithm, int(seed), scenario)
    result = P2PGridSystem(config).run()
    assert result_digest(result) == recorded, (
        f"{key} no longer replays bit-identically to the recorded golden "
        f"fingerprint ({GOLDEN_PATH}). If this PR intentionally changes "
        "simulation semantics, re-record the goldens and call it out in the "
        "PR description; a pure performance refactor must never trip this."
    )


def test_digest_is_sensitive_to_outcome_changes():
    """The digest actually covers outcomes (guards against a vacuous file)."""
    import dataclasses

    config = golden_config("dsmf", 1, "paper-fig4")
    result = P2PGridSystem(config).run()
    base = result_digest(result)
    rec = result.records[0]
    result.records[0] = dataclasses.replace(
        rec, completion_time=(rec.completion_time or 0.0) + 1.0
    )
    assert result_digest(result) != base
