"""Tests for the arrival processes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.config import ExperimentConfig
from repro.sim.rng import spawn_generator
from repro.workload.arrivals import (
    BatchArrivals,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    arrival_process_names,
    make_arrival_process,
)

CFG = ExperimentConfig(n_nodes=40, total_time=24 * 3600.0)


def _rng():
    return spawn_generator(11, "arrivals")


def test_registry_names():
    assert arrival_process_names() == ["batch", "bursty", "diurnal", "poisson"]
    for name in arrival_process_names():
        proc = make_arrival_process(CFG.with_(arrival_process=name))
        assert proc.name == name


def test_batch_is_all_zero_and_draws_nothing():
    rng = _rng()
    state_before = rng.bit_generator.state
    times = BatchArrivals().times(17, CFG, rng)
    assert times == [0.0] * 17
    assert rng.bit_generator.state == state_before


@pytest.mark.parametrize(
    "proc", [PoissonArrivals(), BurstyArrivals(), DiurnalArrivals()]
)
def test_streaming_times_sorted_positive_and_deterministic(proc):
    a = proc.times(200, CFG, _rng())
    b = proc.times(200, CFG, _rng())
    assert a == b
    assert len(a) == 200
    assert a == sorted(a)
    assert all(t >= 0.0 for t in a)


def test_poisson_times_stay_in_arrival_window():
    times = PoissonArrivals().times(500, CFG, _rng())
    assert max(times) <= CFG.arrival_spread * CFG.total_time


def test_bursty_times_fall_inside_on_windows():
    cfg = CFG.with_(burst_on=600.0, burst_off=3000.0)
    times = BurstyArrivals().times(300, cfg, _rng())
    period = cfg.burst_on + cfg.burst_off
    for t in times:
        assert (t % period) <= cfg.burst_on + 1e-9
    # Overhang past the window is bounded by one storm.
    assert max(times) <= cfg.arrival_spread * cfg.total_time + cfg.burst_on


def test_diurnal_peak_denser_than_trough():
    """λ peaks half a period in and troughs at 0/period: the middle half
    of each day must receive far more arrivals than the edges."""
    cfg = CFG.with_(total_time=2 * 86400.0, arrival_spread=0.5, diurnal_period=86400.0)
    times = np.asarray(DiurnalArrivals().times(4000, cfg, _rng()))
    phase = (times % cfg.diurnal_period) / cfg.diurnal_period
    mid = np.sum((phase > 0.25) & (phase < 0.75))
    edge = len(times) - mid
    assert mid > 2.5 * edge


def test_unknown_process_rejected_by_config():
    with pytest.raises(ValueError, match="arrival_process"):
        ExperimentConfig(arrival_process="fibonacci")
