"""Edge-case tests for the GWF/SWF/FTA archive parsers and the curation
round trip (archive -> curated slice -> trace replay -> stable digest)."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.campaign import result_digest
from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem
from repro.workload.archives import (
    ArchiveError,
    parse_fta,
    parse_gwf,
    parse_swf,
    sniff_format,
)
from repro.workload.importers import load_trace

REPO = Path(__file__).resolve().parents[2]


def gwf_line(job_id, submit, runtime, procs=1, status=1, user=3, extra=0):
    """One GWF record: the 12 consumed columns plus ``extra`` ignored ones."""
    fields = [str(job_id), str(submit), "0", str(runtime), str(procs),
              "-1", "-1", str(procs), "-1", "-1", str(status), str(user)]
    return " ".join(fields + ["-1"] * extra)


def swf_line(job_id, submit, runtime, procs=1, status=1, user=3):
    """One SWF record: exactly 18 columns, leading 12 shared with GWF."""
    lead = gwf_line(job_id, submit, runtime, procs, status, user).split()
    return " ".join(lead + ["-1"] * (18 - len(lead)))


def write(tmp_path, name, *lines):
    path = tmp_path / name
    path.write_text("\n".join(lines) + "\n")
    return path


# ----------------------------------------------------------- happy paths
def test_gwf_parses_and_normalizes_unknown_markers(tmp_path):
    path = write(
        tmp_path, "a.gwf",
        "# GWF header",
        gwf_line("j1", 0, 120.5, procs=4, extra=17),
        gwf_line("j2", 60, -1, procs=-1, status=0, user=-1),
    )
    jobs = list(parse_gwf(path))
    assert [j.job_id for j in jobs] == ["j1", "j2"]
    assert jobs[0].completed and jobs[0].n_procs == 4
    # -1 "unknown" markers normalize to neutral values.
    assert jobs[1].runtime == 0.0 and jobs[1].n_procs == 1
    assert jobs[1].user_id == 0 and not jobs[1].completed


def test_swf_parses_shared_columns(tmp_path):
    path = write(tmp_path, "a.swf", "; SWF header", swf_line(7, 10, 300, procs=2))
    (job,) = parse_swf(path)
    assert job.job_id == "7" and job.submit_time == 10 and job.runtime == 300


def test_fta_parses_intervals(tmp_path):
    path = write(tmp_path, "a.fta", "# header", "0 1 0 3600", "2 0 100 200")
    up, down = parse_fta(path)
    assert up.available and up.end == 3600
    assert not down.available and (down.start, down.end) == (100, 200)


def test_zero_runtime_jobs_are_real_records(tmp_path):
    path = write(tmp_path, "a.gwf", gwf_line("j0", 0, 0.0))
    (job,) = parse_gwf(path)
    assert job.runtime == 0.0 and job.completed


# ------------------------------------------------------- malformed input
def test_truncated_last_line_raises_with_location(tmp_path):
    path = write(tmp_path, "cut.gwf", gwf_line("j1", 0, 10),
                 "j2 60 0 10 1 -1")  # download cut mid-record
    with pytest.raises(ArchiveError, match=r"cut\.gwf:2.*truncated"):
        list(parse_gwf(path))
    exc = pytest.raises(ArchiveError, lambda: list(parse_gwf(path)))
    assert exc.value.line == 2 and exc.value.path.endswith("cut.gwf")


def test_swf_wrong_column_count_raises(tmp_path):
    short = " ".join(swf_line(1, 0, 10).split()[:17])
    path = write(tmp_path, "short.swf", short)
    with pytest.raises(ArchiveError, match="18"):
        list(parse_swf(path))


def test_comment_only_files_yield_nothing(tmp_path):
    assert list(parse_gwf(write(tmp_path, "c.gwf", "# only", "# comments"))) == []
    assert list(parse_swf(write(tmp_path, "c.swf", "; only", ";"))) == []
    assert list(parse_fta(write(tmp_path, "c.fta", "# nothing"))) == []


def test_out_of_order_submit_times_raise(tmp_path):
    path = write(tmp_path, "o.gwf", gwf_line("j1", 100, 10), gwf_line("j2", 50, 10))
    with pytest.raises(ArchiveError, match="out-of-order"):
        list(parse_gwf(path))


def test_negative_submit_time_raises(tmp_path):
    path = write(tmp_path, "n.gwf", gwf_line("j1", -5, 10))
    with pytest.raises(ArchiveError, match="negative submit"):
        list(parse_gwf(path))


def test_non_numeric_field_raises(tmp_path):
    path = write(tmp_path, "x.gwf", gwf_line("j1", "soon", 10))
    with pytest.raises(ArchiveError, match="non-numeric"):
        list(parse_gwf(path))


@pytest.mark.parametrize("row, message", [
    ("0 1 0", "malformed FTA"),
    ("0 7 0 10", "unknown event type"),
    ("0 1 50 10", "inverted interval"),
    ("-3 1 0 10", "negative node"),
])
def test_fta_malformed_rows_raise(tmp_path, row, message):
    path = write(tmp_path, "bad.fta", row)
    with pytest.raises(ArchiveError, match=message):
        list(parse_fta(path))


def test_fta_out_of_order_starts_raise(tmp_path):
    path = write(tmp_path, "o.fta", "0 0 100 200", "1 0 50 80")
    with pytest.raises(ArchiveError, match="out-of-order"):
        list(parse_fta(path))


# ----------------------------------------------------------- sniffing
def test_sniff_by_extension_and_content(tmp_path):
    assert sniff_format(tmp_path / "x.gwf") == "gwf"
    assert sniff_format(write(tmp_path, "x.log", "; h", swf_line(1, 0, 5))) == "swf"
    assert sniff_format(write(tmp_path, "y.log", "0 1 0 10")) == "fta"
    assert sniff_format(write(tmp_path, "z.log", gwf_line(1, 0, 5))) == "gwf"
    assert sniff_format(write(tmp_path, "w.log", "one two")) is None
    assert sniff_format(tmp_path / "missing.log") is None


# --------------------------------------------------------- round trip
def curate(*args):
    return subprocess.run(
        [sys.executable, str(REPO / "scripts" / "curate_trace.py"), *map(str, args)],
        capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


def test_full_round_trip_curate_import_run_replay(tmp_path):
    """GWF archive -> curated slice -> trace replay -> digest-stable."""
    archive = write(
        tmp_path, "mini.gwf",
        "# mini archive",
        gwf_line("j0", 0, 0.0, procs=1),          # zero-runtime: floored, kept
        gwf_line("j1", 30, 600, procs=4),          # wide: fork-join
        gwf_line("j2", 90, 120, status=0),         # failed: dropped
        gwf_line("j3", 120, 60, user=19),
    )
    out = tmp_path / "mini.trace.json"
    proc = curate("workload", archive, out, "--homes", "8", "--max-width", "3")
    assert proc.returncode == 0, proc.stderr
    assert "3 jobs (1 non-completed dropped)" in proc.stdout

    submissions = load_trace(out)
    assert [s.submit_time for s in submissions] == [0.0, 30.0, 120.0]
    assert [s.home_id for s in submissions] == [3, 3, 19 % 8]
    widths = [s.workflow.n_tasks for s in submissions]
    assert widths[0] == 1          # single-processor job -> single task
    assert widths[1] > 1           # wide job -> fork-join (capped width)

    cfg = ExperimentConfig(
        algorithm="dsmf", seed=1, n_nodes=16, total_time=3600.0,
        workload_source="trace", workload_path=str(out),
    )
    first = P2PGridSystem(cfg).run()
    assert first.n_workflows == 3
    # Replay is bit-stable: same trace, same digest.
    assert result_digest(P2PGridSystem(cfg).run()) == result_digest(first)


def test_curation_refuses_empty_slices(tmp_path):
    archive = write(tmp_path, "empty.gwf", "# comments only")
    proc = curate("workload", archive, tmp_path / "out.json", "--format", "gwf")
    assert proc.returncode != 0
    assert "no usable jobs" in proc.stderr


def test_curation_reports_archive_errors_with_location(tmp_path):
    archive = write(tmp_path, "bad.gwf", gwf_line("j1", 100, 5), gwf_line("j2", 1, 5))
    proc = curate("workload", archive, tmp_path / "out.json")
    assert proc.returncode != 0
    assert "bad.gwf:2" in proc.stderr and "out-of-order" in proc.stderr


def test_availability_round_trip_remaps_into_volatile_range(tmp_path):
    archive = write(
        tmp_path, "mini.fta",
        "1 1 0 300",          # session 1 of node 1
        "0 0 100 200",        # explicit downtime of node 0
        "1 1 500 900",        # session 2: the 300-500 gap = downtime
    )
    out = tmp_path / "mini.avail.json"
    proc = curate("availability", archive, out, "--nodes", "8")
    assert proc.returncode == 0, proc.stderr
    from repro.availability import load_availability_trace
    events = load_availability_trace(out)
    assert events and all(4 <= e.node <= 7 for e in events)  # volatile half
    times = {(e.kind, e.time) for e in events}
    assert ("leave", 100.0) in times and ("join", 200.0) in times
    assert ("leave", 300.0) in times and ("join", 500.0) in times
