"""Tests for the workload sources."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.sim.rng import RngHub
from repro.workflow.generator import WorkflowParams, random_workflow
from repro.workload.sources import (
    ImportedSource,
    StructuredSource,
    SyntheticSource,
    Table1Source,
    make_source,
    workload_source_names,
)

CFG = ExperimentConfig(n_nodes=12, load_factor=2, task_range=(2, 10))
HOMES = list(range(12))


def _stream(seed=5):
    return RngHub(seed).stream("workflows")


def test_registry_names():
    assert workload_source_names() == [
        "imported", "structured", "synthetic", "table1", "trace",
    ]
    assert isinstance(make_source(CFG), Table1Source)


def test_table1_matches_seed_generation_exactly():
    """The extracted source replays the seed's inline generator: same
    stream, same draw order, same ids, same DAGs."""
    pairs = Table1Source().generate(CFG, _stream(), HOMES)

    rng = _stream()
    params = WorkflowParams(
        task_range=CFG.task_range,
        fanout_range=CFG.fanout_range,
        load_range=CFG.load_range,
        image_range=CFG.image_range,
        data_range=CFG.data_range,
    )
    expected = []
    for i in range(CFG.load_factor * CFG.n_nodes):
        home = HOMES[i % len(HOMES)]
        expected.append((home, random_workflow(f"wf{i:05d}n{home}", rng, params)))

    assert len(pairs) == len(expected) == 24
    for (h1, w1), (h2, w2) in zip(pairs, expected):
        assert h1 == h2
        assert w1.wid == w2.wid
        assert w1.edges == w2.edges
        assert [w1.tasks[t].load for t in w1.tasks] == [
            w2.tasks[t].load for t in w2.tasks
        ]


def test_round_robin_home_assignment():
    pairs = Table1Source().generate(CFG, _stream(), HOMES)
    assert [h for h, _ in pairs] == [i % 12 for i in range(24)]


@pytest.mark.parametrize("family", ["chain", "fork-join", "diamond", "montage", "mixed"])
def test_structured_families_generate_valid_workflows(family):
    cfg = CFG.with_(workload_source="structured", structured_family=family)
    pairs = StructuredSource().generate(cfg, _stream(), HOMES)
    assert len(pairs) == 24
    wids = [wf.wid for _, wf in pairs]
    assert len(set(wids)) == 24
    for _, wf in pairs:
        assert wf.n_tasks >= 2
        assert len(wf.entry_ids) == 1 and len(wf.exit_ids) == 1
        for t in wf.tasks.values():
            # Families scale stage loads around the drawn base load (e.g.
            # montage's mDiff is 0.4x), so just require sane positives.
            assert t.virtual or 0.0 < t.load <= cfg.load_range[1] * 2.5


def test_structured_mixed_rotates_families():
    cfg = CFG.with_(workload_source="structured", structured_family="mixed")
    pairs = StructuredSource().generate(cfg, _stream(), HOMES)
    wids = [wf.wid for _, wf in pairs]
    for family in ("chain", "fork-join", "diamond", "montage"):
        assert any(w.startswith(family) for w in wids), family


def test_synthetic_source_heavy_tail_and_determinism():
    cfg = CFG.with_(workload_source="synthetic", n_nodes=30, load_factor=3)
    homes = list(range(30))
    a = SyntheticSource().generate(cfg, _stream(), homes)
    b = SyntheticSource().generate(cfg, _stream(), homes)
    assert [w.wid for _, w in a] == [w.wid for _, w in b]
    assert [w.edges for _, w in a] == [w.edges for _, w in b]
    for _, wf in a:
        lo, hi = cfg.task_range
        assert lo <= wf.n_tasks <= hi + 2  # +2 for normalization virtuals
        for t in wf.tasks.values():
            assert t.load >= 0.0
    # Log-normal loads: some mass well below and well above the median.
    loads = [t.load for _, wf in a for t in wf.tasks.values() if not t.virtual]
    med = sorted(loads)[len(loads) // 2]
    assert any(load > 3 * med for load in loads)
    assert any(load < med / 3 for load in loads)


def test_structured_chain_handles_degenerate_task_range():
    """task_range=(1, 1) is a valid config; chains clamp to length 2."""
    cfg = CFG.with_(workload_source="structured", structured_family="chain",
                    task_range=(1, 1))
    pairs = StructuredSource().generate(cfg, _stream(), HOMES)
    assert all(wf.n_tasks == 2 for _, wf in pairs)


def test_synthetic_rejects_zero_lower_bounds_clearly():
    cfg = CFG.with_(workload_source="synthetic", load_range=(0.0, 100.0))
    with pytest.raises(ValueError, match="load_range"):
        SyntheticSource().generate(cfg, _stream(), HOMES)
    cfg = CFG.with_(workload_source="synthetic", data_range=(0.0, 100.0))
    with pytest.raises(ValueError, match="data_range"):
        SyntheticSource().generate(cfg, _stream(), HOMES)


def test_imported_source_requires_path():
    cfg = CFG.with_(workload_source="imported")
    with pytest.raises(ValueError, match="workload_path"):
        ImportedSource().generate(cfg, _stream(), HOMES)


def test_imported_source_cycles_templates(tmp_path):
    from repro.workflow.generator import diamond_workflow
    from repro.workflow.io import save_workflow

    save_workflow(diamond_workflow("dia"), tmp_path / "dia.json")
    cfg = CFG.with_(workload_source="imported", workload_path=str(tmp_path / "dia.json"))
    pairs = ImportedSource().generate(cfg, _stream(), HOMES)
    assert len(pairs) == 24
    assert len({wf.wid for _, wf in pairs}) == 24  # re-keyed unique ids
    for _, wf in pairs:
        assert wf.n_tasks == 4
