"""Tests for the scenario registry."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.workload.scenarios import (
    apply_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)


def test_builtin_presets_registered():
    names = scenario_names()
    for expected in (
        "paper-fig4", "poisson-steady", "burst-storm", "diurnal-week",
        "structured-mix", "montage-stream", "synthetic-heavytail",
        "imported-dag", "trace-replay",
    ):
        assert expected in names


def test_paper_default_scenario_has_no_overrides():
    """`paper-fig4` must be exactly the seed configuration."""
    assert dict(get_scenario("paper-fig4").overrides) == {}
    cfg = apply_scenario(ExperimentConfig(), "paper-fig4")
    assert cfg == ExperimentConfig(scenario="paper-fig4")


def test_apply_scenario_stamps_name_and_overrides():
    cfg = apply_scenario(ExperimentConfig(), "poisson-steady")
    assert cfg.scenario == "poisson-steady"
    assert cfg.arrival_process == "poisson"
    # Untouched fields keep their defaults.
    assert cfg.workload_source == "table1"
    assert cfg.n_nodes == ExperimentConfig().n_nodes


def test_every_preset_produces_a_valid_config():
    base = ExperimentConfig(n_nodes=20, load_factor=1)
    for name in scenario_names():
        cfg = apply_scenario(base, name)
        assert cfg.scenario == name


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError, match="unknown scenario"):
        get_scenario("nope")
    with pytest.raises(ValueError, match="unknown scenario"):
        ExperimentConfig(scenario="nope")


def test_register_rejects_duplicates_and_reserved_fields():
    with pytest.raises(ValueError, match="already registered"):
        register_scenario("paper-fig4", "dupe")
    with pytest.raises(ValueError, match="cannot set"):
        register_scenario("bad-preset", "reserved", seed=3)


def test_scenario_overrides_are_read_only():
    sc = get_scenario("burst-storm")
    with pytest.raises(TypeError):
        sc.overrides["burst_on"] = 1.0  # type: ignore[index]


def test_provenance_distinguishes_synthetic_from_imported():
    assert get_scenario("paper-fig4").provenance == "synthetic"
    assert get_scenario("poisson-steady").provenance == "synthetic"
    assert get_scenario("imported-dag").provenance == "imported-dag"
    assert get_scenario("trace-replay").provenance == "trace-replay"
    assert get_scenario("gwa-replay-small").provenance == "trace-replay"
    assert get_scenario("pwa-replay-small").provenance == "trace-replay"
    assert get_scenario("fta-churn-small").provenance == "trace-churn"
    assert get_scenario("trace-churn").provenance == "trace-churn"
