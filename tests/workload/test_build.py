"""Tests for workload assembly and its integration with the grid system."""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem
from repro.sim.rng import RngHub
from repro.workflow.generator import chain_workflow, diamond_workflow
from repro.workload.build import WorkflowSubmission, build_submissions
from repro.workload.importers import save_trace

CFG = ExperimentConfig(
    n_nodes=20, load_factor=1, total_time=10 * 3600.0, seed=4, task_range=(2, 8)
)


def _homes(cfg=CFG):
    return list(range(cfg.n_nodes))


def test_default_plan_is_batch_at_zero_in_slot_order():
    subs = build_submissions(CFG, RngHub(CFG.seed), _homes())
    assert len(subs) == 20
    assert all(s.submit_time == 0.0 for s in subs)
    assert [s.home_id for s in subs] == _homes()
    assert [s.workflow.wid for s in subs] == [
        f"wf{i:05d}n{i}" for i in range(20)
    ]


def test_poisson_plan_sorted_and_deterministic():
    cfg = CFG.with_(arrival_process="poisson")
    a = build_submissions(cfg, RngHub(cfg.seed), _homes())
    b = build_submissions(cfg, RngHub(cfg.seed), _homes())
    assert [(s.submit_time, s.workflow.wid) for s in a] == [
        (s.submit_time, s.workflow.wid) for s in b
    ]
    times = [s.submit_time for s in a]
    assert times == sorted(times)
    assert times[-1] <= cfg.arrival_spread * cfg.total_time


def test_arrival_layer_does_not_perturb_workflow_draws():
    """Poisson vs batch: identical DAGs, only the times differ."""
    batch = build_submissions(CFG, RngHub(CFG.seed), _homes())
    poisson = build_submissions(
        CFG.with_(arrival_process="poisson"), RngHub(CFG.seed), _homes()
    )
    assert {s.workflow.wid for s in batch} == {s.workflow.wid for s in poisson}
    edges_batch = {s.workflow.wid: s.workflow.edges for s in batch}
    for s in poisson:
        assert s.workflow.edges == edges_batch[s.workflow.wid]


def test_trace_source_requires_path():
    with pytest.raises(ValueError, match="workload_path"):
        build_submissions(
            CFG.with_(workload_source="trace"), RngHub(1), _homes()
        )


def test_negative_submit_time_rejected():
    with pytest.raises(ValueError, match="negative time"):
        WorkflowSubmission(-1.0, 0, diamond_workflow("d"))


def test_no_homes_rejected():
    with pytest.raises(ValueError, match="home nodes"):
        build_submissions(CFG, RngHub(1), [])


# --------------------------------------------------------------------------
# Grid-system integration
# --------------------------------------------------------------------------

class TestSystemIntegration:
    def test_poisson_run_staggers_submissions(self):
        r = P2PGridSystem(CFG.with_(arrival_process="poisson")).run()
        subs = sorted(rec.submit_time for rec in r.records)
        assert subs[-1] > 0.0
        assert r.n_done > 0
        for rec in r.records:
            if rec.completion_time is not None:
                assert rec.completion_time >= rec.submit_time

    def test_explicit_submissions_honored(self):
        subs = [
            WorkflowSubmission(0.0, 0, chain_workflow("early", 2, data=10.0)),
            WorkflowSubmission(7200.0, 1, chain_workflow("late", 2, data=10.0)),
        ]
        system = P2PGridSystem(CFG, submissions=subs)
        r = system.run()
        assert r.n_workflows == 2
        late = system.executions["late"]
        assert late.submit_time == 7200.0
        assert late.completion_time is not None
        assert late.completion_time > 7200.0

    def test_submissions_beyond_horizon_never_enter(self):
        subs = [
            WorkflowSubmission(0.0, 0, chain_workflow("in", 2, data=10.0)),
            WorkflowSubmission(
                CFG.total_time + 1.0, 0, chain_workflow("out", 2, data=10.0)
            ),
        ]
        r = P2PGridSystem(CFG, submissions=subs).run()
        assert r.n_workflows == 1
        assert {rec.wid for rec in r.records} == {"in"}

    def test_trace_replay_through_config(self, tmp_path):
        subs = [
            WorkflowSubmission(0.0, 0, chain_workflow("t0", 2, data=10.0)),
            WorkflowSubmission(3600.0, 2, chain_workflow("t1", 3, data=10.0)),
        ]
        path = save_trace(tmp_path / "trace.json", subs)
        cfg = CFG.with_(workload_source="trace", workload_path=str(path))
        system = P2PGridSystem(cfg)
        r = system.run()
        assert r.n_workflows == 2
        assert system.executions["t1"].submit_time == 3600.0
        assert r.n_done == 2

    def test_duplicate_wids_rejected(self):
        subs = [
            WorkflowSubmission(0.0, 0, diamond_workflow("dup")),
            WorkflowSubmission(10.0, 1, diamond_workflow("dup")),
        ]
        with pytest.raises(ValueError, match="duplicate workflow id"):
            P2PGridSystem(CFG, submissions=subs)

    def test_non_home_submission_rejected(self):
        cfg = CFG.with_(dynamic_factor=0.2, permanent_fraction=0.5)
        vol = cfg.n_nodes - 1  # volatile under permanent_fraction=0.5
        subs = [WorkflowSubmission(0.0, vol, diamond_workflow("d"))]
        with pytest.raises(ValueError, match="not a home node"):
            P2PGridSystem(cfg, submissions=subs)

    def test_workflows_and_submissions_mutually_exclusive(self):
        wf = diamond_workflow("d")
        with pytest.raises(ValueError, match="not both"):
            P2PGridSystem(
                CFG,
                workflows=[(0, wf)],
                submissions=[WorkflowSubmission(0.0, 0, wf)],
            )

    def test_streaming_determinism_same_seed(self):
        cfg = CFG.with_(arrival_process="bursty")
        a = P2PGridSystem(cfg).run()
        b = P2PGridSystem(cfg).run()
        assert a.act == b.act
        assert a.events_executed == b.events_executed
