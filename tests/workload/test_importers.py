"""Tests for external DAG import and submission-trace replay."""

from __future__ import annotations

import json

import pytest

from repro.workflow.dag import WorkflowError
from repro.workflow.generator import diamond_workflow
from repro.workflow.io import save_workflow
from repro.workload.build import WorkflowSubmission
from repro.workload.importers import (
    BYTES_TO_MB,
    RUNTIME_TO_MI,
    import_dag,
    import_dags,
    load_trace,
    save_trace,
)

WFCOMMONS = {
    "name": "epigenomics-test",
    "workflow": {
        "jobs": [
            {"name": "split", "runtime": 10.0,
             "files": [{"name": "reads", "size": 2_000_000, "link": "output"}]},
            {"name": "map", "runtime": 30.0, "parents": ["split"],
             "files": [{"name": "reads", "size": 2_000_000, "link": "input"},
                       {"name": "bam", "size": 500_000, "link": "output"}]},
            {"name": "merge", "runtime": 5.0, "parents": ["map"],
             "files": [{"name": "bam", "size": 500_000, "link": "input"}]},
        ]
    },
}

DAX = """<?xml version="1.0" encoding="UTF-8"?>
<adag xmlns="http://pegasus.isi.edu/schema/DAX" name="mini">
  <job id="ID0" name="preprocess" runtime="12">
    <uses file="f.a" link="output" size="1000000"/>
  </job>
  <job id="ID1" name="analyze" runtime="40">
    <uses file="f.a" link="input" size="1000000"/>
    <uses file="f.b" link="output" size="300000"/>
  </job>
  <job id="ID2" name="finalize" runtime="4">
    <uses file="f.b" link="input" size="300000"/>
  </job>
  <child ref="ID1"><parent ref="ID0"/></child>
  <child ref="ID2"><parent ref="ID1"/></child>
</adag>
"""


def test_import_repro_json(tmp_path):
    save_workflow(diamond_workflow("dia"), tmp_path / "dia.json")
    wf = import_dag(tmp_path / "dia.json")
    assert wf.wid == "dia"
    assert wf.n_tasks == 4


def test_import_wfcommons_json(tmp_path):
    path = tmp_path / "epi.json"
    path.write_text(json.dumps(WFCOMMONS))
    wf = import_dag(path)
    assert wf.wid == "epigenomics-test"
    by_name = {t.name: t for t in wf.tasks.values() if not t.virtual}
    assert by_name["map"].load == pytest.approx(30.0 * RUNTIME_TO_MI)
    tid = {t.name: t.tid for t in wf.tasks.values()}
    assert wf.edges[(tid["split"], tid["map"])] == pytest.approx(
        2_000_000 * BYTES_TO_MB
    )
    assert wf.edges[(tid["map"], tid["merge"])] == pytest.approx(500_000 * BYTES_TO_MB)


def test_import_dax_xml(tmp_path):
    path = tmp_path / "mini.dax"
    path.write_text(DAX)
    wf = import_dag(path)
    assert wf.n_tasks == 3
    tid = {t.name: t.tid for t in wf.tasks.values()}
    assert wf.edges[(tid["preprocess"], tid["analyze"])] == pytest.approx(
        1_000_000 * BYTES_TO_MB
    )
    assert wf.tasks[tid["analyze"]].load == pytest.approx(40.0 * RUNTIME_TO_MI)


def test_import_wfcommons_zero_runtime_stays_zero(tmp_path):
    """An explicit runtime of 0 is a real zero-cost task, not a missing
    value (regression: the old `or` chain coerced it to 1 second)."""
    payload = {
        "name": "zr",
        "workflow": {"jobs": [
            {"name": "work", "runtime": 10.0},
            {"name": "cleanup", "runtime": 0, "parents": ["work"]},
        ]},
    }
    path = tmp_path / "zr.json"
    path.write_text(json.dumps(payload))
    wf = import_dag(path)
    by_name = {t.name: t for t in wf.tasks.values() if not t.virtual}
    assert by_name["cleanup"].load == 0.0
    assert by_name["work"].load == pytest.approx(10.0 * RUNTIME_TO_MI)


def test_import_directory_sorted(tmp_path):
    save_workflow(diamond_workflow("a"), tmp_path / "a.json")
    (tmp_path / "b.dax").write_text(DAX)
    wfs = import_dags(tmp_path)
    assert [w.wid for w in wfs] == ["a", "b"]


@pytest.mark.parametrize(
    "content",
    [
        "not json at all {",
        "[1, 2, 3]",
        '{"workflow": {"jobs": []}}',
        '{"workflow": {"jobs": [{"name": "a", "parents": ["ghost"]}]}}',
    ],
)
def test_malformed_json_raises_workflow_error(tmp_path, content):
    path = tmp_path / "bad.json"
    path.write_text(content)
    with pytest.raises(WorkflowError):
        import_dag(path)


def test_malformed_dax_raises_workflow_error(tmp_path):
    path = tmp_path / "bad.xml"
    path.write_text("<adag><job id='x'")
    with pytest.raises(WorkflowError):
        import_dag(path)
    empty = tmp_path / "empty.xml"
    empty.write_text("<adag></adag>")
    with pytest.raises(WorkflowError, match="no <job>"):
        import_dag(empty)


def test_missing_file_and_empty_dir(tmp_path):
    with pytest.raises(WorkflowError, match="not found"):
        import_dag(tmp_path / "nope.json")
    with pytest.raises(WorkflowError, match="no workflow files"):
        import_dags(tmp_path)


def test_trace_roundtrip(tmp_path):
    subs = [
        WorkflowSubmission(3600.0, 1, diamond_workflow("w1")),
        WorkflowSubmission(0.0, 0, diamond_workflow("w0")),
    ]
    path = save_trace(tmp_path / "trace.json", subs)
    back = load_trace(path)
    # Sorted by submit time on load.
    assert [s.workflow.wid for s in back] == ["w0", "w1"]
    assert [s.submit_time for s in back] == [0.0, 3600.0]
    assert [s.home_id for s in back] == [0, 1]
    assert back[0].workflow.edges == subs[1].workflow.edges


def test_malformed_trace_raises(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text('{"trace": [{"submit_time": "x"}]}')
    with pytest.raises(WorkflowError, match="malformed submission trace"):
        load_trace(path)
    with pytest.raises(WorkflowError, match="not found"):
        load_trace(tmp_path / "missing.json")
