"""Tests for Chrome trace-event export (`repro run --trace-out`)."""

from __future__ import annotations

import json

import pytest

from repro.api import run_experiment
from repro.obs.spans import (
    build_chrome_trace,
    format_trace_summary,
    summarize_chrome_trace,
    write_chrome_trace,
)
from repro.trace.recorder import TraceRecorder

#: Phases the exporter is allowed to emit (Trace Event Format).
_VALID_PH = {"X", "i", "b", "e", "M"}


@pytest.fixture(scope="module")
def traced_run():
    """One tiny instrumented run shared by the whole module."""
    from repro.experiments.config import ExperimentConfig

    config = ExperimentConfig(
        algorithm="dsmf",
        n_nodes=24,
        load_factor=1,
        total_time=6 * 3600.0,
        seed=5,
        task_range=(2, 10),
    )
    recorder = TraceRecorder()
    result = run_experiment(config, recorder=recorder)
    return recorder, result


class TestSchema:
    def test_document_shape(self, traced_run):
        trace = build_chrome_trace(*traced_run)
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        assert isinstance(trace["traceEvents"], list)
        assert trace["traceEvents"]

    def test_every_event_is_schema_valid(self, traced_run):
        trace = build_chrome_trace(*traced_run)
        for e in trace["traceEvents"]:
            assert e["ph"] in _VALID_PH
            assert isinstance(e["pid"], int)
            assert isinstance(e["tid"], int)
            assert isinstance(e["name"], str) and e["name"]
            if e["ph"] == "M":
                assert "name" in e["args"]
                continue
            assert e["ts"] >= 0
            if e["ph"] == "X":
                assert e["dur"] >= 0
            if e["ph"] in ("b", "e"):
                assert "id" in e

    def test_async_transfer_spans_pair_up(self, traced_run):
        trace = build_chrome_trace(*traced_run)
        begins = {e["id"] for e in trace["traceEvents"] if e["ph"] == "b"}
        ends = {e["id"] for e in trace["traceEvents"] if e["ph"] == "e"}
        assert ends <= begins  # every end has a begin; some begins open
        assert begins

    def test_expected_categories_present(self, traced_run):
        trace = build_chrome_trace(*traced_run)
        cats = {e.get("cat") for e in trace["traceEvents"]}
        assert {"exec", "transfer", "gossip"} <= cats
        assert "workflow_done" in cats

    def test_workflow_slices_match_done_count(self, traced_run):
        _, result = traced_run
        trace = build_chrome_trace(*traced_run)
        done_slices = [
            e for e in trace["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == "workflow_done"
        ]
        assert len(done_slices) == result.n_done
        for e in done_slices:
            assert e["args"]["status"] == "done"
            assert e["args"]["n_tasks"] >= 1

    def test_json_serializable_and_written(self, traced_run, tmp_path):
        path = tmp_path / "trace.json"
        doc = write_chrome_trace(str(path), *traced_run)
        loaded = json.loads(path.read_text())
        assert loaded == json.loads(json.dumps(doc))
        assert len(loaded["traceEvents"]) == len(doc["traceEvents"])


class TestSummarize:
    def test_summary_counts_and_range(self, traced_run):
        _, result = traced_run
        trace = build_chrome_trace(*traced_run)
        summary = summarize_chrome_trace(trace)
        n_meta = sum(1 for e in trace["traceEvents"] if e["ph"] == "M")
        assert summary["n_events"] == len(trace["traceEvents"]) - n_meta
        lo, hi = summary["time_range_seconds"]
        assert 0 <= lo < hi <= result.total_time
        assert summary["categories"]["exec"]["span_seconds"] > 0
        assert summary["categories"]["transfer"]["span_seconds"] > 0

    def test_empty_trace(self):
        summary = summarize_chrome_trace({"traceEvents": []})
        assert summary["n_events"] == 0
        assert summary["time_range_seconds"] == [0.0, 0.0]

    def test_format_is_printable(self, traced_run):
        text = format_trace_summary(summarize_chrome_trace(build_chrome_trace(*traced_run)))
        assert "trace events" in text
        assert "exec" in text


class TestCli:
    def test_run_trace_out_and_summarize(self, tmp_path, capsys):
        from repro.experiments.cli import main

        out = tmp_path / "t.json"
        assert main([
            "run", "-n", "16", "-l", "1", "--hours", "4", "--seed", "3",
            "--telemetry", "--trace-out", str(out),
        ]) == 0
        stdout = capsys.readouterr().out
        assert "== telemetry ==" in stdout
        assert "sim.events_executed" in stdout
        assert "perfetto" in stdout.lower()
        assert out.exists()

        assert main(["trace", "summarize", str(out)]) == 0
        assert "trace events" in capsys.readouterr().out

    def test_summarize_rejects_non_trace_json(self, tmp_path):
        from repro.experiments.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2, 3]")
        with pytest.raises(SystemExit, match="traceEvents"):
            main(["trace", "summarize", str(bad)])

    def test_summarize_rejects_missing_file(self, tmp_path):
        from repro.experiments.cli import main

        with pytest.raises(SystemExit, match="cannot read"):
            main(["trace", "summarize", str(tmp_path / "nope.json")])
