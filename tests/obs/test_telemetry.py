"""Tests for the telemetry layer: backends, snapshots, Prometheus text.

The two load-bearing guarantees (see ISSUE/ROADMAP):

* the null backend is a safe no-op, so instrumented hot paths cost one
  attribute check when telemetry is off;
* enabling telemetry never changes a run's ``result_digest`` — it draws
  no randomness and feeds nothing back into the simulation.
"""

from __future__ import annotations

import json
import math

import pytest

from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
    make_telemetry,
    parse_prometheus,
    render_prometheus,
)


class TestBackends:
    def test_make_telemetry_dispatch(self):
        assert isinstance(make_telemetry(True), Telemetry)
        assert make_telemetry(False) is NULL_TELEMETRY

    def test_null_backend_is_inert(self):
        null = NullTelemetry()
        null.inc("a")
        null.gauge("b", 1.0)
        null.gauge_max("b", 2.0)
        null.observe("c", 3.0)
        null.point("d", 0.0, 4.0)
        assert null.enabled is False
        assert null.snapshot() is None

    def test_live_backend_collects(self):
        t = Telemetry()
        t.inc("hits")
        t.inc("hits", 2.0)
        t.gauge("depth", 5.0)
        t.gauge_max("peak", 1.0)
        t.gauge_max("peak", 3.0)
        t.gauge_max("peak", 2.0)
        for v in (1.0, 5.0, 3.0):
            t.observe("lat", v)
        t.point("series", 0.0, 1.0)
        snap = t.snapshot()
        assert snap.counters["hits"] == 3.0
        assert snap.gauges == {"depth": 5.0, "peak": 3.0}
        assert snap.histograms["lat"] == {"count": 3.0, "sum": 9.0, "min": 1.0, "max": 5.0}
        assert snap.series["series"] == [(0.0, 1.0)]

    def test_series_points_are_bounded(self):
        from repro.obs.telemetry import MAX_SERIES_POINTS

        t = Telemetry()
        for i in range(MAX_SERIES_POINTS + 100):
            t.point("s", float(i), float(i))
        pts = t.snapshot().series["s"]
        assert len(pts) == MAX_SERIES_POINTS
        assert pts[0][0] == 100.0  # oldest dropped


class TestSnapshot:
    def test_json_round_trip(self):
        t = Telemetry()
        t.inc("a", 2.0)
        t.gauge("g", 0.5)
        t.observe("h", 1.25)
        t.point("s", 1.0, 2.0)
        snap = t.snapshot()
        back = TelemetrySnapshot.from_dict(json.loads(json.dumps(snap.to_dict())))
        assert back.to_dict() == snap.to_dict()

    def test_merged_adds_counters_and_histograms(self):
        a = TelemetrySnapshot(
            counters={"n": 1.0},
            gauges={"wall": 2.0},
            histograms={"h": {"count": 2.0, "sum": 4.0, "min": 1.0, "max": 3.0}},
            series={"s": [(0.0, 1.0)]},
        )
        b = TelemetrySnapshot(
            counters={"n": 3.0, "only_b": 1.0},
            gauges={"wall": 4.0},
            histograms={"h": {"count": 1.0, "sum": 9.0, "min": 0.5, "max": 9.0}},
        )
        merged = TelemetrySnapshot.merged([a, b])
        assert merged.n_runs == 2
        assert merged.counters == {"n": 4.0, "only_b": 1.0}
        assert merged.gauges["wall"] == 6.0  # summed; mean = /n_runs
        assert merged.histograms["h"] == {
            "count": 3.0, "sum": 13.0, "min": 0.5, "max": 9.0,
        }
        assert merged.series == {}  # per-run series do not aggregate

    def test_merged_empty(self):
        merged = TelemetrySnapshot.merged([])
        assert merged.n_runs == 0
        assert merged.counters == {}

    def test_summary_lines_cover_all_kinds(self):
        t = Telemetry()
        t.inc("c")
        t.gauge("g", 1.0)
        t.observe("h", 2.0)
        text = "\n".join(t.snapshot().summary_lines())
        assert "c" in text and "(gauge)" in text and "mean=" in text


class TestPrometheus:
    def test_render_and_parse_round_trip(self):
        text = render_prometheus([
            ("requests_total", "counter", "total requests",
             [({"route": "/x", "status": "200"}, 3.0), (None, 7.0)]),
            ("depth", "gauge", "queue depth", [(None, 2.5)]),
        ])
        samples = parse_prometheus(text)
        assert samples['requests_total{route="/x",status="200"}'] == 3.0
        assert samples["requests_total"] == 7.0
        assert samples["depth"] == 2.5
        # every non-comment line parsed (nothing silently skipped)
        assert len(samples) == 3

    def test_help_and_type_lines_present(self):
        text = render_prometheus([("m_total", "counter", "help text", [(None, 1.0)])])
        assert "# HELP m_total help text" in text
        assert "# TYPE m_total counter" in text

    def test_name_sanitization(self):
        text = render_prometheus([("sched.phase1-plan", "gauge", "x", [(None, 1.0)])])
        assert parse_prometheus(text) == {"sched_phase1_plan": 1.0}

    def test_special_values(self):
        text = render_prometheus([
            ("m", "gauge", "x",
             [({"k": "inf"}, math.inf), ({"k": "ninf"}, -math.inf),
              ({"k": "nan"}, math.nan)]),
        ])
        samples = parse_prometheus(text)
        assert samples['m{k="inf"}'] == math.inf
        assert samples['m{k="ninf"}'] == -math.inf
        assert math.isnan(samples['m{k="nan"}'])

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("this is not a sample line\n")

    def test_snapshot_to_prometheus(self):
        t = Telemetry()
        t.inc("sim.events_executed", 10.0)
        t.gauge("run.wall_seconds", 1.5)
        t.observe("sched.lat", 0.25)
        samples = parse_prometheus(t.snapshot().to_prometheus())
        assert samples["repro_run_sim_events_executed_total"] == 10.0
        assert samples["repro_run_run_wall_seconds"] == 1.5
        assert samples["repro_run_sched_lat_count"] == 1.0
        assert samples["repro_run_sched_lat_sum"] == 0.25


class TestGoldenSafety:
    """Enabling telemetry must not perturb the simulation."""

    def test_digest_identical_with_and_without_telemetry(self, tiny_config):
        from repro.experiments.campaign import result_digest
        from repro.grid.system import P2PGridSystem

        plain = P2PGridSystem(tiny_config).run()
        instrumented = P2PGridSystem(tiny_config.with_(telemetry=True)).run()
        assert result_digest(plain) == result_digest(instrumented)
        assert plain.telemetry is None
        assert instrumented.telemetry is not None

    def test_snapshot_is_populated(self, tiny_config):
        from repro.grid.system import P2PGridSystem

        snap = P2PGridSystem(tiny_config.with_(telemetry=True)).run().telemetry
        assert snap.counters["sim.events_executed"] > 0
        assert snap.counters["gossip.digests_sent"] > 0
        assert snap.counters["sched.phase1_dispatches"] > 0
        assert snap.counters["transfers.completed"] > 0
        assert snap.gauges["run.wall_seconds"] > 0
        assert snap.histograms["sched.phase1_plan_seconds.dsmf"]["count"] > 0
        # per-metrics-cycle series got sampled
        assert len(snap.series["sim.queue_depth"]) > 0

    def test_snapshot_survives_pickle(self, tiny_config):
        import pickle

        from repro.grid.system import P2PGridSystem

        result = P2PGridSystem(tiny_config.with_(telemetry=True)).run()
        clone = pickle.loads(pickle.dumps(result))
        assert clone.telemetry.to_dict() == result.telemetry.to_dict()

    def test_campaign_summary_merges_runs(self, tiny_config, tmp_path):
        from repro.api import run_campaign

        campaign = run_campaign(
            ["dsmf"], seeds=[5, 6], base=tiny_config.with_(telemetry=True),
            cache_dir=tmp_path / "cache",
        )
        summary = campaign.telemetry_summary()
        assert summary.n_runs == 2
        assert summary.counters["campaign.runs"] == 2.0
        assert summary.counters["campaign.cache_misses"] == 2.0
        assert summary.counters["sim.events_executed"] > 0
        assert summary.gauges["campaign.worker_utilization"] > 0

    def test_campaign_summary_without_telemetry(self, tiny_config, tmp_path):
        from repro.api import run_campaign

        campaign = run_campaign(
            ["dsmf"], seeds=[5], base=tiny_config, cache_dir=tmp_path / "cache"
        )
        summary = campaign.telemetry_summary()
        assert summary.counters["campaign.runs"] == 1.0
        assert "sim.events_executed" not in summary.counters
