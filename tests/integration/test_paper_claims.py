"""End-to-end invariants and paper-shape claims at test scale.

The benchmark suite asserts the figure-level claims at bench scale; these
tests pin the *invariants* every correct run must satisfy — dependency
order, conservation of workflows, metric consistency — across algorithms
and seeds, plus a fast sanity version of the headline DSMF claim.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.grid.state import WorkflowStatus
from repro.grid.system import P2PGridSystem


def _run_system(algorithm="dsmf", seed=3, **kw):
    base = dict(
        algorithm=algorithm,
        n_nodes=30,
        load_factor=2,
        total_time=10 * 3600.0,
        seed=seed,
        task_range=(2, 12),
    )
    base.update(kw)
    system = P2PGridSystem(ExperimentConfig(**base))
    result = system.run()
    return system, result


@pytest.fixture(scope="module", params=["dsmf", "heft", "min-min", "dsdf"])
def run(request):
    return _run_system(algorithm=request.param)


class TestExecutionInvariants:
    def test_dependency_order_respected(self, run):
        """A task never finishes before any of its precedents."""
        system, _ = run
        for wx in system.executions.values():
            for tid, (_, t_finish) in wx.finished.items():
                for p in wx.wf.precedents[tid]:
                    assert p in wx.finished
                    assert wx.finished[p][1] <= t_finish + 1e-9

    def test_done_workflows_have_all_tasks_finished(self, run):
        system, _ = run
        for wx in system.executions.values():
            if wx.status is WorkflowStatus.DONE:
                assert len(wx.finished) == len(wx.wf.tasks)

    def test_completion_time_is_exit_finish(self, run):
        system, _ = run
        for wx in system.executions.values():
            if wx.status is WorkflowStatus.DONE:
                exit_finish = wx.finished[wx.wf.exit_id][1]
                assert wx.completion_time == pytest.approx(exit_finish)

    def test_tasks_ran_on_alive_known_nodes(self, run):
        system, _ = run
        n = system.config.n_nodes
        for wx in system.executions.values():
            for tid, (node_id, _) in wx.finished.items():
                assert 0 <= node_id < n

    def test_virtual_tasks_executed_at_home(self, run):
        system, _ = run
        for wx in system.executions.values():
            for tid, (node_id, _) in wx.finished.items():
                if wx.wf.tasks[tid].virtual:
                    assert node_id == wx.home_id

    def test_workflow_conservation(self, run):
        """done + failed + still-running == submitted."""
        system, result = run
        statuses = [wx.status for wx in system.executions.values()]
        n_done = sum(1 for s in statuses if s is WorkflowStatus.DONE)
        n_failed = sum(1 for s in statuses if s is WorkflowStatus.FAILED)
        assert n_done == result.n_done
        assert n_failed == result.n_failed
        assert len(statuses) == result.n_workflows

    def test_metrics_match_records(self, run):
        _, result = run
        done = [r for r in result.records if r.status == "done"]
        if done:
            act = sum(r.ct for r in done) / len(done)
            assert result.act == pytest.approx(act)

    def test_cpu_never_oversubscribed(self, run):
        """Per-node busy time cannot exceed the simulated horizon."""
        system, _ = run
        for node in system.nodes:
            assert node.busy_time <= system.config.total_time + 1e-6


class TestHeadlineClaim:
    """Fast version of the paper's main result at tiny scale."""

    @pytest.fixture(scope="class")
    def trio(self):
        out = {}
        for alg in ("dsmf", "dheft", "max-min"):
            _, out[alg] = _run_system(
                algorithm=alg, n_nodes=40, load_factor=3,
                total_time=16 * 3600.0, seed=5, task_range=(2, 30),
            )
        return out

    def test_dsmf_act_beats_dheft(self, trio):
        assert trio["dsmf"].act < trio["dheft"].act

    def test_dsmf_ae_beats_rivals(self, trio):
        assert trio["dsmf"].ae > trio["dheft"].ae
        assert trio["dsmf"].ae > trio["max-min"].ae


class TestSeedRobustness:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_static_runs_complete_across_seeds(self, seed):
        _, result = _run_system(seed=seed)
        assert result.completion_rate > 0.9
        assert result.n_failed == 0
