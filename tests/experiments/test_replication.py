"""Tests for multi-seed replication statistics."""

from __future__ import annotations


from repro.experiments.config import ExperimentConfig
from repro.experiments.replication import (
    MetricSummary,
    _summary,
    run_replications,
)


def _cfg(**kw):
    base = dict(
        algorithm="dsmf",
        n_nodes=20,
        load_factor=1,
        total_time=5 * 3600.0,
        task_range=(2, 6),
    )
    base.update(kw)
    return ExperimentConfig(**base)


def test_summary_single_value_degenerate():
    s = _summary([5.0], 0.95)
    assert s.mean == 5.0
    assert s.ci_low == s.ci_high == 5.0
    assert s.n == 1


def test_summary_ci_contains_mean():
    s = _summary([1.0, 2.0, 3.0, 4.0], 0.95)
    assert s.ci_low < s.mean < s.ci_high
    assert s.std > 0


def test_summary_wider_ci_for_higher_confidence():
    vals = [1.0, 2.0, 3.0, 4.0, 5.0]
    s95 = _summary(vals, 0.95)
    s99 = _summary(vals, 0.99)
    assert (s99.ci_high - s99.ci_low) > (s95.ci_high - s95.ci_low)


def test_run_replications_aggregates_seeds():
    result = run_replications(_cfg(), seeds=(1, 2, 3))
    assert result.act.n == 3
    assert result.act.mean > 0
    assert 0 < result.ae.mean
    assert result.completion_rate.mean > 0.5
    assert result.seeds == [1, 2, 3]


def test_replication_deterministic_per_seed_set():
    a = run_replications(_cfg(), seeds=(1, 2))
    b = run_replications(_cfg(), seeds=(1, 2))
    assert a.act.mean == b.act.mean


def test_overlap_check():
    a = run_replications(_cfg(), seeds=(1, 2, 3))
    assert a.overlaps(a, "act")


def test_metric_summary_str():
    s = MetricSummary(mean=10.0, std=1.0, ci_low=9.0, ci_high=11.0, n=5)
    assert "10.0" in str(s)
