"""Tests for ASCII rendering and CSV export."""

from __future__ import annotations

import csv

from repro.experiments.report import (
    ascii_plot,
    ascii_table,
    write_series_csv,
    write_table_csv,
)


def test_ascii_table_alignment():
    out = ascii_table(["name", "value"], [["a", 1.0], ["bb", 20.5]])
    lines = out.splitlines()
    assert len(lines) == 4
    assert "name" in lines[0] and "value" in lines[0]
    assert all(len(l) == len(lines[0]) for l in lines[1:])


def test_ascii_table_empty_rows():
    out = ascii_table(["a", "b"], [])
    assert "a" in out


def test_ascii_plot_contains_markers_and_legend():
    series = {
        "up": ([0.0, 1.0, 2.0], [0.0, 1.0, 2.0]),
        "down": ([0.0, 1.0, 2.0], [2.0, 1.0, 0.0]),
    }
    out = ascii_plot(series, width=40, height=10)
    assert "o=up" in out
    assert "x=down" in out
    assert "o" in out.splitlines()[0] + out.splitlines()[-3]


def test_ascii_plot_no_data():
    assert ascii_plot({}) == "(no data)"


def test_ascii_plot_constant_series():
    out = ascii_plot({"flat": ([0.0, 1.0], [5.0, 5.0])})
    assert "flat" in out


def test_write_series_csv(tmp_path):
    path = write_series_csv(
        tmp_path / "s.csv", {"a": ([1.0, 2.0], [10.0, 20.0])}, xname="hour"
    )
    rows = list(csv.reader(path.open()))
    assert rows[0] == ["series", "hour", "value"]
    assert rows[1] == ["a", "1.0", "10.0"]
    assert len(rows) == 3


def test_write_table_csv(tmp_path):
    path = write_table_csv(tmp_path / "t.csv", ["x", "y"], [[1, 2], [3, 4]])
    rows = list(csv.reader(path.open()))
    assert rows == [["x", "y"], ["1", "2"], ["3", "4"]]


def test_csv_creates_parent_dirs(tmp_path):
    path = write_series_csv(tmp_path / "deep" / "dir" / "s.csv", {"a": ([1.0], [1.0])})
    assert path.exists()
