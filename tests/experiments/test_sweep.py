"""Tests for the adaptive capacity sweep driver.

The bisection logic is exercised against a synthetic runner whose
completion rate is an analytic function of ``workload_scale`` — each
heuristic gets a known capacity, so the saturation point the search finds
can be checked against the ground truth without running simulations.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.experiments.sweep import (
    MIN_SCALE,
    SWEEP_SCHEMA,
    SweepError,
    SweepSettings,
    format_envelope,
    run_sweep,
    validate_envelope,
)
from repro.metrics.collectors import RunResult

#: Ground-truth capacity per algorithm: completion is perfect up to this
#: scale and degrades linearly beyond it (rate = 1 - (scale - cap)).
CAPACITY = {"dsmf": 2.6, "dheft": 1.9, "heft": 0.4, "smf": 31.0}


def fake_runner(config: ExperimentConfig) -> RunResult:
    """Analytic stand-in for a simulation: completion driven by scale."""
    cap = CAPACITY[config.algorithm]
    scale = config.workload_scale
    rate = 1.0 if scale <= cap else max(0.0, 1.0 - (scale - cap))
    n_workflows = max(1, round(config.load_factor * config.n_nodes * scale))
    n_done = round(rate * n_workflows)
    return RunResult(
        algorithm=config.algorithm, seed=config.seed, n_nodes=config.n_nodes,
        n_workflows=n_workflows, total_time=config.total_time,
        act=1000.0 + scale, ae=rate, n_done=n_done,
        n_failed=n_workflows - n_done, events_executed=10, wall_seconds=0.0,
        rss_mean=1.0, records=[], samples=[],
    )


def sweep(cache_dir=None, **kwargs):
    defaults = dict(
        scenarios=["paper-fig4"],
        algorithms=["dsmf"],
        base=ExperimentConfig(n_nodes=20, load_factor=2, total_time=3600.0),
        settings=SweepSettings(resolution=0.25, max_scale=8.0),
        runner=fake_runner,
        cache_dir=cache_dir,
        use_cache=cache_dir is not None,
    )
    defaults.update(kwargs)
    return run_sweep(**defaults)


def cell(report, scenario=0, algorithm="dsmf"):
    return report["scenarios"][scenario]["heuristics"][algorithm]


class TestBisection:
    def test_saturation_within_resolution_of_ground_truth(self):
        report = sweep(algorithms=["dsmf", "dheft"])
        for alg in ("dsmf", "dheft"):
            c = cell(report, algorithm=alg)
            # Pass iff rate >= 0.95 iff scale <= cap + 0.05; the largest
            # passing probe sits within one resolution step below that.
            flip = CAPACITY[alg] + 0.05
            assert not c["censored"]
            assert flip - 0.25 <= c["saturation_scale"] <= flip
            # Saturation beats the paper's nominal rate for both.
            assert c["saturation_scale"] > 1.0

    def test_downward_search_when_nominal_rate_fails(self):
        c = cell(sweep(algorithms=["heft"]), algorithm="heft")
        assert not c["censored"]
        assert 0.0 < c["saturation_scale"] < 1.0
        scales = [p["scale"] for p in c["probes"]]
        assert 1.0 in scales and 0.5 in scales  # halving phase ran

    def test_censored_above_max_scale(self):
        c = cell(sweep(algorithms=["smf"]), algorithm="smf")
        assert c["censored"]
        assert c["saturation_scale"] == pytest.approx(8.0)
        assert all(p["passed"] for p in c["probes"])

    def test_censored_below_min_scale(self):
        base = ExperimentConfig(n_nodes=20, load_factor=2, total_time=3600.0)

        def hopeless(config):
            r = fake_runner(config)
            return RunResult(**{**r.__dict__, "n_done": 0, "n_failed": r.n_workflows})

        c = cell(sweep(base=base, runner=hopeless))
        assert c["censored"]
        assert c["saturation_scale"] == 0.0
        assert min(p["scale"] for p in c["probes"]) == pytest.approx(MIN_SCALE)

    def test_probe_scales_never_repeat_within_a_cell(self):
        for alg in CAPACITY:
            c = cell(sweep(algorithms=[alg]), algorithm=alg)
            scales = [p["scale"] for p in c["probes"]]
            assert len(scales) == len(set(scales))

    def test_multi_seed_probes_average_the_completion_rate(self):
        report = sweep(settings=SweepSettings(seeds=(1, 2, 3), resolution=0.25))
        c = cell(report)
        assert report["seeds"] == [1, 2, 3]
        # Every probe aggregated all three seeds' workflows.
        one_seed = max(1, round(2 * 20 * 1.0))
        probe = next(p for p in c["probes"] if p["scale"] == 1.0)
        assert probe["n_workflows"] == 3 * one_seed


class TestCaching:
    def test_second_sweep_is_fully_cache_served(self, tmp_path):
        first = sweep(cache_dir=tmp_path, algorithms=["dsmf", "heft"])
        replay = sweep(cache_dir=tmp_path, algorithms=["dsmf", "heft"])
        for alg in ("dsmf", "heft"):
            assert cell(first, algorithm=alg)["n_cached"] == 0
            c = cell(replay, algorithm=alg)
            assert c["n_cached"] == c["n_probes"]
            assert all(p["from_cache"] for p in c["probes"])
        # Identical search path either way.
        assert [p["scale"] for p in cell(first)["probes"]] == [
            p["scale"] for p in cell(replay)["probes"]
        ]

    def test_overlapping_sweep_shares_cached_probes(self, tmp_path):
        sweep(cache_dir=tmp_path)
        # A finer resolution revisits every coarse probe from cache.
        fine = sweep(
            cache_dir=tmp_path,
            settings=SweepSettings(resolution=0.0625, max_scale=8.0),
        )
        c = cell(fine)
        assert c["n_cached"] >= cell(sweep(cache_dir=None))["n_probes"] - 1
        assert c["n_probes"] > c["n_cached"]  # the finer mids ran fresh


class TestReportShape:
    def test_schema_and_derived_fields(self):
        report = sweep()
        assert report["schema"] == SWEEP_SCHEMA
        assert report["kind"] == "capacity-envelope"
        assert report["criterion"] == {
            "metric": "completion_rate", "threshold": 0.95,
        }
        assert validate_envelope(report) == []
        entry = report["scenarios"][0]
        assert entry["name"] == "paper-fig4"
        assert entry["nominal_workflows"] == 40
        c = cell(report)
        assert c["saturation_workflows"] == round(40 * c["saturation_scale"])
        assert c["saturation_workflows_per_hour"] == pytest.approx(
            c["saturation_workflows"] / (3600.0 / 3600.0)
        )

    def test_probes_sorted_by_scale(self):
        c = cell(sweep())
        scales = [p["scale"] for p in c["probes"]]
        assert scales == sorted(scales)

    def test_format_envelope_ranks_heuristics(self):
        table = format_envelope(sweep(algorithms=["heft", "dsmf"]))
        assert table.index("dsmf") < table.index("heft")  # higher capacity first
        assert "saturation" in table

    def test_format_envelope_marks_censored_cells(self):
        assert ">= max" in format_envelope(sweep(algorithms=["smf"]))

    def test_validate_envelope_flags_broken_reports(self):
        assert validate_envelope({"schema": 99}) != []
        report = sweep()
        cell(report)["probes"] = []
        assert any("no probes" in p for p in validate_envelope(report))


class TestValidation:
    def test_trace_replay_scenarios_are_rejected(self):
        with pytest.raises(SweepError, match="trace"):
            sweep(scenarios=["gwa-replay-small"])

    def test_settings_bounds(self):
        with pytest.raises(SweepError):
            SweepSettings(threshold=0.0)
        with pytest.raises(SweepError):
            SweepSettings(threshold=1.5)
        with pytest.raises(SweepError):
            SweepSettings(resolution=0.0)
        with pytest.raises(SweepError):
            SweepSettings(max_scale=0.5)
        with pytest.raises(SweepError):
            SweepSettings(seeds=())

    def test_empty_request_rejected(self):
        with pytest.raises(SweepError):
            sweep(scenarios=[])
        with pytest.raises(SweepError):
            sweep(algorithms=[])
        with pytest.raises(SweepError, match="duplicate"):
            sweep(algorithms=["dsmf", "dsmf"])

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            sweep(scenarios=["no-such-scenario"])

    def test_progress_callback_sees_every_probe(self):
        seen = []
        report = sweep(progress=lambda sc, alg, p: seen.append((sc, alg, p.scale)))
        assert len(seen) == cell(report)["n_probes"]
        assert all(sc == "paper-fig4" and alg == "dsmf" for sc, alg, _ in seen)
