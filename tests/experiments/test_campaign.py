"""Tests for the campaign layer: caching, hashing, determinism, failures."""

from __future__ import annotations

import os
import pickle
from pathlib import Path

import pytest

from repro.experiments.campaign import (
    CampaignError,
    CampaignRunner,
    RunSpec,
    config_hash,
    result_digest,
    sweep_specs,
)
from repro.experiments.config import ExperimentConfig

#: Small enough for sub-second runs; non-trivial enough to exercise the
#: full pipeline (multi-hour horizon, several workflows per node).
TINY = dict(
    n_nodes=24,
    load_factor=1,
    total_time=4 * 3600.0,
    task_range=(2, 10),
)


def tiny_config(**overrides) -> ExperimentConfig:
    return ExperimentConfig(**{**TINY, **overrides})


def tiny_specs(algorithms=("dsmf", "dheft"), seeds=(1, 2)) -> list[RunSpec]:
    return sweep_specs(algorithms, seeds, base=tiny_config())


# --------------------------------------------------------------------------
# Config hashing
# --------------------------------------------------------------------------

class TestConfigHash:
    def test_stable_across_key_ordering(self):
        cfg = tiny_config()
        spec = cfg.describe()
        shuffled = dict(reversed(list(spec.items())))
        assert list(shuffled) != list(spec)
        assert config_hash(spec) == config_hash(shuffled) == config_hash(cfg)

    def test_stable_across_processes(self):
        # No PYTHONHASHSEED dependence: the digest is content-derived.
        import subprocess
        import sys

        code = (
            "from repro.experiments.campaign import config_hash;"
            "from repro.experiments.config import ExperimentConfig;"
            f"print(config_hash(ExperimentConfig(**{TINY!r})))"
        )
        out = subprocess.run(
            [sys.executable, "-c", code], capture_output=True, text=True, check=True
        ).stdout.strip()
        assert out == config_hash(tiny_config())

    def test_distinct_configs_distinct_hashes(self):
        assert config_hash(tiny_config(seed=1)) != config_hash(tiny_config(seed=2))
        assert config_hash(tiny_config(algorithm="dsmf")) != config_hash(
            tiny_config(algorithm="dheft")
        )

    def test_workload_path_contents_change_the_hash(self, tmp_path):
        """Editing a referenced DAG/trace file must invalidate the cache
        entry, not silently replay stale results."""
        from repro.workflow.generator import chain_workflow, diamond_workflow
        from repro.workflow.io import save_workflow

        path = tmp_path / "dag.json"
        save_workflow(diamond_workflow("d"), path)
        cfg = tiny_config(workload_source="imported", workload_path=str(path))
        before = config_hash(cfg)
        assert before == config_hash(cfg)  # deterministic
        save_workflow(chain_workflow("d", 3), path)  # edit in place
        assert config_hash(cfg) != before
        # Missing file still hashes (the run reports the real error).
        missing = tiny_config(
            workload_source="imported", workload_path=str(tmp_path / "nope.json")
        )
        assert config_hash(missing) != before


# --------------------------------------------------------------------------
# Sweep construction
# --------------------------------------------------------------------------

class TestSweepSpecs:
    def test_grid_dimensions_and_labels(self):
        specs = sweep_specs(
            ["dsmf", "dheft"], [1, 2, 3], base=tiny_config(),
            variants={"static": {}, "churn": {"dynamic_factor": 0.2}},
        )
        assert len(specs) == 2 * 3 * 2
        labels = [s.label for s in specs]
        assert len(set(labels)) == len(labels)
        assert "dsmf@churn#s2" in labels
        churn = next(s for s in specs if s.label == "dsmf@churn#s2")
        assert churn.config.dynamic_factor == 0.2
        assert churn.config.seed == 2

    def test_common_overrides_apply_everywhere(self):
        specs = sweep_specs(["dsmf"], [1], base=tiny_config(), n_nodes=30)
        assert specs[0].config.n_nodes == 30

    def test_duplicate_cells_rejected(self):
        with pytest.raises(ValueError, match="duplicate sweep cell"):
            sweep_specs(["dsmf"], [1, 1], base=tiny_config())
        with pytest.raises(ValueError, match="duplicate sweep cell"):
            sweep_specs(["dsmf", "dsmf"], [1], base=tiny_config())


# --------------------------------------------------------------------------
# Caching
# --------------------------------------------------------------------------

class TestCache:
    def test_miss_then_hit(self, tmp_path):
        specs = tiny_specs(algorithms=("dsmf",), seeds=(1,))
        runner = CampaignRunner(jobs=1, cache_dir=tmp_path)

        cold = runner.run(specs)
        assert cold.n_cached == 0
        assert not cold.runs[0].from_cache
        assert cold.runs[0].result.n_done > 0

        warm = runner.run(specs)
        assert warm.n_cached == 1
        assert warm.runs[0].from_cache
        assert warm.fingerprint() == cold.fingerprint()
        assert warm.wall_seconds < cold.wall_seconds

    def test_no_cache_never_reads_or_writes(self, tmp_path):
        specs = tiny_specs(algorithms=("dsmf",), seeds=(1,))
        runner = CampaignRunner(jobs=1, cache_dir=tmp_path, use_cache=False)
        runner.run(specs)
        assert list(tmp_path.iterdir()) == []
        again = runner.run(specs)
        assert again.n_cached == 0

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        specs = tiny_specs(algorithms=("dsmf",), seeds=(1,))
        runner = CampaignRunner(jobs=1, cache_dir=tmp_path)
        first = runner.run(specs)
        path = runner._cache_path(first.runs[0].cache_key)
        path.write_bytes(b"not a pickle")
        recovered = runner.run(specs)
        assert recovered.n_cached == 0
        assert recovered.fingerprint() == first.fingerprint()
        # ... and the fresh result replaced the corrupt entry.
        assert isinstance(pickle.loads(path.read_bytes()), object)
        assert runner.run(specs).n_cached == 1

    def test_duplicate_specs_run_once(self, tmp_path):
        spec = tiny_specs(algorithms=("dsmf",), seeds=(1,))[0]
        twice = [spec, RunSpec("again", spec.config)]
        campaign = CampaignRunner(jobs=1, cache_dir=tmp_path).run(twice)
        assert len(campaign) == 2
        assert campaign.runs[0].result is campaign.runs[1].result


# --------------------------------------------------------------------------
# Determinism across worker counts
# --------------------------------------------------------------------------

class TestDeterminism:
    def test_jobs1_vs_jobs4_identical(self):
        specs = tiny_specs()
        serial = CampaignRunner(jobs=1, use_cache=False).run(specs)
        parallel = CampaignRunner(jobs=4, use_cache=False).run(specs)
        assert serial.fingerprint() == parallel.fingerprint()
        for a, b in zip(serial.runs, parallel.runs):
            assert a.label == b.label
            assert result_digest(a.result) == result_digest(b.result)
            assert a.result.act == b.result.act
            assert a.result.n_done == b.result.n_done

    def test_spawn_context_identical(self):
        # Explicit spawn proves workers need nothing from the parent's
        # memory (fresh interpreter, pickled frozen configs only).
        specs = tiny_specs(algorithms=("dsmf",), seeds=(1, 2))
        serial = CampaignRunner(jobs=1, use_cache=False).run(specs)
        spawned = CampaignRunner(
            jobs=2, use_cache=False, mp_context="spawn"
        ).run(specs)
        assert serial.fingerprint() == spawned.fingerprint()

    def test_cache_hit_is_bit_identical_to_fresh(self, tmp_path):
        specs = tiny_specs(algorithms=("dsmf",), seeds=(1,))
        fresh = CampaignRunner(jobs=1, use_cache=False).run(specs)
        CampaignRunner(jobs=1, cache_dir=tmp_path).run(specs)
        cached = CampaignRunner(jobs=1, cache_dir=tmp_path).run(specs)
        assert cached.n_cached == 1
        assert cached.fingerprint() == fresh.fingerprint()


# --------------------------------------------------------------------------
# Failure handling
# --------------------------------------------------------------------------

def _boom(config):
    raise RuntimeError(f"worker exploded on seed {config.seed}")


class TestFailures:
    def test_inline_crash_surfaces_as_campaign_error(self):
        specs = tiny_specs(algorithms=("dsmf",), seeds=(1, 2))
        runner = CampaignRunner(jobs=1, use_cache=False, runner=_boom)
        with pytest.raises(CampaignError) as err:
            runner.run(specs)
        assert len(err.value.failures) == 2
        assert "dsmf#s1" in str(err.value)
        assert "worker exploded" in str(err.value)

    def test_worker_crash_surfaces_as_campaign_error(self):
        # fork context so the test-module-level _boom is picklable by
        # reference without this file being importable in a fresh child.
        specs = tiny_specs(algorithms=("dsmf",), seeds=(1, 2))
        runner = CampaignRunner(
            jobs=2, use_cache=False, runner=_boom, mp_context="fork"
        )
        with pytest.raises(CampaignError) as err:
            runner.run(specs)
        assert len(err.value.failures) == 2
        assert "worker exploded" in str(err.value)

    def test_failed_runs_write_no_cache_entries(self, tmp_path):
        specs = tiny_specs(algorithms=("dsmf",), seeds=(1,))
        runner = CampaignRunner(jobs=1, cache_dir=tmp_path, runner=_boom)
        with pytest.raises(CampaignError):
            runner.run(specs)
        assert list(tmp_path.iterdir()) == []

    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            CampaignRunner(jobs=0)

    def test_retry_knobs_validated(self):
        with pytest.raises(ValueError):
            CampaignRunner(max_retries=-1)
        with pytest.raises(ValueError):
            CampaignRunner(retry_backoff=-0.1)


# --------------------------------------------------------------------------
# Worker-process death (BrokenProcessPool) and retry recovery
# --------------------------------------------------------------------------

def _exit_hard(config):
    # A worker-process death mid-run (the stand-in for an OOM kill):
    # poisons the whole pool, not just this future.
    os._exit(86)


def _exit_once(config):
    """Die the first time each seed is attempted, succeed on the retry.

    Cross-process state via marker files (workers are fresh processes);
    the parent points REPRO_TEST_DIE_ONCE at a tmp dir before forking.
    """
    from repro.experiments.campaign import _default_runner

    marker = Path(os.environ["REPRO_TEST_DIE_ONCE"]) / f"s{config.seed}"
    try:
        marker.touch(exist_ok=False)
    except FileExistsError:
        return _default_runner(config)
    os._exit(86)


class TestPoolCrashes:
    def test_pool_death_fails_fast_without_retries(self):
        specs = tiny_specs(algorithms=("dsmf",), seeds=(1, 2))
        runner = CampaignRunner(
            jobs=2, use_cache=False, runner=_exit_hard,
            mp_context="fork", max_retries=0,
        )
        with pytest.raises(CampaignError) as err:
            runner.run(specs)
        assert "BrokenProcessPool" in str(err.value)
        assert runner.stats.get("campaign.retries", 0) == 0

    def test_pool_death_exhausts_retries(self):
        specs = tiny_specs(algorithms=("dsmf",), seeds=(1, 2))
        runner = CampaignRunner(
            jobs=2, use_cache=False, runner=_exit_hard,
            mp_context="fork", max_retries=1, retry_backoff=0.0,
        )
        with pytest.raises(CampaignError) as err:
            runner.run(specs)
        # Both cells failed after a retry round on a rebuilt pool.
        assert len(err.value.failures) == 2
        assert runner.stats["campaign.pool_rebuilds"] >= 1
        assert runner.stats["campaign.retries"] >= 1

    def test_pool_death_retry_recovers(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_DIE_ONCE", str(tmp_path))
        specs = tiny_specs(algorithms=("dsmf",), seeds=(1, 2))
        clean = CampaignRunner(jobs=1, use_cache=False).run(specs)
        crashed = CampaignRunner(
            jobs=2, use_cache=False, runner=_exit_once,
            mp_context="fork", max_retries=2, retry_backoff=0.0,
        ).run(specs)
        # Identical results despite every cell's first attempt dying.
        assert crashed.fingerprint() == clean.fingerprint()
        assert all(run.attempts >= 2 for run in crashed.runs)
        assert crashed.stats["campaign.retries"] >= 2
        assert crashed.stats["campaign.pool_rebuilds"] >= 1


# --------------------------------------------------------------------------
# Progress reporting
# --------------------------------------------------------------------------

def test_progress_callback_sees_every_run(tmp_path):
    specs = tiny_specs(algorithms=("dsmf",), seeds=(1, 2))
    seen: list[tuple[str, bool]] = []
    runner = CampaignRunner(
        jobs=1, cache_dir=tmp_path,
        progress=lambda run: seen.append((run.label, run.from_cache)),
    )
    runner.run(specs)
    assert sorted(label for label, _ in seen) == ["dsmf#s1", "dsmf#s2"]
    assert all(not cached for _, cached in seen)
    seen.clear()
    runner.run(specs)
    assert all(cached for _, cached in seen)


def test_api_run_campaign_wrapper(tmp_path):
    from repro.api import run_campaign

    campaign = run_campaign(
        algorithms=("dsmf",), seeds=(1,), jobs=1, cache_dir=tmp_path, **TINY
    )
    assert len(campaign) == 1
    assert campaign.runs[0].result.algorithm == "dsmf"
    assert run_campaign(
        algorithms=("dsmf",), seeds=(1,), jobs=1, cache_dir=tmp_path, **TINY
    ).n_cached == 1
