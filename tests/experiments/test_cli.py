"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main


def test_list_prints_algorithms(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "dsmf" in out
    assert "heft" in out


def test_table1(capsys):
    assert main(["table", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "node capacity" in out


def test_run_small(capsys):
    rc = main(
        ["run", "-a", "dsmf", "-n", "24", "-l", "1", "--hours", "4", "--seed", "2"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "[dsmf]" in out
    assert "ACT" in out


def test_run_rejects_unknown_algorithm():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "-a", "bogus"])


def test_campaign_small_sweep(capsys, tmp_path):
    argv = [
        "campaign", "-a", "dsmf", "--seeds", "1", "2", "--jobs", "1",
        "--cache-dir", str(tmp_path), "--quiet",
        "--set", "n_nodes=24", "--set", "load_factor=1",
        "--set", "total_time=14400.0", "--set", "task_range=(2, 10)",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "dsmf#s1" in out and "dsmf#s2" in out
    assert "0 from cache" in out
    assert "fingerprint" in out
    fingerprint = out.split("fingerprint")[-1].strip()

    # Re-invocation replays both runs from cache, bit-identically.
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "2 from cache" in out
    assert out.split("fingerprint")[-1].strip() == fingerprint


def test_campaign_rejects_malformed_override():
    with pytest.raises(SystemExit):
        main(["campaign", "--set", "nonsense", "--no-cache"])


def test_campaign_rejects_unknown_config_field():
    with pytest.raises(SystemExit, match="invalid --set override"):
        main(["campaign", "--set", "not_a_field=3", "--no-cache"])


def test_campaign_rejects_per_cell_fields_in_set():
    # algorithm/seed are sweep axes; --set would be silently overwritten.
    with pytest.raises(SystemExit, match="--algorithms/--seeds"):
        main(["campaign", "--set", "algorithm=dheft", "--no-cache"])
    with pytest.raises(SystemExit, match="--algorithms/--seeds"):
        main(["campaign", "--set", "seed=9", "--no-cache"])


def test_campaign_parser_defaults():
    args = build_parser().parse_args(["campaign"])
    assert args.algorithms == ["dsmf"]
    assert args.seeds == [1]
    assert args.jobs == 1
    assert not args.no_cache
    assert args.scenario is None


def test_scenarios_lists_presets(capsys):
    assert main(["scenarios"]) == 0
    out = capsys.readouterr().out
    assert "paper-fig4" in out
    assert "poisson-steady" in out
    assert "bit-identical" in out  # descriptions shown


def test_campaign_rejects_unknown_scenario():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["campaign", "--scenario", "nope"])


def test_campaign_rejects_scenario_via_set():
    with pytest.raises(SystemExit, match="--scenario NAME"):
        main(["campaign", "--set", "scenario=paper-fig4", "--no-cache"])


def test_campaign_with_scenario(capsys, tmp_path):
    argv = [
        "campaign", "-a", "dsmf", "--seeds", "1", "--quiet", "--no-cache",
        "--scenario", "poisson-steady",
        "--set", "n_nodes=24", "--set", "load_factor=1",
        "--set", "total_time=14400.0", "--set", "task_range=(2, 6)",
    ]
    assert main(argv) == 0
    out = capsys.readouterr().out
    assert "dsmf#s1" in out
    assert "fingerprint" in out


def test_run_with_scenario(capsys):
    rc = main(
        ["run", "-a", "dsmf", "-n", "24", "-l", "1", "--hours", "4",
         "--seed", "2", "--scenario", "burst-storm"]
    )
    assert rc == 0
    assert "[dsmf]" in capsys.readouterr().out


def test_run_scenario_needing_path_exits_cleanly():
    with pytest.raises(SystemExit, match="workload_path"):
        main(["run", "-a", "dsmf", "-n", "24", "-l", "1", "--hours", "4",
              "--scenario", "imported-dag"])


def test_run_scenario_with_workload_path(capsys, tmp_path):
    from repro.workflow.generator import diamond_workflow
    from repro.workflow.io import save_workflow

    save_workflow(diamond_workflow("d"), tmp_path / "d.json")
    rc = main(["run", "-a", "dsmf", "-n", "24", "-l", "1", "--hours", "4",
               "--scenario", "imported-dag",
               "--workload-path", str(tmp_path / "d.json")])
    assert rc == 0
    assert "[dsmf]" in capsys.readouterr().out


def test_figure_requires_known_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "99"])


def test_parser_profile_choices():
    args = build_parser().parse_args(["figure", "4", "--profile", "paper"])
    assert args.profile == "paper"


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
