"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main


def test_list_prints_algorithms(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "dsmf" in out
    assert "heft" in out


def test_table1(capsys):
    assert main(["table", "1"]) == 0
    out = capsys.readouterr().out
    assert "Table I" in out
    assert "node capacity" in out


def test_run_small(capsys):
    rc = main(
        ["run", "-a", "dsmf", "-n", "24", "-l", "1", "--hours", "4", "--seed", "2"]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "[dsmf]" in out
    assert "ACT" in out


def test_run_rejects_unknown_algorithm():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "-a", "bogus"])


def test_figure_requires_known_figure():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["figure", "99"])


def test_parser_profile_choices():
    args = build_parser().parse_args(["figure", "4", "--profile", "paper"])
    assert args.profile == "paper"


def test_missing_command_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
