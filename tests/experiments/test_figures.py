"""Tests for the figure harnesses (tiny scale: correctness of plumbing)."""

from __future__ import annotations

import pytest

from repro.experiments.figures import (
    CCR_CASES,
    base_config,
    fig4_throughput,
    fig5_finish_time,
    fig6_efficiency,
    fig7_finish_time_vs_load,
    fig11_scalability,
    fig12_churn_throughput,
    run_static_suite,
    table1_settings,
    table2_fcfs_ablation,
    FIGURES,
)

TINY = dict(
    profile="small",
    seed=3,
    n_nodes=24,
    total_time=5 * 3600.0,
    load_factor=1,
    task_range=(2, 8),
)


@pytest.fixture(scope="module")
def suite():
    return run_static_suite(algorithms=("dsmf", "heft"), **TINY)


def test_base_config_profiles():
    small = base_config("small")
    paper = base_config("paper")
    assert small.n_nodes < paper.n_nodes
    assert paper.n_nodes == 1000


def test_run_static_suite_runs_each_algorithm(suite):
    assert set(suite) == {"dsmf", "heft"}
    for r in suite.values():
        assert r.n_workflows == 24


def test_fig4_reuses_precomputed_results(suite):
    fig = fig4_throughput(results=suite)
    assert fig.figure == "fig4"
    assert set(fig.series) == {"dsmf", "heft"}


def test_fig5_and_fig6_share_runs(suite):
    f5 = fig5_finish_time(results=suite)
    f6 = fig6_efficiency(results=suite)
    assert f5.ylabel != f6.ylabel
    assert set(f5.series) == set(f6.series)


def test_fig7_sweeps_load_factors():
    fig = fig7_finish_time_vs_load(
        load_factors=(1, 2), algorithms=("dsmf",), **TINY
    )
    assert fig.categories == ["1", "2"]
    xs, ys = fig.series["dsmf"]
    assert len(ys) == 2


def test_fig11_reports_three_series():
    fig = fig11_scalability(scales=(20, 30), seed=3, total_time=4 * 3600.0)
    assert set(fig.series) == {"known_nodes", "avg_efficiency", "avg_finish_time"}
    assert fig.categories == ["20", "30"]


def test_fig12_churn_series():
    fig = fig12_churn_throughput(dynamic_factors=(0.0, 0.2), **TINY)
    assert set(fig.series) == {"dynamic factor=0", "dynamic factor=0.2"}


def test_table2_pairs_heuristic_and_fcfs():
    fig = table2_fcfs_ablation(bases=("min-min",), **TINY)
    assert set(fig.series) == {"phase2-heuristic", "phase2-fcfs"}
    assert fig.categories == ["min-min"]


def test_table1_covers_every_table_row():
    rows = dict(table1_settings())
    for key in ("# of nodes", "# of tasks per workflow", "network bandwidth",
                "node capacity", "CCR"):
        assert key in rows


def test_figure_result_helpers(suite):
    fig = fig4_throughput(results=suite)
    finals = fig.final_values()
    assert set(finals) == {"dsmf", "heft"}
    rows = fig.as_rows()
    assert all(len(r) == 3 for r in rows)


def test_ccr_cases_match_paper():
    assert len(CCR_CASES) == 4
    names = [c[0] for c in CCR_CASES]
    assert names[0] == "load:10-1000 data:10-1000"


def test_figures_registry_covers_4_to_14():
    for key in [str(k) for k in range(4, 15)] + ["table2"]:
        assert key in FIGURES


def test_progress_callback_invoked():
    seen = []
    run_static_suite(
        algorithms=("dsmf",), progress=lambda alg, r: seen.append(alg), **TINY
    )
    assert seen == ["dsmf"]
