"""Tests for ExperimentConfig validation and profiles."""

from __future__ import annotations

import pytest

from repro.experiments.config import (
    PROFILE_OVERRIDES,
    ExperimentConfig,
    ScaleProfile,
    apply_profile,
)


def test_defaults_match_table1():
    cfg = ExperimentConfig()
    assert cfg.n_nodes == 1000
    assert cfg.load_factor == 3
    assert cfg.total_time == 36 * 3600.0
    assert cfg.schedule_interval == 900.0
    assert cfg.gossip_interval == 300.0
    assert cfg.task_range == (2, 30)
    assert cfg.fanout_range == (1, 5)
    assert cfg.load_range == (100.0, 10_000.0)
    assert cfg.image_range == (10.0, 100.0)
    assert cfg.capacities == (1.0, 2.0, 4.0, 8.0, 16.0)
    assert cfg.bw_min == 0.1 and cfg.bw_max == 10.0
    assert cfg.gossip_ttl == 4


@pytest.mark.parametrize(
    "field,value",
    [
        ("n_nodes", 1),
        ("load_factor", 0),
        ("total_time", 0.0),
        ("total_time", -3600.0),
        ("seed", -1),
        ("schedule_interval", -1.0),
        ("gossip_interval", 0.0),
        ("metrics_interval", -60.0),
        ("task_range", (5, 2)),       # inverted
        ("task_range", (0, 5)),       # below one task
        ("fanout_range", (3, 1)),     # inverted
        ("fanout_range", (0, 2)),     # zero fan-out
        ("load_range", (100.0, 10.0)),   # inverted
        ("load_range", (-1.0, 10.0)),    # negative
        ("image_range", (50.0, 5.0)),    # inverted
        ("data_range", (1000.0, 10.0)),  # inverted
        ("data_range", (-5.0, 10.0)),    # negative
        ("capacities", ()),
        ("capacities", (0.0, 1.0)),
        ("bw_min", 0.0),
        ("bw_max", 0.01),             # below bw_min
        ("gossip_ttl", 0),
        ("gossip_push_size", 0),
        ("rss_capacity", 0),
        ("rss_expiry_cycles", 0.0),
        ("dynamic_factor", 1.5),
        ("dynamic_factor", -0.1),
        ("permanent_fraction", 0.0),
        ("rss_mode", "psychic"),
        ("churn_mode", "explode"),
        ("algorithm", "not-an-algorithm"),
        ("scenario", "not-a-scenario"),
        ("workload_source", "tea-leaves"),
        ("arrival_process", "whenever"),
        ("structured_family", "fractal"),
        ("arrival_spread", 0.0),
        ("arrival_spread", 1.5),
        ("burst_on", 0.0),
        ("burst_off", -1.0),
        ("diurnal_period", 0.0),
    ],
)
def test_invalid_values_rejected(field, value):
    with pytest.raises(ValueError):
        ExperimentConfig(**{field: value})


@pytest.mark.parametrize(
    "field,value,fragment",
    [
        ("task_range", (5, 2), "inverted"),
        ("rss_mode", "psychic", "rss_mode"),
        ("algorithm", "bogus", "available:"),
        ("workload_source", "x", "available:"),
        ("arrival_process", "x", "available:"),
        ("scenario", "x", "available:"),
        ("metrics_interval", -1.0, "positive"),
    ],
)
def test_rejection_messages_are_actionable(field, value, fragment):
    with pytest.raises(ValueError, match=fragment):
        ExperimentConfig(**{field: value})


def test_with_returns_modified_copy():
    a = ExperimentConfig()
    b = a.with_(n_nodes=50)
    assert b.n_nodes == 50
    assert a.n_nodes == 1000


def test_with_validates_too():
    with pytest.raises(ValueError):
        ExperimentConfig().with_(algorithm="bogus")


def test_describe_roundtrip():
    d = ExperimentConfig().describe()
    assert d["algorithm"] == "dsmf"
    assert d["n_nodes"] == 1000


def test_expected_ccr_base_setting():
    """Fig. 4-6 setting lands near the paper's quoted CCR of 0.16."""
    ccr = ExperimentConfig().expected_ccr()
    assert 0.05 < ccr < 0.3


def test_expected_ccr_heavy_data():
    ccr = ExperimentConfig(
        load_range=(10.0, 1000.0), data_range=(100.0, 10_000.0)
    ).expected_ccr()
    assert ccr > 5.0


def test_profiles_only_shrink_scale():
    base = ExperimentConfig()
    for profile in ScaleProfile:
        cfg = apply_profile(base, profile)
        assert cfg.load_range == base.load_range
        assert cfg.schedule_interval == base.schedule_interval
        if profile is not ScaleProfile.PAPER:
            assert cfg.n_nodes < base.n_nodes


def test_paper_profile_is_identity():
    base = ExperimentConfig()
    assert apply_profile(base, ScaleProfile.PAPER) == base


def test_profile_overrides_known_for_all_profiles():
    assert set(PROFILE_OVERRIDES) == set(ScaleProfile)


# ----------------------------- availability fields -------------------------

def test_availability_defaults_are_paper_neutral():
    cfg = ExperimentConfig()
    assert cfg.churn_model == "paper-interval"
    assert cfg.recovery_policy == "fail"
    assert not cfg.churn_enabled()


@pytest.mark.parametrize(
    "overrides",
    [
        {"churn_model": "bogus"},
        {"recovery_policy": "bogus"},
        {"session_mean": 0.0},
        {"session_mean": -1.0},
        {"session_shape": 0.0},
        {"rejoin_delay_mean": -1.0},
        {"failure_interval": 0.0},
        {"ramp_direction": "sideways"},
        {"ramp_window": 0.0},
        {"ramp_window": 1.5},
    ],
)
def test_invalid_availability_fields_rejected(overrides):
    with pytest.raises(ValueError):
        ExperimentConfig(**overrides)


def test_reschedule_failed_flag_normalizes_to_policy():
    assert ExperimentConfig(reschedule_failed=True).recovery_policy == "reschedule"
    assert ExperimentConfig(reschedule_failed=False).recovery_policy == "fail"
    # An explicit policy wins over the legacy flag.
    cfg = ExperimentConfig(reschedule_failed=True, recovery_policy="checkpoint")
    assert cfg.recovery_policy == "checkpoint"


def test_churn_enabled_per_model():
    assert not ExperimentConfig(churn_model="paper-interval").churn_enabled()
    assert ExperimentConfig(dynamic_factor=0.2).churn_enabled()
    for model in ("sessions", "trace", "correlated", "ramp"):
        assert ExperimentConfig(churn_model=model).churn_enabled()
