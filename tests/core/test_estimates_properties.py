"""Property-based tests (hypothesis) for the Eq. (4)-(6) estimators."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimates import ResourceView


class FlatBandwidth:
    def __init__(self, bw: float):
        self.bw = bw

    def bw_between(self, src, targets):
        return np.full(len(targets), self.bw)

    def latency_between(self, src, targets):
        return np.zeros(len(targets))


views = st.builds(
    lambda caps, loads, bw: ResourceView(
        list(range(len(caps))),
        caps,
        loads[: len(caps)] + [0.0] * max(0, len(caps) - len(loads)),
        FlatBandwidth(bw),
        home_id=0,
    ),
    caps=st.lists(st.floats(min_value=0.5, max_value=16.0), min_size=1, max_size=12),
    loads=st.lists(st.floats(min_value=0.0, max_value=1e5), min_size=12, max_size=12),
    bw=st.floats(min_value=0.1, max_value=10.0),
)


@given(view=views, load=st.floats(min_value=0.0, max_value=1e4))
@settings(max_examples=60, deadline=None)
def test_ft_at_least_execution_time(view, load):
    """FT >= pure execution time on every candidate (queueing/transfers can
    only delay)."""
    ft = view.ft_vector(load, 0.0, [])
    et = load / view.capacities
    assert np.all(ft >= et - 1e-9)


@given(view=views, load=st.floats(min_value=1.0, max_value=1e4))
@settings(max_examples=60, deadline=None)
def test_ft_monotone_in_queue_load(view, load):
    """Adding queue load to a node never lowers any FT."""
    before = view.ft_vector(load, 0.0, []).copy()
    view.add_load(int(view.ids[0]), 1000.0)
    after = view.ft_vector(load, 0.0, [])
    assert np.all(after >= before - 1e-9)


@given(
    view=views,
    load=st.floats(min_value=1.0, max_value=1e4),
    data=st.floats(min_value=0.0, max_value=1e4),
)
@settings(max_examples=60, deadline=None)
def test_ft_monotone_in_input_size(view, load, data):
    """Bigger dependent data never lowers any FT (Eq. 4/5)."""
    src = int(view.ids[0])
    small = view.ft_vector(load, 0.0, [(src, data)])
    large = view.ft_vector(load, 0.0, [(src, data * 2 + 1.0)])
    assert np.all(large >= small - 1e-9)


@given(view=views, load=st.floats(min_value=0.0, max_value=1e4))
@settings(max_examples=60, deadline=None)
def test_best_is_the_vector_minimum(view, load):
    node, ft = view.best(load, 0.0, [])
    vec = view.ft_vector(load, 0.0, [])
    assert ft == vec.min()
    assert vec[list(view.ids).index(node)] == ft


@given(view=views)
@settings(max_examples=40, deadline=None)
def test_ltd_is_max_over_inputs(view):
    """LTD with two inputs equals the elementwise max of the singles."""
    srcs = [int(view.ids[0]), int(view.ids[-1])]
    a = view.ltd_vector(0.0, [(srcs[0], 100.0)])
    b = view.ltd_vector(0.0, [(srcs[1], 300.0)])
    both = view.ltd_vector(0.0, [(srcs[0], 100.0), (srcs[1], 300.0)])
    assert np.allclose(both, np.maximum(a, b))
