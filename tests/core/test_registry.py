"""Tests for the algorithm bundle registry."""

from __future__ import annotations

import pytest

from repro.core.heuristics.registry import (
    PAPER_ALGORITHMS,
    AlgorithmBundle,
    algorithm_names,
    get_bundle,
)
from repro.core.heuristics.phase2 import FcfsPhase2


def test_all_paper_algorithms_registered():
    names = set(algorithm_names())
    assert set(PAPER_ALGORITHMS) <= names
    assert len(PAPER_ALGORITHMS) == 8


def test_fullahead_flag():
    assert get_bundle("heft").full_ahead
    assert get_bundle("smf").full_ahead
    assert not get_bundle("dsmf").full_ahead
    assert not get_bundle("min-min").full_ahead


def test_fullahead_bundles_use_fcfs():
    for name in ("heft", "smf"):
        assert isinstance(get_bundle(name).phase2, FcfsPhase2)


def test_fcfs_ablation_bundles_exist():
    for base in ("min-min", "max-min", "sufferage", "dheft", "dsmf"):
        b = get_bundle(f"{base}-fcfs")
        assert isinstance(b.phase2, FcfsPhase2)
        assert type(b.phase1) is type(get_bundle(base).phase1)


def test_unknown_name_lists_alternatives():
    with pytest.raises(KeyError, match="dsmf"):
        get_bundle("nope")


def test_fresh_instances_per_call():
    assert get_bundle("dsmf").phase1 is not get_bundle("dsmf").phase1


def test_bundle_requires_exactly_one_engine():
    from repro.core.heuristics.dsmf import DsmfPhase1

    with pytest.raises(ValueError):
        AlgorithmBundle("bad", FcfsPhase2())
    with pytest.raises(ValueError):
        AlgorithmBundle(
            "bad",
            FcfsPhase2(),
            phase1=DsmfPhase1(),
            planner=get_bundle("heft").planner,
        )
