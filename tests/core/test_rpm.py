"""Tests for compute_priorities (Eq. 7/8) against a real ResourceView."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimates import ResourceView
from repro.core.rpm import compute_priorities
from repro.grid.state import WorkflowExecution
from repro.workflow.generator import chain_workflow, fork_join_workflow


class FlatBandwidth:
    def bw_between(self, src, targets):
        return np.full(len(targets), 10.0)

    def latency_between(self, src, targets):
        return np.zeros(len(targets))


def _view(caps=(1.0, 2.0, 4.0), loads=(0.0, 0.0, 0.0)):
    return ResourceView(list(range(len(caps))), list(caps), list(loads),
                        FlatBandwidth(), home_id=0)


def test_chain_rpm_is_ft_plus_rest_path():
    wf = chain_workflow("c", 3, load=100.0, data=50.0, image=0.0)
    wx = WorkflowExecution(wf, 0, 0.0, 1.0)
    prio = compute_priorities(wx, _view(), avg_capacity=2.0, avg_bandwidth=5.0)
    # Schedule point = entry. best FT = 100/4 = 25 on the fastest node.
    # rest path = ett(50/5) + eet(100/2) twice = 10+50+10+50 = 120.
    assert prio.rpm[0] == pytest.approx(25.0 + 120.0)
    assert prio.makespan == prio.rpm[0]


def test_makespan_is_max_over_schedule_points():
    wf = fork_join_workflow("f", 3, load=100.0, data=0.0, image=0.0)
    wx = WorkflowExecution(wf, 0, 0.0, 1.0)
    wx.mark_finished(0, 0, 0.0)
    prio = compute_priorities(wx, _view(), 2.0, 5.0)
    assert len(prio.rpm) == 3
    assert prio.makespan == pytest.approx(max(prio.rpm.values()))


def test_empty_schedule_points_zero_makespan():
    wf = chain_workflow("c", 2, data=0.0)
    wx = WorkflowExecution(wf, 0, 0.0, 1.0)
    wx.mark_dispatched(0)
    prio = compute_priorities(wx, _view(), 1.0, 1.0)
    assert prio.rpm == {}
    assert prio.makespan == 0.0


def test_queue_load_raises_rpm():
    wf = chain_workflow("c", 2, load=100.0, data=0.0, image=0.0)
    wx = WorkflowExecution(wf, 0, 0.0, 1.0)
    idle = compute_priorities(wx, _view(), 1.0, 1.0).makespan
    busy = compute_priorities(
        wx, _view(loads=(1000.0, 1000.0, 1000.0)), 1.0, 1.0
    ).makespan
    assert busy > idle


def test_deadline_is_slack():
    wf = fork_join_workflow("f", 2, load=100.0, data=0.0, image=0.0)
    wx = WorkflowExecution(wf, 0, 0.0, 1.0)
    wx.mark_finished(0, 0, 0.0)
    prio = compute_priorities(wx, _view(), 1.0, 1.0)
    for tid in prio.rpm:
        assert prio.deadline(tid) == pytest.approx(prio.makespan - prio.rpm[tid])
        assert prio.deadline(tid) >= 0.0


def test_data_location_affects_rpm():
    """A schedule point whose input data sits on a slow-to-reach node has a
    larger transfer term in its best FT."""
    wf = chain_workflow("c", 2, load=100.0, data=500.0, image=0.0)
    wx = WorkflowExecution(wf, 0, 0.0, 1.0)
    wx.mark_finished(0, 1, 0.0)  # data on node 1

    class SlowFrom1(FlatBandwidth):
        def bw_between(self, src, targets):
            bw = np.full(len(targets), 10.0)
            if src == 1:
                bw[:] = 0.5
            return bw

    fast = compute_priorities(wx, _view(), 1.0, 1.0).makespan
    slow_view = ResourceView([0, 1, 2], [1.0, 2.0, 4.0], [0.0] * 3,
                             SlowFrom1(), home_id=0)
    slow = compute_priorities(wx, slow_view, 1.0, 1.0).makespan
    assert slow >= fast
