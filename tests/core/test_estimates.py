"""Tests for Eq. (4)-(6) estimation and the ResourceView."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimates import ResourceView


class FlatBandwidth:
    """Uniform test bandwidth: ``bw`` Mb/s everywhere, zero latency."""

    def __init__(self, bw=10.0):
        self.bw = bw

    def bw_between(self, src, targets):
        return np.full(len(targets), self.bw)

    def latency_between(self, src, targets):
        return np.zeros(len(targets))


def _view(ids=(0, 1, 2), caps=(1.0, 2.0, 4.0), loads=(0.0, 0.0, 0.0), bw=10.0, home=0):
    return ResourceView(list(ids), list(caps), list(loads), FlatBandwidth(bw), home)


class TestQueueDelay:
    def test_r_is_load_over_capacity(self):
        v = _view(loads=(100.0, 100.0, 100.0))
        assert np.allclose(v.queue_delays(), [100.0, 50.0, 25.0])

    def test_idle_nodes_zero_delay(self):
        assert np.allclose(_view().queue_delays(), 0.0)


class TestLtd:
    def test_no_inputs_no_image_is_zero(self):
        assert np.allclose(_view().ltd_vector(0.0, []), 0.0)

    def test_image_from_home_free_on_home(self):
        v = _view(home=0)
        ltd = v.ltd_vector(50.0, [])
        assert ltd[0] == 0.0          # local to home
        assert ltd[1] == pytest.approx(5.0)

    def test_input_free_on_source_node(self):
        v = _view()
        ltd = v.ltd_vector(0.0, [(1, 100.0)])
        assert ltd[1] == 0.0
        assert ltd[0] == pytest.approx(10.0)

    def test_ltd_is_max_over_inputs(self):
        v = _view()
        ltd = v.ltd_vector(0.0, [(1, 100.0), (2, 300.0)])
        assert ltd[0] == pytest.approx(30.0)  # slowest transfer dominates

    def test_zero_size_inputs_ignored(self):
        v = _view()
        assert np.allclose(v.ltd_vector(0.0, [(1, 0.0)]), 0.0)


class TestFt:
    def test_ft_combines_queue_and_execution(self):
        v = _view(loads=(100.0, 0.0, 0.0))
        ft = v.ft_vector(200.0, 0.0, [])
        # node 0: R=100, et=200 -> 300; node 1: et=100; node 2: et=50.
        assert np.allclose(ft, [300.0, 100.0, 50.0])

    def test_st_is_max_of_r_and_ltd(self):
        # Big transfer: LTD dominates R on idle nodes.
        v = _view()
        ft = v.ft_vector(100.0, 0.0, [(0, 1000.0)])
        assert ft[0] == pytest.approx(100.0)        # local data
        assert ft[1] == pytest.approx(100.0 + 50.0)  # 100s transfer > R=0
        assert ft[2] == pytest.approx(100.0 + 25.0)

    def test_best_picks_argmin(self):
        v = _view(loads=(100.0, 0.0, 0.0))
        node, ft = v.best(200.0, 0.0, [])
        assert node == 2
        assert ft == pytest.approx(50.0)

    def test_best_ft_matches_vector_min(self):
        v = _view(loads=(10.0, 20.0, 30.0))
        assert v.best_ft(50.0, 10.0, [(1, 40.0)]) == pytest.approx(
            v.ft_vector(50.0, 10.0, [(1, 40.0)]).min()
        )


class TestMutation:
    def test_add_load_raises_queue_delay(self):
        v = _view()
        before = v.ft_vector(100.0, 0.0, []).copy()
        v.add_load(2, 400.0)
        after = v.ft_vector(100.0, 0.0, [])
        assert after[2] == pytest.approx(before[2] + 100.0)
        assert after[0] == before[0]

    def test_add_load_invokes_writeback(self):
        v = _view()
        seen = []
        v.add_load(1, 50.0, on_update=lambda nid, load: seen.append((nid, load)))
        assert seen == [(1, 50.0)]

    def test_add_load_unknown_node_raises(self):
        with pytest.raises(KeyError):
            _view().add_load(99, 1.0)

    def test_repeated_picks_spread_load(self):
        """Charging the chosen node steers later picks elsewhere (line 15)."""
        v = _view(caps=(4.0, 4.0, 4.0))
        picks = []
        for _ in range(3):
            node, _ = v.best(100.0, 0.0, [])
            picks.append(node)
            v.add_load(node, 100.0)
        assert set(picks) == {0, 1, 2}


class TestValidation:
    def test_empty_view_rejected(self):
        with pytest.raises(ValueError):
            ResourceView([], [], [], FlatBandwidth(), 0)

    def test_misaligned_arrays_rejected(self):
        with pytest.raises(ValueError):
            ResourceView([0, 1], [1.0], [0.0, 0.0], FlatBandwidth(), 0)

    def test_nonpositive_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResourceView([0], [0.0], [0.0], FlatBandwidth(), 0)

    def test_len(self):
        assert len(_view()) == 3
