"""The paper's Fig. 3 worked example, reproduced end to end.

Two workflows A and B are submitted to one scheduler node; A2, A3, B2, B3
are the schedule points and three resources X, Y, Z are known.  The paper
states the estimated finish-time matrix::

            X   Y   Z
    A2     15  10  30
    A3     30  50  40
    B2     50  60  40
    B3     40  20  30

and derives RPM(A2)=80, RPM(A3)=115, RPM(B2)=65, RPM(B3)=60, hence
makespans ms(A)=115 and ms(B)=65; DSMF therefore dispatches B2, B3, A3, A2,
HEFT (decreasing RPM) chooses A3, A2, B2, B3, min-min selects A2 first and
max-min selects B2 first.

The published figure does not fully specify the DAG weights, so we build
DAGs whose offspring rest paths equal the implied values
(RPM − min FT: 70, 85, 25, 40) and drive the policies through a stub view
that returns exactly the published FT matrix.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.heuristics.base import SchedulingContext
from repro.core.heuristics.dheft import DheftPhase1
from repro.core.heuristics.dsmf import DsmfPhase1
from repro.core.heuristics.listfree import MaxMinPhase1, MinMinPhase1
from repro.core.rpm import compute_priorities
from repro.grid.state import WorkflowExecution
from repro.workflow.dag import Workflow
from repro.workflow.task import Task

# Schedule-point loads double as lookup keys into the FT matrix.
A2, A3, B2, B3 = 1001.0, 1002.0, 1003.0, 1004.0

FT_MATRIX = {
    A2: [15.0, 10.0, 30.0],
    A3: [30.0, 50.0, 40.0],
    B2: [50.0, 60.0, 40.0],
    B3: [40.0, 20.0, 30.0],
}
NODES = [10, 11, 12]  # X, Y, Z


class PaperMatrixView:
    """Stub resource view returning the published finish-time matrix."""

    def __init__(self):
        self.ids = np.asarray(NODES, dtype=np.int64)
        self.charged: list[tuple[int, float]] = []

    def ft_vector(self, load, image, inputs):
        return np.asarray(FT_MATRIX[load])

    def best_ft(self, load, image, inputs):
        return float(self.ft_vector(load, image, inputs).min())

    def best(self, load, image, inputs):
        ft = self.ft_vector(load, image, inputs)
        k = int(np.argmin(ft))
        return int(self.ids[k]), float(ft[k])

    def add_load(self, node_id, load, on_update=None):
        # The worked example does not evolve the matrix between picks.
        self.charged.append((node_id, load))


def _workflow_a() -> WorkflowExecution:
    """A1 -> {A2, A3}; rest path after A2 = 70, after A3 = 85.

    With avg capacity = avg bandwidth = 1, time values equal load/data:
    A2 -> A4(20) via edge 30, A4 -> A6(5) via edge 15   => 30+20+15+5 = 70
    A3 -> A5(20) via edge 40, A5 -> A6(5) via edge 20   => 40+20+20+5 = 85
    """
    tasks = [
        Task(tid=1, load=5.0, name="A1"),
        Task(tid=2, load=A2, name="A2"),
        Task(tid=3, load=A3, name="A3"),
        Task(tid=4, load=20.0, name="A4"),
        Task(tid=5, load=20.0, name="A5"),
        Task(tid=6, load=5.0, name="A6"),
    ]
    edges = {
        (1, 2): 0.0,
        (1, 3): 0.0,
        (2, 4): 30.0,
        (3, 5): 40.0,
        (4, 6): 15.0,
        (5, 6): 20.0,
    }
    wf = Workflow("A", tasks, edges)
    wx = WorkflowExecution(wf, home_id=0, submit_time=0.0, eft=1.0)
    wx.mark_finished(1, 0, 0.0)  # A1 done -> A2, A3 are schedule points
    return wx


def _workflow_b() -> WorkflowExecution:
    """B1 -> {B2, B3}; rest path after B2 = 25, after B3 = 40.

    B2 -> B4(10) via edge 10, B4 -> B5(5) via edge 0    => 10+10+0+5 = 25
    B3 -> B4     via edge 25                            => 25+10+0+5 = 40
    """
    tasks = [
        Task(tid=1, load=20.0, name="B1"),
        Task(tid=2, load=B2, name="B2"),
        Task(tid=3, load=B3, name="B3"),
        Task(tid=4, load=10.0, name="B4"),
        Task(tid=5, load=5.0, name="B5"),
    ]
    edges = {
        (1, 2): 0.0,
        (1, 3): 0.0,
        (2, 4): 10.0,
        (3, 4): 25.0,
        (4, 5): 0.0,
    }
    wf = Workflow("B", tasks, edges)
    wx = WorkflowExecution(wf, home_id=0, submit_time=0.0, eft=1.0)
    wx.mark_finished(1, 0, 0.0)
    return wx


@pytest.fixture
def ctx():
    return SchedulingContext(
        home_id=0,
        now=0.0,
        workflows=[_workflow_a(), _workflow_b()],
        view=PaperMatrixView(),
        avg_capacity=1.0,
        avg_bandwidth=1.0,
    )


class TestRpmValues:
    def test_rpm_a2_is_80(self, ctx):
        prio = compute_priorities(ctx.workflows[0], ctx.view, 1.0, 1.0)
        assert prio.rpm[2] == pytest.approx(80.0)

    def test_rpm_a3_is_115(self, ctx):
        prio = compute_priorities(ctx.workflows[0], ctx.view, 1.0, 1.0)
        assert prio.rpm[3] == pytest.approx(115.0)

    def test_rpm_b2_is_65_and_b3_is_60(self, ctx):
        prio = compute_priorities(ctx.workflows[1], ctx.view, 1.0, 1.0)
        assert prio.rpm[2] == pytest.approx(65.0)
        assert prio.rpm[3] == pytest.approx(60.0)

    def test_makespans(self, ctx):
        pa = compute_priorities(ctx.workflows[0], ctx.view, 1.0, 1.0)
        pb = compute_priorities(ctx.workflows[1], ctx.view, 1.0, 1.0)
        assert pa.makespan == pytest.approx(115.0)
        assert pb.makespan == pytest.approx(65.0)


class TestSchedulingOrders:
    def test_dsmf_order_is_b2_b3_a3_a2(self, ctx):
        decisions = DsmfPhase1().plan(ctx)
        order = [(d.wx.wf.wid, d.wx.wf.tasks[d.tid].name) for d in decisions]
        assert order == [("B", "B2"), ("B", "B3"), ("A", "A3"), ("A", "A2")]

    def test_heft_order_is_a3_a2_b2_b3(self, ctx):
        """The paper: 'The HEFT algorithm will choose A3, A2, B2, and B3 one
        by one, due to their decreasing order of RPM' — our DHEFT phase 1
        applies exactly that rule."""
        decisions = DheftPhase1().plan(ctx)
        names = [d.wx.wf.tasks[d.tid].name for d in decisions]
        assert names == ["A3", "A2", "B2", "B3"]

    def test_minmin_selects_a2_first(self, ctx):
        decisions = MinMinPhase1().plan(ctx)
        assert decisions[0].wx.wf.tasks[decisions[0].tid].name == "A2"
        # ... and onto node Y, its earliest-finish resource.
        assert decisions[0].target == NODES[1]

    def test_maxmin_selects_b2_first(self, ctx):
        decisions = MaxMinPhase1().plan(ctx)
        assert decisions[0].wx.wf.tasks[decisions[0].tid].name == "B2"
        assert decisions[0].target == NODES[2]  # Z, B2's earliest finish

    def test_dsmf_targets_follow_formula_9(self, ctx):
        decisions = DsmfPhase1().plan(ctx)
        by_name = {d.wx.wf.tasks[d.tid].name: d.target for d in decisions}
        assert by_name == {
            "A2": NODES[1],  # min of [15,10,30] -> Y
            "A3": NODES[0],  # min of [30,50,40] -> X
            "B2": NODES[2],  # min of [50,60,40] -> Z
            "B3": NODES[1],  # min of [40,20,30] -> Y
        }

    def test_dsmf_stamps_ms_and_rpm(self, ctx):
        decisions = DsmfPhase1().plan(ctx)
        first = decisions[0]  # B2
        assert first.stamps["ms"] == pytest.approx(65.0)
        assert first.stamps["rpm"] == pytest.approx(65.0)
