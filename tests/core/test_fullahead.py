"""Tests for the full-ahead HEFT/SMF planners."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fullahead.heft import HeftPlanner
from repro.core.fullahead.planner import GlobalView, _EftState
from repro.core.fullahead.smf import SmfPlanner
from repro.grid.state import WorkflowExecution
from repro.workflow.dag import Workflow
from repro.workflow.generator import chain_workflow, random_workflow
from repro.workflow.task import Task
from repro.sim.rng import spawn_generator


def _view(n=4, caps=None):
    caps = caps or [1.0, 2.0, 4.0, 8.0][:n]
    n = len(caps)
    bw = np.full((n, n), 10.0)
    np.fill_diagonal(bw, np.inf)
    lat = np.zeros((n, n))
    return GlobalView(
        node_ids=np.arange(n, dtype=np.int64),
        capacities=np.asarray(caps, dtype=float),
        bandwidth=bw,
        latency=lat,
        avg_capacity=float(np.mean(caps)),
        avg_bandwidth=10.0,
    )


def _wx(wf, home=0):
    return WorkflowExecution(wf, home_id=home, submit_time=0.0, eft=1.0)


class TestEftState:
    def test_single_task_goes_to_fastest_idle_node(self):
        wx = _wx(chain_workflow("c", 1, load=100.0, data=0.0, image=0.0))
        state = _EftState(_view())
        node = state.place(wx, 0)
        assert node == 3  # capacity 8 -> et 12.5

    def test_avail_accumulates(self):
        wx = _wx(chain_workflow("c", 1, load=100.0, data=0.0, image=0.0))
        state = _EftState(_view(caps=[1.0, 1.0]))
        a = state.place(wx, 0)
        wx2 = _wx(chain_workflow("c2", 1, load=100.0, data=0.0, image=0.0))
        b = state.place(wx2, 0)
        assert {a, b} == {0, 1}  # second task avoids the busy node

    def test_precedent_finish_constrains_start(self):
        wf = chain_workflow("c", 2, load=100.0, data=0.0, image=0.0)
        wx = _wx(wf)
        state = _EftState(_view(caps=[1.0, 1.0]))
        state.place(wx, 0)
        state.place(wx, 1)
        ft0 = state.finish[("c", 0)][0]
        ft1 = state.finish[("c", 1)][0]
        assert ft1 >= ft0 + 100.0  # successor waits for the precedent

    def test_data_transfer_penalizes_remote_nodes(self):
        wf = chain_workflow("c", 2, load=100.0, data=1000.0, image=0.0)
        wx = _wx(wf)
        state = _EftState(_view(caps=[4.0, 4.0]))
        n0 = state.place(wx, 0)
        n1 = state.place(wx, 1)
        # 1000 Mb over 10 Mb/s = 100 s transfer vs 25 s execution: stay put.
        assert n1 == n0

    def test_virtual_tasks_pinned_to_home(self):
        tasks = [
            Task(tid=0, load=0.0, virtual=True),
            Task(tid=1, load=100.0),
        ]
        wf = Workflow("v", tasks, {(0, 1): 0.0})
        wx = _wx(wf, home=2)
        state = _EftState(_view())
        assert state.place(wx, 0) == 2
        assert state.finish[("v", 0)] == (0.0, 2)


class TestPlanners:
    def _workflows(self, k=6, seed=0):
        rng = spawn_generator(seed, "fa")
        return [_wx(random_workflow(f"w{i}", rng), home=i % 3) for i in range(k)]

    def test_heft_assigns_every_nonvirtual_task(self):
        wxs = self._workflows()
        plan = HeftPlanner().plan(_view(), wxs)
        for wx in wxs:
            for tid, task in wx.wf.tasks.items():
                if not task.virtual:
                    assert plan.node_for(wx.wf.wid, tid) in range(4)

    def test_smf_assigns_every_nonvirtual_task(self):
        wxs = self._workflows(seed=1)
        plan = SmfPlanner().plan(_view(), wxs)
        for wx in wxs:
            for tid, task in wx.wf.tasks.items():
                if not task.virtual:
                    plan.node_for(wx.wf.wid, tid)

    def test_unknown_task_raises(self):
        plan = HeftPlanner().plan(_view(), self._workflows(k=1))
        with pytest.raises(KeyError):
            plan.node_for("nope", 0)

    def test_planners_are_deterministic(self):
        a = HeftPlanner().plan(_view(), self._workflows(seed=2))
        b = HeftPlanner().plan(_view(), self._workflows(seed=2))
        assert a.assignment == b.assignment

    def test_smf_processes_short_workflows_first(self):
        """SMF's defining property: the shortest-makespan workflow's tasks
        occupy the best slots (earliest finish estimates)."""
        short = _wx(chain_workflow("short", 1, load=100.0, data=0.0, image=0.0))
        long = _wx(chain_workflow("long", 6, load=1000.0, data=0.0, image=0.0))
        view = _view(caps=[1.0, 8.0])
        state_finish = SmfPlanner().plan(view, [long, short])
        # Rebuild the EFT trace to inspect: short's task must land on the
        # fast node before long's first task inflates its availability.
        assert state_finish.node_for("short", 0) == 1
