"""Unit tests for phase-1 and phase-2 policies against controlled views."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.estimates import ResourceView
from repro.core.heuristics.base import SchedulingContext
from repro.core.heuristics.dheft import DheftPhase1, LongestRpmPhase2
from repro.core.heuristics.dsdf import DsdfPhase1, DsdfPhase2
from repro.core.heuristics.dsmf import DsmfPhase1, DsmfPhase2
from repro.core.heuristics.listfree import MaxMinPhase1, MinMinPhase1, SufferagePhase1
from repro.core.heuristics.phase2 import FcfsPhase2, LsfPhase2, LtfPhase2, StfPhase2
from repro.grid.state import TaskDispatch, WorkflowExecution
from repro.workflow.generator import chain_workflow, fork_join_workflow


class FlatBandwidth:
    def bw_between(self, src, targets):
        return np.full(len(targets), 10.0)

    def latency_between(self, src, targets):
        return np.zeros(len(targets))


def _wx(wf, home=0):
    wx = WorkflowExecution(wf, home_id=home, submit_time=0.0, eft=1.0)
    return wx


def _ctx(workflows, caps=(1.0, 2.0, 4.0)):
    ids = list(range(len(caps)))
    view = ResourceView(ids, list(caps), [0.0] * len(caps), FlatBandwidth(), home_id=0)
    return SchedulingContext(
        home_id=0,
        now=0.0,
        workflows=workflows,
        view=view,
        avg_capacity=float(np.mean(caps)),
        avg_bandwidth=5.0,
    )


def _dispatch(**kw):
    defaults = dict(
        wid="w",
        tid=0,
        load=100.0,
        image_size=0.0,
        home_id=0,
        target_id=1,
        dispatch_time=0.0,
        seq=0,
    )
    defaults.update(kw)
    d = TaskDispatch(**defaults)
    d.pending_inputs = 0
    return d


class TestDsmfPhase1:
    def test_short_workflow_dispatched_first(self):
        short = _wx(chain_workflow("short", 2, load=100.0, data=0.0))
        long = _wx(chain_workflow("long", 8, load=100.0, data=0.0))
        ctx = _ctx([long, short])
        decisions = DsmfPhase1().plan(ctx)
        assert decisions[0].wx.wf.wid == "short"

    def test_within_workflow_longest_rpm_first(self):
        # Fork-join: after the split finishes, branches are schedule points.
        wf = fork_join_workflow("f", 3, load=100.0, data=0.0)
        wx = _wx(wf)
        wx.mark_finished(0, 0, 0.0)
        ctx = _ctx([wx])
        decisions = DsmfPhase1().plan(ctx)
        rpms = [d.stamps["rpm"] for d in decisions]
        assert rpms == sorted(rpms, reverse=True)

    def test_all_schedule_points_dispatched(self):
        wxs = [_wx(chain_workflow(f"w{i}", 3, data=0.0)) for i in range(4)]
        ctx = _ctx(wxs)
        decisions = DsmfPhase1().plan(ctx)
        assert len(decisions) == 4  # one entry schedule point each

    def test_no_workflows_no_decisions(self):
        assert DsmfPhase1().plan(_ctx([])) == []

    def test_view_charged_between_picks(self):
        """Successive dispatches must not all pile on the fastest node."""
        wxs = [_wx(chain_workflow(f"w{i}", 1, load=1000.0, data=0.0)) for i in range(6)]
        ctx = _ctx(wxs, caps=(4.0, 4.0, 4.0))
        decisions = DsmfPhase1().plan(ctx)
        targets = {d.target for d in decisions}
        assert len(targets) == 3


class TestPooledPolicies:
    def _two_wx(self):
        a = _wx(chain_workflow("a", 2, load=100.0, data=0.0))
        b = _wx(chain_workflow("b", 2, load=800.0, data=0.0))
        return a, b

    def test_minmin_picks_smallest_ft_first(self):
        a, b = self._two_wx()
        decisions = MinMinPhase1().plan(_ctx([a, b]))
        assert decisions[0].wx.wf.wid == "a"

    def test_maxmin_picks_largest_best_ft_first(self):
        a, b = self._two_wx()
        decisions = MaxMinPhase1().plan(_ctx([a, b]))
        assert decisions[0].wx.wf.wid == "b"

    def test_sufferage_prefers_task_with_most_to_lose(self):
        a, b = self._two_wx()
        decisions = SufferagePhase1().plan(_ctx([a, b]))
        # With caps (1,2,4): sufferage of each task is (load/2 - load/4);
        # the heavier task suffers more.
        assert decisions[0].wx.wf.wid == "b"
        assert decisions[0].stamps["sufferage"] > 0

    def test_et_stamp_present(self):
        a, b = self._two_wx()
        for policy in (MinMinPhase1(), MaxMinPhase1(), SufferagePhase1()):
            d = policy.plan(_ctx([a.__class__(a.wf, 0, 0.0, 1.0), b.__class__(b.wf, 0, 0.0, 1.0)]))
            assert all("et" in x.stamps for x in d)

    def test_all_tasks_dispatched_once(self):
        wxs = [_wx(chain_workflow(f"w{i}", 2, data=0.0)) for i in range(5)]
        for policy in (MinMinPhase1(), MaxMinPhase1(), SufferagePhase1()):
            fresh = [_wx(chain_workflow(f"w{i}", 2, data=0.0)) for i in range(5)]
            decisions = policy.plan(_ctx(fresh))
            assert len(decisions) == 5
            assert len({(d.wx.wf.wid, d.tid) for d in decisions}) == 5


class TestDheftDsdfPhase1:
    def test_dheft_descending_rpm_across_workflows(self):
        a = _wx(chain_workflow("a", 2, load=100.0, data=0.0))
        b = _wx(chain_workflow("b", 6, load=100.0, data=0.0))
        decisions = DheftPhase1().plan(_ctx([a, b]))
        assert decisions[0].wx.wf.wid == "b"  # longer chain = larger RPM
        rpms = [d.stamps["rpm"] for d in decisions]
        assert rpms == sorted(rpms, reverse=True)

    def test_dsdf_zero_slack_for_critical_sp(self):
        wx = _wx(chain_workflow("a", 3, data=0.0))
        decisions = DsdfPhase1().plan(_ctx([wx]))
        # A chain's only schedule point IS the critical path: slack 0.
        assert decisions[0].stamps["deadline"] == pytest.approx(0.0)

    def test_dsdf_ascending_deadline(self):
        wf = fork_join_workflow("f", 3, load=100.0, data=0.0)
        wx = _wx(wf)
        wx.mark_finished(0, 0, 0.0)
        decisions = DsdfPhase1().plan(_ctx([wx]))
        deadlines = [d.stamps["deadline"] for d in decisions]
        assert deadlines == sorted(deadlines)


class TestPhase2Policies:
    def test_dsmf_shortest_ms_then_longest_rpm(self):
        a = _dispatch(wid="a", ms_stamp=50.0, rpm_stamp=10.0, seq=1)
        b = _dispatch(wid="b", ms_stamp=20.0, rpm_stamp=5.0, seq=2)
        c = _dispatch(wid="c", ms_stamp=20.0, rpm_stamp=9.0, seq=3)
        assert DsmfPhase2().select([a, b, c], 0.0) is c

    def test_fcfs_by_dispatch_time(self):
        a = _dispatch(wid="a", dispatch_time=5.0, seq=9)
        b = _dispatch(wid="b", dispatch_time=1.0, seq=10)
        assert FcfsPhase2().select([a, b], 0.0) is b

    def test_fcfs_ties_by_seq(self):
        a = _dispatch(wid="a", dispatch_time=1.0, seq=2)
        b = _dispatch(wid="b", dispatch_time=1.0, seq=1)
        assert FcfsPhase2().select([a, b], 0.0) is b

    def test_stf_picks_lightest(self):
        a = _dispatch(wid="a", load=500.0)
        b = _dispatch(wid="b", load=100.0, seq=1)
        assert StfPhase2().select([a, b], 0.0) is b

    def test_ltf_picks_heaviest(self):
        a = _dispatch(wid="a", load=500.0)
        b = _dispatch(wid="b", load=100.0, seq=1)
        assert LtfPhase2().select([a, b], 0.0) is a

    def test_lsf_picks_largest_sufferage(self):
        a = _dispatch(wid="a", sufferage_stamp=3.0)
        b = _dispatch(wid="b", sufferage_stamp=8.0, seq=1)
        assert LsfPhase2().select([a, b], 0.0) is b

    def test_longest_rpm_phase2(self):
        a = _dispatch(wid="a", rpm_stamp=100.0)
        b = _dispatch(wid="b", rpm_stamp=300.0, seq=1)
        assert LongestRpmPhase2().select([a, b], 0.0) is b

    def test_dsdf_phase2_min_deadline(self):
        a = _dispatch(wid="a", deadline_stamp=10.0)
        b = _dispatch(wid="b", deadline_stamp=2.0, seq=1)
        assert DsdfPhase2().select([a, b], 0.0) is b

    def test_single_candidate(self):
        d = _dispatch(wid="x")
        for policy in (
            DsmfPhase2(),
            FcfsPhase2(),
            StfPhase2(),
            LtfPhase2(),
            LsfPhase2(),
            LongestRpmPhase2(),
            DsdfPhase2(),
        ):
            assert policy.select([d], 0.0) is d
