"""Tests for the Phase1Runner (Algorithm 1 orchestration)."""

from __future__ import annotations


from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem
from repro.workflow.generator import chain_workflow


def _system(**kw):
    base = dict(
        algorithm="dsmf",
        n_nodes=20,
        load_factor=1,
        total_time=4 * 3600.0,
        seed=13,
        task_range=(2, 6),
    )
    base.update(kw)
    return P2PGridSystem(ExperimentConfig(**base))


def test_view_includes_home_itself():
    system = _system()
    view = system.phase1._build_view(0)
    assert 0 in view.ids
    assert len(view) >= 1


def test_oracle_view_covers_all_alive_nodes():
    system = _system(rss_mode="oracle")
    view = system.phase1._build_view(0)
    assert len(view) == system.config.n_nodes


def test_gossip_view_limited_to_rss():
    system = _system()
    # Run a few gossip cycles so RSS fills.
    for c in range(5):
        system._gossip_cycle(c)
    view = system.phase1._build_view(0)
    assert 1 < len(view) <= system.epidemic.rss_capacity + 1


def test_run_for_home_dispatches_schedule_points():
    wf = chain_workflow("c", 3, load=100.0, data=0.0)
    system = P2PGridSystem(
        ExperimentConfig(n_nodes=20, load_factor=1, total_time=3600.0, seed=13),
        workflows=[(0, wf)],
    )
    wx = system.executions["c"]
    assert wx.schedule_points == {0}
    system.phase1.run_for_home(0)
    assert wx.schedule_points == set()
    assert 0 in wx.dispatched
    assert system.phase1.dispatches == 1


def test_dead_target_skipped_and_record_evicted():
    wf = chain_workflow("c", 2, load=100.0, data=0.0)
    system = P2PGridSystem(
        ExperimentConfig(n_nodes=20, load_factor=1, total_time=3600.0, seed=13),
        workflows=[(0, wf)],
    )
    # Fill RSS, then kill every node the scheduler can see except home.
    for c in range(6):
        system._gossip_cycle(c)
    rss_before = dict(system.epidemic.rss_view(0))
    assert rss_before
    for nid in list(rss_before):
        system.nodes[nid].alive = False
    # Force the decision onto a dead node by making home very slow/busy.
    system.nodes[0].capacity = 0.001
    system.phase1.run_for_home(0)
    wx = system.executions["c"]
    if system.phase1.dead_target_skips:
        # Task stayed a schedule point, and the stale record is gone.
        assert wx.schedule_points == {0}
        assert len(system.epidemic.rss_view(0)) < len(rss_before)
    else:  # fell back to self-execution: also legal under Formula (9)
        assert 0 in wx.dispatched


def test_only_wids_restricts_planning():
    wa = chain_workflow("a", 2, load=100.0, data=0.0)
    wb = chain_workflow("b", 2, load=100.0, data=0.0)
    system = P2PGridSystem(
        ExperimentConfig(n_nodes=20, load_factor=1, total_time=3600.0, seed=13),
        workflows=[(0, wa), (0, wb)],
    )
    system.phase1.run_for_home(0, only_wids={"a"})
    assert system.executions["a"].dispatched
    assert not system.executions["b"].dispatched


def test_cycle_counter_advances():
    system = _system()
    before = system.phase1.cycles_run
    system.phase1.run_cycle()
    assert system.phase1.cycles_run == before + 1
