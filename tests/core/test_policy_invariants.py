"""Randomized invariant tests for the phase-1/phase-2 policies.

Stdlib-``random`` fuzzing over every registry bundle: whatever the DAG
shape, the RSS contents or the stamp values, a policy must

* only target nodes that exist in its resource view,
* charge the view exactly once per pick (Algorithm 1 line 15),
* return an element of ``runnable`` from phase-2 ``select``, and
* produce the same decision sequence for the same seed (determinism is
  the foundation the golden-fingerprint harness and the campaign cache
  both rest on).
"""

from __future__ import annotations

import random

import pytest

from repro.core.estimates import ResourceView
from repro.core.heuristics.base import SchedulingContext
from repro.core.heuristics.registry import algorithm_names, get_bundle
from repro.grid.state import TaskDispatch, WorkflowExecution
from repro.workflow.dag import Workflow
from repro.workflow.task import Task

PHASE1_BUNDLES = [n for n in algorithm_names() if not get_bundle(n).full_ahead]
ALL_BUNDLES = algorithm_names()


class FlatBandwidth:
    """Uniform bandwidth, tiny latency (vector-only provider)."""

    def __init__(self, bw: float = 10.0):
        self.bw = bw

    def bw_between(self, src, targets):
        import numpy as np

        return np.full(len(targets), self.bw)

    def latency_between(self, src, targets):
        import numpy as np

        return np.full(len(targets), 0.01)


def _random_workflow(rnd: random.Random, wid: str) -> Workflow:
    """A random layered DAG built with stdlib randomness only."""
    n = rnd.randint(2, 12)
    tasks = [
        Task(tid=i, load=rnd.uniform(100.0, 5000.0), image_size=rnd.uniform(1.0, 50.0))
        for i in range(n)
    ]
    edges: dict[tuple[int, int], float] = {}
    for v in range(1, n):
        # Every task gets at least one precedent (connected DAG, ids are a
        # valid topological order by construction).
        n_prec = rnd.randint(1, min(3, v))
        for u in rnd.sample(range(v), n_prec):
            edges[(u, v)] = rnd.choice([0.0, rnd.uniform(1.0, 500.0)])
    return Workflow(wid, tasks, edges)


class CountingView(ResourceView):
    """ResourceView that records every Algorithm-1-line-15 charge."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.calls: list[tuple[int, float]] = []

    def add_load(self, node_id, load, on_update=None):
        self.calls.append((int(node_id), float(load)))
        return super().add_load(node_id, load, on_update)


def _make_context(rnd: random.Random, n_workflows: int = 3) -> SchedulingContext:
    home = 0
    ids = [home] + sorted(rnd.sample(range(1, 40), rnd.randint(2, 10)))
    view = CountingView(
        ids=ids,
        capacities=[rnd.choice([1.0, 2.0, 4.0, 8.0, 16.0]) for _ in ids],
        loads=[rnd.uniform(0.0, 20000.0) for _ in ids],
        bandwidth=FlatBandwidth(),
        home_id=home,
    )
    workflows = []
    for w in range(n_workflows):
        wx = WorkflowExecution(
            _random_workflow(rnd, f"wf{w}"), home, submit_time=0.0, eft=1.0
        )
        # Randomly advance the workflow: finish a prefix of tasks on random
        # nodes so schedule points sit mid-DAG with real input locations.
        n_done = rnd.randint(0, len(wx.wf.tasks) - 1)
        for tid in wx.wf.topo_order[:n_done]:
            wx.mark_finished(tid, rnd.choice(ids), float(rnd.randint(0, 100)))
        if wx.schedule_points:
            workflows.append(wx)
    ctx = SchedulingContext(
        home_id=home,
        now=1000.0,
        workflows=workflows,
        view=view,
        avg_capacity=6.2,
        avg_bandwidth=5.05,
    )
    return ctx


@pytest.mark.parametrize("name", PHASE1_BUNDLES)
@pytest.mark.parametrize("seed", [1, 7, 1234])
def test_phase1_invariants(name, seed):
    rnd = random.Random(seed)
    ctx = _make_context(rnd)
    if not ctx.workflows:
        pytest.skip("random draw produced no schedulable workflow")
    n_points = sum(len(wx.schedule_points) for wx in ctx.workflows)
    calls = ctx.view.calls
    decisions = get_bundle(name).phase1.plan(ctx)

    # Every schedule point is dispatched exactly once, to a view node.
    assert len(decisions) == n_points
    seen = set()
    valid_ids = set(int(i) for i in ctx.view.ids)
    for d in decisions:
        assert d.target in valid_ids
        key = (d.wx.wf.wid, d.tid)
        assert key not in seen, f"{key} dispatched twice"
        assert d.tid in d.wx.schedule_points
        seen.add(key)

    # Algorithm 1 line 15: the view is charged exactly once per pick, with
    # the task's own load against the chosen target.
    assert len(calls) == len(decisions)
    expected = [(d.target, d.wx.wf.tasks[d.tid].load) for d in decisions]
    assert calls == expected


@pytest.mark.parametrize("name", PHASE1_BUNDLES)
def test_phase1_decision_order_is_deterministic(name):
    def run(seed):
        rnd = random.Random(seed)
        ctx = _make_context(rnd)
        if not ctx.workflows:
            pytest.skip("random draw produced no schedulable workflow")
        decisions = get_bundle(name).phase1.plan(ctx)
        return [(d.wx.wf.wid, d.tid, d.target, d.estimated_ft) for d in decisions]

    assert run(99) == run(99)


@pytest.mark.parametrize("name", ALL_BUNDLES)
@pytest.mark.parametrize("seed", [3, 77])
def test_phase2_select_returns_a_runnable_element(name, seed):
    rnd = random.Random(seed)
    phase2 = get_bundle(name).phase2
    for trial in range(20):
        runnable = [
            TaskDispatch(
                wid=f"w{rnd.randint(0, 3)}",
                tid=t,
                load=rnd.uniform(10.0, 5000.0),
                image_size=rnd.uniform(0.0, 100.0),
                home_id=0,
                target_id=1,
                dispatch_time=float(rnd.randint(0, 5000)),
                seq=t,
                ms_stamp=rnd.uniform(0.0, 1e4),
                rpm_stamp=rnd.uniform(0.0, 1e4),
                sufferage_stamp=rnd.uniform(0.0, 1e3),
                deadline_stamp=rnd.uniform(0.0, 1e4),
                et_stamp=rnd.uniform(0.0, 1e3),
            )
            for t in range(rnd.randint(1, 8))
        ]
        pick = phase2.select(runnable, now=float(rnd.randint(0, 10000)))
        assert pick in runnable
        # Deterministic: same runnable list, same answer.
        assert phase2.select(list(runnable), now=0.0) is phase2.select(
            list(runnable), now=0.0
        )
