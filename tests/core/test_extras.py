"""Tests for the extra baseline policies (OLB, random)."""

from __future__ import annotations

import numpy as np

from repro.core.estimates import ResourceView
from repro.core.heuristics.base import SchedulingContext
from repro.core.heuristics.extras import OlbPhase1, RandomPhase1
from repro.core.heuristics.registry import get_bundle
from repro.experiments.config import ExperimentConfig
from repro.grid.state import WorkflowExecution
from repro.grid.system import P2PGridSystem
from repro.workflow.generator import chain_workflow


class FlatBandwidth:
    def bw_between(self, src, targets):
        return np.full(len(targets), 10.0)

    def latency_between(self, src, targets):
        return np.zeros(len(targets))


def _ctx(loads=(0.0, 500.0, 500.0)):
    view = ResourceView([0, 1, 2], [2.0, 2.0, 2.0], list(loads),
                        FlatBandwidth(), home_id=0)
    wx = WorkflowExecution(chain_workflow("c", 1, load=100.0, data=0.0), 0, 0.0, 1.0)
    return SchedulingContext(home_id=0, now=0.0, workflows=[wx], view=view,
                             avg_capacity=2.0, avg_bandwidth=5.0)


def test_olb_picks_least_loaded():
    decisions = OlbPhase1().plan(_ctx(loads=(900.0, 100.0, 500.0)))
    assert decisions[0].target == 1


def test_olb_ignores_capacity_by_design():
    view = ResourceView([0, 1], [16.0, 1.0], [10.0, 0.0], FlatBandwidth(), 0)
    wx = WorkflowExecution(chain_workflow("c", 1, load=100.0, data=0.0), 0, 0.0, 1.0)
    ctx = SchedulingContext(0, 0.0, [wx], view, 2.0, 5.0)
    # OLB picks node 1 (zero queue) even though node 0 is 16x faster.
    assert OlbPhase1().plan(ctx)[0].target == 1


def test_random_is_seed_deterministic():
    a = RandomPhase1(seed=3).plan(_ctx())
    b = RandomPhase1(seed=3).plan(_ctx())
    assert a[0].target == b[0].target


def test_registered_bundles_run_end_to_end():
    for name in ("olb", "random"):
        cfg = ExperimentConfig(algorithm=name, n_nodes=20, load_factor=1,
                               total_time=6 * 3600.0, seed=9, task_range=(2, 6))
        result = P2PGridSystem(cfg).run()
        assert result.n_done > 0, name


def test_serious_heuristics_beat_the_floors():
    """Sanity floor: DSMF outperforms both extra baselines."""
    results = {}
    for name in ("dsmf", "olb", "random"):
        cfg = ExperimentConfig(algorithm=name, n_nodes=30, load_factor=2,
                               total_time=12 * 3600.0, seed=9, task_range=(2, 12))
        results[name] = P2PGridSystem(cfg).run()
    assert results["dsmf"].act < results["random"].act
    assert results["dsmf"].ae > results["random"].ae
    assert results["dsmf"].act < results["olb"].act


def test_bundle_registry_exposes_extras():
    assert get_bundle("olb").phase1.name == "olb"
    assert get_bundle("random").phase1.name == "random"
