#!/usr/bin/env python
"""Run the paper-scale (Table I exact) base experiment for one algorithm.

1000 nodes, 3000 workflows, 36 simulated hours — minutes of wall time per
run.  Useful to spot-check that the medium-profile numbers archived in
EXPERIMENTS.md extrapolate.  Multiple seeds fan out across worker
processes, and completed runs land in the campaign cache, so re-invoking
with an overlapping seed list only pays for the new seeds.

Usage::

    python scripts/run_paper_scale.py --algorithm dsmf --seeds 1 2 3 --jobs 3
"""

from __future__ import annotations

import argparse
import os

from repro.experiments.campaign import CampaignRunner, sweep_specs
from repro.experiments.config import ExperimentConfig


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--algorithm", default="dsmf")
    ap.add_argument("--seeds", type=int, nargs="+", default=[1])
    ap.add_argument("--dynamic-factor", type=float, default=0.0)
    ap.add_argument("--jobs", type=int, default=min(4, os.cpu_count() or 1))
    ap.add_argument("--cache-dir", default=None)
    ap.add_argument("--no-cache", action="store_true")
    args = ap.parse_args()

    # All other defaults == Table I / Fig. 4-6 setting.
    base = ExperimentConfig(dynamic_factor=args.dynamic_factor)
    specs = sweep_specs([args.algorithm], args.seeds, base=base)
    print(f"paper-scale campaign: {base.n_nodes} nodes, "
          f"{base.load_factor * base.n_nodes} workflows, "
          f"{base.total_time / 3600:.0f} h, algorithm={args.algorithm}, "
          f"seeds={args.seeds}")

    runner = CampaignRunner(
        jobs=min(args.jobs, len(specs)),
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
    )
    campaign = runner.run(specs)
    for run in campaign:
        src = " (cache)" if run.from_cache else ""
        print(f"{run.label}{src}: {run.result.summary()}")

    # Hourly trajectory of the first seed (4-hour stride, like the figures).
    first = campaign.runs[0].result
    print(f"{'hour':>5} {'finished':>9} {'ACT':>9} {'AE':>6}")
    for s in first.samples[::4]:
        print(f"{s.time / 3600:>5.0f} {s.throughput:>9} {s.act:>9.0f} {s.ae:>6.3f}")


if __name__ == "__main__":
    main()
