#!/usr/bin/env python
"""Run the paper-scale (Table I exact) base experiment for one algorithm.

1000 nodes, 3000 workflows, 36 simulated hours — minutes of wall time per
run.  Useful to spot-check that the medium-profile numbers archived in
EXPERIMENTS.md extrapolate.

Usage::

    python scripts/run_paper_scale.py --algorithm dsmf --seed 1
"""

from __future__ import annotations

import argparse

from repro.experiments.config import ExperimentConfig
from repro.grid.system import P2PGridSystem


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--algorithm", default="dsmf")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--dynamic-factor", type=float, default=0.0)
    args = ap.parse_args()

    cfg = ExperimentConfig(
        algorithm=args.algorithm,
        seed=args.seed,
        dynamic_factor=args.dynamic_factor,
    )  # all other defaults == Table I / Fig. 4-6 setting
    print(f"paper-scale run: {cfg.n_nodes} nodes, "
          f"{cfg.load_factor * cfg.n_nodes} workflows, "
          f"{cfg.total_time / 3600:.0f} h, algorithm={cfg.algorithm}")
    result = P2PGridSystem(cfg).run()
    print(result.summary())
    print(f"{'hour':>5} {'finished':>9} {'ACT':>9} {'AE':>6}")
    for s in result.samples[::4]:
        print(f"{s.time / 3600:>5.0f} {s.throughput:>9} {s.act:>9.0f} {s.ae:>6.3f}")


if __name__ == "__main__":
    main()
