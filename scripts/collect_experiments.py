#!/usr/bin/env python
"""Collect the data behind EXPERIMENTS.md (paper-vs-measured record).

Runs every experiment of the paper's §IV at the requested profile, in
parallel across processes (each simulation is single-threaded), and dumps
one JSON file per figure into ``results/``.  ``render_experiments.py``
turns those into the EXPERIMENTS.md tables.

Usage::

    python scripts/collect_experiments.py --profile medium --jobs 20
"""

from __future__ import annotations

import argparse
import json
import time
from multiprocessing import Pool
from pathlib import Path

from repro.core.heuristics.registry import PAPER_ALGORITHMS
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import CCR_CASES, base_config
from repro.grid.system import P2PGridSystem

RESULTS = Path(__file__).resolve().parent.parent / "results"


def run_slim(item: tuple[str, dict]) -> dict:
    """Run one config (given as overrides on the base setting) and return a
    slim, JSON-able digest."""
    label, spec = item
    profile = spec.pop("profile")
    seed = spec.pop("seed")
    scale_free = spec.pop("scale_free", False)
    if scale_free:
        cfg = ExperimentConfig(seed=seed, **spec)
    else:
        cfg = base_config(profile, seed=seed, **spec)
    t0 = time.perf_counter()
    r = P2PGridSystem(cfg).run()
    times, tp = r.series("throughput")
    _, act = r.series("act")
    _, ae = r.series("ae")
    return {
        "label": label,
        "algorithm": cfg.algorithm,
        "n_nodes": cfg.n_nodes,
        "n_workflows": r.n_workflows,
        "n_done": r.n_done,
        "n_failed": r.n_failed,
        "act": r.act,
        "ae": r.ae,
        "rss_mean": r.rss_mean,
        "events": r.events_executed,
        "wall": time.perf_counter() - t0,
        "series": {"hours": times, "throughput": tp, "act": act, "ae": ae},
    }


def build_jobs(profile: str, seed: int) -> dict[str, list[tuple[str, dict]]]:
    jobs: dict[str, list[tuple[str, dict]]] = {}

    # Fig. 4/5/6 — static suite.
    jobs["fig456"] = [
        (alg, {"profile": profile, "seed": seed, "algorithm": alg})
        for alg in PAPER_ALGORITHMS
    ]
    # Fig. 7/8 — load factor sweep.
    jobs["fig78"] = [
        (f"{alg}@lf{lf}", {"profile": profile, "seed": seed, "algorithm": alg,
                           "load_factor": lf})
        for lf in (1, 2, 3, 4, 5, 6, 7, 8)
        for alg in PAPER_ALGORITHMS
    ]
    # Fig. 9/10 — CCR sweep.
    jobs["fig910"] = [
        (f"{alg}@{name}", {"profile": profile, "seed": seed, "algorithm": alg,
                           "load_range": loads, "data_range": data})
        for (name, loads, data) in CCR_CASES
        for alg in PAPER_ALGORITHMS
    ]
    # Fig. 11 — scalability (absolute scales, paper x-axis subset).
    horizon = base_config(profile, seed=seed).total_time
    scales = (100, 200, 400, 600, 800, 1000, 1400, 2000)
    jobs["fig11"] = [
        (f"dsmf@n{s}", {"profile": profile, "seed": seed, "algorithm": "dsmf",
                        "n_nodes": s, "total_time": horizon, "scale_free": True})
        for s in scales
    ]
    # Fig. 12/13/14 — churn.
    jobs["fig121314"] = [
        (f"df{df:g}", {"profile": profile, "seed": seed, "algorithm": "dsmf",
                       "dynamic_factor": df})
        for df in (0.0, 0.1, 0.2, 0.3, 0.4)
    ]
    # Table II — FCFS second-phase ablation (plus DSMF's own phase 2).
    jobs["table2"] = [
        (name, {"profile": profile, "seed": seed, "algorithm": name})
        for b in ("min-min", "max-min", "sufferage", "dheft", "dsmf")
        for name in (b, f"{b}-fcfs")
    ]
    return jobs


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--profile", default="medium")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--jobs", type=int, default=20)
    ap.add_argument("--only", nargs="*", default=None,
                    help="subset of figure groups to run")
    args = ap.parse_args()

    RESULTS.mkdir(exist_ok=True)
    groups = build_jobs(args.profile, args.seed)
    if args.only:
        groups = {k: v for k, v in groups.items() if k in args.only}

    flat: list[tuple[str, tuple[str, dict]]] = [
        (gname, item) for gname, items in groups.items() for item in items
    ]
    print(f"{len(flat)} runs across {len(groups)} figure groups "
          f"({args.jobs} workers, profile={args.profile})")
    t0 = time.perf_counter()
    with Pool(args.jobs) as pool:
        digests = pool.map(run_slim, [item for _, item in flat], chunksize=1)

    by_group: dict[str, list[dict]] = {}
    for (gname, _), digest in zip(flat, digests):
        by_group.setdefault(gname, []).append(digest)
        print(f"  [{gname}/{digest['label']}] done={digest['n_done']}/"
              f"{digest['n_workflows']} ACT={digest['act']:.0f} "
              f"AE={digest['ae']:.3f} ({digest['wall']:.0f}s)")

    meta = {"profile": args.profile, "seed": args.seed,
            "wall_total": time.perf_counter() - t0}
    for gname, items in by_group.items():
        out = RESULTS / f"{gname}_{args.profile}.json"
        out.write_text(json.dumps({"meta": meta, "runs": items}, indent=1))
        print(f"wrote {out}")
    print(f"total wall: {meta['wall_total']:.0f}s")


if __name__ == "__main__":
    main()
