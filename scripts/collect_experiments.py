#!/usr/bin/env python
"""Collect the data behind EXPERIMENTS.md (paper-vs-measured record).

Runs every experiment of the paper's §IV at the requested profile through
the campaign runner — fanned out across worker processes, with completed
runs cached on disk so re-collections (e.g. after fixing one figure's
rendering) only pay for what actually changed — and dumps one JSON file
per figure into ``results/``.  ``render_experiments.py`` turns those into
the EXPERIMENTS.md tables.

Usage::

    python scripts/collect_experiments.py --profile medium --jobs 20
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

from repro.core.heuristics.registry import PAPER_ALGORITHMS
from repro.experiments.campaign import CampaignRun, CampaignRunner, RunSpec
from repro.experiments.config import ExperimentConfig
from repro.experiments.figures import CCR_CASES, base_config

RESULTS = Path(__file__).resolve().parent.parent / "results"


def digest(run: CampaignRun) -> dict:
    """Slim, JSON-able record of one campaign run."""
    r = run.result
    times, tp = r.series("throughput")
    _, act = r.series("act")
    _, ae = r.series("ae")
    return {
        "label": run.label,
        "algorithm": r.algorithm,
        "n_nodes": r.n_nodes,
        "n_workflows": r.n_workflows,
        "n_done": r.n_done,
        "n_failed": r.n_failed,
        "act": float(r.act),
        "ae": float(r.ae),
        "rss_mean": float(r.rss_mean),
        "events": r.events_executed,
        "wall": run.wall_seconds,
        "cached": run.from_cache,
        "series": {"hours": times, "throughput": tp, "act": act, "ae": ae},
    }


def build_specs(profile: str, seed: int) -> dict[str, list[RunSpec]]:
    """One fully-resolved config per experiment of §IV, grouped by figure."""
    groups: dict[str, list[RunSpec]] = {}

    # Fig. 4/5/6 — static suite.
    groups["fig456"] = [
        RunSpec(alg, base_config(profile, seed=seed, algorithm=alg))
        for alg in PAPER_ALGORITHMS
    ]
    # Fig. 7/8 — load factor sweep.
    groups["fig78"] = [
        RunSpec(
            f"{alg}@lf{lf}",
            base_config(profile, seed=seed, algorithm=alg, load_factor=lf),
        )
        for lf in (1, 2, 3, 4, 5, 6, 7, 8)
        for alg in PAPER_ALGORITHMS
    ]
    # Fig. 9/10 — CCR sweep.
    groups["fig910"] = [
        RunSpec(
            f"{alg}@{name}",
            base_config(
                profile, seed=seed, algorithm=alg, load_range=loads, data_range=data
            ),
        )
        for (name, loads, data) in CCR_CASES
        for alg in PAPER_ALGORITHMS
    ]
    # Fig. 11 — scalability (absolute scales, paper x-axis subset).
    horizon = base_config(profile, seed=seed).total_time
    groups["fig11"] = [
        RunSpec(
            f"dsmf@n{s}",
            ExperimentConfig(
                algorithm="dsmf", seed=seed, n_nodes=s, total_time=horizon
            ),
        )
        for s in (100, 200, 400, 600, 800, 1000, 1400, 2000)
    ]
    # Fig. 12/13/14 — churn.
    groups["fig121314"] = [
        RunSpec(
            f"df{df:g}",
            base_config(profile, seed=seed, algorithm="dsmf", dynamic_factor=df),
        )
        for df in (0.0, 0.1, 0.2, 0.3, 0.4)
    ]
    # Table II — FCFS second-phase ablation (plus DSMF's own phase 2).
    groups["table2"] = [
        RunSpec(name, base_config(profile, seed=seed, algorithm=name))
        for b in ("min-min", "max-min", "sufferage", "dheft", "dsmf")
        for name in (b, f"{b}-fcfs")
    ]
    return groups


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--profile", default="medium")
    ap.add_argument("--seed", type=int, default=1)
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 1)
    ap.add_argument("--only", nargs="*", default=None,
                    help="subset of figure groups to run")
    ap.add_argument("--cache-dir", default=None,
                    help="campaign cache location (default .repro_cache/campaign)")
    ap.add_argument("--no-cache", action="store_true",
                    help="force fresh runs; skip the result cache")
    args = ap.parse_args()

    RESULTS.mkdir(exist_ok=True)
    groups = build_specs(args.profile, args.seed)
    if args.only:
        groups = {k: v for k, v in groups.items() if k in args.only}

    flat = [(gname, spec) for gname, specs in groups.items() for spec in specs]
    print(f"{len(flat)} runs across {len(groups)} figure groups "
          f"({args.jobs} workers, profile={args.profile})")

    def progress(run: CampaignRun) -> None:
        # Labels repeat across figure groups (e.g. fig456's and table2's
        # "dsmf" — identical configs the runner dedupes), so progress lines
        # carry the label only; the per-group JSON keeps exact attribution.
        d = run.result
        src = "cache" if run.from_cache else f"{run.wall_seconds:.0f}s"
        print(f"  [{run.label}] done={d.n_done}/"
              f"{d.n_workflows} ACT={d.act:.0f} AE={d.ae:.3f} ({src})")

    t0 = time.perf_counter()
    runner = CampaignRunner(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=progress,
    )
    campaign = runner.run([spec for _, spec in flat])

    by_group: dict[str, list[dict]] = {}
    for (gname, _), run in zip(flat, campaign.runs):
        by_group.setdefault(gname, []).append(digest(run))

    meta = {"profile": args.profile, "seed": args.seed,
            "wall_total": time.perf_counter() - t0,
            "n_cached": campaign.n_cached,
            "fingerprint": campaign.fingerprint()}
    for gname, items in by_group.items():
        out = RESULTS / f"{gname}_{args.profile}.json"
        out.write_text(json.dumps({"meta": meta, "runs": items}, indent=1))
        print(f"wrote {out}")
    print(f"total wall: {meta['wall_total']:.0f}s "
          f"({campaign.n_cached}/{len(campaign)} from cache)")


if __name__ == "__main__":
    main()
