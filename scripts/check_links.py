#!/usr/bin/env python
"""Fail on dead relative links in the repo's markdown docs.

Scans README.md, everything under docs/, and data/README.md for inline
markdown links/images and verifies every *relative* target resolves to a
real file or directory. External URLs (http/https/mailto), pure in-page
anchors (``#section``), and targets that climb out of the repo root
(GitHub-web-relative paths like the CI badge's ``../../actions/...``)
are skipped; a ``path#fragment`` target is checked for the path part
only.

CI runs this next to the docs build so a renamed page or a moved data
file cannot leave a dangling reference behind::

    python scripts/check_links.py            # exit 1 + listing on dead links
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: Inline links and images: [text](target) / ![alt](target).  Reference
#: definitions and autolinks are rare enough here not to matter.
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")

_SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files() -> list[Path]:
    files = [ROOT / "README.md", ROOT / "data" / "README.md"]
    files.extend(sorted((ROOT / "docs").glob("**/*.md")))
    return [f for f in files if f.exists()]


def dead_links(path: Path) -> list[tuple[int, str]]:
    """``(line_number, target)`` for every unresolvable relative link."""
    dead = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_SKIP_SCHEMES) or target.startswith("#"):
                continue
            resolved = target.split("#", 1)[0]
            if not resolved:
                continue
            candidate = (path.parent / resolved).resolve()
            if not candidate.is_relative_to(ROOT):
                continue  # forge-relative (e.g. the CI badge), not a file
            if not candidate.exists():
                dead.append((lineno, target))
    return dead


def main() -> int:
    files = markdown_files()
    broken = 0
    for path in files:
        for lineno, target in dead_links(path):
            print(f"{path.relative_to(ROOT)}:{lineno}: dead link -> {target}")
            broken += 1
    checked = ", ".join(str(f.relative_to(ROOT)) for f in files)
    if broken:
        print(f"\n{broken} dead link(s) across {len(files)} files ({checked})")
        return 1
    print(f"all relative links resolve across {len(files)} files ({checked})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
