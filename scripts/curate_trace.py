#!/usr/bin/env python
"""Curate archive logs (GWF/SWF/FTA) into committed repro trace slices.

Two modes, both deterministic (no RNG — identical input bytes produce
identical output bytes, so curated slices are reviewable diffs):

``workload``
    Parse a GWF or SWF job log (:mod:`repro.workload.archives`), keep the
    first ``--max-jobs`` completed jobs inside ``--horizon``, normalize
    submit times to the slice's own epoch, map each rigid parallel job to
    a workflow (single task for 1-processor jobs, fork-join of width
    ``min(n_procs, --max-width)`` otherwise; per-task load =
    runtime seconds x RUNTIME_TO_MI, exactly the DAG importers' rule),
    assign homes as ``user_id % --homes`` (anonymizing users into home
    slots), and write a submission trace replayable via the
    ``trace`` workload source.

``availability``
    Parse an FTA-style interval log, convert intervals to join/leave
    events (unavailability intervals directly; availability intervals via
    the gaps between a node's consecutive sessions), remap archive node
    ids into the volatile range of a ``--nodes``-node grid
    (``permanent_fraction`` 0.5: volatile ids are n/2..n-1), and write an
    availability trace replayable via ``churn_model="trace"``.

Examples::

    PYTHONPATH=src python scripts/curate_trace.py workload \
        data/raw/gwa_sample.gwf data/traces/gwa_sample.trace.json \
        --max-jobs 60 --horizon 28800 --homes 16
    PYTHONPATH=src python scripts/curate_trace.py availability \
        data/raw/fta_sample.fta data/traces/fta_sample.avail.json \
        --nodes 40 --horizon 28800

The format/normalization contract is documented in docs/trace-formats.md.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.availability.trace import AvailabilityEvent, save_availability_trace  # noqa: E402
from repro.workflow.dag import Workflow  # noqa: E402
from repro.workflow.generator import fork_join_workflow  # noqa: E402
from repro.workflow.task import Task  # noqa: E402
from repro.workload.archives import (  # noqa: E402
    ArchiveError,
    parse_fta,
    parse_gwf,
    parse_swf,
    sniff_format,
)
from repro.workload.build import WorkflowSubmission  # noqa: E402
from repro.workload.importers import (  # noqa: E402
    DEFAULT_IMAGE_MB,
    RUNTIME_TO_MI,
    save_trace,
)

#: Floor on the per-task runtime fed into the load mapping: the archives
#: contain real zero-runtime jobs (instantly failed/trivial submissions)
#: and a 0-MI task would vanish from the schedule instead of exercising
#: the dispatch path the job actually took.
MIN_RUNTIME_SECONDS = 1.0

#: Dependent-data megabits per fork-join edge (the archives describe rigid
#: jobs, not data flows — Table I's lower band keeps the slices CCR-light).
EDGE_DATA_MB = 50.0


def job_to_workflow(job, index: int, home: int, max_width: int) -> Workflow:
    """Map one rigid parallel job onto a repro workflow (deterministic)."""
    load = max(job.runtime, MIN_RUNTIME_SECONDS) * RUNTIME_TO_MI
    wid = f"job{index:05d}u{job.user_id}n{home}"
    if job.n_procs <= 1:
        return Workflow(
            wid, [Task(tid=0, load=load, image_size=DEFAULT_IMAGE_MB, name=job.job_id)], {}
        )
    width = min(job.n_procs, max_width)
    return fork_join_workflow(
        wid, width, load=load, data=EDGE_DATA_MB, image=DEFAULT_IMAGE_MB
    )


def curate_workload(args) -> int:
    fmt = args.format or sniff_format(args.input)
    if fmt == "gwf":
        jobs = parse_gwf(args.input)
    elif fmt == "swf":
        jobs = parse_swf(args.input)
    else:
        raise SystemExit(
            f"cannot determine the workload format of {args.input} "
            "(pass --format gwf|swf)"
        )
    submissions: list[WorkflowSubmission] = []
    epoch = None
    kept = dropped = 0
    for job in jobs:
        if epoch is None:
            epoch = job.submit_time
        submit = (job.submit_time - epoch) * args.time_scale
        if not job.completed and not args.keep_failed:
            dropped += 1
            continue
        if args.horizon and submit > args.horizon:
            break
        home = job.user_id % args.homes
        submissions.append(
            WorkflowSubmission(
                submit_time=submit,
                home_id=home,
                workflow=job_to_workflow(job, kept, home, args.max_width),
            )
        )
        kept += 1
        if args.max_jobs and kept >= args.max_jobs:
            break
    if not submissions:
        raise SystemExit(
            f"{args.input}: no usable jobs (comment-only file, or every "
            "record filtered out) — nothing to curate"
        )
    out = save_trace(args.output, submissions)
    last = max(s.submit_time for s in submissions)
    print(
        f"wrote {out}: {kept} jobs ({dropped} non-completed dropped), "
        f"{args.homes} home slots, submit window 0-{last:.0f}s"
    )
    return 0


def curate_availability(args) -> int:
    n_volatile = args.nodes - int(round(args.permanent_fraction * args.nodes))
    if n_volatile < 1:
        raise SystemExit("no volatile nodes at this --nodes/--permanent-fraction")
    first_volatile = args.nodes - n_volatile
    sessions: dict[int, list] = {}
    downtimes: list[tuple[float, float, int]] = []
    for iv in parse_fta(args.input):
        node = first_volatile + iv.node % n_volatile
        if iv.available:
            sessions.setdefault(node, []).append(iv)
        else:
            downtimes.append((iv.start, iv.end, node))
    # Availability sessions -> the gaps between them are downtime.
    for node, ivs in sessions.items():
        ivs.sort(key=lambda iv: iv.start)
        for prev, nxt in zip(ivs, ivs[1:]):
            if nxt.start > prev.end:
                downtimes.append((prev.end, nxt.start, node))
    events: list[AvailabilityEvent] = []
    for start, end, node in downtimes:
        if args.horizon and start > args.horizon:
            continue
        events.append(AvailabilityEvent(time=start, node=node, kind="leave"))
        if not args.horizon or end <= args.horizon:
            events.append(AvailabilityEvent(time=end, node=node, kind="join"))
    if not events:
        raise SystemExit(
            f"{args.input}: no downtime intervals inside the horizon — "
            "nothing to curate"
        )
    events.sort(key=lambda e: (e.time, e.node, e.kind))
    out = save_availability_trace(events, args.output)
    print(
        f"wrote {out}: {len(events)} events over "
        f"{len({e.node for e in events})} volatile nodes "
        f"(grid {args.nodes}, volatile {first_volatile}-{args.nodes - 1})"
    )
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = ap.add_subparsers(dest="mode", required=True)

    w = sub.add_parser("workload", help="GWF/SWF job log -> submission trace")
    w.add_argument("input")
    w.add_argument("output")
    w.add_argument("--format", choices=["gwf", "swf"], default=None,
                   help="override format sniffing")
    w.add_argument("--max-jobs", type=int, default=100,
                   help="keep at most this many completed jobs (0 = all)")
    w.add_argument("--horizon", type=float, default=0.0,
                   help="drop submissions after this many seconds (0 = all)")
    w.add_argument("--homes", type=int, default=16,
                   help="home slots users are folded into (ids 0..homes-1)")
    w.add_argument("--max-width", type=int, default=8,
                   help="fork-join width cap for wide parallel jobs")
    w.add_argument("--time-scale", type=float, default=1.0,
                   help="multiply normalized submit times (compress long logs)")
    w.add_argument("--keep-failed", action="store_true",
                   help="also keep non-completed jobs (status != 1)")

    a = sub.add_parser("availability", help="FTA interval log -> availability trace")
    a.add_argument("input")
    a.add_argument("output")
    a.add_argument("--nodes", type=int, default=40,
                   help="target grid size the node ids are remapped for")
    a.add_argument("--permanent-fraction", type=float, default=0.5,
                   help="must match the preset's config (volatile ids start "
                        "at round(fraction*nodes))")
    a.add_argument("--horizon", type=float, default=0.0,
                   help="drop events after this many seconds (0 = all)")

    args = ap.parse_args()
    Path(args.output).parent.mkdir(parents=True, exist_ok=True)
    try:
        if args.mode == "workload":
            return curate_workload(args)
        return curate_availability(args)
    except ArchiveError as exc:
        raise SystemExit(f"archive error: {exc}")


if __name__ == "__main__":
    raise SystemExit(main())
