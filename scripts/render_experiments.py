#!/usr/bin/env python
"""Render EXPERIMENTS.md from the JSON produced by collect_experiments.py.

Usage::

    python scripts/render_experiments.py --profile medium > EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
RESULTS = ROOT / "results"

ORDER = ["dheft", "heft", "max-min", "min-min", "dsdf", "sufferage", "dsmf", "smf"]


def load(group: str, profile: str) -> dict:
    path = RESULTS / f"{group}_{profile}.json"
    return json.loads(path.read_text())


def by_label(runs: list[dict]) -> dict[str, dict]:
    return {r["label"]: r for r in runs}


def table(headers: list[str], rows: list[list[object]]) -> str:
    out = ["| " + " | ".join(headers) + " |",
           "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        out.append("| " + " | ".join(str(c) for c in row) + " |")
    return "\n".join(out)


def fmt(x: float, nd=0) -> str:
    return f"{x:,.{nd}f}"


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--profile", default="medium")
    args = ap.parse_args()
    p = args.profile

    g456 = by_label(load("fig456", p)["runs"])
    g78 = by_label(load("fig78", p)["runs"])
    g910 = by_label(load("fig910", p)["runs"])
    g11 = by_label(load("fig11", p)["runs"])
    g12 = by_label(load("fig121314", p)["runs"])
    gt2 = by_label(load("table2", p)["runs"])
    meta = load("fig456", p)["meta"]
    n_nodes = g456["dsmf"]["n_nodes"]
    n_wf = g456["dsmf"]["n_workflows"]

    L: list[str] = []
    A = L.append

    A("# EXPERIMENTS — paper vs. measured")
    A("")
    A("Reproduction record for every table and figure of §IV of *Dual-Phase")
    A("Just-in-Time Workflow Scheduling in P2P Grid Systems* (Di & Wang,")
    A("ICPP 2010).  Regenerate any entry with `python -m repro figure <n>` or")
    A("`python scripts/collect_experiments.py`.")
    A("")
    A(f"**Measured setting:** `{p}` profile — {n_nodes} nodes, "
      f"{n_wf} workflows (load factor 3), 36 simulated hours, seed "
      f"{load('fig456', p)['runs'][0].get('seed', 1) if False else 1}; all "
      "Table I per-task parameters (loads 100–10000 MI, data 10–1000 Mb for "
      "the base setting, capacities {1,2,4,8,16} MIPS, bandwidth 0.1–10 Mb/s, "
      "15-min scheduling interval, 5-min gossip cycle, TTL 4).  The paper "
      "runs 1000 nodes; absolute numbers therefore differ — **shape claims** "
      "(who wins, rough factors, trends) are what we compare.  Total "
      f"collection wall time: {meta['wall_total']:.0f}s on 24 cores.")
    A("")
    A("Legend: ACT = average completion time, Eq. (2); AE = average")
    A("efficiency, Eq. (3); tp@h = workflows finished by hour h.")
    A("")
    A("**Paper-scale spot check** (`python scripts/run_paper_scale.py`): one "
      "full Table-I run — 1000 nodes, 3000 workflows, 36 h — of DSMF "
      "finishes 3000/3000 workflows with **ACT = 29,168 s** and AE = 0.297 "
      "(104 s wall, 188,918 events).  The paper's Fig. 5 shows DSMF "
      "converging just below min-min's quoted 31,977 s — our absolute value "
      "lands in the same band, and the throughput trajectory (~2,900 "
      "finished around hour 17–21, all by hour 25) matches Fig. 4's DSMF "
      "curve.")
    A("")

    # ------------------------------------------------------------- Table I
    A("## Table I — experimental setting")
    A("")
    A("Implemented verbatim as `ExperimentConfig` defaults "
      "(`python -m repro table 1` prints the live values); the dependent-"
      "data range 100–10000 Mb is the envelope used by the CCR sweep, while "
      "Fig. 4–6 use 10–1000 Mb (CCR ≈ 0.16), matching §IV.B.  **Status: "
      "reproduced by construction.**")
    A("")

    # ------------------------------------------------------------- Fig 3
    A("## Fig. 3 — worked two-workflow example")
    A("")
    A("| quantity | paper | measured |")
    A("|---|---|---|")
    A("| RPM(A2), RPM(A3), RPM(B2), RPM(B3) | 80, 115, 65, 60 | 80, 115, 65, 60 |")
    A("| ms(A), ms(B) | 115, 65 | 115, 65 |")
    A("| DSMF order | B2, B3, A3, A2 | B2, B3, A3, A2 |")
    A("| HEFT order | A3, A2, B2, B3 | A3, A2, B2, B3 |")
    A("| min-min / max-min first pick | A2 / B2 | A2 / B2 |")
    A("")
    A("Exact reproduction (`tests/core/test_fig3_example.py`, "
      "`examples/fig3_walkthrough.py`).  **Status: reproduced exactly.**")
    A("")

    # ------------------------------------------------------------ Fig 4-6
    def tp_at(r, h):
        hours = r["series"]["hours"]
        tps = r["series"]["throughput"]
        for t, v in zip(hours, tps):
            if t >= h:
                return int(v)
        return int(tps[-1])

    A("## Fig. 4 — throughput over time (static)")
    A("")
    rows = [[alg, tp_at(g456[alg], 6), tp_at(g456[alg], 12), tp_at(g456[alg], 24),
             g456[alg]["n_done"]] for alg in ORDER]
    A(table(["algorithm", "tp@6h", "tp@12h", "tp@24h", "tp@36h"], rows))
    A("")
    A("Paper: HEFT and DHEFT have the lowest throughput in the beginning "
      "stage; SMF is best early; DSMF close behind.  Measured: same "
      "ordering — SMF/DSMF lead the first half, DHEFT's longest-RPM-first "
      "starves short workflows until late.  **Status: shape reproduced.**")
    A("")

    A("## Fig. 5 — average finish time (static)")
    A("")
    rows = [[alg, fmt(g456[alg]["act"]),
             f"{g456[alg]['act'] / g456['dsmf']['act']:.2f}x"] for alg in ORDER]
    A(table(["algorithm", "converged ACT (s)", "vs DSMF"], rows))
    A("")
    riv = [g456[a]["act"] for a in ("min-min", "max-min", "sufferage", "dheft", "dsdf")]
    red = (1 - g456["dsmf"]["act"] / (sum(riv) / len(riv))) * 100
    A(f"Paper: DSMF reduces ACT by 20–60% vs the other decentralized "
      f"algorithms and beats full-ahead HEFT.  Measured: DSMF is "
      f"{red:.0f}% below the decentralized-rival mean and beats HEFT "
      f"({fmt(g456['heft']['act'])} s).  **Deviation:** full-ahead SMF's ACT "
      f"({fmt(g456['smf']['act'])} s) does not beat DSMF here (the paper has "
      "SMF slightly ahead); our full-ahead executor honours the static plan "
      "without runtime re-optimization, while DSMF re-plans every 15 min "
      "with fresh load info — at this scale that feedback outweighs SMF's "
      "global knowledge.  **Status: headline claim reproduced; SMF/DSMF "
      "rank swapped (documented).**")
    A("")

    A("## Fig. 6 — average efficiency (static)")
    A("")
    rows = [[alg, f"{g456[alg]['ae']:.3f}",
             f"{g456[alg]['ae'] / g456['dsmf']['ae']:.2f}x"] for alg in ORDER]
    A(table(["algorithm", "converged AE", "vs DSMF"], rows))
    A("")
    riv_ae = [g456[a]["ae"] for a in ("min-min", "max-min", "sufferage", "dheft", "dsdf")]
    gain = (g456["dsmf"]["ae"] / (sum(riv_ae) / len(riv_ae)) - 1) * 100
    A(f"Paper: DSMF improves AE by 37.5–90% over the decentralized rivals; "
      f"SMF best overall; DHEFT/HEFT worst.  Measured: DSMF is +{gain:.0f}% "
      "vs the rival mean, SMF clearly best, DHEFT worst.  **Status: shape "
      "reproduced.**")
    A("")

    # ------------------------------------------------------------ Fig 7/8
    lfs = [1, 2, 3, 4, 5, 6, 7, 8]
    A("## Fig. 7 — ACT vs load factor")
    A("")
    rows = [[alg] + [fmt(g78[f"{alg}@lf{lf}"]["act"]) for lf in lfs] for alg in ORDER]
    A(table(["algorithm"] + [f"lf={lf}" for lf in lfs], rows))
    A("")
    A("Paper: ACT grows with the load factor; DSMF adapts best under heavy "
      "competition (lf = 6–8).  Measured: monotone growth for every "
      "algorithm and DSMF has the lowest ACT at lf ≥ 6 among the "
      "decentralized algorithms (and overall).  **Status: shape reproduced.**")
    A("")

    A("## Fig. 8 — AE vs load factor")
    A("")
    rows = [[alg] + [f"{g78[f'{alg}@lf{lf}']['ae']:.3f}" for lf in lfs] for alg in ORDER]
    A(table(["algorithm"] + [f"lf={lf}" for lf in lfs], rows))
    A("")
    A("Paper: AE decreases with load; DSMF keeps the best efficiency among "
      "decentralized algorithms across the sweep.  Measured: same.  "
      "**Status: shape reproduced.**")
    A("")

    # ----------------------------------------------------------- Fig 9/10
    cases = ["load:10-1000 data:10-1000", "load:10-1000 data:100-10000",
             "load:100-10000 data:10-1000", "load:100-10000 data:100-10000"]
    A("## Fig. 9 — ACT under different CCRs")
    A("")
    rows = [[alg] + [fmt(g910[f"{alg}@{c}"]["act"]) for c in cases] for alg in ORDER]
    A(table(["algorithm"] + [c.replace("load:", "L").replace(" data:", "/D") for c in cases], rows))
    A("")
    A("Paper: SMF good in most cases; DSMF 'remains the winner among all "
      "decentralized algorithms with different CCRs'.  Measured: DSMF has "
      "the lowest decentralized ACT in every case.  **Status: shape "
      "reproduced.**")
    A("")

    A("## Fig. 10 — AE under different CCRs")
    A("")
    rows = [[alg] + [f"{g910[f'{alg}@{c}']['ae']:.3f}" for c in cases] for alg in ORDER]
    A(table(["algorithm"] + [c.replace("load:", "L").replace(" data:", "/D") for c in cases], rows))
    A("")
    A("Measured: DSMF leads the decentralized field on AE in every CCR "
      "combination.  **Status: shape reproduced.**")
    A("")

    # ------------------------------------------------------------- Fig 11
    A("## Fig. 11 — scalability of DSMF")
    A("")
    scales = sorted(int(k.split("@n")[1]) for k in g11)
    rows = [[f"n={s}", f"{g11[f'dsmf@n{s}']['rss_mean']:.1f}",
             f"{g11[f'dsmf@n{s}']['ae']:.3f}", fmt(g11[f"dsmf@n{s}"]["act"])]
            for s in scales]
    A(table(["scale", "(a) nodes known per node", "(b) AE", "(c) ACT (s)"], rows))
    A("")
    A("Paper: nodes known per node bounded < 30 up to n = 2000; AE/ACT "
      "roughly stable with scale.  Measured: the RSS stays at the "
      "2·⌈log₂ n⌉ bound (≤ 22 at n = 2000) and AE/ACT are flat within "
      "noise.  **Status: shape reproduced.**")
    A("")

    # ------------------------------------------------------ Fig 12/13/14
    A("## Fig. 12/13/14 — DSMF under churn")
    A("")
    dfs = ["df0", "df0.1", "df0.2", "df0.3", "df0.4"]
    rows = [[lbl.replace("df", "df="),
             tp_at(g12[lbl], 6), tp_at(g12[lbl], 12), tp_at(g12[lbl], 18),
             g12[lbl]["n_done"], g12[lbl]["n_failed"],
             fmt(g12[lbl]["act"]), f"{g12[lbl]['ae']:.3f}"] for lbl in dfs]
    A(table(["dynamic factor", "tp@6h", "tp@12h", "tp@18h", "tp@36h",
             "failed", "ACT (s)", "AE"], rows))
    A("")
    A("Paper: throughput distinctly lower as df grows (Fig. 12), while "
      "finished workflows keep 'relatively stable finish-time and "
      "efficiency when df ≤ 0.2'.  Measured (suspend churn semantics — see "
      "DESIGN.md): the throughput curves separate exactly like Fig. 12 "
      "(monotone in df at every mid-run instant); at our capacity margin "
      "everything still converges by 36 h, whereas the paper's largest "
      "workflows do not.  ACT/AE of finished workflows degrade gracefully "
      "(df = 0.1 costs ~15% ACT).  The `fail` churn mode plus the "
      "`reschedule_failed` extension (the paper's future work) are "
      "exercised by `benchmarks/test_bench_ablations.py`.  **Status: shape "
      "reproduced.**")
    A("")

    # ------------------------------------------------------------ Table II
    A('## "Table II" — §IV.B prose: heuristic vs FCFS second phase')
    A("")
    bases = ["min-min", "max-min", "sufferage", "dheft"]
    paper_h = {"min-min": 31977, "max-min": 33495, "sufferage": 30321, "dheft": 30728}
    paper_f = {"min-min": 32874, "max-min": 33746, "sufferage": 32781, "dheft": 32636}
    rows = []
    for b in bases:
        rows.append([
            b, paper_h[b], paper_f[b],
            fmt(gt2[b]["act"]), fmt(gt2[f"{b}-fcfs"]["act"]),
        ])
    if "dsmf" in gt2:
        rows.append(["dsmf (ours)", "—", "—",
                     fmt(gt2["dsmf"]["act"]), fmt(gt2["dsmf-fcfs"]["act"])])
    A(table(["bundle", "paper ACT (heur.)", "paper ACT (FCFS)",
             "measured ACT (heur.)", "measured ACT (FCFS)"], rows))
    A("")
    A("Paper: FCFS at resource nodes is uniformly worse by ~2–8%.  "
      "Measured: the decisive case — DSMF's own phase 2 (Formula 10) — "
      "beats FCFS clearly (last row; asserted in "
      "`benchmarks/test_bench_table2_fcfs_ablation.py`).  For "
      "min-min/sufferage the STF/LSF second phases land within ~1% of FCFS "
      "(the paper's own gap is 2–8%, at the edge of seed noise), while LTF "
      "(max-min) and longest-RPM (DHEFT) second phases are *worse* than "
      "FCFS in our simulator: prioritizing long work at the CPU delays the "
      "many short workflows that dominate the average.  **Status: "
      "reproduced for the dual-phase DSMF claim; smaller/reversed gaps for "
      "the adapted rivals documented as a deviation.**")
    A("")

    # ------------------------------------------------------------- summary
    A("## Summary")
    A("")
    A("| claim | status |")
    A("|---|---|")
    A("| Fig. 3 worked example (RPM/ms/orders) | exact |")
    A("| DSMF best decentralized ACT & AE (Fig. 5/6) | reproduced |")
    A("| HEFT/DHEFT worst early throughput (Fig. 4) | reproduced |")
    A("| ACT↑ / AE↓ with load factor, DSMF best under pressure (Fig. 7/8) | reproduced |")
    A("| DSMF wins across CCRs (Fig. 9/10) | reproduced |")
    A("| bounded RSS, flat AE/ACT with scale (Fig. 11) | reproduced |")
    A("| graceful churn ≤ 0.2, degraded throughput beyond (Fig. 12–14) | reproduced |")
    A("| heuristic phase 2 beats FCFS (Table II) | partial — decisive for DSMF's phase 2; within noise for STF/LSF; reversed for LTF/longest-RPM |")
    A("| SMF best overall ACT (Fig. 5) | deviation — DSMF edges SMF at our scale |")
    A("")

    print("\n".join(L))


if __name__ == "__main__":
    main()
