#!/usr/bin/env python
"""CI end-to-end check for the ``repro serve`` HTTP API.

Usage::

    python scripts/service_check.py http://127.0.0.1:8642 first
    python scripts/service_check.py http://127.0.0.1:8642 restarted
    python scripts/service_check.py http://127.0.0.1:8653 killresume CACHE_DIR

``first`` runs against a cold server: submit a small campaign, long-poll
it to completion, re-submit the identical manifest and assert it is
served entirely from cache, fetch every result by config hash and the
``/experiments`` index, then scrape ``/metrics`` and parse it as
Prometheus text.  ``restarted`` runs against a *new* server process
on the same cache/index directories and asserts the persistent index
still lists the first phase's runs (and that the cache still serves
them).  ``killresume`` manages its *own* two server processes: it
SIGKILLs the first one mid-campaign, restarts on the same directories,
and asserts the submission journal resumes the campaign under its
original id with every pre-kill cell replayed from cache and all result
digests identical to a clean in-process run.  Every request carries a
timeout, so a dead or wedged server makes this script exit non-zero
instead of hanging.
"""

from __future__ import annotations

import sys

from repro.experiments.campaign import config_hash
from repro.obs.telemetry import parse_prometheus
from repro.service.client import ServiceClient
from repro.service.schemas import manifest_specs

MANIFEST = {
    "algorithms": ["dsmf"],
    "seeds": [1, 2],
    "overrides": {"n_nodes": 40, "load_factor": 1, "total_time": 21600.0},
}


def expected_hashes() -> set[str]:
    return {config_hash(spec.config) for spec in manifest_specs(MANIFEST)}


def submit_and_wait(client: ServiceClient) -> dict:
    record = client.submit(MANIFEST)
    print(f"submitted campaign {record['id']} "
          f"({record['progress']['total']} configs)", flush=True)
    record = client.wait(record["id"], timeout=240)
    assert record["status"] == "done", record
    assert record["error"] is None, record
    for run in record["runs"]:
        assert run["status"] == "done", run
    print(f"campaign {record['id']} done "
          f"({record['n_cached']}/{record['progress']['total']} from cache)",
          flush=True)
    return record


def check_results_and_index(client: ServiceClient) -> None:
    hashes = expected_hashes()
    for key in sorted(hashes):
        result = client.result(key)
        assert result["result_digest"], result
        assert result["config_hash"] == key
    listed = {entry["config_hash"] for entry in client.experiments()}
    missing = hashes - listed
    assert not missing, f"experiment index is missing {sorted(missing)}"
    print(f"/experiments lists all {len(hashes)} expected hashes "
          f"({len(listed)} total)", flush=True)


def check_metrics(client: ServiceClient) -> None:
    """Scrape ``/metrics`` and assert it is well-formed Prometheus text
    with the request counters this script itself generated."""
    samples = parse_prometheus(client.metrics())  # raises on malformed lines
    assert samples, "empty /metrics exposition"
    requests = {k: v for k, v in samples.items()
                if k.startswith("repro_http_requests_total")}
    assert requests, f"no request counters in /metrics: {sorted(samples)[:5]}"
    assert sum(requests.values()) > 0
    done = samples.get('repro_service_campaigns{state="done"}')
    assert done is not None and done >= 1, samples
    print(f"/metrics OK ({len(samples)} samples, "
          f"{sum(requests.values()):.0f} requests counted)", flush=True)


def phase_first(client: ServiceClient) -> None:
    cold = submit_and_wait(client)
    assert cold["n_cached"] == 0, f"cold run unexpectedly cached: {cold}"
    replay = submit_and_wait(client)
    assert replay["n_cached"] == replay["progress"]["total"], (
        f"resubmission was not served from cache: {replay}"
    )
    assert all(run["from_cache"] for run in replay["runs"]), replay
    check_results_and_index(client)
    check_metrics(client)


def phase_restarted(client: ServiceClient) -> None:
    health = client.health()
    assert health["experiments"] >= len(expected_hashes()), health
    check_results_and_index(client)
    replay = submit_and_wait(client)
    assert replay["n_cached"] == replay["progress"]["total"], (
        f"restarted server re-ran cached configs: {replay}"
    )


#: Six cells so the SIGKILL window (after the first journaled completion,
#: before the last) is seconds wide.
KILL_MANIFEST = {
    "algorithms": ["dsmf"],
    "seeds": [11, 12, 13, 14, 15, 16],
    "overrides": {"n_nodes": 40, "load_factor": 1, "total_time": 21600.0},
}


def _spawn_server(port: int, cache_dir: str):
    import subprocess

    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.experiments.cli", "serve",
            "--port", str(port), "--jobs", "1", "--cache-dir", cache_dir,
        ],
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def phase_killresume(base_url: str, cache_dir: str) -> None:
    """SIGKILL a server mid-campaign; restart; assert journal resume."""
    import signal
    import time
    from urllib.parse import urlsplit

    from repro.api import run_manifest
    from repro.service.schemas import manifest_specs as specs_of

    port = urlsplit(base_url).port
    assert port, f"base URL needs an explicit port: {base_url}"

    # Expected digests from a clean in-process run (no cache, no server).
    clean = run_manifest(KILL_MANIFEST, use_cache=False)
    expected = {run.cache_key: run.digest() for run in clean}

    server = _spawn_server(port, cache_dir)
    client = ServiceClient(base_url, timeout=30.0)
    try:
        client.wait_healthy(timeout=60)
        record = client.submit(KILL_MANIFEST)
        cid, total = record["id"], record["progress"]["total"]
        print(f"submitted campaign {cid} ({total} configs)", flush=True)
        deadline = time.monotonic() + 180
        while True:
            record = client.campaign(cid)
            completed = record["progress"]["completed"]
            if 1 <= completed < total:
                break
            assert record["status"] != "done", (
                "campaign finished before the kill window; enlarge KILL_MANIFEST"
            )
            assert time.monotonic() < deadline, "no completed cell within 180s"
            time.sleep(0.05)
        server.send_signal(signal.SIGKILL)
        server.wait(30)
        print(f"SIGKILLed server with {completed}/{total} cells done", flush=True)
    except BaseException:
        server.kill()
        server.wait(30)
        raise

    server = _spawn_server(port, cache_dir)
    try:
        client.wait_healthy(timeout=60)
        health = client.health()
        assert health["resumed_campaigns"] >= 1, health
        record = client.wait(cid, timeout=240)
        assert record["status"] == "done", record
        assert record["resumed"] is True, record
        assert record["n_cached"] >= completed, (
            f"pre-kill cells were re-executed: {record['n_cached']} cached "
            f"vs {completed} done before the kill"
        )
        hashes = {config_hash(s.config) for s in specs_of(KILL_MANIFEST)}
        for key in sorted(hashes):
            assert client.result(key)["result_digest"] == expected[key], key
        print(
            f"campaign {cid} resumed under its original id: "
            f"{record['n_cached']}/{total} from cache, all digests match",
            flush=True,
        )
    finally:
        server.terminate()
        server.wait(30)


def main(argv: list[str]) -> int:
    if (
        len(argv) < 2
        or argv[1] not in ("first", "restarted", "killresume")
        or (argv[1] == "killresume") != (len(argv) == 3)
    ):
        print(
            f"usage: {sys.argv[0]} BASE_URL first|restarted\n"
            f"       {sys.argv[0]} BASE_URL killresume CACHE_DIR",
            file=sys.stderr,
        )
        return 2
    base_url, phase = argv[:2]
    if phase == "killresume":
        phase_killresume(base_url, argv[2])
        print(f"phase {phase!r} OK", flush=True)
        return 0
    client = ServiceClient(base_url, timeout=30.0)
    client.wait_healthy(timeout=60)
    print(f"service healthy at {base_url} (phase: {phase})", flush=True)
    (phase_first if phase == "first" else phase_restarted)(client)
    print(f"phase {phase!r} OK", flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
