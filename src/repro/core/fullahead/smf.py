"""Full-ahead SMF: static Shortest Makespan First (paper §IV.A).

The paper's self-implemented quality ceiling: workflows are scheduled
*whole*, in ascending order of their expected makespan (the average-based
critical path, Eq. 1), and within a workflow tasks are placed in descending
RPM (upward rank) order on their earliest-finish node.

SMF monopolizes global information *and* the shortest-job-first workflow
ordering, which is why the paper finds it the best performer overall — the
decentralized DSMF is designed to approach it without any central
scheduler.
"""

from __future__ import annotations

from repro.core.fullahead.planner import (
    FullAheadPlan,
    FullAheadPlanner,
    GlobalView,
    _EftState,
)
from repro.grid.state import WorkflowExecution
from repro.workflow.analysis import expected_finish_time, upward_rank

__all__ = ["SmfPlanner"]


class SmfPlanner(FullAheadPlanner):
    """Workflow-by-workflow (ascending makespan) list scheduling."""

    name = "smf"

    def plan(self, view: GlobalView, workflows: list[WorkflowExecution]) -> FullAheadPlan:
        ordered = sorted(
            workflows,
            key=lambda wx: (
                expected_finish_time(wx.wf, view.avg_capacity, view.avg_bandwidth),
                wx.wf.wid,
            ),
        )
        state = _EftState(view)
        assignment: dict[tuple[str, int], int] = {}
        for wx in ordered:
            wf = wx.wf
            rank = upward_rank(wf, view.avg_capacity, view.avg_bandwidth)
            pos = {tid: i for i, tid in enumerate(wf.topo_order)}
            # Descending RPM inside the workflow (ties: topological order,
            # so precedence constraints are respected for zero-cost tasks).
            order = sorted(wf.tasks, key=lambda t: (-rank[t], pos[t]))
            for tid in order:
                node = state.place(wx, tid)
                if not wf.tasks[tid].virtual:
                    assignment[(wf.wid, tid)] = node
        return FullAheadPlan(assignment)
