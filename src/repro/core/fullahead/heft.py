"""Full-ahead HEFT (Topcuoglu et al. [7]) over the whole system.

Every task of every submitted workflow gets an *upward rank* — the
average-based longest path to its workflow's exit task (identical to the
paper's RPM recursion under averages) — and tasks are placed in globally
descending rank order on their earliest-finish node.

Pooling all workflows into one rank-ordered list is what gives HEFT its
characteristic behaviour in Fig. 4–6: tasks of long workflows outrank the
short workflows' tasks, so short workflows wait — great final makespans for
the giants, poor *average* completion time and efficiency.
"""

from __future__ import annotations

from repro.core.fullahead.planner import (
    FullAheadPlan,
    FullAheadPlanner,
    GlobalView,
    _EftState,
)
from repro.grid.state import WorkflowExecution
from repro.workflow.analysis import upward_rank

__all__ = ["HeftPlanner"]


class HeftPlanner(FullAheadPlanner):
    """Global descending-upward-rank list scheduling."""

    name = "heft"

    def plan(self, view: GlobalView, workflows: list[WorkflowExecution]) -> FullAheadPlan:
        pooled: list[tuple[float, str, int, int]] = []  # (-rank, wid, topo_pos, tid)
        by_wid: dict[str, WorkflowExecution] = {}
        for wx in workflows:
            wf = wx.wf
            by_wid[wf.wid] = wx
            rank = upward_rank(wf, view.avg_capacity, view.avg_bandwidth)
            pos = {tid: i for i, tid in enumerate(wf.topo_order)}
            for tid in wf.tasks:
                pooled.append((-rank[tid], wf.wid, pos[tid], tid))
        # Descending rank; topo position breaks zero-cost ties so precedents
        # are always placed before their successors.
        pooled.sort()

        state = _EftState(view)
        assignment: dict[tuple[str, int], int] = {}
        for _, wid, _, tid in pooled:
            wx = by_wid[wid]
            node = state.place(wx, tid)
            if not wx.wf.tasks[tid].virtual:
                assignment[(wid, tid)] = node
        return FullAheadPlan(assignment)
