"""Full-ahead planning infrastructure.

A :class:`FullAheadPlanner` sees a :class:`GlobalView` — every node's
capacity, the full bandwidth matrix and every submitted workflow (this is
precisely the "centralized scheduler with global information" the paper
grants its full-ahead baselines) — and produces a
:class:`FullAheadPlan` mapping every non-virtual task to a node.

The shared placement machinery (`_EftState`) implements the classic
list-scheduling step: given tasks in some priority order, place each on the
node minimizing its earliest finish time, where

    EFT(t, p) = max(avail[p], ready(t, p)) + load(t)/cap(p)
    ready(t, p) = max over precedents k' of ( FT(k') + data/bw(node(k'), p) )
                  (plus the image transfer from the home node)

The per-task evaluation is vectorized over *all* nodes (one NumPy
expression per task), which keeps planning 48k tasks over 1000 nodes in the
seconds range — the hpc-parallel "vectorize the hot loop" rule.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.grid.state import WorkflowExecution

__all__ = ["FullAheadPlan", "FullAheadPlanner", "GlobalView"]


@dataclass
class GlobalView:
    """Global information granted to full-ahead planners.

    Attributes
    ----------
    node_ids:
        All resource nodes available at plan time.
    capacities:
        Their capacities (MIPS), aligned with ``node_ids``.
    bandwidth / latency:
        Full end-to-end matrices (ground truth — full-ahead baselines are
        granted oracle knowledge, per the paper).
    avg_capacity / avg_bandwidth:
        System-wide averages for the rank computations.
    loads:
        Optional per-node resident work (MI) already queued/running at
        plan time; seeds each node's availability so mid-run plans (a
        streaming workload's t > 0 arrival groups) don't assume an idle
        grid.  ``None`` (and the all-zero t = 0 case) reproduces the
        paper's idle-grid planning exactly.
    """

    node_ids: np.ndarray
    capacities: np.ndarray
    bandwidth: np.ndarray
    latency: np.ndarray
    avg_capacity: float
    avg_bandwidth: float
    loads: "np.ndarray | None" = None


@dataclass
class FullAheadPlan:
    """``(wid, tid) -> node_id`` for every non-virtual task."""

    assignment: dict[tuple[str, int], int]

    def node_for(self, wid: str, tid: int) -> int:
        return self.assignment[(wid, tid)]


class FullAheadPlanner(abc.ABC):
    """Base class for static whole-system schedulers."""

    name: str = "abstract"

    @abc.abstractmethod
    def plan(self, view: GlobalView, workflows: list[WorkflowExecution]) -> FullAheadPlan:
        """Assign every non-virtual task of every workflow to a node."""


class _EftState:
    """Mutable availability/finish bookkeeping for list placement."""

    def __init__(self, view: GlobalView):
        self.view = view
        if view.loads is None:
            self.avail = np.zeros(len(view.node_ids))
        else:
            self.avail = np.asarray(view.loads, dtype=float) / view.capacities
        self._col_of = {int(nid): k for k, nid in enumerate(view.node_ids)}
        # (wid, tid) -> (finish_time_estimate, node_id)
        self.finish: dict[tuple[str, int], tuple[float, int]] = {}

    def place(self, wx: WorkflowExecution, tid: int) -> int:
        """Place one task on its EFT-minimizing node; returns the node id."""
        wf = wx.wf
        task = wf.tasks[tid]
        wid = wf.wid
        view = self.view

        if task.virtual:
            # Virtual tasks run instantly at the home node.
            ft = 0.0
            for p in wf.precedents[tid]:
                ft = max(ft, self.finish[(wid, p)][0])
            self.finish[(wid, tid)] = (ft, wx.home_id)
            return wx.home_id

        cols = np.arange(len(view.node_ids))
        ready = np.zeros(len(cols))
        if task.image_size > 0.0:
            h = self._col_of[wx.home_id]
            t = task.image_size / view.bandwidth[h, cols] + view.latency[h, cols]
            t[cols == h] = 0.0
            np.maximum(ready, t, out=ready)
        for p, data in wf.precedents[tid].items():
            ft_p, node_p = self.finish[(wid, p)]
            if data > 0.0:
                c = self._col_of[node_p]
                t = data / view.bandwidth[c, cols] + view.latency[c, cols]
                t[cols == c] = 0.0
                np.maximum(ready, ft_p + t, out=ready)
            else:
                np.maximum(ready, ft_p, out=ready)

        eft = np.maximum(self.avail, ready) + task.load / view.capacities
        k = int(np.argmin(eft))
        self.avail[k] = eft[k]
        node = int(view.node_ids[k])
        self.finish[(wid, tid)] = (float(eft[k]), node)
        return node
