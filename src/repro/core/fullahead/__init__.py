"""Full-ahead (static) scheduling baselines (substrate S16, paper §IV.A).

HEFT [7] and the paper's self-implemented SMF schedule *every* task of
*every* workflow centrally, with global information, before execution
starts; resource nodes then simply execute ready tasks FCFS.  These two are
the paper's comparison base: SMF is the quality ceiling (it exploits global
knowledge *and* shortest-makespan-first ordering), full-ahead HEFT the
classic list-scheduling reference DSMF is shown to beat.
"""

from repro.core.fullahead.planner import FullAheadPlan, FullAheadPlanner, GlobalView
from repro.core.fullahead.heft import HeftPlanner
from repro.core.fullahead.smf import SmfPlanner

__all__ = [
    "FullAheadPlan",
    "FullAheadPlanner",
    "GlobalView",
    "HeftPlanner",
    "SmfPlanner",
]
