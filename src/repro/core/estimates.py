"""Start/finish-time estimation (Equations (4)–(6)) and the resource view.

At the first scheduling phase a home node evaluates, for every candidate
resource node ``p_h`` in its RSS, the estimated finish time of task ``τ``::

    R(τ, p_h)   = l_h / c_h                          queuing delay (total load
                                                     over capacity — the
                                                     paper's conservative
                                                     estimate)
    LTD(τ)      = max over inputs (transfer time)    Eq. (4) — dependent data
                                                     from each precedent's
                                                     node, plus the task image
                                                     from the home node
    ST(τ, p_h)  = max(R, LTD)                        Eq. (5) — queueing and
                                                     transfers overlap
    FT(τ, p_h)  = ST + load(τ)/c_h                   Eq. (6)

:class:`ResourceView` holds the candidate arrays for one scheduling cycle
and evaluates ``FT`` for *all* candidates in one vectorized expression (this
is the phase-1 hot path).  ``add_load`` implements Algorithm 1 line 15: the
scheduler's local record of the chosen node is bumped so the next pick in
the same cycle sees the load it just added.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

__all__ = ["BandwidthProvider", "ResourceView", "TaskInput"]

#: One dependent input: ``(source_node_id, megabits)``.
TaskInput = tuple[int, float]


class BandwidthProvider(Protocol):
    """Bandwidth/latency knowledge available to a scheduler.

    Implementations: the ground-truth topology (oracle) or the
    landmark-based estimator of :mod:`repro.net.landmarks`; actual
    transfers always use the ground truth.
    """

    def bw_between(self, src: int, targets: np.ndarray) -> np.ndarray:
        """Estimated bandwidth (Mb/s) from ``src`` to each target id."""
        ...

    def latency_between(self, src: int, targets: np.ndarray) -> np.ndarray:
        """Latency (s) from ``src`` to each target id."""
        ...


class OracleBandwidth:
    """Ground-truth bandwidth provider backed by the topology matrices."""

    def __init__(self, topology) -> None:
        self._bw = topology._bandwidth
        self._lat = topology._latency

    def bw_between(self, src: int, targets: np.ndarray) -> np.ndarray:
        return self._bw[src, targets]

    def latency_between(self, src: int, targets: np.ndarray) -> np.ndarray:
        return self._lat[src, targets]


class LandmarkBandwidth:
    """Landmark-estimated bandwidth with oracle latency.

    Latency to a handful of landmarks is trivially measurable (ping), so the
    paper's nodes are assumed to know it; only bandwidth is estimated.
    """

    def __init__(self, estimator, topology) -> None:
        self._meas = estimator.measurements
        self._lat = topology._latency

    def bw_between(self, src: int, targets: np.ndarray) -> np.ndarray:
        est = np.minimum(self._meas[src][None, :], self._meas[targets]).max(axis=1)
        est[targets == src] = np.inf
        return est

    def latency_between(self, src: int, targets: np.ndarray) -> np.ndarray:
        return self._lat[src, targets]


class ResourceView:
    """Candidate resource nodes as seen by one scheduler in one cycle.

    Parameters
    ----------
    ids:
        Candidate node ids (the RSS plus the home node itself).
    capacities / loads:
        Per-candidate capacity (MIPS) and *believed* total load (MI) — from
        gossip records, hence possibly stale.
    bandwidth:
        The scheduler's bandwidth knowledge.
    home_id:
        The scheduling node (source of task images).
    """

    def __init__(
        self,
        ids: Sequence[int],
        capacities: Sequence[float],
        loads: Sequence[float],
        bandwidth: BandwidthProvider,
        home_id: int,
        writeback: Callable[[int, float], None] | None = None,
    ):
        if len(ids) == 0:
            raise ValueError("ResourceView needs at least one candidate node")
        self.ids = np.asarray(ids, dtype=np.int64)
        self.capacities = np.asarray(capacities, dtype=np.float64)
        self.loads = np.asarray(loads, dtype=np.float64)
        if len(self.ids) != len(self.capacities) or len(self.ids) != len(self.loads):
            raise ValueError("ids, capacities and loads must align")
        if np.any(self.capacities <= 0):
            raise ValueError("capacities must be positive")
        self.bandwidth = bandwidth
        self.home_id = int(home_id)
        #: persistent write-back of Algorithm 1 line 15 (e.g. into the
        #: home's gossip RSS record) applied on every ``add_load``.
        self.writeback = writeback
        self._index = {int(nid): k for k, nid in enumerate(self.ids)}

    def __len__(self) -> int:
        return len(self.ids)

    # ------------------------------------------------------------- estimates
    def queue_delays(self) -> np.ndarray:
        """R(·, p_h) for every candidate (Eq. 5's first argument)."""
        return self.loads / self.capacities

    def ltd_vector(self, image_mb: float, inputs: Sequence[TaskInput]) -> np.ndarray:
        """Eq. (4): longest transmission delay onto every candidate."""
        ids = self.ids
        ltd = np.zeros(len(ids))
        if image_mb > 0.0:
            bw = self.bandwidth.bw_between(self.home_id, ids)
            t = image_mb / bw + self.bandwidth.latency_between(self.home_id, ids)
            t[ids == self.home_id] = 0.0
            np.maximum(ltd, t, out=ltd)
        for src, mb in inputs:
            if mb <= 0.0:
                continue
            bw = self.bandwidth.bw_between(src, ids)
            t = mb / bw + self.bandwidth.latency_between(src, ids)
            t[ids == src] = 0.0
            np.maximum(ltd, t, out=ltd)
        return ltd

    def ft_vector(
        self, load: float, image_mb: float, inputs: Sequence[TaskInput]
    ) -> np.ndarray:
        """FT(τ, p_h) for every candidate — Eq. (6), fully vectorized."""
        st = np.maximum(self.queue_delays(), self.ltd_vector(image_mb, inputs))
        return st + load / self.capacities

    def best(
        self, load: float, image_mb: float, inputs: Sequence[TaskInput]
    ) -> tuple[int, float]:
        """Formula (9): the candidate with the earliest estimated finish."""
        ft = self.ft_vector(load, image_mb, inputs)
        k = int(np.argmin(ft))
        return int(self.ids[k]), float(ft[k])

    def best_ft(self, load: float, image_mb: float, inputs: Sequence[TaskInput]) -> float:
        """min over candidates of FT (the dynamic part of a schedule-point
        RPM)."""
        return float(self.ft_vector(load, image_mb, inputs).min())

    # -------------------------------------------------------------- mutation
    def add_load(
        self, node_id: int, load: float, on_update: Callable[[int, float], None] | None = None
    ) -> None:
        """Algorithm 1 line 15: account a dispatched task against the local
        record of ``node_id``; ``on_update(node_id, new_load)`` lets the
        caller write the update back to its gossip RSS."""
        k = self._index.get(int(node_id))
        if k is None:
            raise KeyError(f"node {node_id} not in this resource view")
        self.loads[k] += load
        if on_update is not None:
            on_update(int(node_id), float(self.loads[k]))
        if self.writeback is not None:
            self.writeback(int(node_id), float(self.loads[k]))
