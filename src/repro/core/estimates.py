"""Start/finish-time estimation (Equations (4)–(6)) and the resource view.

At the first scheduling phase a home node evaluates, for every candidate
resource node ``p_h`` in its RSS, the estimated finish time of task ``τ``::

    R(τ, p_h)   = l_h / c_h                          queuing delay (total load
                                                     over capacity — the
                                                     paper's conservative
                                                     estimate)
    LTD(τ)      = max over inputs (transfer time)    Eq. (4) — dependent data
                                                     from each precedent's
                                                     node, plus the task image
                                                     from the home node
    ST(τ, p_h)  = max(R, LTD)                        Eq. (5) — queueing and
                                                     transfers overlap
    FT(τ, p_h)  = ST + load(τ)/c_h                   Eq. (6)

:class:`ResourceView` holds the candidate table for one scheduling cycle and
evaluates ``FT`` for *all* candidates (the phase-1 hot path).  ``add_load``
implements Algorithm 1 line 15: the scheduler's local record of the chosen
node is bumped so the next pick in the same cycle sees the load it just
added.

Performance note: the typical view is tiny — the RSS holds O(log2 n)
records — and at that size the fixed overhead of materializing numpy arrays
dwarfs the arithmetic.  The view therefore keeps plain-Python candidate
lists and serves :meth:`best`/:meth:`best_ft` (what every bundled phase-1
policy actually calls) through a scalar fast path whenever the bandwidth
provider exposes scalar lookups; IEEE arithmetic makes the scalar and
vectorized paths bit-identical, and the vectorized :meth:`ft_vector` API is
unchanged for the pooled list heuristics and large (oracle-mode) views.
"""

from __future__ import annotations

from typing import Callable, Protocol, Sequence

import numpy as np

__all__ = ["BandwidthProvider", "ResourceView", "TaskInput"]

#: One dependent input: ``(source_node_id, megabits)``.
TaskInput = tuple[int, float]

#: Candidate counts up to this size take the scalar fast path in
#: ``best``/``best_ft`` (crossover measured on the bench harness; both
#: paths produce bit-identical floats, so the value only affects speed).
_SCALAR_MAX = 64


class BandwidthProvider(Protocol):
    """Bandwidth/latency knowledge available to a scheduler.

    Implementations: the ground-truth topology (oracle) or the
    landmark-based estimator of :mod:`repro.net.landmarks`; actual
    transfers always use the ground truth.  Providers may additionally
    expose scalar ``bw_to(src, dst)``/``lat_to(src, dst)`` lookups to
    enable the small-view fast path.
    """

    def bw_between(self, src: int, targets: np.ndarray) -> np.ndarray:
        """Estimated bandwidth (Mb/s) from ``src`` to each target id."""
        ...

    def latency_between(self, src: int, targets: np.ndarray) -> np.ndarray:
        """Latency (s) from ``src`` to each target id."""
        ...


class OracleBandwidth:
    """Ground-truth bandwidth provider backed by the topology matrices."""

    #: Row caching is always worthwhile here: construction already
    #: materialized the dense matrices.
    scalar_ok = True

    def __init__(self, topology) -> None:
        self._bw = topology._bandwidth
        self._lat = topology._latency
        # Per-source row caches as plain lists (scalar fast path): indexing
        # a Python list returns a float ~3x faster than numpy scalar
        # indexing, and rows are touched repeatedly across cycles.
        self._bw_rows: dict[int, tuple[list[float], list[float]]] = {}

    def bw_between(self, src: int, targets: np.ndarray) -> np.ndarray:
        return self._bw[src, targets]

    def latency_between(self, src: int, targets: np.ndarray) -> np.ndarray:
        return self._lat[src, targets]

    def bw_to(self, src: int, dst: int) -> float:
        return self.rows(src)[0][dst]

    def lat_to(self, src: int, dst: int) -> float:
        return self.rows(src)[1][dst]

    def rows(self, src: int) -> tuple[list[float], list[float]]:
        """``(bandwidth_row, latency_row)`` from ``src`` as plain lists.

        Rows are static for a whole run, so each is converted once and the
        scalar fast path indexes Python floats from then on.
        """
        row = self._bw_rows.get(src)
        if row is None:
            row = self._bw_rows[src] = (
                self._bw[src].tolist(),
                self._lat[src].tolist(),
            )
        return row


class LandmarkBandwidth:
    """Landmark-estimated bandwidth with oracle latency.

    Latency to a handful of landmarks is trivially measurable (ping), so the
    paper's nodes are assumed to know it; only bandwidth is estimated.
    """

    def __init__(self, estimator, topology) -> None:
        self._meas = estimator.measurements
        self._topology = topology
        #: Row caching materializes O(n)-element Python lists per queried
        #: source — the dominant scheduling cost above the exact-matrix
        #: scale, where views stay on the vectorized path instead.
        self.scalar_ok = topology.exact_paths
        #: src -> (estimated bandwidth row, latency row); estimates are
        #: static per run, so each queried source pays the O(n log n) row
        #: derivation once.
        self._rows: dict[int, tuple[list[float], list[float]]] = {}

    def bw_between(self, src: int, targets: np.ndarray) -> np.ndarray:
        est = np.minimum(self._meas[src][None, :], self._meas[targets]).max(axis=1)
        est[targets == src] = np.inf
        return est

    def latency_between(self, src: int, targets: np.ndarray) -> np.ndarray:
        return self._topology.latency_between(src, targets)

    def bw_to(self, src: int, dst: int) -> float:
        return self.rows(src)[0][dst]

    def lat_to(self, src: int, dst: int) -> float:
        return self.rows(src)[1][dst]

    def rows(self, src: int) -> tuple[list[float], list[float]]:
        """``(estimated bandwidth row, latency row)`` from ``src``.

        est(a, b) = max over landmarks of min(bw(a, L), bw(L, b)) — exact
        min/max arithmetic, so the row matches ``bw_between`` bit for bit.
        """
        row = self._rows.get(src)
        if row is None:
            est = np.minimum(self._meas[src][None, :], self._meas).max(axis=1)
            est[src] = np.inf
            row = self._rows[src] = (
                est.tolist(),
                self._topology.latency_row(src).tolist(),
            )
        return row


class ResourceView:
    """Candidate resource nodes as seen by one scheduler in one cycle.

    Parameters
    ----------
    ids:
        Candidate node ids (the RSS plus the home node itself).
    capacities / loads:
        Per-candidate capacity (MIPS) and *believed* total load (MI) — from
        gossip records, hence possibly stale.
    bandwidth:
        The scheduler's bandwidth knowledge.
    home_id:
        The scheduling node (source of task images).
    """

    __slots__ = (
        "_ids",
        "_caps",
        "_loads",
        "_ids_arr",
        "_caps_arr",
        "_loads_arr",
        "bandwidth",
        "home_id",
        "writeback",
        "_index",
        "_scalar",
        "_qd",
    )

    def __init__(
        self,
        ids: Sequence[int],
        capacities: Sequence[float],
        loads: Sequence[float],
        bandwidth: BandwidthProvider,
        home_id: int,
        writeback: Callable[[int, float], None] | None = None,
    ):
        if len(ids) == 0:
            raise ValueError("ResourceView needs at least one candidate node")
        self._ids = [int(i) for i in ids]
        self._caps = [float(c) for c in capacities]
        self._loads = [float(x) for x in loads]
        if len(self._ids) != len(self._caps) or len(self._ids) != len(self._loads):
            raise ValueError("ids, capacities and loads must align")
        if any(c <= 0 for c in self._caps):
            raise ValueError("capacities must be positive")
        # Lazy numpy mirrors: materialized only when the vectorized API is
        # used (pooled-list heuristics, tests); kept in sync by add_load.
        self._ids_arr: np.ndarray | None = None
        self._caps_arr: np.ndarray | None = None
        self._loads_arr: np.ndarray | None = None
        self.bandwidth = bandwidth
        self.home_id = int(home_id)
        #: persistent write-back of Algorithm 1 line 15 (e.g. into the
        #: home's gossip RSS record) applied on every ``add_load``.
        self.writeback = writeback
        self._index = {nid: k for k, nid in enumerate(self._ids)}
        self._scalar = (
            len(self._ids) <= _SCALAR_MAX
            and hasattr(bandwidth, "rows")
            and getattr(bandwidth, "scalar_ok", True)
        )
        # Memoized per-candidate queueing delays (loads[k] / caps[k]) for
        # the scalar fast path: a scheduling cycle evaluates many tasks
        # against the same view between load mutations, and ``add_load``
        # refreshes the single affected slot with the identical division.
        self._qd: list[float] | None = None

    @classmethod
    def trusted(
        cls,
        ids: list[int],
        capacities: list[float],
        loads: list[float],
        bandwidth: BandwidthProvider,
        home_id: int,
        writeback: Callable[[int, float], None] | None = None,
    ) -> "ResourceView":
        """Construction fast path for the per-cycle scheduler: the caller
        guarantees plain non-empty ``int``/``float`` lists with positive
        capacities, so the per-element conversion/validation of
        ``__init__`` is skipped (the lists are owned by the view from here
        on)."""
        view = cls.__new__(cls)
        view._ids = ids
        view._caps = capacities
        view._loads = loads
        view._ids_arr = None
        view._caps_arr = None
        view._loads_arr = None
        view.bandwidth = bandwidth
        view.home_id = home_id
        view.writeback = writeback
        view._index = {nid: k for k, nid in enumerate(ids)}
        view._scalar = (
            len(ids) <= _SCALAR_MAX
            and hasattr(bandwidth, "rows")
            and getattr(bandwidth, "scalar_ok", True)
        )
        view._qd = None
        return view

    def __len__(self) -> int:
        return len(self._ids)

    # ------------------------------------------------------- numpy mirrors
    @property
    def ids(self) -> np.ndarray:
        if self._ids_arr is None:
            self._ids_arr = np.asarray(self._ids, dtype=np.int64)
        return self._ids_arr

    @property
    def capacities(self) -> np.ndarray:
        if self._caps_arr is None:
            self._caps_arr = np.asarray(self._caps, dtype=np.float64)
        return self._caps_arr

    @property
    def loads(self) -> np.ndarray:
        if self._loads_arr is None:
            self._loads_arr = np.asarray(self._loads, dtype=np.float64)
        return self._loads_arr

    # ------------------------------------------------------------- estimates
    def queue_delays(self) -> np.ndarray:
        """R(·, p_h) for every candidate (Eq. 5's first argument)."""
        return self.loads / self.capacities

    def ltd_vector(self, image_mb: float, inputs: Sequence[TaskInput]) -> np.ndarray:
        """Eq. (4): longest transmission delay onto every candidate."""
        ids = self.ids
        ltd = np.zeros(len(ids))
        if image_mb > 0.0:
            bw = self.bandwidth.bw_between(self.home_id, ids)
            t = image_mb / bw + self.bandwidth.latency_between(self.home_id, ids)
            t[ids == self.home_id] = 0.0
            np.maximum(ltd, t, out=ltd)
        for src, mb in inputs:
            if mb <= 0.0:
                continue
            bw = self.bandwidth.bw_between(src, ids)
            t = mb / bw + self.bandwidth.latency_between(src, ids)
            t[ids == src] = 0.0
            np.maximum(ltd, t, out=ltd)
        return ltd

    def ft_vector(
        self, load: float, image_mb: float, inputs: Sequence[TaskInput]
    ) -> np.ndarray:
        """FT(τ, p_h) for every candidate — Eq. (6), fully vectorized."""
        st = np.maximum(self.queue_delays(), self.ltd_vector(image_mb, inputs))
        return st + load / self.capacities

    # ---- scalar fast path --------------------------------------------------
    def _best_scalar(
        self, load: float, image_mb: float, inputs: Sequence[TaskInput]
    ) -> tuple[int, int, float]:
        """``(index, node_id, ft)`` of the earliest-finish candidate.

        Pure-Python evaluation of Eq. (4)–(6) over the candidate lists;
        every operation (division, addition, max, first-minimum) matches
        the vectorized float64 expression bit for bit.
        """
        ids = self._ids
        caps = self._caps
        rows = self.bandwidth.rows
        home = self.home_id
        inf = np.inf
        qd = self._qd
        if qd is None:
            # Same divisions as the loop formerly performed per call.
            qd = self._qd = [x / c for x, c in zip(self._loads, self._caps)]
        # Transfer sources: the image from home first, then each dependent
        # input in order — the exact accumulation order of ltd_vector (max
        # is order-exact anyway).
        sources = []
        if image_mb > 0.0:
            sources.append((home, image_mb))
        for src, mb in inputs:
            if mb > 0.0:
                sources.append((src, mb))

        best_k = 0
        best_ft = inf
        if sources:
            ltd = [0.0] * len(ids)
            for src, mb in sources:
                bw_row, lat_row = rows(src)
                for k, nid in enumerate(ids):
                    if nid != src:
                        b = bw_row[nid]
                        # b == 0 must yield inf like numpy division, not raise.
                        t = mb / b + lat_row[nid] if b else inf
                        if t > ltd[k]:
                            ltd[k] = t
            for k, st in enumerate(qd):
                d = ltd[k]
                if d > st:
                    st = d
                ft = st + load / caps[k]
                if ft < best_ft:
                    best_ft = ft
                    best_k = k
        else:
            for k, st in enumerate(qd):
                ft = st + load / caps[k]
                if ft < best_ft:
                    best_ft = ft
                    best_k = k
        return best_k, ids[best_k], float(best_ft)

    def best(
        self, load: float, image_mb: float, inputs: Sequence[TaskInput]
    ) -> tuple[int, float]:
        """Formula (9): the candidate with the earliest estimated finish."""
        if self._scalar:
            _, nid, ft = self._best_scalar(load, image_mb, inputs)
            return nid, ft
        ft = self.ft_vector(load, image_mb, inputs)
        k = int(np.argmin(ft))
        return int(self.ids[k]), float(ft[k])

    def best_ft(self, load: float, image_mb: float, inputs: Sequence[TaskInput]) -> float:
        """min over candidates of FT (the dynamic part of a schedule-point
        RPM)."""
        if self._scalar:
            return self._best_scalar(load, image_mb, inputs)[2]
        return float(self.ft_vector(load, image_mb, inputs).min())

    # -------------------------------------------------------------- mutation
    def add_load(
        self, node_id: int, load: float, on_update: Callable[[int, float], None] | None = None
    ) -> None:
        """Algorithm 1 line 15: account a dispatched task against the local
        record of ``node_id``; ``on_update(node_id, new_load)`` lets the
        caller write the update back to its gossip RSS."""
        k = self._index.get(int(node_id))
        if k is None:
            raise KeyError(f"node {node_id} not in this resource view")
        new = self._loads[k] + load
        self._loads[k] = new
        if self._loads_arr is not None:
            self._loads_arr[k] = new
        if self._qd is not None:
            self._qd[k] = new / self._caps[k]
        if on_update is not None:
            on_update(int(node_id), new)
        if self.writeback is not None:
            self.writeback(int(node_id), new)
