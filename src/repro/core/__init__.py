"""The paper's primary contribution (substrates S14–S16).

* :mod:`repro.core.estimates` — the start/finish-time estimators of
  Equations (4)–(6) and the mutable per-cycle :class:`ResourceView`.
* :mod:`repro.core.rpm` — rest-path makespan and remaining workflow
  makespan (Equations (7)–(8)), composed from the estimators and the
  average-based backward pass of :mod:`repro.workflow.analysis`.
* :mod:`repro.core.dual_phase` — the dual-phase just-in-time engine:
  Algorithm 1 (scheduler-node phase) and Algorithm 2 (resource-node phase).
* :mod:`repro.core.heuristics` — DSMF plus the seven comparison policies.
* :mod:`repro.core.fullahead` — the static HEFT and SMF baselines.
"""

from repro.core.estimates import BandwidthProvider, ResourceView
from repro.core.rpm import WorkflowPriority, compute_priorities

__all__ = [
    "BandwidthProvider",
    "ResourceView",
    "WorkflowPriority",
    "compute_priorities",
]
