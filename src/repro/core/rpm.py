"""Rest-path makespan and remaining workflow makespan (Eq. (7)–(8)).

For a schedule-point task ``t`` of workflow ``f``::

    RPM(t)  = min over candidates p of FT(t, p)   (dynamic part, Eq. 7/9:
                                                   queueing + transfers +
                                                   execution on the best
                                                   currently known node)
            + restpath(t)                         (static part: the longest
                                                   eet+ett chain over the
                                                   offspring, Eq. 7 expanded
                                                   with gossip-aggregated
                                                   averages)

    ms(f)   = max over schedule points of RPM     (Eq. 8)

Validated against the paper's Fig. 3 worked example (RPM(A2)=80,
RPM(A3)=115, RPM(B2)=65, RPM(B3)=60 ⇒ ms(A)=115, ms(B)=65 and the DSMF
dispatch order B2, B3, A3, A2) in ``tests/core/test_fig3_example.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.estimates import ResourceView
from repro.grid.state import WorkflowExecution
from repro.workflow.analysis import rest_path_after

__all__ = ["WorkflowPriority", "compute_priorities"]


@dataclass
class WorkflowPriority:
    """Per-workflow DSMF priority data for one scheduling cycle."""

    wx: WorkflowExecution
    #: remaining makespan ms(f) — Eq. (8).
    makespan: float
    #: RPM per schedule-point task — Eq. (7).
    rpm: dict[int, float] = field(default_factory=dict)
    #: static offspring part (diagnostics / DSDF deadlines).
    restpath: dict[int, float] = field(default_factory=dict)

    def deadline(self, tid: int) -> float:
        """DSDF's deadline: slack between the workflow makespan and the
        task's own rest path makespan."""
        return self.makespan - self.rpm[tid]


def compute_priorities(
    wx: WorkflowExecution,
    view: ResourceView,
    avg_capacity: float,
    avg_bandwidth: float,
) -> WorkflowPriority:
    """Evaluate Eq. (7)/(8) for one workflow against a resource view.

    Each DAG edge is visited exactly once in the backward pass and each
    schedule point costs one vectorized FT evaluation over the candidate
    set, giving the O(θ(f)) + O(|spset|·|RSS|) complexity of §III.E.
    """
    after = rest_path_after(wx.wf, avg_capacity, avg_bandwidth)
    rpm: dict[int, float] = {}
    restpath: dict[int, float] = {}
    for tid in wx.schedule_points:
        task = wx.wf.tasks[tid]
        inputs = wx.inputs_for(tid)
        best_ft = view.best_ft(task.load, task.image_size, inputs)
        rpm[tid] = best_ft + after[tid]
        restpath[tid] = after[tid]
    makespan = max(rpm.values()) if rpm else 0.0
    return WorkflowPriority(wx=wx, makespan=makespan, rpm=rpm, restpath=restpath)
