"""Decentralized HEFT (DHEFT): longest RPM first at both phases (§IV.A).

The paper's decentralized adaptation of HEFT keeps HEFT's defining rule —
handle the task with the largest upward rank (here: RPM) first — but runs
it just-in-time inside the dual-phase framework: all schedule points at a
home node are pooled and dispatched in descending RPM order to the
earliest-finish candidate, and resource nodes also execute the longest-RPM
runnable task first.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.heuristics.base import (
    DispatchDecision,
    Phase1Policy,
    Phase2Policy,
    SchedulingContext,
)
from repro.core.rpm import compute_priorities
from repro.grid.state import TaskDispatch

__all__ = ["DheftPhase1", "LongestRpmPhase2"]


class DheftPhase1(Phase1Policy):
    """Pooled schedule points, descending RPM, earliest-finish placement."""

    name = "dheft"

    def plan(self, ctx: SchedulingContext) -> list[DispatchDecision]:
        prios = {
            wx.wf.wid: compute_priorities(wx, ctx.view, ctx.avg_capacity, ctx.avg_bandwidth)
            for wx in ctx.workflows
        }
        pooled: list[tuple[float, str, int]] = []
        for wx in ctx.workflows:
            prio = prios[wx.wf.wid]
            for tid, rpm in prio.rpm.items():
                pooled.append((rpm, wx.wf.wid, tid))
        pooled.sort(key=lambda x: (-x[0], x[1], x[2]))

        by_wid = {wx.wf.wid: wx for wx in ctx.workflows}
        decisions: list[DispatchDecision] = []
        for rpm, wid, tid in pooled:
            wx = by_wid[wid]
            task = wx.wf.tasks[tid]
            inputs = ctx.task_inputs(wx, tid)
            target, ft = ctx.view.best(task.load, task.image_size, inputs)
            decisions.append(
                DispatchDecision(
                    wx=wx,
                    tid=tid,
                    target=target,
                    estimated_ft=ft,
                    stamps={"rpm": rpm, "ms": prios[wid].makespan},
                )
            )
            ctx.view.add_load(target, task.load)
        return decisions


class LongestRpmPhase2(Phase2Policy):
    """Execute the runnable task with the largest stamped RPM first."""

    name = "longest-rpm"

    def select(self, runnable: Sequence[TaskDispatch], now: float) -> TaskDispatch:
        return min(runnable, key=lambda d: (-d.rpm_stamp, d.seq))
