"""Dynamic Shortest Deadline First (DSDF, §IV.A).

The paper defines a task's deadline as "the difference between its rest
path makespan and its workflow's makespan" — i.e. the *slack*
``ms(f) − RPM(τ)``: how long the task can sit before it lands on its
workflow's critical chain.  DSDF runs the most urgent (smallest slack)
tasks first at both scheduling phases, always placing on the
earliest-finish candidate.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.heuristics.base import (
    DispatchDecision,
    Phase1Policy,
    Phase2Policy,
    SchedulingContext,
)
from repro.core.rpm import compute_priorities
from repro.grid.state import TaskDispatch

__all__ = ["DsdfPhase1", "DsdfPhase2"]


class DsdfPhase1(Phase1Policy):
    """Pooled schedule points in ascending deadline (slack) order."""

    name = "dsdf"

    def plan(self, ctx: SchedulingContext) -> list[DispatchDecision]:
        prios = {
            wx.wf.wid: compute_priorities(wx, ctx.view, ctx.avg_capacity, ctx.avg_bandwidth)
            for wx in ctx.workflows
        }
        pooled: list[tuple[float, str, int]] = []
        for wx in ctx.workflows:
            prio = prios[wx.wf.wid]
            for tid in prio.rpm:
                pooled.append((prio.deadline(tid), wx.wf.wid, tid))
        pooled.sort(key=lambda x: (x[0], x[1], x[2]))

        by_wid = {wx.wf.wid: wx for wx in ctx.workflows}
        decisions: list[DispatchDecision] = []
        for deadline, wid, tid in pooled:
            wx = by_wid[wid]
            prio = prios[wid]
            task = wx.wf.tasks[tid]
            inputs = ctx.task_inputs(wx, tid)
            target, ft = ctx.view.best(task.load, task.image_size, inputs)
            decisions.append(
                DispatchDecision(
                    wx=wx,
                    tid=tid,
                    target=target,
                    estimated_ft=ft,
                    stamps={
                        "deadline": deadline,
                        "rpm": prio.rpm[tid],
                        "ms": prio.makespan,
                    },
                )
            )
            ctx.view.add_load(target, task.load)
        return decisions


class DsdfPhase2(Phase2Policy):
    """Execute the runnable task with the smallest stamped deadline."""

    name = "dsdf"

    def select(self, runnable: Sequence[TaskDispatch], now: float) -> TaskDispatch:
        return min(runnable, key=lambda d: (d.deadline_stamp, d.seq))
