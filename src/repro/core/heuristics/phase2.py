"""Simple phase-2 (ready-set) policies: FCFS, STF, LTF, LSF.

FCFS is what the full-ahead baselines use at resource nodes (and what the
original min-min/max-min/sufferage of ref [18] would do — the paper's
§IV.B prose quantifies how much the heuristic second phase helps over
FCFS, which our ``*-fcfs`` ablation bundles reproduce).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.heuristics.base import Phase2Policy
from repro.grid.state import TaskDispatch

__all__ = ["FcfsPhase2", "StfPhase2", "LtfPhase2", "LsfPhase2"]


class FcfsPhase2(Phase2Policy):
    """First come, first served: order of arrival in the ready set."""

    name = "fcfs"

    def select(self, runnable: Sequence[TaskDispatch], now: float) -> TaskDispatch:
        return min(runnable, key=lambda d: (d.dispatch_time, d.seq))


class StfPhase2(Phase2Policy):
    """Shortest task first (paired with min-min)."""

    name = "stf"

    def select(self, runnable: Sequence[TaskDispatch], now: float) -> TaskDispatch:
        return min(runnable, key=lambda d: (d.load, d.seq))


class LtfPhase2(Phase2Policy):
    """Longest task first (paired with max-min)."""

    name = "ltf"

    def select(self, runnable: Sequence[TaskDispatch], now: float) -> TaskDispatch:
        return min(runnable, key=lambda d: (-d.load, d.seq))


class LsfPhase2(Phase2Policy):
    """Largest sufferage first (paired with sufferage)."""

    name = "lsf"

    def select(self, runnable: Sequence[TaskDispatch], now: float) -> TaskDispatch:
        return min(runnable, key=lambda d: (-d.sufferage_stamp, d.seq))
