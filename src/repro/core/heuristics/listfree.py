"""min-min, max-min and sufferage phase-1 policies (paper §IV.A, ref [18]).

Maheswaran et al.'s dynamic matching heuristics for *independent* tasks,
applied — as the paper does — to the pooled schedule points of all
workflows at a home node:

* **min-min** repeatedly dispatches the task with the globally smallest
  best finish time;
* **max-min** repeatedly dispatches the task whose *best* finish time is
  largest;
* **sufferage** repeatedly dispatches the task that would suffer most if
  denied its best node (largest second-best − best gap).

After every pick the working resource view is charged, so subsequent picks
see the updated queue estimates — the defining trait of these heuristics.

The paired phase-2 policies (per the paper's modification of [18]) are
shortest task first, longest task first and largest sufferage first; the
relevant keys are stamped on each dispatch.
"""

from __future__ import annotations

import numpy as np

from repro.core.heuristics.base import (
    DispatchDecision,
    Phase1Policy,
    SchedulingContext,
)
from repro.grid.state import WorkflowExecution

__all__ = ["MinMinPhase1", "MaxMinPhase1", "SufferagePhase1"]


class _PooledTask:
    __slots__ = ("wx", "tid", "load", "image", "inputs")

    def __init__(self, wx: WorkflowExecution, tid: int, ctx: SchedulingContext):
        self.wx = wx
        self.tid = tid
        task = wx.wf.tasks[tid]
        self.load = task.load
        self.image = task.image_size
        self.inputs = ctx.task_inputs(wx, tid)


def _pool(ctx: SchedulingContext) -> list[_PooledTask]:
    return [
        _PooledTask(wx, tid, ctx)
        for wx in ctx.workflows
        for tid in sorted(wx.schedule_points)
    ]


class _IterativePoolPolicy(Phase1Policy):
    """Shared select-charge-repeat loop; subclasses define the pick rule."""

    def plan(self, ctx: SchedulingContext) -> list[DispatchDecision]:
        pool = _pool(ctx)
        decisions: list[DispatchDecision] = []
        while pool:
            # Finish-time vector per pooled task under the *current* view.
            fts = [ctx.view.ft_vector(t.load, t.image, t.inputs) for t in pool]
            pick_idx, target_k, extra = self._pick(fts)
            t = pool.pop(pick_idx)
            ftv = fts[pick_idx]
            target = int(ctx.view.ids[target_k])
            stamps = {"et": t.load / ctx.avg_capacity}
            stamps.update(extra)
            decisions.append(
                DispatchDecision(
                    wx=t.wx,
                    tid=t.tid,
                    target=target,
                    estimated_ft=float(ftv[target_k]),
                    stamps=stamps,
                )
            )
            ctx.view.add_load(target, t.load)
        return decisions

    def _pick(self, fts: list[np.ndarray]) -> tuple[int, int, dict[str, float]]:
        raise NotImplementedError


class MinMinPhase1(_IterativePoolPolicy):
    """Pick the task with the smallest best finish time."""

    name = "min-min"

    def _pick(self, fts):
        best = [(float(f.min()), int(f.argmin())) for f in fts]
        i = min(range(len(best)), key=lambda k: best[k][0])
        return i, best[i][1], {}


class MaxMinPhase1(_IterativePoolPolicy):
    """Pick the task with the *largest* best finish time."""

    name = "max-min"

    def _pick(self, fts):
        best = [(float(f.min()), int(f.argmin())) for f in fts]
        i = max(range(len(best)), key=lambda k: best[k][0])
        return i, best[i][1], {}


class SufferagePhase1(_IterativePoolPolicy):
    """Pick the task with the largest sufferage (2nd-best − best FT)."""

    name = "sufferage"

    def _pick(self, fts):
        suffs: list[float] = []
        argmins: list[int] = []
        for f in fts:
            k = int(f.argmin())
            argmins.append(k)
            if len(f) >= 2:
                two = np.partition(f, 1)[:2]
                suffs.append(float(two[1] - two[0]))
            else:
                suffs.append(0.0)
        i = max(range(len(suffs)), key=lambda k: suffs[k])
        return i, argmins[i], {"sufferage": suffs[i]}
