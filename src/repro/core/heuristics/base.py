"""Policy interfaces shared by all algorithm bundles.

A phase-1 policy receives a :class:`SchedulingContext` — the home node's
workflows with their current schedule points, a mutable
:class:`~repro.core.estimates.ResourceView` over the RSS, and the
gossip-aggregated averages — and returns an *ordered* list of
:class:`DispatchDecision`.  The dual-phase engine executes the decisions in
order; the view has already been charged for each pick (Algorithm 1 line
15), so decisions embed the finish-time landscape the policy saw.

A phase-2 policy selects the next task to execute among the *runnable*
entries of a resource node's ready set (Algorithm 2).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.estimates import ResourceView
from repro.grid.state import TaskDispatch, WorkflowExecution

__all__ = [
    "DispatchDecision",
    "Phase1Policy",
    "Phase2Policy",
    "SchedulingContext",
]


@dataclass(slots=True)
class DispatchDecision:
    """One task-to-node assignment produced by a phase-1 policy.

    ``stamps`` carries the priority values the bundle's phase-2 policy will
    read (``ms``, ``rpm``, ``sufferage``, ``deadline``, ``et``).
    """

    wx: WorkflowExecution
    tid: int
    target: int
    estimated_ft: float
    stamps: dict[str, float] = field(default_factory=dict)


@dataclass(slots=True)
class SchedulingContext:
    """Everything a phase-1 policy may consult during one cycle.

    Attributes
    ----------
    home_id:
        The scheduler node running Algorithm 1.
    now:
        Simulated time.
    workflows:
        The home node's RUNNING workflows that currently have at least one
        schedule point.
    view:
        Mutable resource view over RSS(home) ∪ {home}; policies must charge
        every dispatch via ``view.add_load`` so later picks see it.
    avg_capacity / avg_bandwidth:
        The aggregation-gossip estimates at this node (system-wide average
        MIPS and Mb/s) used for all eet/ett terms.
    """

    home_id: int
    now: float
    workflows: list[WorkflowExecution]
    view: ResourceView
    avg_capacity: float
    avg_bandwidth: float

    def task_inputs(self, wx: WorkflowExecution, tid: int):
        """Dependent-data inputs ``(source_node, Mb)`` for a schedule point."""
        return wx.inputs_for(tid)


class Phase1Policy(abc.ABC):
    """Workflow-task dispatching at the submission site (Algorithm 1)."""

    name: str = "abstract"

    @abc.abstractmethod
    def plan(self, ctx: SchedulingContext) -> list[DispatchDecision]:
        """Return dispatch decisions in execution order (may be empty)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class Phase2Policy(abc.ABC):
    """Ready-task selection at the resource node (Algorithm 2)."""

    name: str = "abstract"

    @abc.abstractmethod
    def select(self, runnable: Sequence[TaskDispatch], now: float) -> TaskDispatch:
        """Pick the next task to execute among ``runnable`` (non-empty)."""

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"
