"""Extra baseline policies beyond the paper (extensions).

Two classic dynamic-mapping baselines from the Maheswaran et al. family
that the paper does not evaluate but that complete the comparison space:

* **OLB** (opportunistic load balancing): dispatch each schedule point to
  the candidate with the smallest *queueing delay*, ignoring execution and
  transfer time — the textbook "balance first, speed never" strawman.
* **Random**: uniform random candidate — the zero-information floor.

Both pair with FCFS at the second phase.  They let downstream users sanity
check that any serious heuristic (including every one of the paper's)
clears these floors.
"""

from __future__ import annotations

import numpy as np

from repro.core.heuristics.base import (
    DispatchDecision,
    Phase1Policy,
    SchedulingContext,
)

__all__ = ["OlbPhase1", "RandomPhase1"]


class OlbPhase1(Phase1Policy):
    """Least-loaded-first placement (ignores execution/transfer times)."""

    name = "olb"

    def plan(self, ctx: SchedulingContext) -> list[DispatchDecision]:
        decisions: list[DispatchDecision] = []
        for wx in ctx.workflows:
            for tid in sorted(wx.schedule_points):
                task = wx.wf.tasks[tid]
                delays = ctx.view.queue_delays()
                k = int(np.argmin(delays))
                target = int(ctx.view.ids[k])
                ft = float(
                    ctx.view.ft_vector(task.load, task.image_size,
                                       ctx.task_inputs(wx, tid))[k]
                )
                decisions.append(
                    DispatchDecision(wx=wx, tid=tid, target=target, estimated_ft=ft)
                )
                ctx.view.add_load(target, task.load)
        return decisions


class RandomPhase1(Phase1Policy):
    """Uniform random placement over the RSS (zero-information floor)."""

    name = "random"

    def __init__(self, seed: int = 0):
        self._rng = np.random.default_rng(seed)

    def plan(self, ctx: SchedulingContext) -> list[DispatchDecision]:
        decisions: list[DispatchDecision] = []
        for wx in ctx.workflows:
            for tid in sorted(wx.schedule_points):
                task = wx.wf.tasks[tid]
                k = int(self._rng.integers(len(ctx.view)))
                target = int(ctx.view.ids[k])
                ft = float(
                    ctx.view.ft_vector(task.load, task.image_size,
                                       ctx.task_inputs(wx, tid))[k]
                )
                decisions.append(
                    DispatchDecision(wx=wx, tid=tid, target=target, estimated_ft=ft)
                )
                ctx.view.add_load(target, task.load)
        return decisions
