"""Dynamic Shortest Makespan First — the paper's contribution (§III.C/D).

Phase 1 (Algorithm 1): compute RPM for every schedule point (Eq. 7) and
each workflow's remaining makespan (Eq. 8); handle workflows in *ascending*
makespan order (shortest-remaining-makespan first, the SJF-like rule that
minimizes average waiting), and within a workflow dispatch schedule points
in *descending* RPM order (the most critical chain first); each task goes
to the RSS candidate with the earliest estimated finish time (Formula 9),
charging the local record (line 15).

Phase 2 (Algorithm 2): among runnable ready-set tasks pick the one whose
workflow has the shortest stamped remaining makespan (Formula 10),
tie-breaking by the longest RPM.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.heuristics.base import (
    DispatchDecision,
    Phase1Policy,
    Phase2Policy,
    SchedulingContext,
)
from repro.core.rpm import compute_priorities
from repro.grid.state import TaskDispatch

__all__ = ["DsmfPhase1", "DsmfPhase2"]


class DsmfPhase1(Phase1Policy):
    """Algorithm 1 with the DSMF heuristic."""

    name = "dsmf"

    def plan(self, ctx: SchedulingContext) -> list[DispatchDecision]:
        # Lines 2–7: RPM of every schedule point, then ms(f) per workflow.
        prios = [
            compute_priorities(wx, ctx.view, ctx.avg_capacity, ctx.avg_bandwidth)
            for wx in ctx.workflows
        ]
        # Line 8: ascending remaining makespan (stable on wid for determinism).
        prios.sort(key=lambda p: (p.makespan, p.wx.wf.wid))

        decisions: list[DispatchDecision] = []
        for prio in prios:
            # Line 11: schedule points by descending RPM.
            order = sorted(prio.rpm, key=lambda t: (-prio.rpm[t], t))
            for tid in order:
                wx = prio.wx
                task = wx.wf.tasks[tid]
                inputs = ctx.task_inputs(wx, tid)
                # Line 13 / Formula (9): earliest estimated finish time.
                target, ft = ctx.view.best(task.load, task.image_size, inputs)
                decisions.append(
                    DispatchDecision(
                        wx=wx,
                        tid=tid,
                        target=target,
                        estimated_ft=ft,
                        stamps={"ms": prio.makespan, "rpm": prio.rpm[tid]},
                    )
                )
                # Line 15: update the local record of the selected node.
                ctx.view.add_load(target, task.load)
        return decisions


class DsmfPhase2(Phase2Policy):
    """Algorithm 2: shortest stamped workflow makespan, then longest RPM."""

    name = "dsmf"

    def select(self, runnable: Sequence[TaskDispatch], now: float) -> TaskDispatch:
        return min(runnable, key=lambda d: (d.ms_stamp, -d.rpm_stamp, d.seq))
