"""Algorithm bundle registry.

Maps the algorithm names used throughout the experiments (and in the
paper's figure legends) to (phase-1 policy, phase-2 policy) pairs — or, for
the full-ahead baselines, to (planner, FCFS).  Fresh policy instances are
constructed per call so concurrent systems never share state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.fullahead.heft import HeftPlanner
from repro.core.fullahead.planner import FullAheadPlanner
from repro.core.fullahead.smf import SmfPlanner
from repro.core.heuristics.base import Phase1Policy, Phase2Policy
from repro.core.heuristics.dheft import DheftPhase1, LongestRpmPhase2
from repro.core.heuristics.dsdf import DsdfPhase1, DsdfPhase2
from repro.core.heuristics.dsmf import DsmfPhase1, DsmfPhase2
from repro.core.heuristics.extras import OlbPhase1, RandomPhase1
from repro.core.heuristics.listfree import MaxMinPhase1, MinMinPhase1, SufferagePhase1
from repro.core.heuristics.phase2 import FcfsPhase2, LsfPhase2, LtfPhase2, StfPhase2

__all__ = ["AlgorithmBundle", "algorithm_names", "get_bundle", "PAPER_ALGORITHMS"]


@dataclass
class AlgorithmBundle:
    """A complete scheduling algorithm: both phases (or a static plan)."""

    name: str
    phase2: Phase2Policy
    phase1: Optional[Phase1Policy] = None
    planner: Optional[FullAheadPlanner] = None

    def __post_init__(self) -> None:
        if (self.phase1 is None) == (self.planner is None):
            raise ValueError(
                f"bundle {self.name!r} needs exactly one of phase1/planner"
            )

    @property
    def full_ahead(self) -> bool:
        """True for the static (full-ahead scheduling model) baselines."""
        return self.planner is not None


_FACTORIES: dict[str, Callable[[], AlgorithmBundle]] = {
    # --- the paper's eight algorithms -----------------------------------
    "dsmf": lambda: AlgorithmBundle("dsmf", DsmfPhase2(), phase1=DsmfPhase1()),
    "dheft": lambda: AlgorithmBundle("dheft", LongestRpmPhase2(), phase1=DheftPhase1()),
    "dsdf": lambda: AlgorithmBundle("dsdf", DsdfPhase2(), phase1=DsdfPhase1()),
    "min-min": lambda: AlgorithmBundle("min-min", StfPhase2(), phase1=MinMinPhase1()),
    "max-min": lambda: AlgorithmBundle("max-min", LtfPhase2(), phase1=MaxMinPhase1()),
    "sufferage": lambda: AlgorithmBundle(
        "sufferage", LsfPhase2(), phase1=SufferagePhase1()
    ),
    "heft": lambda: AlgorithmBundle("heft", FcfsPhase2(), planner=HeftPlanner()),
    "smf": lambda: AlgorithmBundle("smf", FcfsPhase2(), planner=SmfPlanner()),
    # --- second-phase FCFS ablations (§IV.B prose / "Table II") ---------
    "min-min-fcfs": lambda: AlgorithmBundle(
        "min-min-fcfs", FcfsPhase2(), phase1=MinMinPhase1()
    ),
    "max-min-fcfs": lambda: AlgorithmBundle(
        "max-min-fcfs", FcfsPhase2(), phase1=MaxMinPhase1()
    ),
    "sufferage-fcfs": lambda: AlgorithmBundle(
        "sufferage-fcfs", FcfsPhase2(), phase1=SufferagePhase1()
    ),
    "dheft-fcfs": lambda: AlgorithmBundle(
        "dheft-fcfs", FcfsPhase2(), phase1=DheftPhase1()
    ),
    "dsmf-fcfs": lambda: AlgorithmBundle(
        "dsmf-fcfs", FcfsPhase2(), phase1=DsmfPhase1()
    ),
    # --- extra baselines beyond the paper (sanity floors) ----------------
    "olb": lambda: AlgorithmBundle("olb", FcfsPhase2(), phase1=OlbPhase1()),
    "random": lambda: AlgorithmBundle("random", FcfsPhase2(), phase1=RandomPhase1()),
}

#: The eight algorithms of Fig. 4–10, in the paper's legend order.
PAPER_ALGORITHMS: tuple[str, ...] = (
    "dheft",
    "heft",
    "max-min",
    "min-min",
    "dsdf",
    "sufferage",
    "dsmf",
    "smf",
)


def algorithm_names() -> list[str]:
    """All registered bundle names."""
    return sorted(_FACTORIES)


def get_bundle(name: str) -> AlgorithmBundle:
    """Instantiate the bundle registered under ``name``.

    Raises
    ------
    KeyError
        With the list of valid names, if ``name`` is unknown.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; available: {', '.join(algorithm_names())}"
        ) from None
    return factory()
