"""Scheduling heuristics: DSMF and the paper's seven comparison policies.

Every algorithm is a *bundle* of a phase-1 policy (run at home nodes each
scheduling interval, Algorithm 1's body) and a phase-2 policy (run at
resource nodes when the CPU frees up, Algorithm 2's body):

=============  ==============================  =============================
bundle         phase 1 (scheduler node)        phase 2 (resource node)
=============  ==============================  =============================
``dsmf``       shortest workflow makespan,     shortest workflow makespan,
               longest RPM within workflow     tie-break longest RPM
``dheft``      longest RPM first (all tasks)   longest RPM first
``dsdf``       shortest deadline first         shortest deadline first
``min-min``    min–min over schedule points    shortest task first (STF)
``max-min``    max–min                         longest task first (LTF)
``sufferage``  largest sufferage picks first   largest sufferage first (LSF)
``heft``       full-ahead global HEFT plan     FCFS
``smf``        full-ahead SMF plan             FCFS
=============  ==============================  =============================

plus ``*-fcfs`` ablation bundles replacing the phase-2 heuristic with FCFS
(the paper's §IV.B prose comparison).
"""

from repro.core.heuristics.base import (
    DispatchDecision,
    Phase1Policy,
    Phase2Policy,
    SchedulingContext,
)
from repro.core.heuristics.registry import (
    AlgorithmBundle,
    algorithm_names,
    get_bundle,
)

__all__ = [
    "AlgorithmBundle",
    "DispatchDecision",
    "Phase1Policy",
    "Phase2Policy",
    "SchedulingContext",
    "algorithm_names",
    "get_bundle",
]
