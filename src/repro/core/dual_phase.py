"""The dual-phase just-in-time scheduling engine (paper §III.D).

:class:`Phase1Runner` executes Algorithm 1 for every home node once per
scheduling interval: it assembles the node's :class:`SchedulingContext`
(workflows with schedule points, the RSS-backed resource view, the
gossip-aggregated averages) and hands the bundle's phase-1 policy's
decisions to the grid system for execution.

The second phase (Algorithm 2) is event-driven — it runs whenever a CPU
frees up — and therefore lives in the grid system's ``try_start`` path,
which calls the bundle's phase-2 policy.
"""

from __future__ import annotations

from time import perf_counter
from typing import TYPE_CHECKING

from repro.core.estimates import ResourceView
from repro.core.heuristics.base import SchedulingContext
from repro.grid.state import WorkflowStatus

if TYPE_CHECKING:  # pragma: no cover
    from repro.grid.system import P2PGridSystem

__all__ = ["Phase1Runner"]


class Phase1Runner:
    """Drives Algorithm 1 across all home nodes each scheduling cycle."""

    def __init__(self, system: "P2PGridSystem"):
        self.system = system
        self.cycles_run = 0
        self.dispatches = 0
        self.dead_target_skips = 0

    # ------------------------------------------------------------------ API
    def run_cycle(self) -> None:
        """One scheduling interval: every home node plans and dispatches."""
        system = self.system
        self.cycles_run += 1
        for home in system.home_nodes:
            if not home.alive:
                continue
            self.run_for_home(home.nid)

    def run_for_home(self, home_id: int, only_wids: set[str] | None = None) -> None:
        """Algorithm 1 at one home node.

        ``only_wids`` restricts planning to specific workflows — used by the
        immediate-dispatch ablation to react to single completions.
        """
        system = self.system
        workflows = [
            wx
            for wx in system.workflows_by_home.get(home_id, [])
            if wx.status is WorkflowStatus.RUNNING
            and wx.schedule_points
            and (only_wids is None or wx.wf.wid in only_wids)
        ]
        if not workflows:
            return
        view = self._build_view(home_id)
        ctx = SchedulingContext(
            home_id=home_id,
            now=system.sim.now,
            workflows=workflows,
            view=view,
            avg_capacity=system.avg_capacity_estimate(home_id),
            avg_bandwidth=system.avg_bandwidth_estimate(home_id),
        )
        telemetry = system.telemetry
        if telemetry.enabled:
            t0 = perf_counter()
            decisions = system.bundle.phase1.plan(ctx)
            telemetry.observe(
                f"sched.phase1_plan_seconds.{system.config.algorithm}",
                perf_counter() - t0,
            )
        else:
            decisions = system.bundle.phase1.plan(ctx)
        for decision in decisions:
            if system.execute_decision(decision):
                self.dispatches += 1
            else:
                self.dead_target_skips += 1

    # ------------------------------------------------------------ internals
    def _build_view(self, home_id: int) -> ResourceView:
        """RSS(home) ∪ {home} as a vectorizable candidate table.

        In ``gossip`` mode capacities/loads come from the (possibly stale)
        epidemic records; in ``oracle`` mode from the live nodes directly.
        """
        system = self.system
        home = system.nodes[home_id]
        ids = [home_id]
        caps = [home.capacity]
        loads = [home.total_load()]
        if system.config.rss_mode == "oracle":
            for node in system.nodes:
                if node.alive and node.nid != home_id:
                    ids.append(node.nid)
                    caps.append(node.capacity)
                    loads.append(node.total_load())
        else:
            # Zero-copy column reads off the struct-of-arrays RSS (a row
            # never contains its owner, so no home filter is needed).
            rss_ids, rss_caps, rss_loads, rss_ts = system.epidemic.rss_columns(
                home_id
            )
            ids.extend(rss_ids.tolist())
            caps.extend(rss_caps.tolist())
            loads.extend(rss_loads.tolist())
            telemetry = system.telemetry
            if telemetry.enabled:
                # RSS staleness as seen by Algorithm 1 (telemetry only).
                observe = telemetry.observe
                for age in (system.sim.now - rss_ts).tolist():
                    observe("sched.rss_age_at_plan_seconds", age)
        now = system.sim.now

        def writeback(target: int, new_load: float) -> None:
            # Algorithm 1 line 15: the dispatched load is also written into
            # the home's own gossip record of the target so it persists
            # until a fresher record arrives.
            if target != home_id:
                system.epidemic.apply_local_update(home_id, target, new_load, now)

        # Trusted fast path: the lists above are plain ints/floats from
        # node/gossip state, so per-element validation is skipped.
        return ResourceView.trusted(
            ids,
            caps,
            loads,
            bandwidth=system.scheduler_bandwidth,
            home_id=home_id,
            writeback=writeback,
        )
