"""repro.workload — pluggable workload sources, arrival processes, and the
scenario registry.

This package owns *what* is submitted to the grid and *when*:

* :mod:`~repro.workload.sources` — workflow generators behind the
  :class:`~repro.workload.sources.WorkloadSource` protocol (Table I
  random DAGs, structured families, a synthetic heavy-tailed family, and
  external DAG import),
* :mod:`~repro.workload.arrivals` — arrival processes behind
  :class:`~repro.workload.arrivals.ArrivalProcess` (batch at t=0 — the
  paper's setting — Poisson, bursty on/off, diurnal),
* :mod:`~repro.workload.importers` — WfCommons/DAX/JSON DAG import and
  submission-trace replay,
* :mod:`~repro.workload.scenarios` — named presets combining the above,
  resolvable from configs, the CLI and the API,
* :mod:`~repro.workload.build` — the assembly step turning a config into
  a sorted :class:`~repro.workload.build.WorkflowSubmission` plan.
"""

from repro.workload.arrivals import (
    ArrivalProcess,
    arrival_process_names,
    make_arrival_process,
)
from repro.workload.build import WorkflowSubmission, build_submissions
from repro.workload.importers import import_dag, import_dags, load_trace, save_trace
from repro.workload.scenarios import (
    Scenario,
    apply_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.workload.sources import (
    WorkloadSource,
    make_source,
    structured_family_names,
    workload_source_names,
)

__all__ = [
    "ArrivalProcess",
    "Scenario",
    "WorkflowSubmission",
    "WorkloadSource",
    "apply_scenario",
    "arrival_process_names",
    "build_submissions",
    "get_scenario",
    "import_dag",
    "import_dags",
    "load_trace",
    "make_arrival_process",
    "make_source",
    "register_scenario",
    "save_trace",
    "scenario_names",
    "structured_family_names",
    "workload_source_names",
]
