"""Scenario registry: named workload presets.

A :class:`Scenario` is a named, documented bundle of
:class:`~repro.experiments.config.ExperimentConfig` overrides — purely
declarative, so scenarios stay picklable, cacheable (the overrides land in
the config the campaign layer content-hashes) and composable with scale
profiles and ``--set`` overrides.  Resolution points: ``ExperimentConfig``
(the ``scenario`` provenance field is validated against this registry),
``repro campaign --scenario NAME``, :func:`repro.api.run_campaign` /
:func:`repro.api.quick_run`, and the benchmark sweeps.

The ``paper-fig4`` scenario is the anchor: zero overrides, i.e. exactly
the paper's §IV.A evaluation (Table I random workflows, everything
submitted at t = 0) — it must and does replay the seed bit-identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import TYPE_CHECKING, Mapping

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.config import ExperimentConfig

__all__ = [
    "Scenario",
    "apply_scenario",
    "get_scenario",
    "register_scenario",
    "scenario_names",
]


@dataclass(frozen=True)
class Scenario:
    """A named scenario preset (config overrides + documentation).

    ``kind`` groups presets by the axis they exercise: ``workload`` (what
    arrives, when) or ``availability`` (who is alive, when) — purely
    informational, for listings.
    """

    name: str
    description: str
    overrides: Mapping[str, object] = field(default_factory=dict)
    kind: str = "workload"

    def __post_init__(self) -> None:
        object.__setattr__(self, "overrides", MappingProxyType(dict(self.overrides)))

    @property
    def provenance(self) -> str:
        """Where this preset's inputs come from: ``synthetic`` (generated
        in-process from the config's RNG streams) or an imported-trace tag
        naming the external file axis — ``trace-replay`` (submission
        trace), ``imported-dag`` (external DAG files), ``trace-churn``
        (availability trace), or combinations thereof.
        """
        tags = []
        source = self.overrides.get("workload_source")
        if source == "trace":
            tags.append("trace-replay")
        elif source == "imported":
            tags.append("imported-dag")
        if (
            self.overrides.get("churn_model") == "trace"
            or "availability_path" in self.overrides
        ):
            tags.append("trace-churn")
        return "+".join(tags) if tags else "synthetic"


_REGISTRY: dict[str, Scenario] = {}


def register_scenario(
    name: str, description: str, kind: str = "workload", **overrides
) -> Scenario:
    """Add a scenario to the registry (library users may add their own)."""
    if name in _REGISTRY:
        raise ValueError(f"scenario {name!r} is already registered")
    if "scenario" in overrides or "seed" in overrides or "algorithm" in overrides:
        raise ValueError("scenario overrides cannot set scenario/seed/algorithm")
    sc = Scenario(name=name, description=description, overrides=overrides, kind=kind)
    _REGISTRY[name] = sc
    return sc


def scenario_names() -> list[str]:
    """Registered scenario names, sorted."""
    return sorted(_REGISTRY)


def get_scenario(name: str) -> Scenario:
    """Look up a scenario; raises ``ValueError`` with the available names."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {', '.join(scenario_names())}"
        ) from None


def apply_scenario(config: "ExperimentConfig", name: str) -> "ExperimentConfig":
    """Apply a scenario's overrides (and stamp its name) onto a config."""
    sc = get_scenario(name)
    return config.with_(scenario=name, **dict(sc.overrides))


# --------------------------------------------------------------------------
# Built-in presets
# --------------------------------------------------------------------------

register_scenario(
    "paper-fig4",
    "The paper's §IV.A evaluation: Table I random workflows, all submitted "
    "at t=0 (bit-identical to the seed reproduction).",
)
register_scenario(
    "poisson-steady",
    "Table I workflows arriving as a steady Poisson stream over the first "
    "half of the horizon.",
    arrival_process="poisson",
)
register_scenario(
    "burst-storm",
    "Table I workflows arriving in 15-minute storms separated by 90-minute "
    "quiet gaps.",
    arrival_process="bursty",
    burst_on=900.0,
    burst_off=5400.0,
)
register_scenario(
    "diurnal-week",
    "A week-long run with day/night arrival intensity (24 h period, "
    "near-silent troughs).",
    arrival_process="diurnal",
    total_time=7 * 86400.0,
    diurnal_period=86400.0,
)
register_scenario(
    "fig11-grid",
    "Fig. 11-style scalability setting: a large grid (4x the bench node "
    "count, lighter per-node load) with Table I workflows batch submitted "
    "— the preset the perf harness uses to time the hot path at scale.",
    n_nodes=240,
    load_factor=1,
    total_time=12 * 3600.0,
)
register_scenario(
    "structured-mix",
    "Chain, fork-join, diamond and montage-like workflows in rotation, "
    "sizes drawn from the Table I ranges, batch submitted.",
    workload_source="structured",
    structured_family="mixed",
)
register_scenario(
    "montage-stream",
    "Montage-like (astronomy mosaic) workflows arriving as a Poisson "
    "stream.",
    workload_source="structured",
    structured_family="montage",
    arrival_process="poisson",
)
register_scenario(
    "synthetic-heavytail",
    "Synthetic realistic family: log-normal task loads/data sizes and "
    "heavy-tailed layer widths, batch submitted.",
    workload_source="synthetic",
)
register_scenario(
    "imported-dag",
    "External DAGs (repro JSON, WfCommons JSON, or Pegasus DAX) cycled "
    "over the submission slots; requires --set workload_path=FILE-OR-DIR.",
    workload_source="imported",
)
register_scenario(
    "trace-replay",
    "Replay an exact (submit_time, home, workflow) submission trace; "
    "requires --set workload_path=TRACE.json.",
    workload_source="trace",
)

# ----------------------------- availability presets -----------------------
# The churn axis (repro.availability): who is alive, when — composed with
# the workload axis above (a preset may set fields from both).

register_scenario(
    "weibull-sessions",
    "Heavy-tailed Weibull node sessions (shape 0.7, 2 h mean) with "
    "exponential rejoin delays; lost tasks are rescheduled.",
    kind="availability",
    churn_model="sessions",
    session_shape=0.7,
    session_mean=2 * 3600.0,
    rejoin_delay_mean=1800.0,
    churn_mode="fail",
    recovery_policy="reschedule",
)
register_scenario(
    "flash-crowd-failure",
    "Correlated batch failures: a random Waxman subtree of volatile nodes "
    "drops at once every ~2 h; checkpointed inputs re-enter lost tasks.",
    kind="availability",
    churn_model="correlated",
    dynamic_factor=0.15,
    failure_interval=2 * 3600.0,
    rejoin_delay_mean=1800.0,
    churn_mode="fail",
    recovery_policy="checkpoint",
)
register_scenario(
    "grid-rampup",
    "Grid growth: volatile nodes start offline and join one by one over "
    "the first 40% of the horizon (suspend semantics; nothing is lost).",
    kind="availability",
    churn_model="ramp",
    ramp_direction="up",
    ramp_window=0.4,
)
register_scenario(
    "trace-churn",
    "Replay an exact join/leave availability trace (FTA-style); requires "
    "--set availability_path=TRACE.json.",
    kind="availability",
    churn_model="trace",
)

# ----------------------------- imported-trace presets ----------------------
# The real-trace corpus: curated archive slices committed under data/
# (see docs/trace-formats.md and scripts/curate_trace.py).  Paths are
# repo-root relative — run from a repo checkout, or override
# workload_path/availability_path with an absolute path.  Each preset is
# golden-pinned (tests/regression/golden_traces.json).

register_scenario(
    "gwa-replay-small",
    "Replay the curated Grid Workloads Archive (GWF) slice: 35 completed "
    "jobs mapped to single-task/fork-join workflows over 16 homes "
    "(data/traces/gwa_sample.trace.json; curated by scripts/curate_trace.py).",
    workload_source="trace",
    workload_path="data/traces/gwa_sample.trace.json",
    n_nodes=40,
    total_time=8 * 3600.0,
)
register_scenario(
    "pwa-replay-small",
    "Replay the curated Parallel Workloads Archive (SWF) slice: 39 "
    "completed jobs over 16 homes "
    "(data/traces/pwa_sample.trace.json; curated by scripts/curate_trace.py).",
    workload_source="trace",
    workload_path="data/traces/pwa_sample.trace.json",
    n_nodes=40,
    total_time=8 * 3600.0,
)
register_scenario(
    "fta-churn-small",
    "Replay the curated FTA-style availability slice: downtime intervals "
    "of 14 volatile nodes on a 40-node grid "
    "(data/traces/fta_sample.avail.json; curated by scripts/curate_trace.py).",
    kind="availability",
    churn_model="trace",
    availability_path="data/traces/fta_sample.avail.json",
    n_nodes=40,
    load_factor=2,
    total_time=8 * 3600.0,
)

# ----------------------------- scale presets -------------------------------
# Production-scale trajectory points combining both axes — what the
# scale-out simulation core (struct-of-arrays state, indexed event engine,
# batched gossip) exists to make affordable.

register_scenario(
    "metro-1k",
    "Production-scale trajectory point: 1000 nodes (4x the paper's largest "
    "grid), structured-mix workloads, heavy-tailed Weibull session churn "
    "with rescheduling — the preset the perf harness uses to track the "
    "1k-node frontier.",
    kind="scale",
    n_nodes=1000,
    load_factor=1,
    total_time=6 * 3600.0,
    workload_source="structured",
    structured_family="mixed",
    churn_model="sessions",
    session_shape=0.7,
    session_mean=2 * 3600.0,
    rejoin_delay_mean=1800.0,
    churn_mode="fail",
    recovery_policy="reschedule",
)
register_scenario(
    "metro-10k",
    "Metro-scale trajectory point: 10,000 nodes (40x the paper's largest "
    "grid), structured-mix workloads, Weibull session churn with "
    "rescheduling — the frontier the batched gossip rounds exist for; a "
    "shorter horizon than metro-1k keeps a full run in bench territory.",
    kind="scale",
    n_nodes=10000,
    load_factor=1,
    total_time=3 * 3600.0,
    workload_source="structured",
    structured_family="mixed",
    churn_model="sessions",
    session_shape=0.7,
    session_mean=2 * 3600.0,
    rejoin_delay_mean=1800.0,
    churn_mode="fail",
    recovery_policy="reschedule",
)
