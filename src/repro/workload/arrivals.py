"""Arrival processes: *when* each workflow of a workload is submitted.

The paper's evaluation submits every workflow at t = 0 (one burst), which
is :class:`BatchArrivals` — the default, and the only process that draws
nothing from the RNG (so the paper path replays bit-identically).  The
other processes model the structure real grid workloads exhibit
(Guazzone's workload-mining studies; GridSim's workload layer):

* :class:`PoissonArrivals` — memoryless steady stream.  Conditioned on the
  total count, Poisson arrival instants over a window are distributed as
  the order statistics of uniforms, so we sample exactly that: ``n``
  sorted uniforms over the arrival window.  No thinning, no rate
  parameter to mis-tune, bounded by construction.
* :class:`BurstyArrivals` — on/off storms: arrivals land only inside
  periodic "on" windows (``burst_on`` seconds of storm every
  ``burst_on + burst_off`` seconds).
* :class:`DiurnalArrivals` — a smooth day/night intensity,
  ``λ(t) ∝ 1 + A·sin(2πt/period − π/2)`` (trough at t = 0, peak half a
  period in), sampled by inverting the cumulative intensity.

Every process receives the number of workflows, the experiment config and
a dedicated RNG stream, and returns ``n`` non-decreasing submission times
inside the *arrival window* ``arrival_spread * total_time`` — arrivals
stop early enough that late workflows still have a chance to finish
before the horizon.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Protocol

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.config import ExperimentConfig

__all__ = [
    "ArrivalProcess",
    "BatchArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "arrival_process_names",
    "make_arrival_process",
]

#: Peak-to-mean modulation of the diurnal intensity (0 = flat, 1 = the
#: trough is fully silent).
DIURNAL_AMPLITUDE = 0.9


class ArrivalProcess(Protocol):
    """Strategy producing the submission instants of a workload."""

    name: str

    def times(
        self, n: int, config: "ExperimentConfig", rng: np.random.Generator
    ) -> list[float]:
        """Return ``n`` non-decreasing submission times (seconds)."""
        ...


def _window(config: "ExperimentConfig") -> float:
    return config.arrival_spread * config.total_time


class BatchArrivals:
    """Everything at t = 0 — the paper's single-burst evaluation setting.

    Draws nothing from the RNG, so enabling the arrival layer does not
    perturb any other stream of the run.
    """

    name = "batch"

    def times(self, n, config, rng):
        return [0.0] * n


class PoissonArrivals:
    """A steady Poisson stream conditioned on ``n`` arrivals in the window."""

    name = "poisson"

    def times(self, n, config, rng):
        w = _window(config)
        return sorted(float(t) for t in rng.uniform(0.0, w, size=n))


class BurstyArrivals:
    """On/off storms: uniform arrivals inside periodic ``burst_on`` windows.

    The window sequence covers the arrival window; the last storm may
    overhang it by at most ``burst_on`` seconds.
    """

    name = "bursty"

    def times(self, n, config, rng):
        on, off = config.burst_on, config.burst_off
        period = on + off
        n_windows = max(1, int(np.ceil(_window(config) / period)))
        total_on = n_windows * on
        u = np.sort(rng.uniform(0.0, total_on, size=n))
        k = np.floor(u / on)
        return [float(t) for t in k * period + (u - k * on)]


class DiurnalArrivals:
    """Day/night intensity sampled by inverse-CDF over the arrival window."""

    name = "diurnal"

    #: Grid resolution for the numerical inversion of the cumulative
    #: intensity (the intensity is smooth; 4096 panels are ample).
    GRID = 4096

    def times(self, n, config, rng):
        w = _window(config)
        t = np.linspace(0.0, w, self.GRID + 1)
        lam = 1.0 + DIURNAL_AMPLITUDE * np.sin(
            2.0 * np.pi * t / config.diurnal_period - 0.5 * np.pi
        )
        dt = t[1] - t[0]
        cum = np.concatenate(([0.0], np.cumsum((lam[1:] + lam[:-1]) * 0.5 * dt)))
        u = np.sort(rng.uniform(0.0, cum[-1], size=n))
        return [float(x) for x in np.interp(u, cum, t)]


_PROCESSES: dict[str, type] = {
    p.name: p for p in (BatchArrivals, PoissonArrivals, BurstyArrivals, DiurnalArrivals)
}


def arrival_process_names() -> list[str]:
    """Registered arrival-process names (``ExperimentConfig.arrival_process``)."""
    return sorted(_PROCESSES)


def make_arrival_process(config: "ExperimentConfig") -> ArrivalProcess:
    """Instantiate the arrival process selected by the config."""
    try:
        cls = _PROCESSES[config.arrival_process]
    except KeyError:
        raise ValueError(
            f"unknown arrival_process {config.arrival_process!r}; "
            f"available: {', '.join(arrival_process_names())}"
        ) from None
    return cls()
