"""Workload sources: *what* workflows a scenario submits.

A :class:`WorkloadSource` turns the experiment config, a dedicated RNG
stream and the list of home nodes into ``(home_id, Workflow)`` pairs —
``load_factor * n_nodes`` of them, distributed round-robin over the homes
(exactly the paper's "three workflows initially submitted per node").

Sources
-------
* :class:`Table1Source` — the paper's §IV.A random layered DAGs.  This is
  the seed behavior moved out of ``P2PGridSystem`` verbatim: same stream,
  same draw order, same ``wf{i:05d}n{home}`` ids, so the default scenario
  replays bit-identically.
* :class:`StructuredSource` — the structured families (chain, fork-join,
  diamond, montage-like) with per-workflow sizes drawn from the Table I
  ranges; ``structured_family="mixed"`` cycles through all four.
* :class:`SyntheticSource` — a "realistic" family per grid workload-mining
  studies: log-normal task loads and dependent-data sizes, heavy-tailed
  (Zipf) layer widths.
* :class:`ImportedSource` — external DAGs from ``workload_path`` (a file
  or a directory of files) in the repro JSON schema, WfCommons JSON, or
  Pegasus DAX XML; templates are cycled over the submission slots and
  re-keyed with unique workflow ids.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Protocol, Sequence

import numpy as np

from repro.workflow.dag import Workflow
from repro.workflow.generator import (
    WorkflowParams,
    chain_workflow,
    diamond_workflow,
    fork_join_workflow,
    montage_like_workflow,
    random_workflow,
)
from repro.workflow.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.config import ExperimentConfig

__all__ = [
    "ImportedSource",
    "StructuredSource",
    "SyntheticSource",
    "Table1Source",
    "WorkloadSource",
    "structured_family_names",
    "workload_source_names",
    "make_source",
]

STRUCTURED_FAMILIES = ("chain", "fork-join", "diamond", "montage", "mixed")


class WorkloadSource(Protocol):
    """Strategy producing the workflows of a workload."""

    name: str

    def generate(
        self,
        config: "ExperimentConfig",
        rng: np.random.Generator,
        homes: Sequence[int],
    ) -> list[tuple[int, Workflow]]:
        """Return ``(home_id, workflow)`` pairs in submission-slot order."""
        ...


def _slots(config: "ExperimentConfig", homes: Sequence[int]):
    """Round-robin (slot index, home id) assignment — the seed behavior.

    ``workload_scale`` is the capacity-sweep driver's continuous knob on
    the submission count; at its default 1.0 the rounding is exact and the
    slot list (hence the whole RNG stream) matches the seed bit-for-bit.
    """
    total = max(1, int(round(config.load_factor * config.n_nodes * config.workload_scale)))
    return [(i, homes[i % len(homes)]) for i in range(total)]


class Table1Source:
    """The paper's random layered DAGs (Table I ranges), seed-identical."""

    name = "table1"

    def generate(self, config, rng, homes):
        params = WorkflowParams(
            task_range=config.task_range,
            fanout_range=config.fanout_range,
            load_range=config.load_range,
            image_range=config.image_range,
            data_range=config.data_range,
        )
        return [
            (home, random_workflow(f"wf{i:05d}n{home}", rng, params))
            for i, home in _slots(config, homes)
        ]


class StructuredSource:
    """Chain / fork-join / diamond / montage families, sizes from Table I."""

    name = "structured"

    def generate(self, config, rng, homes):
        family = config.structured_family
        out: list[tuple[int, Workflow]] = []
        for i, home in _slots(config, homes):
            fam = (
                STRUCTURED_FAMILIES[i % 4] if family == "mixed" else family
            )
            wid = f"{fam}{i:05d}n{home}"
            load = float(rng.uniform(*config.load_range))
            data = float(rng.uniform(*config.data_range))
            image = float(rng.uniform(*config.image_range))
            if fam == "chain":
                hi = max(2, config.task_range[1])
                lo = min(max(2, config.task_range[0]), hi)
                length = int(rng.integers(lo, hi + 1))
                wf = chain_workflow(wid, length, load=load, data=data, image=image)
            elif fam == "fork-join":
                width = int(rng.integers(1, max(2, config.task_range[1] - 1)))
                wf = fork_join_workflow(wid, width, load=load, data=data, image=image)
            elif fam == "diamond":
                wf = diamond_workflow(wid, load=load, data=data, image=image)
            elif fam == "montage":
                hi = max(3, config.task_range[1] // 4)
                n_inputs = int(rng.integers(2, hi + 1))
                wf = montage_like_workflow(
                    wid, n_inputs, rng, load_scale=load, data_scale=data
                )
            else:
                raise ValueError(
                    f"unknown structured_family {family!r}; "
                    f"available: {', '.join(STRUCTURED_FAMILIES)}"
                )
            out.append((home, wf))
        return out


class SyntheticSource:
    """Log-normal loads/data, heavy-tailed layer widths (mined-trace shape)."""

    name = "synthetic"

    #: Zipf exponent for layer widths — a = 2 gives the occasional very
    #: wide bag-of-tasks layer amid mostly narrow ones.
    WIDTH_EXPONENT = 2.0

    @staticmethod
    def _lognormal(rng, lo: float, hi: float, size: int) -> np.ndarray:
        """Log-normal with median √(lo·hi) and ±2σ spanning [lo, hi]."""
        mu = 0.5 * (math.log(lo) + math.log(hi))
        sigma = (math.log(hi) - math.log(lo)) / 4.0
        return np.exp(rng.normal(mu, sigma, size=size))

    def generate(self, config, rng, homes):
        for name in ("load_range", "data_range"):
            if getattr(config, name)[0] <= 0:
                raise ValueError(
                    f"workload_source='synthetic' draws log-normally and "
                    f"needs a strictly positive {name} lower bound, got "
                    f"{getattr(config, name)}"
                )
        out: list[tuple[int, Workflow]] = []
        for i, home in _slots(config, homes):
            wf = self._one(f"syn{i:05d}n{home}", config, rng)
            out.append((home, wf))
        return out

    def _one(self, wid: str, config, rng: np.random.Generator) -> Workflow:
        lo_t, hi_t = config.task_range
        n = int(rng.integers(lo_t, hi_t + 1))
        loads = self._lognormal(rng, *config.load_range, size=n)
        images = rng.uniform(*config.image_range, size=n)
        tasks = [
            Task(tid=k, load=float(loads[k]), image_size=float(images[k]))
            for k in range(n)
        ]
        # Heavy-tailed layer widths: the DAG alternates narrow necks and
        # occasionally very wide fan-out stages.
        layer_of = np.zeros(n, dtype=np.int64)
        layer, k = 0, 1
        while k < n:
            width = min(int(rng.zipf(self.WIDTH_EXPONENT)), n - k)
            layer += 1
            layer_of[k : k + width] = layer
            k += width
        layers = [np.flatnonzero(layer_of == j) for j in range(layer + 1)]
        edges: dict[tuple[int, int], float] = {}
        for j in range(1, len(layers)):
            parents = layers[j - 1]
            for v in layers[j]:
                u = int(parents[int(rng.integers(0, len(parents)))])
                edges[(u, int(v))] = float(
                    self._lognormal(rng, *config.data_range, size=1)[0]
                )
        return Workflow(wid, tasks, edges).normalized()


class ImportedSource:
    """External DAG templates cycled over the submission slots."""

    name = "imported"

    def generate(self, config, rng, homes):
        if not config.workload_path:
            raise ValueError(
                "workload_source='imported' needs workload_path "
                "(a DAG file or a directory of DAG files); set it via "
                "`repro campaign --scenario imported-dag --set "
                "workload_path='path/to/dag.json'` or `repro run "
                "--scenario imported-dag --workload-path path/to/dag.json`"
            )
        from repro.workload.importers import import_dags

        templates = import_dags(config.workload_path)
        out: list[tuple[int, Workflow]] = []
        for i, home in _slots(config, homes):
            tpl = templates[i % len(templates)]
            wid = f"{tpl.wid}-{i:05d}n{home}"
            out.append((home, Workflow(wid, tpl.tasks.values(), tpl.edges)))
        return out


_SOURCES: dict[str, type] = {
    s.name: s for s in (Table1Source, StructuredSource, SyntheticSource, ImportedSource)
}


def workload_source_names() -> list[str]:
    """Names accepted by ``ExperimentConfig.workload_source`` (plus "trace",
    which is resolved by the build layer because it carries its own times)."""
    return sorted(_SOURCES) + ["trace"]


def structured_family_names() -> tuple[str, ...]:
    return STRUCTURED_FAMILIES


def make_source(config: "ExperimentConfig") -> WorkloadSource:
    """Instantiate the workload source selected by the config."""
    try:
        cls = _SOURCES[config.workload_source]
    except KeyError:
        raise ValueError(
            f"unknown workload_source {config.workload_source!r}; "
            f"available: {', '.join(workload_source_names())}"
        ) from None
    return cls()
