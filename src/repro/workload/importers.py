"""External workload import: repro JSON, WfCommons JSON, Pegasus DAX XML,
and submission-trace replay.

Scientific-workflow communities publish real application DAGs in a few
interchange formats.  :func:`import_dag` reads one file in any of

* the repro JSON schema of :mod:`repro.workflow.io` (``tasks`` + ``edges``),
* WfCommons-style JSON (``workflow.jobs``/``workflow.tasks`` entries with
  name-keyed ``parents`` and per-file ``input``/``output`` sizes), and
* Pegasus DAX XML (``<job>`` with ``<uses>`` files, ``<child>``/``<parent>``
  edges),

mapping runtimes to MI loads and file bytes to Mb edges.  ``import_dags``
accepts a directory and loads every recognized file, sorted by name.

A *submission trace* is the third-party end of the arrival layer: a JSON
list of ``(submit_time, home, workflow)`` entries
(:func:`save_trace`/:func:`load_trace`) that replays an exact workload —
what a deployed scheduler would log — through the simulator.
"""

from __future__ import annotations

import json
import xml.etree.ElementTree as ET
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.workflow.dag import Workflow, WorkflowError
from repro.workflow.io import workflow_from_dict, workflow_to_dict
from repro.workflow.task import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.workload.build import WorkflowSubmission

__all__ = [
    "import_dag",
    "import_dags",
    "load_trace",
    "save_trace",
]

#: MI of load per second of declared runtime (WfCommons/DAX runtimes are
#: benchmarked seconds; Table I's median node is ~4 MIPS, so this keeps
#: imported tasks in the paper's load range).
RUNTIME_TO_MI = 4.0

#: Mb per byte (DAX/WfCommons file sizes are bytes; edges carry megabits).
BYTES_TO_MB = 8.0 / 1e6

#: Image size assigned to imported tasks (Table I midpoint, Mb) — the
#: interchange formats describe data files, not program images.
DEFAULT_IMAGE_MB = 50.0


def import_dag(path: "str | Path") -> Workflow:
    """Read one DAG file, auto-detecting its format."""
    path = Path(path)
    if not path.is_file():
        raise WorkflowError(f"workload DAG not found: {path}")
    if path.suffix.lower() in (".xml", ".dax"):
        return _import_dax(path)
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise WorkflowError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise WorkflowError(f"{path}: expected a JSON object at top level")
    if "workflow" in payload:
        return _import_wfcommons(payload, default_wid=path.stem)
    return workflow_from_dict(payload)


def import_dags(path: "str | Path") -> list[Workflow]:
    """Read one DAG file, or every ``*.json``/``*.xml``/``*.dax`` in a
    directory (sorted by filename for determinism)."""
    path = Path(path)
    if path.is_dir():
        files = sorted(
            p for p in path.iterdir()
            if p.suffix.lower() in (".json", ".xml", ".dax")
        )
        if not files:
            raise WorkflowError(f"no workflow files (*.json, *.xml, *.dax) in {path}")
        return [import_dag(p) for p in files]
    return [import_dag(path)]


# --------------------------------------------------------------------------
# WfCommons-style JSON
# --------------------------------------------------------------------------

def _import_wfcommons(payload: dict, default_wid: str) -> Workflow:
    """WfCommons instance JSON -> Workflow (jobs keyed by name)."""
    spec = payload["workflow"]
    jobs = spec.get("jobs") or spec.get("tasks")
    if not jobs:
        raise WorkflowError("WfCommons payload has no workflow.jobs/tasks")
    wid = str(payload.get("name") or default_wid)

    tid_of: dict[str, int] = {}
    tasks: list[Task] = []
    outputs: dict[str, dict[str, float]] = {}  # job -> {file: Mb}
    inputs: dict[str, dict[str, float]] = {}
    for k, job in enumerate(jobs):
        name = str(job["name"])
        if name in tid_of:
            raise WorkflowError(f"duplicate job name {name!r} in WfCommons payload")
        tid_of[name] = k
        # Explicit None checks: a declared "runtime": 0 is a real zero-cost
        # task (stage-in/cleanup), not a missing value.
        runtime = job.get("runtime")
        if runtime is None:
            runtime = job.get("runtimeInSeconds")
        if runtime is None:
            runtime = 1.0
        runtime = float(runtime)
        tasks.append(
            Task(
                tid=k,
                load=max(runtime, 0.0) * RUNTIME_TO_MI,
                image_size=DEFAULT_IMAGE_MB,
                name=name,
            )
        )
        outputs[name] = {}
        inputs[name] = {}
        for f in job.get("files", ()):  # {"name", "size" (bytes), "link"}
            mb = float(f.get("size") or f.get("sizeInBytes") or 0.0) * BYTES_TO_MB
            if f.get("link") == "output":
                outputs[name][str(f["name"])] = mb
            else:
                inputs[name][str(f["name"])] = mb

    edges: dict[tuple[int, int], float] = {}
    for job in jobs:
        name = str(job["name"])
        for parent in job.get("parents", ()):
            parent = str(parent)
            if parent not in tid_of:
                raise WorkflowError(
                    f"job {name!r} lists unknown parent {parent!r}"
                )
            shared = set(outputs[parent]) & set(inputs[name])
            data = sum(outputs[parent][f] for f in shared)
            edges[(tid_of[parent], tid_of[name])] = data
    return Workflow(wid, tasks, edges).normalized()


# --------------------------------------------------------------------------
# Pegasus DAX XML
# --------------------------------------------------------------------------

def _local(tag: str) -> str:
    """Element tag without the XML namespace."""
    return tag.rsplit("}", 1)[-1]


def _import_dax(path: Path) -> Workflow:
    """Pegasus DAX (<adag><job/><child><parent/></child></adag>) -> Workflow."""
    try:
        root = ET.parse(path).getroot()
    except ET.ParseError as exc:
        raise WorkflowError(f"{path} is not valid DAX XML: {exc}") from exc

    tid_of: dict[str, int] = {}
    tasks: list[Task] = []
    outputs: dict[str, dict[str, float]] = {}
    inputs: dict[str, dict[str, float]] = {}
    for el in root:
        if _local(el.tag) != "job":
            continue
        jid = el.get("id")
        if jid is None or jid in tid_of:
            raise WorkflowError(f"{path}: job without unique id")
        k = len(tasks)
        tid_of[jid] = k
        runtime = float(el.get("runtime", 1.0))
        tasks.append(
            Task(
                tid=k,
                load=max(runtime, 0.0) * RUNTIME_TO_MI,
                image_size=DEFAULT_IMAGE_MB,
                name=el.get("name", jid),
            )
        )
        outputs[jid] = {}
        inputs[jid] = {}
        for uses in el:
            if _local(uses.tag) != "uses":
                continue
            fname = uses.get("file") or uses.get("name") or ""
            mb = float(uses.get("size", 0.0)) * BYTES_TO_MB
            if uses.get("link") == "output":
                outputs[jid][fname] = mb
            else:
                inputs[jid][fname] = mb
    if not tasks:
        raise WorkflowError(f"{path}: DAX file contains no <job> elements")

    edges: dict[tuple[int, int], float] = {}
    for el in root:
        if _local(el.tag) != "child":
            continue
        child = el.get("ref")
        if child not in tid_of:
            raise WorkflowError(f"{path}: <child ref={child!r}> unknown")
        for par in el:
            if _local(par.tag) != "parent":
                continue
            parent = par.get("ref")
            if parent not in tid_of:
                raise WorkflowError(f"{path}: <parent ref={parent!r}> unknown")
            shared = set(outputs[parent]) & set(inputs[child])
            data = sum(outputs[parent][f] for f in shared)
            edges[(tid_of[parent], tid_of[child])] = data
    return Workflow(path.stem, tasks, edges).normalized()


# --------------------------------------------------------------------------
# Submission traces
# --------------------------------------------------------------------------

def save_trace(path: "str | Path", submissions: "Iterable[WorkflowSubmission]") -> Path:
    """Archive ``(submit_time, home, workflow)`` entries as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "trace": [
            {
                "submit_time": s.submit_time,
                "home": s.home_id,
                "workflow": workflow_to_dict(s.workflow),
            }
            for s in submissions
        ]
    }
    path.write_text(json.dumps(payload, indent=1))
    return path


def load_trace(path: "str | Path") -> "list[WorkflowSubmission]":
    """Inverse of :func:`save_trace` (entries sorted by submit time)."""
    from repro.workload.build import WorkflowSubmission

    path = Path(path)
    if not path.is_file():
        raise WorkflowError(f"submission trace not found: {path}")
    try:
        payload = json.loads(path.read_text())
        entries = payload["trace"]
        subs = [
            WorkflowSubmission(
                submit_time=float(e["submit_time"]),
                home_id=int(e["home"]),
                workflow=workflow_from_dict(e["workflow"]),
            )
            for e in entries
        ]
    except WorkflowError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkflowError(f"malformed submission trace {path}: {exc}") from exc
    return sorted(subs, key=lambda s: s.submit_time)
