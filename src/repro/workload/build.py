"""Workload assembly: source × arrival process -> submission plan.

:func:`build_submissions` is what :class:`~repro.grid.system.P2PGridSystem`
calls to learn *what* to submit and *when*.  It draws the workflows from
the configured :mod:`~repro.workload.sources` (RNG stream ``"workflows"``,
the seed's stream name, so the paper scenario replays bit-identically) and
the submission instants from the configured
:mod:`~repro.workload.arrivals` (stream ``"arrivals"`` — untouched by the
batch process), pairs them in slot order, and returns the plan sorted by
submission time.

``workload_source="trace"`` bypasses both layers: the trace file already
carries ``(submit_time, home, workflow)`` triples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Sequence

from repro.workflow.dag import Workflow
from repro.workload.arrivals import make_arrival_process
from repro.workload.sources import make_source

if TYPE_CHECKING:  # pragma: no cover
    from repro.experiments.config import ExperimentConfig
    from repro.sim.rng import RngHub

__all__ = ["WorkflowSubmission", "build_submissions"]


@dataclass(frozen=True)
class WorkflowSubmission:
    """One planned submission: workflow ``workflow`` enters the system at
    home node ``home_id`` at simulated second ``submit_time``."""

    submit_time: float
    home_id: int
    workflow: Workflow

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise ValueError(
                f"submission of {self.workflow.wid} at negative time "
                f"{self.submit_time}"
            )


def build_submissions(
    config: "ExperimentConfig",
    rng_hub: "RngHub",
    homes: Sequence[int],
) -> list[WorkflowSubmission]:
    """Materialize the configured workload as a sorted submission plan."""
    if not homes:
        raise ValueError("cannot build a workload without home nodes")
    if config.workload_source == "trace":
        if not config.workload_path:
            raise ValueError(
                "workload_source='trace' needs workload_path pointing at a "
                "submission trace (see repro.workload.importers.save_trace; "
                "CLI: --set workload_path=... or --workload-path ...)"
            )
        from repro.workload.importers import load_trace

        return load_trace(config.workload_path)

    source = make_source(config)
    pairs = source.generate(config, rng_hub.stream("workflows"), homes)
    arrivals = make_arrival_process(config)
    times = arrivals.times(len(pairs), config, rng_hub.stream("arrivals"))
    if len(times) != len(pairs):
        raise ValueError(
            f"arrival process {arrivals.name!r} returned {len(times)} times "
            f"for {len(pairs)} workflows"
        )
    subs = [
        WorkflowSubmission(submit_time=t, home_id=home, workflow=wf)
        for t, (home, wf) in zip(times, pairs)
    ]
    # Stable sort: equal-time submissions keep slot order (the seed's
    # round-robin order at t=0).
    return sorted(subs, key=lambda s: s.submit_time)
