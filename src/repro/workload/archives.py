"""Streaming parsers for published workload/availability archive formats.

The grid-workload-mining literature (see "Mining the Workload of Real Grid
Computing Systems" in PAPERS.md) standardized three interchange formats
this module reads:

* **GWF** — the Grid Workloads Archive format: one whitespace-separated
  record per job, 29 columns, ``#`` comment/header lines.  We consume the
  leading 12 columns (JobID .. UserID).
* **SWF** — the Parallel Workloads Archive standard workload format: one
  record per job, 18 columns, ``;`` header lines.
* **FTA** — Failure Trace Archive style availability logs: one
  whitespace-separated *interval* per line (``node_id event_type
  start_time end_time``, ``event_type`` 1 = available, 0 = unavailable),
  ``#`` comment lines.

All three parsers stream (yield per line, never slurp the file), normalize
fields into plain dataclasses (:class:`ArchiveJob` /
:class:`AvailabilityInterval`), and are *strict*: any malformed line —
truncated records, non-numeric fields, negative times, out-of-order
timestamps, inverted intervals — raises :class:`ArchiveError` carrying the
file and 1-based line number.  Archives are append-only logs written by
production schedulers; a malformed line means truncation or corruption and
silently skipping it would bias every derived statistic.

The curation step that turns parsed archives into committed repro trace
slices lives in ``scripts/curate_trace.py``; the normalization constants
(seconds of runtime -> MI of load) are shared with the DAG importers in
:mod:`repro.workload.importers`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

__all__ = [
    "ArchiveError",
    "ArchiveJob",
    "AvailabilityInterval",
    "parse_fta",
    "parse_gwf",
    "parse_swf",
    "sniff_format",
]

#: Columns a GWF record must carry for us to normalize it
#: (JobID SubmitTime WaitTime RunTime NProcs AvgCPU UsedMem ReqNProcs
#: ReqTime ReqMem Status UserID ...).
_GWF_MIN_FIELDS = 12

#: The SWF standard defines exactly 18 columns; partial last lines are a
#: truncated download, not a shorter schema.
_SWF_FIELDS = 18

#: FTA interval rows: node_id event_type start_time end_time.
_FTA_FIELDS = 4


class ArchiveError(ValueError):
    """A workload/availability archive failed to parse.

    Carries the offending ``path`` and 1-based ``line`` number so curation
    errors point at the exact record.
    """

    def __init__(self, path: "str | Path", line: int, message: str):
        super().__init__(f"{path}:{line}: {message}")
        self.path = str(path)
        self.line = line


@dataclass(frozen=True)
class ArchiveJob:
    """One normalized job record from a GWF/SWF workload log.

    Times are seconds relative to the log's epoch; ``runtime`` 0 is a real
    zero-cost job (immediately-failed or trivial submissions appear in the
    published logs), not a missing value.
    """

    job_id: str
    submit_time: float
    runtime: float
    n_procs: int
    user_id: int
    #: SWF/GWF status column: 1 = completed, 0 = failed, -1 = unknown.
    status: int

    @property
    def completed(self) -> bool:
        return self.status == 1


@dataclass(frozen=True)
class AvailabilityInterval:
    """One FTA interval: ``node`` is up (``available``) in [start, end)."""

    node: int
    available: bool
    start: float
    end: float


def _data_lines(path: Path, comment: str) -> Iterator[tuple[int, list[str]]]:
    """Yield ``(line_number, fields)`` for every non-comment, non-blank line."""
    with path.open("r", encoding="utf-8", errors="strict") as fh:
        for lineno, raw in enumerate(fh, start=1):
            line = raw.strip()
            if not line or line.startswith(comment):
                continue
            yield lineno, line.split()


def _number(path: Path, lineno: int, field: str, raw: str) -> float:
    try:
        return float(raw)
    except ValueError:
        raise ArchiveError(path, lineno, f"non-numeric {field} {raw!r}") from None


def _integer(path: Path, lineno: int, field: str, raw: str) -> int:
    value = _number(path, lineno, field, raw)
    if value != int(value):
        raise ArchiveError(path, lineno, f"non-integer {field} {raw!r}")
    return int(value)


def _normalize_job(
    path: Path,
    lineno: int,
    fields: list[str],
    last_submit: float,
) -> ArchiveJob:
    """Shared GWF/SWF column mapping (both lead with the same 12 columns)."""
    submit = _number(path, lineno, "submit time", fields[1])
    runtime = _number(path, lineno, "runtime", fields[3])
    n_procs = _integer(path, lineno, "processor count", fields[4])
    status = _integer(path, lineno, "status", fields[10])
    user = _integer(path, lineno, "user id", fields[11])
    if submit < 0:
        raise ArchiveError(path, lineno, f"negative submit time {submit}")
    if submit < last_submit:
        raise ArchiveError(
            path, lineno,
            f"out-of-order submit time {submit} (previous record at "
            f"{last_submit}); archive logs are sorted by submission",
        )
    # -1 is the archives' "unknown" marker for runtime/procs; normalize to
    # the neutral values curation filters understand.
    if runtime < 0:
        runtime = 0.0
    if n_procs < 1:
        n_procs = 1
    return ArchiveJob(
        job_id=fields[0],
        submit_time=submit,
        runtime=runtime,
        n_procs=n_procs,
        user_id=max(user, 0),
        status=status,
    )


def parse_gwf(path: "str | Path") -> Iterator[ArchiveJob]:
    """Stream the job records of a Grid Workloads Archive (``.gwf``) log.

    Raises :class:`ArchiveError` on any malformed record (truncated line,
    non-numeric field, negative or out-of-order submit time).  A file with
    only comments/headers yields nothing.
    """
    p = Path(path)
    last_submit = 0.0
    for lineno, fields in _data_lines(p, comment="#"):
        if len(fields) < _GWF_MIN_FIELDS:
            raise ArchiveError(
                p, lineno,
                f"truncated GWF record: {len(fields)} fields "
                f"(need >= {_GWF_MIN_FIELDS}); the download may be cut short",
            )
        job = _normalize_job(p, lineno, fields, last_submit)
        last_submit = job.submit_time
        yield job


def parse_swf(path: "str | Path") -> Iterator[ArchiveJob]:
    """Stream the job records of a Parallel Workloads Archive (``.swf``) log.

    Same strictness as :func:`parse_gwf`; SWF headers use ``;`` comments
    and records carry exactly 18 columns.
    """
    p = Path(path)
    last_submit = 0.0
    for lineno, fields in _data_lines(p, comment=";"):
        if len(fields) != _SWF_FIELDS:
            raise ArchiveError(
                p, lineno,
                f"malformed SWF record: {len(fields)} fields "
                f"(the standard defines exactly {_SWF_FIELDS})",
            )
        job = _normalize_job(p, lineno, fields, last_submit)
        last_submit = job.submit_time
        yield job


def parse_fta(path: "str | Path") -> Iterator[AvailabilityInterval]:
    """Stream the per-node intervals of an FTA-style availability log.

    Rows are ``node_id event_type start end`` with ``event_type`` 1 for an
    availability interval and 0 for an unavailability interval.  Intervals
    must be well-formed (``start <= end``, non-negative) and non-decreasing
    in start time across the file.
    """
    p = Path(path)
    last_start = 0.0
    for lineno, fields in _data_lines(p, comment="#"):
        if len(fields) != _FTA_FIELDS:
            raise ArchiveError(
                p, lineno,
                f"malformed FTA record: {len(fields)} fields "
                f"(expected node_id event_type start end)",
            )
        node = _integer(p, lineno, "node id", fields[0])
        kind = _integer(p, lineno, "event type", fields[1])
        start = _number(p, lineno, "interval start", fields[2])
        end = _number(p, lineno, "interval end", fields[3])
        if node < 0:
            raise ArchiveError(p, lineno, f"negative node id {node}")
        if kind not in (0, 1):
            raise ArchiveError(
                p, lineno, f"unknown event type {kind} (expected 0 or 1)"
            )
        if start < 0 or end < start:
            raise ArchiveError(
                p, lineno, f"inverted interval [{start}, {end}]"
            )
        if start < last_start:
            raise ArchiveError(
                p, lineno,
                f"out-of-order interval start {start} "
                f"(previous interval starts at {last_start})",
            )
        last_start = start
        yield AvailabilityInterval(
            node=node, available=bool(kind), start=start, end=end
        )


def sniff_format(path: "str | Path") -> Optional[str]:
    """Guess an archive's format (``"gwf"`` / ``"swf"`` / ``"fta"``).

    By extension first, else by comment style and column count of the
    first data line; ``None`` when nothing matches.
    """
    p = Path(path)
    suffix = p.suffix.lower()
    if suffix in (".gwf", ".swf", ".fta"):
        return suffix[1:]
    try:
        with p.open("r", encoding="utf-8") as fh:
            saw_semicolon = False
            for raw in fh:
                line = raw.strip()
                if not line:
                    continue
                if line.startswith(";"):
                    saw_semicolon = True
                    continue
                if line.startswith("#"):
                    continue
                n = len(line.split())
                if saw_semicolon or n == _SWF_FIELDS:
                    return "swf"
                if n == _FTA_FIELDS:
                    return "fta"
                if n >= _GWF_MIN_FIELDS:
                    return "gwf"
                return None
            return "swf" if saw_semicolon else None
    except OSError:
        return None
