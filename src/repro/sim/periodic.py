"""Cycle-driven helper: fire a callback every fixed period.

PeerSim offers a cycle-driven mode in which every protocol executes once per
cycle; the paper runs its gossip protocols on a 5-minute cycle and the
phase-1 scheduler on a 15-minute cycle.  :class:`PeriodicActivity` reproduces
that on top of the event-driven kernel.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.sim.engine import Event, Simulator

__all__ = ["PeriodicActivity"]


class PeriodicActivity:
    """Invoke ``callback(cycle_index)`` every ``period`` seconds.

    Parameters
    ----------
    sim:
        The simulator to schedule on.
    period:
        Seconds between invocations (must be positive).
    callback:
        Called with the 0-based cycle index.
    phase:
        Offset of the first invocation from the current time.  The paper's
        protocols are synchronous (all nodes share the cycle clock), so the
        default phase equals ``period`` — the first cycle completes one full
        period after start.  Pass ``phase=0.0`` to fire immediately.
    label:
        Debugging label attached to the underlying events.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[int], Any],
        phase: Optional[float] = None,
        label: str = "periodic",
    ):
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.sim = sim
        self.period = float(period)
        self.callback = callback
        self.label = label
        self.cycle = 0
        self._stopped = False
        first = self.period if phase is None else float(phase)
        self._event: Event = sim.schedule(first, self._fire, label=label)

    def _fire(self) -> None:
        if self._stopped:
            return
        cycle = self.cycle
        self.cycle += 1
        # Re-arm before the callback so a callback exception cannot silently
        # kill the activity, and so callbacks may stop() the activity.  The
        # event object just fired, so it can be reused in place
        # (allocation-free re-arm; seq consumption is identical).
        self._event = self.sim.reschedule(self._event, self.period)
        self.callback(cycle)

    def stop(self) -> None:
        """Stop future invocations.  Idempotent."""
        self._stopped = True
        self._event.cancel()
