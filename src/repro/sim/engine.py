"""Indexed discrete-event engine with a slot-reusing entry pool.

Design notes
------------
* The priority queue holds mutable ``[time, seq, Event]`` entry slots in a
  binary heap; ``seq`` is a monotonically increasing integer so
  simultaneous events execute in scheduling order and runs are fully
  deterministic.  Entry comparison never reaches the ``Event`` element:
  two live entries can never share a ``seq``.
* Popped entry slots are recycled through a free pool, so steady-state
  scheduling allocates nothing beyond the ``Event`` handle the caller may
  hold — and :meth:`Simulator.reschedule` reuses that too, making periodic
  re-arms fully allocation-free.
* Events are cancelled in O(1) by lazy deletion: the heap entry stays but
  is skipped when popped (the grid runtime uses this to cancel in-flight
  transfers and executions when a node churns out).  Cancelling after the
  event already fired is a harmless no-op.
* The exact ``(time, seq)`` pop order, seq consumption and cancel
  semantics of the original tuple-heap engine are contractual: the
  randomized oracle test (``tests/sim/test_engine_oracle.py``) drives this
  queue and a reference copy of the legacy heap with identical
  schedule/cancel/reschedule sequences and asserts identical behavior.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "SimulatorError"]


class SimulatorError(RuntimeError):
    """Raised on invalid simulator usage (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule`; hold on to it if the event may
    need to be cancelled.  ``callback`` is invoked as ``callback()`` — bind
    arguments with ``functools.partial`` or a closure.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "label")

    def __init__(self, time: float, seq: int, callback: Callable[[], Any], label: str = ""):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, seq={self.seq}, {state}, {self.label!r})"


class Simulator:
    """Discrete-event simulation core.

    Parameters
    ----------
    start_time:
        Initial simulated clock value (seconds).

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        #: Heap of ``[time, seq, Event]`` slots (see module docstring).
        self._heap: list[list] = []
        #: Recycled entry slots awaiting reuse (their Event ref is cleared
        #: on pop so fired callbacks are not kept alive by the pool).
        self._free: list[list] = []
        self._seq = 0
        self._running = False
        self.events_executed = 0
        #: Lazily-deleted entries skipped at pop time (observability only).
        self.events_cancelled = 0
        #: Allocation-free re-arms via :meth:`reschedule` (observability only).
        self.events_rescheduled = 0

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def pending(self) -> int:
        """Number of not-yet-cancelled events still in the queue.  O(n)."""
        return sum(1 for entry in self._heap if not entry[2].cancelled)

    def queue_depth(self) -> int:
        """Raw heap size in O(1) — counts lazily-cancelled entries too.

        The cheap proxy telemetry samples each metrics cycle; use
        :meth:`pending` when the exact live count matters.
        """
        return len(self._heap)

    # -------------------------------------------------------------- schedule
    def schedule(self, delay: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs after all events
        already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulatorError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulatorError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        seq = self._seq
        self._seq = seq + 1
        ev = Event(time, seq, callback, label)
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = time
            entry[1] = seq
            entry[2] = ev
        else:
            entry = [time, seq, ev]
        heappush(self._heap, entry)
        return ev

    def reschedule(self, event: Event, delay: float) -> Event:
        """Re-arm a *fired* event ``delay`` seconds from now, reusing the
        object (allocation-free re-arm for periodic drivers).

        The caller must guarantee the event is no longer in the queue —
        i.e. its callback has just run.  Sequence numbers are consumed
        exactly as :meth:`schedule` would, so same-instant ordering is
        unchanged; only the ``Event`` allocation is saved.
        """
        if delay < 0:
            raise SimulatorError(f"cannot schedule into the past (delay={delay})")
        time = self._now + delay
        seq = self._seq
        self._seq = seq + 1
        self.events_rescheduled += 1
        event.time = time
        event.seq = seq
        event.cancelled = False
        free = self._free
        if free:
            entry = free.pop()
            entry[0] = time
            entry[1] = seq
            entry[2] = event
        else:
            entry = [time, seq, event]
        heappush(self._heap, entry)
        return event

    # ------------------------------------------------------------------- run
    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        """
        heap = self._heap
        free = self._free
        while heap:
            entry = heappop(heap)
            time = entry[0]
            ev = entry[2]
            entry[2] = None
            free.append(entry)
            if ev.cancelled:
                self.events_cancelled += 1
                continue
            self._now = time
            self.events_executed += 1
            ev.callback()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queue drains or the clock would pass ``until``.

        When ``until`` is given the clock is advanced to exactly ``until`` on
        return, even if the last event fired earlier, so periodic activities
        and metrics see a well-defined horizon.
        """
        if self._running:
            raise SimulatorError("run() is not reentrant")
        self._running = True
        try:
            heap = self._heap
            free = self._free
            if until is None:
                while heap:
                    entry = heappop(heap)
                    time = entry[0]
                    ev = entry[2]
                    entry[2] = None
                    free.append(entry)
                    if ev.cancelled:
                        self.events_cancelled += 1
                        continue
                    self._now = time
                    self.events_executed += 1
                    ev.callback()
            else:
                while heap:
                    entry = heap[0]
                    time = entry[0]
                    if time > until:
                        break
                    heappop(heap)
                    ev = entry[2]
                    entry[2] = None
                    free.append(entry)
                    if ev.cancelled:
                        self.events_cancelled += 1
                        continue
                    self._now = time
                    self.events_executed += 1
                    ev.callback()
                if self._now < until:
                    self._now = until
        finally:
            self._running = False
