"""Heap-based discrete-event simulator.

Design notes
------------
* The event heap stores ``(time, seq, Event)`` tuples; ``seq`` is a
  monotonically increasing integer so simultaneous events execute in
  scheduling order and runs are fully deterministic.
* Events can be cancelled in O(1) (lazy deletion: the heap entry stays but is
  skipped when popped), which the grid runtime uses to cancel in-flight
  transfers and executions when a node churns out.
* The loop is intentionally free of object allocation beyond the event
  tuples; per the hpc-parallel guidance the kernel was profiled and the
  dominant cost is the user callback, not the dispatcher.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional

__all__ = ["Event", "Simulator", "SimulatorError"]


class SimulatorError(RuntimeError):
    """Raised on invalid simulator usage (e.g. scheduling in the past)."""


class Event:
    """A scheduled callback.

    Returned by :meth:`Simulator.schedule`; hold on to it if the event may
    need to be cancelled.  ``callback`` is invoked as ``callback()`` — bind
    arguments with ``functools.partial`` or a closure.
    """

    __slots__ = ("time", "seq", "callback", "cancelled", "label")

    def __init__(self, time: float, seq: int, callback: Callable[[], Any], label: str = ""):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.label = label

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.3f}, seq={self.seq}, {state}, {self.label!r})"


class Simulator:
    """Discrete-event simulation core.

    Parameters
    ----------
    start_time:
        Initial simulated clock value (seconds).

    Examples
    --------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(5.0, lambda: fired.append(sim.now))
    >>> sim.run()
    >>> fired
    [5.0]
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._running = False
        self.events_executed = 0

    # ------------------------------------------------------------------ clock
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def pending(self) -> int:
        """Number of not-yet-cancelled events still in the queue."""
        return sum(1 for _, _, ev in self._heap if not ev.cancelled)

    # -------------------------------------------------------------- schedule
    def schedule(self, delay: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now.

        ``delay`` must be non-negative; a zero delay runs after all events
        already scheduled for the current instant.
        """
        if delay < 0:
            raise SimulatorError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self._now + delay, callback, label)

    def schedule_at(self, time: float, callback: Callable[[], Any], label: str = "") -> Event:
        """Schedule ``callback`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulatorError(
                f"cannot schedule into the past (t={time} < now={self._now})"
            )
        ev = Event(time, self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._heap, (ev.time, ev.seq, ev))
        return ev

    def reschedule(self, event: Event, delay: float) -> Event:
        """Re-arm a *fired* event ``delay`` seconds from now, reusing the
        object (allocation-free re-arm for periodic drivers).

        The caller must guarantee the event is no longer in the queue —
        i.e. its callback has just run.  Sequence numbers are consumed
        exactly as :meth:`schedule` would, so same-instant ordering is
        unchanged; only the ``Event`` allocation is saved.
        """
        if delay < 0:
            raise SimulatorError(f"cannot schedule into the past (delay={delay})")
        event.time = self._now + delay
        event.seq = self._seq
        event.cancelled = False
        self._seq += 1
        heapq.heappush(self._heap, (event.time, event.seq, event))
        return event

    # ------------------------------------------------------------------- run
    def step(self) -> bool:
        """Execute the single next pending event.

        Returns ``True`` if an event ran, ``False`` if the queue is empty.
        """
        while self._heap:
            time, _, ev = heapq.heappop(self._heap)
            if ev.cancelled:
                continue
            self._now = time
            self.events_executed += 1
            ev.callback()
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queue drains or the clock would pass ``until``.

        When ``until`` is given the clock is advanced to exactly ``until`` on
        return, even if the last event fired earlier, so periodic activities
        and metrics see a well-defined horizon.
        """
        if self._running:
            raise SimulatorError("run() is not reentrant")
        self._running = True
        try:
            heap = self._heap
            while heap:
                time, _, ev = heap[0]
                if until is not None and time > until:
                    break
                heapq.heappop(heap)
                if ev.cancelled:
                    continue
                self._now = time
                self.events_executed += 1
                ev.callback()
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
