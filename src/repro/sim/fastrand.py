"""Stream-identical fast paths for NumPy ``Generator`` bounded draws.

The gossip substrate makes hundreds of thousands of tiny bounded draws per
run — ``Generator.choice(n, size=k, replace=False)`` for peer sampling and
push digests, ``Generator.integers(0, n)`` for pairings — and each call
pays 1.5–8 µs of NumPy argument-parsing/array-allocation overhead that
dwarfs the actual bit generation.  :class:`FastSampler` removes that
overhead while reproducing the *exact same* random stream, so every golden
fingerprint replays bit-identically.

How NumPy draws a bounded integer (PCG64 family, ranges < 2**32)
----------------------------------------------------------------
* The bit generator serves 32-bit words out of 64-bit raw draws, low half
  first, buffering the high half in its pickled state
  (``has_uint32``/``uinteger``).
* A draw uniform on ``[0, rng]`` inclusive is Lemire's multiply-shift with
  rejection: ``m = u32 * (rng + 1)``; reject while ``m & 0xFFFFFFFF`` is
  below ``(2**32 - 1 - rng) % (rng + 1)``; the value is ``m >> 32``.
* ``choice(n, size=k, replace=False)`` runs Floyd's algorithm (``k``
  bounded draws on growing ranges, collisions replaced by the range top)
  followed by a backward Fisher–Yates shuffle of the ``k`` picks (``k - 1``
  more bounded draws).
* ``integers(0, n)`` is a single bounded draw on ``[0, n - 1]``; a range of
  zero consumes nothing.

:class:`FastSampler` replays those reductions in Python directly from
``bit_generator.random_raw()`` (≈0.3 µs per 64-bit word), mirroring the
uint32 buffer so the stream stays aligned with the wrapped ``Generator``.
Consumers that still need real NumPy calls on the *same* stream (e.g.
``Generator.shuffle`` of a large array, which is faster in C) go through
:meth:`FastSampler.shuffle`, which pushes the mirrored buffer into the bit
generator's state, delegates, and reads it back.

Every fast path is verified value- and state-exact against NumPy by
``tests/sim/test_fastrand.py``; on bit generators without the expected
buffered-uint32 state layout the sampler transparently falls back to the
plain ``Generator`` calls.
"""

from __future__ import annotations

import numpy as np

__all__ = ["FastSampler"]

_M32 = 0xFFFFFFFF

#: Bit generators whose ``next_uint32`` is the buffered low-half-first
#: split of ``next_uint64`` (the layout the emulation assumes).
_BUFFERED_U32_BITGENS = frozenset({"PCG64", "PCG64DXSM"})

#: ``(n, k) -> (floyd rng_excl list, shuffle rng_excl list)`` — the bounded
#: ranges of a choice-without-replacement call are a pure function of its
#: shape, and gossip uses only a handful of shapes per run, so the range
#: arithmetic is hoisted out of the draw loops entirely.
_MULT_CACHE: dict[tuple[int, int], tuple[list[int], list[int]]] = {}


class FastSampler:
    """Low-overhead, stream-identical bounded draws for one ``Generator``.

    All consumers of the wrapped generator's *bounded-draw* stream must go
    through this sampler (or through :meth:`shuffle`'s sync'd delegation):
    mixing direct ``Generator`` calls in between would consume the bit
    generator's internal uint32 buffer without the mirror noticing.
    """

    __slots__ = (
        "generator", "_bg", "_raw", "_has", "_buf", "native", "_seen",
        "_pre", "_pi",
    )

    #: 64-bit raw words fetched per refill; one vectorized ``random_raw``
    #: call costs ~2 µs for 64 words vs ~0.3 µs per scalar call, so the
    #: prefetch amortizes the NumPy call overhead ~10x.  Unconsumed words
    #: are returned to the bit generator via ``advance(-n)`` when a sync
    #: hands the stream back to NumPy.
    _PREFETCH = 64

    def __init__(self, generator: np.random.Generator):
        self.generator = generator
        self._bg = generator.bit_generator
        state = getattr(self._bg, "state", None)
        self.native = not (
            isinstance(state, dict)
            and state.get("bit_generator") in _BUFFERED_U32_BITGENS
            and "has_uint32" in state
            and "uinteger" in state
            and hasattr(self._bg, "random_raw")
            and hasattr(self._bg, "advance")
        )
        if self.native:  # pragma: no cover - exotic bit generators only
            self._raw = None
            self._has = False
            self._buf = 0
        else:
            self._raw = self._bg.random_raw
            self._has = bool(state["has_uint32"])
            self._buf = int(state["uinteger"])
        #: Reusable Floyd exclusion set (cleared per call; draws never nest).
        self._seen: set[int] = set()
        #: Prefetched 64-bit raw words and the consumption cursor.
        self._pre: list[int] = []
        self._pi = 0

    # ------------------------------------------------------------ primitives
    def _next_raw(self) -> int:
        """Next 64-bit raw word, served from the prefetch buffer."""
        pi = self._pi
        pre = self._pre
        if pi < len(pre):
            self._pi = pi + 1
            return pre[pi]
        pre = self._pre = self._raw(self._PREFETCH).tolist()
        self._pi = 1
        return pre[0]

    def _u32(self) -> int:
        """Next 32-bit word: the buffered high half if present, else the
        low half of a fresh 64-bit raw draw (high half buffered)."""
        if self._has:
            self._has = False
            return self._buf
        d = self._next_raw()
        self._has = True
        self._buf = d >> 32
        return d & _M32

    def _lemire(self, rng: int) -> int:
        """Uniform on ``[0, rng]`` inclusive — NumPy's buffered bounded
        Lemire reduction (``rng`` must fit in 32 bits).

        The buffer handling is inlined rather than calling :meth:`_u32`:
        this is the single-draw hot path (aggregation pairings, Newscast
        pairings and reseeds) and the method-call overhead would double it.
        """
        if rng == 0:
            return 0
        rng_excl = rng + 1
        if self._has:
            self._has = False
            v = self._buf
        else:
            pi = self._pi
            pre = self._pre
            if pi < len(pre):
                self._pi = pi + 1
                d = pre[pi]
            else:
                pre = self._pre = self._raw(self._PREFETCH).tolist()
                self._pi = 1
                d = pre[0]
            self._has = True
            self._buf = d >> 32
            v = d & _M32
        m = v * rng_excl
        leftover = m & _M32
        if leftover < rng_excl:
            threshold = (_M32 - rng) % rng_excl
            while leftover < threshold:
                m = self._u32() * rng_excl
                leftover = m & _M32
        return m >> 32

    def _u32_block(self, count: int) -> np.ndarray:
        """The next ``count`` 32-bit words of the stream, as one array.

        Identical word-for-word to ``count`` successive :meth:`_u32` calls
        (buffered high half first, then low-half/high-half pairs of fresh
        raw draws), but served via vectorized splitting — the feeder for
        the batched round draws.  Leaves the buffer mirror holding the odd
        trailing half-word exactly as the scalar path would.
        """
        have_buf = 1 if self._has else 0
        n_raw = (count - have_buf + 1) // 2
        pre = self._pre
        pi = self._pi
        avail = len(pre) - pi
        if n_raw <= avail:
            raws = np.asarray(pre[pi:pi + n_raw], dtype=np.uint64)
            self._pi = pi + n_raw
        else:
            head = np.asarray(pre[pi:], dtype=np.uint64)
            short = n_raw - avail
            # Direct draw, no prefetch overshoot: a batch this large will
            # come back for another block anyway, and overshooting would
            # force an advance(-n) rewind on the next sync.
            tail = np.asarray(self._raw(short), dtype=np.uint64)
            raws = np.concatenate([head, tail]) if avail else tail
            self._pre = []
            self._pi = 0
        words = np.empty(2 * n_raw + have_buf, dtype=np.uint64)
        if have_buf:
            words[0] = self._buf
            self._has = False
        words[have_buf::2] = raws & _M32
        words[have_buf + 1::2] = raws >> np.uint64(32)
        if len(words) > count:
            self._has = True
            self._buf = int(words[-1])
            words = words[:count]
        return words

    # ------------------------------------------------------------------- API
    def integers(self, n: int) -> int:
        """``int(generator.integers(0, n))`` for ``1 <= n <= 2**32``."""
        if n <= 1:
            return 0
        if self.native:  # pragma: no cover - fallback
            return int(self.generator.integers(0, n))
        return self._lemire(n - 1)

    def pick(self, seq):
        """``seq[generator.integers(0, len(seq))]`` — replicates the scalar
        ``generator.choice(np.asarray(seq))`` without the array round-trip."""
        return seq[self.integers(len(seq))]

    def integers_batch(self, n: int, size: int) -> np.ndarray:
        """``size`` bounded draws on ``[0, n)`` as one int64 array.

        Word-for-word identical to ``size`` successive :meth:`integers`
        calls (= ``size`` scalar ``generator.integers(0, n)`` calls on the
        same stream), but reduced vectorized: the whole-round peer draws of
        the batched gossip cycle ride on this.  Lemire rejections are
        ~``n / 2**32`` per draw; when one fires, the tail of the batch is
        replayed draw-by-draw from the already-fetched words so the
        consumption order stays exact.
        """
        out = np.empty(size, dtype=np.int64)
        if size == 0:
            return out
        if n <= 1:
            out[:] = 0  # range of zero consumes nothing, as in NumPy
            return out
        if self.native:  # pragma: no cover - fallback
            for i in range(size):
                out[i] = int(self.generator.integers(0, n))
            return out
        rng_excl = n
        words = self._u32_block(size)
        m = words * np.uint64(rng_excl)
        leftover = m & np.uint64(_M32)
        threshold = (_M32 - (n - 1)) % rng_excl
        bad = leftover < np.uint64(threshold)
        np.right_shift(m, np.uint64(32), out=m)
        if not bad.any():
            out[:] = m
            return out
        # Rare path: a rejection at position i consumes replacement words
        # *before* draw i+1 in the scalar order, so everything from the
        # first rejection on is replayed sequentially against the fetched
        # word list (falling through to fresh words when it runs dry).
        first = int(np.flatnonzero(bad)[0])
        out[:first] = m[:first]
        wl = words.tolist()
        limit = size
        cursor = first
        M = _M32
        for i in range(first, size):
            while True:
                v = wl[cursor] if cursor < limit else self._u32()
                cursor += 1
                mm = v * rng_excl
                if (mm & M) >= threshold:
                    break
            out[i] = mm >> 32
        return out

    def random_batch(self, size: int) -> np.ndarray:
        """``generator.random(size)`` — ``size`` uniform doubles in [0, 1).

        Each double consumes one full 64-bit raw word (``raw >> 11``
        scaled by ``2**-53``), bypassing the uint32 buffer exactly as
        NumPy's double path does, so interleaving with bounded draws stays
        stream-exact.  Used for the batched rounds' random sort keys
        (without-replacement sampling via key ranking).
        """
        if self.native:  # pragma: no cover - fallback
            return self.generator.random(size)
        if size == 0:
            return np.empty(0, dtype=np.float64)
        pre = self._pre
        pi = self._pi
        avail = len(pre) - pi
        if size <= avail:
            raws = np.asarray(pre[pi:pi + size], dtype=np.uint64)
            self._pi = pi + size
        else:
            head = np.asarray(pre[pi:], dtype=np.uint64)
            tail = np.asarray(self._raw(size - avail), dtype=np.uint64)
            raws = np.concatenate([head, tail]) if avail else tail
            self._pre = []
            self._pi = 0
        return (raws >> np.uint64(11)) * (1.0 / 9007199254740992.0)

    def choice_indices(self, n: int, k: int) -> list[int]:
        """``list(generator.choice(n, size=k, replace=False))`` as ints.

        Floyd's algorithm plus the backward shuffle, fed from one batched
        ``random_raw`` call (the rejection loops almost never fire for the
        tiny ranges gossip uses, so the batch size is exact in practice).
        """
        if self.native:  # pragma: no cover - fallback
            return [int(x) for x in self.generator.choice(n, size=k, replace=False)]
        if k == 1:
            # Floyd with an empty exclusion set and no tail shuffle: one
            # bounded draw (the aggregation-pairing hot case).
            return [self._lemire(n - 1)]
        # Floyd consumes k bounded draws, the shuffle k - 1 more; with the
        # (~1e-9 per draw) rejections ignored that is exactly 2k - 1 words.
        need = 2 * k - 1
        if k == n:
            need -= 1  # the first Floyd range is empty and draws nothing
        if self._has:
            words = [self._buf]
            self._has = False
        else:
            words = []
        n_raw = (need - len(words) + 1) // 2
        if n_raw > 0:
            pre = self._pre
            pi = self._pi
            end = pi + n_raw
            if end <= len(pre):
                raws = pre[pi:end]
                self._pi = end
            else:
                raws = pre[pi:]
                short = n_raw - len(raws)
                pre = self._pre = self._raw(max(self._PREFETCH, short)).tolist()
                raws += pre[:short]
                self._pi = short
            for d in raws:
                words.append(d & _M32)
                words.append(d >> 32)
        if len(words) > need:
            self._has = True
            self._buf = words.pop()
        # The two loops below are NumPy's reductions inlined (no closure —
        # at 2k-1 draws per call the function-call overhead would dominate)
        # with the bounded ranges precomputed per (n, k) shape.  Accept
        # condition: leftover >= rng_excl short-circuits the (almost never
        # needed) threshold computation of Lemire's rejection test; the
        # cursor only outruns the batch after such a rejection.
        mults = _MULT_CACHE.get((n, k))
        if mults is None:
            start = 1 if k == n else n - k
            mults = _MULT_CACHE[(n, k)] = (
                [j + 1 for j in range(start, n)],
                list(range(k, 1, -1)),
            )
        floyd_mults, shuffle_mults = mults
        M = _M32
        cursor = 0
        limit = len(words)
        seen = self._seen
        seen.clear()
        if k == n:
            idx = [0]  # empty first range consumes nothing
            seen.add(0)
        else:
            idx = []
        m = 0
        for rng_excl in floyd_mults:
            while True:
                v = words[cursor] if cursor < limit else self._u32()
                cursor += 1
                m = v * rng_excl
                leftover = m & M
                if leftover >= rng_excl or leftover >= (M - rng_excl + 1) % rng_excl:
                    break
            val = m >> 32
            if val in seen:
                val = rng_excl - 1
            seen.add(val)
            idx.append(val)
        pos = k - 1
        for rng_excl in shuffle_mults:
            while True:
                v = words[cursor] if cursor < limit else self._u32()
                cursor += 1
                m = v * rng_excl
                leftover = m & M
                if leftover >= rng_excl or leftover >= (M - rng_excl + 1) % rng_excl:
                    break
            j = m >> 32
            idx[pos], idx[j] = idx[j], idx[pos]
            pos -= 1
        return idx

    def shuffle(self, array) -> None:
        """``generator.shuffle(array)`` with the buffer mirror synced.

        Large-array shuffles are much faster in NumPy's C loop; this keeps
        them there while the mirror stays stream-aligned.
        """
        if self.native:  # pragma: no cover - fallback
            self.generator.shuffle(array)
            return
        self.sync_to_numpy()
        self.generator.shuffle(array)
        self.sync_from_numpy()

    # ------------------------------------------------------------- interop
    def sync_to_numpy(self) -> None:
        """Hand the stream back to NumPy exactly where the emulation stands:
        rewind the bit generator past the unconsumed prefetched words, then
        push the mirrored uint32 buffer into its state (in that order —
        ``advance`` clears the buffer fields)."""
        if self.native:  # pragma: no cover - fallback
            return
        unconsumed = len(self._pre) - self._pi
        if unconsumed:
            self._bg.advance(-unconsumed)
            self._pre = []
            self._pi = 0
        state = self._bg.state
        state["has_uint32"] = int(self._has)
        state["uinteger"] = int(self._buf)
        self._bg.state = state

    def sync_from_numpy(self) -> None:
        """Re-read the buffer after direct ``Generator`` calls (the
        prefetch is empty at this point: :meth:`sync_to_numpy` must have
        run before the NumPy calls)."""
        if self.native:  # pragma: no cover - fallback
            return
        self._pre = []
        self._pi = 0
        state = self._bg.state
        self._has = bool(state["has_uint32"])
        self._buf = int(state["uinteger"])
