"""Deterministic random-number stream management.

Every stochastic component (topology, workflow generation, gossip peer
sampling, churn, ...) draws from its own named NumPy :class:`Generator`
spawned from a single root seed, so

* the same experiment seed reproduces the same run bit-for-bit, and
* changing how many random draws one component makes does not perturb the
  streams of the others (no accidental coupling between, say, the topology
  and the churn schedule).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngHub", "spawn_generator"]


def _name_to_words(name: str) -> list[int]:
    """Hash a stream name to spawn-key words (stable across processes)."""
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]


def spawn_generator(seed: int, name: str) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for stream ``name``.

    Streams with distinct names are statistically independent; the same
    ``(seed, name)`` pair always yields the same stream.
    """
    ss = np.random.SeedSequence(entropy=seed, spawn_key=tuple(_name_to_words(name)))
    return np.random.default_rng(ss)


class RngHub:
    """Factory handing out named, independent random streams.

    Examples
    --------
    >>> hub = RngHub(seed=42)
    >>> a = hub.stream("gossip")
    >>> b = hub.stream("churn")
    >>> a is hub.stream("gossip")   # cached: one generator per name
    True
    """

    def __init__(self, seed: int):
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = spawn_generator(self.seed, name)
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngHub":
        """Derive a child hub (e.g. one per repetition of an experiment)."""
        words = _name_to_words(name)
        child_seed = (self.seed * 1_000_003 + words[0]) % (2**63)
        return RngHub(child_seed)
