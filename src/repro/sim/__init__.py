"""Discrete-event simulation kernel (substrate S1, replaces PeerSim).

The kernel is a classic heap-driven event loop with deterministic
tie-breaking.  Two usage styles are supported, mirroring PeerSim:

* **event-driven** — arbitrary callbacks scheduled at absolute or relative
  simulated times (used for task execution, data transfers, churn), and
* **cycle-driven** — :class:`~repro.sim.periodic.PeriodicActivity` fires a
  callback every fixed period (used for gossip cycles and the scheduling
  interval).
"""

from repro.sim.engine import Event, Simulator, SimulatorError
from repro.sim.periodic import PeriodicActivity
from repro.sim.rng import RngHub, spawn_generator

__all__ = [
    "Event",
    "PeriodicActivity",
    "RngHub",
    "Simulator",
    "SimulatorError",
    "spawn_generator",
]
