"""Gossip message payloads.

The paper sizes each message at ~100 bytes (80 B payload + 20 B header): one
node-state record plus addressing.  We keep the record deliberately small —
exactly the fields Algorithm 1 needs to evaluate Formula (9):
the owner's identity, capacity ``c``, total load ``l`` and a freshness
timestamp.  ``ttl`` implements the paper's max-hop bound (default 4).

``NodeStateRecord`` is the highest-volume object in the simulation (every
gossip cycle stamps one per live node and ships several per push), so it is
a hand-rolled ``__slots__`` class rather than a dataclass: construction is
a plain attribute-assignment ``__init__`` and :meth:`aged` memoizes the
one-hop-older copy — records are immutable by convention, so the memo can
be shared by every path that forwards the same record again.
"""

from __future__ import annotations

__all__ = ["NodeStateRecord", "MESSAGE_PAYLOAD_BYTES", "MESSAGE_HEADER_BYTES"]

#: Wire-size accounting used by the overhead analysis in §IV.A.
MESSAGE_PAYLOAD_BYTES = 80
MESSAGE_HEADER_BYTES = 20


class NodeStateRecord:
    """One node's advertised resource state.

    Treat instances as immutable (they are shared across every RSS that
    received a copy); derive new records via :meth:`aged` or construction.

    Attributes
    ----------
    node_id:
        Owner peer.
    capacity:
        CPU capacity in MIPS (static per node).
    total_load:
        Summed load (MI) of the running task plus everything waiting in the
        owner's ready set — the ``l_r`` of §II.B.
    timestamp:
        Simulated time at which the owner stamped this record; freshness
        wins on merge.
    ttl:
        Remaining relay hops (paper: 4).  Decremented on every forward;
        records at 0 are delivered but not re-forwarded.
    """

    __slots__ = ("node_id", "capacity", "total_load", "timestamp", "ttl", "_aged")

    def __init__(
        self,
        node_id: int,
        capacity: float,
        total_load: float,
        timestamp: float,
        ttl: int = 4,
    ):
        self.node_id = node_id
        self.capacity = capacity
        self.total_load = total_load
        self.timestamp = timestamp
        self.ttl = ttl
        self._aged: "NodeStateRecord | None" = None

    def aged(self) -> "NodeStateRecord":
        """Copy with one relay hop consumed (memoized — hot path)."""
        out = self._aged
        if out is None:
            out = NodeStateRecord(
                self.node_id, self.capacity, self.total_load, self.timestamp,
                self.ttl - 1,
            )
            self._aged = out
        return out

    def fresher_than(self, other: "NodeStateRecord") -> bool:
        """True if this record supersedes ``other`` for the same node."""
        return self.timestamp > other.timestamp

    def _key(self) -> tuple:
        return (self.node_id, self.capacity, self.total_load, self.timestamp, self.ttl)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, NodeStateRecord):
            return NotImplemented
        return self._key() == other._key()

    def __hash__(self) -> int:
        return hash(self._key())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"NodeStateRecord(node_id={self.node_id}, capacity={self.capacity}, "
            f"total_load={self.total_load}, timestamp={self.timestamp}, ttl={self.ttl})"
        )
