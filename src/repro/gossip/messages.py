"""Gossip message payloads.

The paper sizes each message at ~100 bytes (80 B payload + 20 B header): one
node-state record plus addressing.  We keep the record deliberately small —
exactly the fields Algorithm 1 needs to evaluate Formula (9):
the owner's identity, capacity ``c``, total load ``l`` and a freshness
timestamp.  ``ttl`` implements the paper's max-hop bound (default 4).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["NodeStateRecord", "MESSAGE_PAYLOAD_BYTES", "MESSAGE_HEADER_BYTES"]

#: Wire-size accounting used by the overhead analysis in §IV.A.
MESSAGE_PAYLOAD_BYTES = 80
MESSAGE_HEADER_BYTES = 20


@dataclass(frozen=True)
class NodeStateRecord:
    """One node's advertised resource state.

    Attributes
    ----------
    node_id:
        Owner peer.
    capacity:
        CPU capacity in MIPS (static per node).
    total_load:
        Summed load (MI) of the running task plus everything waiting in the
        owner's ready set — the ``l_r`` of §II.B.
    timestamp:
        Simulated time at which the owner stamped this record; freshness
        wins on merge.
    ttl:
        Remaining relay hops (paper: 4).  Decremented on every forward;
        records at 0 are delivered but not re-forwarded.
    """

    node_id: int
    capacity: float
    total_load: float
    timestamp: float
    ttl: int = 4

    def aged(self) -> "NodeStateRecord":
        """Copy with one relay hop consumed."""
        return replace(self, ttl=self.ttl - 1)

    def fresher_than(self, other: "NodeStateRecord") -> bool:
        """True if this record supersedes ``other`` for the same node."""
        return self.timestamp > other.timestamp
