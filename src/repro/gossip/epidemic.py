"""Epidemic push gossip for node-state dissemination (substrate S5).

Per gossip cycle (paper: five minutes) every live node

1. re-stamps its own :class:`~repro.gossip.messages.NodeStateRecord` with its
   current total load,
2. selects ``fanout = ceil(log2 n)`` random neighbors via the Newscast
   overlay, and
3. pushes its own record plus up to ``push_size`` sampled known records,
   each with TTL decremented (paper: TTL = 4, so a record travels at most
   four hops from its owner).

Receivers merge records, keeping the fresher timestamp per node, and each
node's resource set RSS is bounded to ``rss_capacity`` entries — the paper's
O(log2 n) space bound — evicting the stalest.  Records older than
``expiry`` (default: four gossip cycles) are dropped, which is also how
departed nodes disappear from scheduling views under churn.

The per-node view exposed to Algorithm 1 is :meth:`rss_columns` (array
slices) / :meth:`rss_view` (a dict snapshot); the scheduler additionally
*writes back* its dispatch decisions via :meth:`apply_local_update`
(Algorithm 1 line 15) so consecutive picks in the same scheduling cycle
see the load they just added.

Performance: the RSS caches live in struct-of-arrays form — ``(n, cap)``
id/capacity/load/timestamp/TTL matrices plus a per-row length — and a
cycle is one *simultaneous* round: every sender's fan-out targets and
push digest are drawn as single batched key selections
(:func:`repro.gossip.batch.row_topk_smallest`), and all deliveries are
merged and capacity-evicted at once from start-of-round state through the
shared :func:`repro.gossip.batch.topk_merge` kernel (per-target top-cap
rank selection replaces the old per-delivery sort-and-refill eviction).
This replaced the sequential per-sender push loop (PR 8's documented
semantic change): within one cycle deliveries no longer see each other's
merges, so the RNG stream and the golden fingerprints were re-recorded,
with the new stream validated against the statistical bands in
``tests/regression``.
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.gossip.batch import row_topk_smallest, topk_merge
from repro.gossip.messages import NodeStateRecord
from repro.gossip.newscast import NewscastOverlay
from repro.sim.fastrand import FastSampler

__all__ = ["EpidemicGossip"]

LoadProvider = Callable[[int], tuple[float, float]]
"""Callback ``node_id -> (total_load_MI, capacity_MIPS)``."""


class EpidemicGossip:
    """State-information dissemination with bounded per-node views.

    Parameters
    ----------
    overlay:
        Peer-sampling service.
    load_provider:
        Returns the *ground truth* ``(total_load, capacity)`` of a node when
        that node stamps its own record (information about *other* nodes is
        only ever obtained through gossip).
    rng:
        Randomness for record sampling.
    ttl:
        Initial hop budget of a freshly stamped record (paper: 4).
    push_size:
        Known records piggybacked per push in addition to the sender's own.
    rss_capacity:
        Max records retained per node; ``None`` -> ``2 * ceil(log2 n)``.
    expiry:
        Age (seconds) beyond which a record is evicted; ``None`` -> never.
    """

    def __init__(
        self,
        overlay: NewscastOverlay,
        load_provider: LoadProvider,
        rng: np.random.Generator,
        ttl: int = 4,
        push_size: int = 4,
        rss_capacity: int | None = None,
        expiry: float | None = None,
    ):
        self.overlay = overlay
        self.load_provider = load_provider
        self.rng = rng
        self._fast = FastSampler(rng)
        self.ttl = int(ttl)
        self.push_size = int(push_size)
        n = max(len(overlay.live), 2)
        if rss_capacity is None:
            rss_capacity = 2 * int(np.ceil(np.log2(n)))
        self.rss_capacity = int(rss_capacity)
        self.expiry = expiry
        self.fanout = max(1, int(np.ceil(np.log2(n))))
        # Struct-of-arrays RSS: row i holds node i's known records in
        # slots [0, _len[i]) — record owner ids in _ids, then capacity /
        # load / stamp / remaining hops column-for-column.  A row never
        # contains its owner.
        ids = sorted(overlay.live)
        self._n_alloc = max((ids[-1] + 1) if ids else 1, 1)
        cap = self.rss_capacity
        self._ids = np.zeros((self._n_alloc, cap), dtype=np.int64)
        self._caps = np.zeros((self._n_alloc, cap))
        self._loads = np.zeros((self._n_alloc, cap))
        self._ts = np.zeros((self._n_alloc, cap))
        self._ttl = np.zeros((self._n_alloc, cap), dtype=np.int64)
        self._len = np.zeros(self._n_alloc, dtype=np.int64)
        self._tracked = np.zeros(self._n_alloc, dtype=bool)
        if ids:
            self._tracked[np.asarray(ids, dtype=np.int64)] = True
        self._col = np.arange(cap)
        self.messages_sent = 0
        self.records_shipped = 0
        #: Delivered records that survived the round's freshness merge and
        #: capacity cut (observability only — never read by the protocol).
        self.records_merged = 0
        self.evictions = 0

    # ---------------------------------------------------------------- churn
    def _ensure_row(self, node_id: int) -> None:
        if node_id < self._n_alloc:
            return
        new_n = max(node_id + 1, 2 * self._n_alloc)
        cap = self.rss_capacity
        for name, fill in (
            ("_ids", 0),
            ("_caps", 0.0),
            ("_loads", 0.0),
            ("_ts", 0.0),
            ("_ttl", 0),
            ("_len", 0),
            ("_tracked", False),
        ):
            old = getattr(self, name)
            shape = (new_n, cap) if old.ndim == 2 else (new_n,)
            grown = np.full(shape, fill, dtype=old.dtype)
            grown[: self._n_alloc] = old
            setattr(self, name, grown)
        self._n_alloc = new_n

    def add_node(self, node_id: int) -> None:
        """Start tracking a joining node (empty RSS; fills via gossip)."""
        self._ensure_row(node_id)
        self._tracked[node_id] = True
        self._len[node_id] = 0

    def remove_node(self, node_id: int) -> None:
        """Forget a departing node's own view.

        Remote records pointing at it decay via ``expiry``; until then
        schedulers may still (incorrectly) select it — exactly the staleness
        hazard the paper attributes to node churning.
        """
        if 0 <= node_id < self._n_alloc:
            self._tracked[node_id] = False
            self._len[node_id] = 0

    # ---------------------------------------------------------------- cycle
    def run_cycle(self, now: float) -> None:
        """One simultaneous push round over every live node.

        All senders' fan-out draws and digest picks happen as single
        batches, and every delivery is merged against *start-of-round*
        state in one :func:`topk_merge` call.  Ties (same record owner,
        same stamp) go to the incumbent, then to the earliest sender.
        """
        senders = self.overlay.live_array()
        s = int(senders.size)
        if s == 0:
            if self.expiry is not None:
                self._expire(now)
            return
        cap = self.rss_capacity
        col = self._col

        # Fresh self-records — the only per-node Python work in the
        # round (ground-truth reads from live node state).
        self_loads = np.empty(s)
        self_caps = np.empty(s)
        provider = self.load_provider
        for k, i in enumerate(senders.tolist()):
            load, capacity = provider(i)
            self_loads[k] = load
            self_caps[k] = capacity

        # Fan-out targets (overlay stream), then the per-sender digest:
        # up to push_size forwardable (ttl > 0) records plus the fresh
        # self-record as the digest tail.
        targets, t_ok = self.overlay.sample_rounds(senders, self.fanout)
        t_ok = t_ok & (targets >= 0)
        t_ok &= self._tracked[np.clip(targets, 0, self._n_alloc - 1)]

        rows_ids = self._ids[senders]
        rows_ttl = self._ttl[senders]
        in_row = col[None, :] < self._len[senders][:, None]
        forwardable = in_row & (rows_ttl > 0)
        keys = self._fast.random_batch(s * cap).reshape(s, cap)
        dpos, d_ok = row_topk_smallest(keys, forwardable, self.push_size)

        def gather(arr: np.ndarray) -> np.ndarray:
            return np.take_along_axis(arr[senders], dpos, axis=1)

        dg_nid = np.concatenate([gather(self._ids), senders[:, None]], axis=1)
        dg_cap = np.concatenate([gather(self._caps), self_caps[:, None]], axis=1)
        dg_load = np.concatenate([gather(self._loads), self_loads[:, None]], axis=1)
        dg_ts = np.concatenate([gather(self._ts), np.full((s, 1), now)], axis=1)
        dg_ttl = np.concatenate(
            [gather(self._ttl) - 1, np.full((s, 1), self.ttl, dtype=np.int64)],
            axis=1,
        )
        dg_ok = np.concatenate([d_ok, np.ones((s, 1), dtype=bool)], axis=1)

        t_count = t_ok.sum(axis=1)
        self.messages_sent += int(t_count.sum())
        self.records_shipped += int((t_count * dg_ok.sum(axis=1)).sum())

        # Delivery rows: every (sender, target, digest entry) triple,
        # minus records about the target itself.
        fan = targets.shape[1]
        width = dg_nid.shape[1]
        ok3 = t_ok[:, :, None] & dg_ok[:, None, :]
        flat = np.flatnonzero(ok3.reshape(-1))
        if flat.size == 0:
            if self.expiry is not None:
                self._expire(now)
            return
        si, rem = np.divmod(flat, fan * width)
        ti, di = np.divmod(rem, width)
        d_tgt = targets[si, ti]
        d_nid = dg_nid[si, di]
        hit = d_nid != d_tgt
        si, di, d_tgt, d_nid = si[hit], di[hit], d_tgt[hit], d_nid[hit]

        # Existing rows of every delivery target (pref 0: an incumbent
        # beats a same-age delivery), then the shared merge + top-cap cut.
        # Distinct delivery targets via a flag scatter (ids are dense row
        # indices, so this beats hash-based np.unique on the row pile).
        flag = np.zeros(self._n_alloc, dtype=bool)
        flag[d_tgt] = True
        touched = np.flatnonzero(flag)
        in_tgt = col[None, :] < self._len[touched][:, None]
        eflat = np.flatnonzero(in_tgt.reshape(-1))
        ui, ci = np.divmod(eflat, cap)
        e_tgt = touched[ui]

        a_tgt = np.concatenate([e_tgt, d_tgt])
        a_nid = np.concatenate([self._ids[e_tgt, ci], d_nid])
        a_cap = np.concatenate([self._caps[e_tgt, ci], dg_cap[si, di]])
        a_load = np.concatenate([self._loads[e_tgt, ci], dg_load[si, di]])
        a_ts = np.concatenate([self._ts[e_tgt, ci], dg_ts[si, di]])
        a_ttl = np.concatenate([self._ttl[e_tgt, ci], dg_ttl[si, di]])
        a_pref = np.concatenate(
            [np.zeros(eflat.size, dtype=np.int64), si + 1]
        )
        sel, tgt_sel, rank, uniq, counts, n_evicted = topk_merge(
            a_tgt, a_nid, a_ts, a_pref, cap
        )
        flat_pos = tgt_sel * cap + rank
        np.put(self._ids, flat_pos, a_nid[sel])
        np.put(self._caps, flat_pos, a_cap[sel])
        np.put(self._loads, flat_pos, a_load[sel])
        np.put(self._ts, flat_pos, a_ts[sel])
        np.put(self._ttl, flat_pos, a_ttl[sel])
        self._len[uniq] = counts
        self.records_merged += int((a_pref[sel] > 0).sum())
        self.evictions += n_evicted

        if self.expiry is not None:
            self._expire(now)

    def _expire(self, now: float) -> None:
        assert self.expiry is not None
        horizon = now - self.expiry
        lens = self._len
        in_row = self._col[None, :] < lens[:, None]
        keep = in_row & (self._ts >= horizon)
        new_len = keep.sum(axis=1)
        changed = np.flatnonzero(new_len < lens)
        if changed.size == 0:
            return
        # Stable compaction: survivors slide left, preserving order.
        order = np.argsort(~keep[changed], axis=1, kind="stable")
        for arr in (self._ids, self._caps, self._loads, self._ts, self._ttl):
            arr[changed] = np.take_along_axis(arr[changed], order, axis=1)
        self._len[changed] = new_len[changed]

    # ------------------------------------------------------------ consumers
    def rss_columns(
        self, node_id: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The resource set RSS(p) as parallel array slices.

        Returns ``(ids, capacities, loads, timestamps)`` views over the
        node's row — the zero-copy form Algorithm 1's candidate table is
        built from.  Callers must not mutate them (use
        :meth:`apply_local_update` / :meth:`discard`).
        """
        if node_id >= self._n_alloc or not self._tracked[node_id]:
            empty = np.zeros(0)
            return empty.astype(np.int64), empty, empty, empty
        m = int(self._len[node_id])
        return (
            self._ids[node_id, :m],
            self._caps[node_id, :m],
            self._loads[node_id, :m],
            self._ts[node_id, :m],
        )

    def rss_view(self, node_id: int) -> dict[int, NodeStateRecord]:
        """A dict *snapshot* of RSS(p), rebuilt per call.

        Convenience for tests and cold call sites; mutating the returned
        mapping does not touch gossip state (hot paths use
        :meth:`rss_columns`).
        """
        out: dict[int, NodeStateRecord] = {}
        if node_id >= self._n_alloc or not self._tracked[node_id]:
            return out
        m = int(self._len[node_id])
        ids = self._ids[node_id, :m].tolist()
        caps = self._caps[node_id, :m].tolist()
        loads = self._loads[node_id, :m].tolist()
        ts = self._ts[node_id, :m].tolist()
        ttl = self._ttl[node_id, :m].tolist()
        for k, nid in enumerate(ids):
            out[nid] = NodeStateRecord(nid, caps[k], loads[k], ts[k], ttl[k])
        return out

    def _find(self, owner: int, target: int) -> int:
        """Slot of ``target`` in ``owner``'s row, or -1."""
        if owner >= self._n_alloc or not self._tracked[owner]:
            return -1
        m = int(self._len[owner])
        pos = np.flatnonzero(self._ids[owner, :m] == target)
        return int(pos[0]) if pos.size else -1

    def discard(self, owner: int, target: int) -> None:
        """Drop the owner's record of ``target`` (stale-target eviction
        after a failed dispatch); no-op when absent."""
        pos = self._find(owner, target)
        if pos < 0:
            return
        last = int(self._len[owner]) - 1
        for arr in (self._ids, self._caps, self._loads, self._ts, self._ttl):
            arr[owner, pos] = arr[owner, last]
        self._len[owner] = last

    def timestamp_of(self, owner: int, target: int) -> Optional[float]:
        """Stamp of the owner's record of ``target`` (telemetry), or None."""
        pos = self._find(owner, target)
        return None if pos < 0 else float(self._ts[owner, pos])

    def apply_local_update(
        self, owner: int, target: int, new_load: float, now: float
    ) -> None:
        """Algorithm 1 line 15: after dispatching a task to ``target``,
        overwrite the *owner's local* record of the target's load."""
        pos = self._find(owner, target)
        if pos < 0:
            return
        self._loads[owner, pos] = new_load
        self._ts[owner, pos] = now

    def mean_known_nodes(self) -> float:
        """Average RSS size over live nodes — the Fig. 11(a) metric."""
        if not self._tracked.any():
            return 0.0
        return float(self._len[self._tracked].mean())
