"""Epidemic push gossip for node-state dissemination (substrate S5).

Per gossip cycle (paper: five minutes) every live node

1. re-stamps its own :class:`~repro.gossip.messages.NodeStateRecord` with its
   current total load,
2. selects ``fanout = ceil(log2 n)`` random neighbors via the Newscast
   overlay, and
3. pushes its own record plus up to ``push_size`` sampled known records,
   each with TTL decremented (paper: TTL = 4, so a record travels at most
   four hops from its owner).

Receivers merge records, keeping the fresher timestamp per node, and each
node's resource set RSS is bounded to ``rss_capacity`` entries — the paper's
O(log2 n) space bound — evicting the stalest.  Records older than
``expiry`` (default: four gossip cycles) are dropped, which is also how
departed nodes disappear from scheduling views under churn.

The per-node view exposed to Algorithm 1 is :meth:`rss_view`; the scheduler
additionally *writes back* its dispatch decisions via
:meth:`apply_local_update` (Algorithm 1 line 15) so consecutive picks in the
same scheduling cycle see the load they just added.

Performance: the cycle is batched — one digest per sender, delivered to
every fan-out target with the merge loop inlined (no per-message call
churn), the digest sampled via the stream-identical
:class:`~repro.sim.fastrand.FastSampler` fast path, and the per-delivery
RSS eviction served by :func:`_evict`'s partial selection.  None of this
moves a draw or reorders a record: the golden fingerprints replay
bit-identically.
"""

from __future__ import annotations

from heapq import nlargest
from operator import attrgetter
from typing import Callable

import numpy as np

from repro.gossip.messages import NodeStateRecord
from repro.gossip.newscast import NewscastOverlay
from repro.sim.fastrand import FastSampler

__all__ = ["EpidemicGossip"]

#: C-level sort key for the freshness eviction (hot path).
_BY_TIMESTAMP = attrgetter("timestamp")

LoadProvider = Callable[[int], tuple[float, float]]
"""Callback ``node_id -> (total_load_MI, capacity_MIPS)``."""


#: Reusable sort buffer for :func:`_evict` — the simulation is single-
#: threaded and evictions never nest, so one scratch list serves every RSS
#: (sparing the garbage collector ~one tracked container per delivery).
_EVICT_SCRATCH: list[NodeStateRecord] = []


def _evict(rss: dict[int, NodeStateRecord], cap: int) -> None:
    """Trim ``rss`` *in place* to the ``cap`` freshest records, reordered
    freshness-descending.

    The rebuild order is load-bearing: Algorithm 1 iterates the dict, and
    the push digest samples records by position, so the eviction must
    reproduce ``sorted(..., reverse=True)[:cap]`` exactly.  Two equivalent
    selection strategies, picked by overflow size:

    * steady state (a delivery pushed the RSS a few records over ``cap``):
      the dict is still mostly in the descending order the previous
      eviction left it in, which Timsort's run detection turns into a
      near-linear partial selection (in the reusable scratch buffer) —
      measurably faster than a heap-based ``nlargest`` at these sizes;
    * flood (cold-start or a burst merged far past ``cap``): C-level
      ``heapq.nlargest``, documented equivalent to the reverse-sorted
      prefix (same stable order), selects in O(n log cap) without sorting
      the victims.

    Refilling the existing dict (rather than building a fresh one) keeps
    the RSS object identity stable for view holders and spares the
    allocator/GC one tracked container per delivery.
    """
    if len(rss) < 2 * cap:
        by_age = _EVICT_SCRATCH
        by_age.clear()
        by_age.extend(rss.values())
        by_age.sort(key=_BY_TIMESTAMP, reverse=True)
        del by_age[cap:]
    else:
        by_age = nlargest(cap, rss.values(), key=_BY_TIMESTAMP)
    rss.clear()
    for r in by_age:
        rss[r.node_id] = r


class EpidemicGossip:
    """State-information dissemination with bounded per-node views.

    Parameters
    ----------
    overlay:
        Peer-sampling service.
    load_provider:
        Returns the *ground truth* ``(total_load, capacity)`` of a node when
        that node stamps its own record (information about *other* nodes is
        only ever obtained through gossip).
    rng:
        Randomness for record sampling.
    ttl:
        Initial hop budget of a freshly stamped record (paper: 4).
    push_size:
        Known records piggybacked per push in addition to the sender's own.
    rss_capacity:
        Max records retained per node; ``None`` -> ``2 * ceil(log2 n)``.
    expiry:
        Age (seconds) beyond which a record is evicted; ``None`` -> never.
    """

    def __init__(
        self,
        overlay: NewscastOverlay,
        load_provider: LoadProvider,
        rng: np.random.Generator,
        ttl: int = 4,
        push_size: int = 4,
        rss_capacity: int | None = None,
        expiry: float | None = None,
    ):
        self.overlay = overlay
        self.load_provider = load_provider
        self.rng = rng
        self._fast = FastSampler(rng)
        self.ttl = int(ttl)
        self.push_size = int(push_size)
        n = max(len(overlay.live), 2)
        if rss_capacity is None:
            rss_capacity = 2 * int(np.ceil(np.log2(n)))
        self.rss_capacity = int(rss_capacity)
        self.expiry = expiry
        self.fanout = max(1, int(np.ceil(np.log2(n))))
        # rss[i] : node_id -> freshest record known at i (never contains i).
        self.rss: dict[int, dict[int, NodeStateRecord]] = {
            i: {} for i in overlay.live
        }
        self.messages_sent = 0
        self.records_shipped = 0
        #: Records accepted by the freshness merge / trimmed by capacity
        #: eviction (observability only — never read by the protocol).
        self.records_merged = 0
        self.evictions = 0

    # ---------------------------------------------------------------- churn
    def add_node(self, node_id: int) -> None:
        """Start tracking a joining node (empty RSS; fills via gossip)."""
        self.rss[node_id] = {}

    def remove_node(self, node_id: int) -> None:
        """Forget a departing node's own view.

        Remote records pointing at it decay via ``expiry``; until then
        schedulers may still (incorrectly) select it — exactly the staleness
        hazard the paper attributes to node churning.
        """
        self.rss.pop(node_id, None)

    # ---------------------------------------------------------------- cycle
    def run_cycle(self, now: float) -> None:
        """One push round for every live node (cycle-driven execution).

        The digest is sampled once per sender and delivered to every
        target with the merge inlined — one batched pass, no per-message
        helper calls on the hot path.
        """
        load_provider = self.load_provider
        ttl = self.ttl
        push_size = self.push_size
        sample = self.overlay.sample
        fanout = self.fanout
        choice_indices = self._fast.choice_indices
        rss_all = self.rss
        cap = self.rss_capacity
        messages = 0
        shipped = 0
        merged = 0
        evicted = 0
        for i in self.overlay.live:
            # Stamp a fresh self-record so this cycle ships current loads
            # (stamping only reads node state, which gossip never mutates,
            # so inlining it into the push loop is order-neutral).
            load, capacity = load_provider(i)
            self_record = NodeStateRecord(i, capacity, load, now, ttl)
            rss_i = rss_all[i]
            targets = sample(i, fanout)
            if not targets:
                continue
            # Sample up to push_size forwardable known records once per
            # sender; all targets receive the same digest (one "message"),
            # unpacked into merge keys once per sender, not per pair.
            forwardable = [r for r in rss_i.values() if r.ttl > 0]
            if len(forwardable) > push_size:
                digest_items = [
                    ((a := forwardable[t].aged()).node_id, a.timestamp, a)
                    for t in choice_indices(len(forwardable), push_size)
                ]
            else:
                digest_items = [
                    ((a := rec.aged()).node_id, a.timestamp, a)
                    for rec in forwardable
                ]
            n_digest = len(digest_items) + 1
            n_targets = len(targets)
            messages += n_targets
            shipped += n_digest * n_targets
            for t in targets:
                rss = rss_all.get(t)
                if rss is None:  # target churned out mid-cycle
                    continue
                rss_get = rss.get
                for nid, ts, rec in digest_items:
                    if nid == t:
                        continue
                    cur = rss_get(nid)
                    if cur is None or ts > cur.timestamp:
                        rss[nid] = rec
                        merged += 1
                # The sender's own just-stamped record, merged last (it was
                # the digest tail): same strict freshness test, without the
                # per-pair tuple in the loop above.  The target never
                # equals the sender — nodes do not sample themselves.
                cur = rss_get(i)
                if cur is None or now > cur.timestamp:
                    rss[i] = self_record
                    merged += 1
                if len(rss) > cap:
                    evicted += len(rss) - cap
                    _evict(rss, cap)
        self.messages_sent += messages
        self.records_shipped += shipped
        self.records_merged += merged
        self.evictions += evicted

        if self.expiry is not None:
            self._expire(now)

    def _expire(self, now: float) -> None:
        assert self.expiry is not None
        horizon = now - self.expiry
        for rss in self.rss.values():
            dead = [nid for nid, rec in rss.items() if rec.timestamp < horizon]
            for nid in dead:
                del rss[nid]

    # ------------------------------------------------------------ consumers
    def rss_view(self, node_id: int) -> dict[int, NodeStateRecord]:
        """The resource set RSS(p) Algorithm 1 iterates over.

        The mapping is the live internal one: schedulers must mutate it only
        through :meth:`apply_local_update`.
        """
        return self.rss.get(node_id, {})

    def apply_local_update(
        self, owner: int, target: int, new_load: float, now: float
    ) -> None:
        """Algorithm 1 line 15: after dispatching a task to ``target``,
        overwrite the *owner's local* record of the target's load."""
        rss = self.rss.get(owner)
        if rss is None:
            return
        cur = rss.get(target)
        if cur is None:
            return
        rss[target] = NodeStateRecord(
            node_id=target,
            capacity=cur.capacity,
            total_load=new_load,
            timestamp=now,
            ttl=cur.ttl,
        )

    def mean_known_nodes(self) -> float:
        """Average RSS size over live nodes — the Fig. 11(a) metric."""
        rss = self.rss
        if not rss:
            return 0.0
        return sum(map(len, rss.values())) / len(rss)
