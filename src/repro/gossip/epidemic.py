"""Epidemic push gossip for node-state dissemination (substrate S5).

Per gossip cycle (paper: five minutes) every live node

1. re-stamps its own :class:`~repro.gossip.messages.NodeStateRecord` with its
   current total load,
2. selects ``fanout = ceil(log2 n)`` random neighbors via the Newscast
   overlay, and
3. pushes its own record plus up to ``push_size`` sampled known records,
   each with TTL decremented (paper: TTL = 4, so a record travels at most
   four hops from its owner).

Receivers merge records, keeping the fresher timestamp per node, and each
node's resource set RSS is bounded to ``rss_capacity`` entries — the paper's
O(log2 n) space bound — evicting the stalest.  Records older than
``expiry`` (default: four gossip cycles) are dropped, which is also how
departed nodes disappear from scheduling views under churn.

The per-node view exposed to Algorithm 1 is :meth:`rss_view`; the scheduler
additionally *writes back* its dispatch decisions via
:meth:`apply_local_update` (Algorithm 1 line 15) so consecutive picks in the
same scheduling cycle see the load they just added.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.gossip.messages import NodeStateRecord
from repro.gossip.newscast import NewscastOverlay

__all__ = ["EpidemicGossip"]

LoadProvider = Callable[[int], tuple[float, float]]
"""Callback ``node_id -> (total_load_MI, capacity_MIPS)``."""


class EpidemicGossip:
    """State-information dissemination with bounded per-node views.

    Parameters
    ----------
    overlay:
        Peer-sampling service.
    load_provider:
        Returns the *ground truth* ``(total_load, capacity)`` of a node when
        that node stamps its own record (information about *other* nodes is
        only ever obtained through gossip).
    rng:
        Randomness for record sampling.
    ttl:
        Initial hop budget of a freshly stamped record (paper: 4).
    push_size:
        Known records piggybacked per push in addition to the sender's own.
    rss_capacity:
        Max records retained per node; ``None`` -> ``2 * ceil(log2 n)``.
    expiry:
        Age (seconds) beyond which a record is evicted; ``None`` -> never.
    """

    def __init__(
        self,
        overlay: NewscastOverlay,
        load_provider: LoadProvider,
        rng: np.random.Generator,
        ttl: int = 4,
        push_size: int = 4,
        rss_capacity: int | None = None,
        expiry: float | None = None,
    ):
        self.overlay = overlay
        self.load_provider = load_provider
        self.rng = rng
        self.ttl = int(ttl)
        self.push_size = int(push_size)
        n = max(len(overlay.live), 2)
        if rss_capacity is None:
            rss_capacity = 2 * int(np.ceil(np.log2(n)))
        self.rss_capacity = int(rss_capacity)
        self.expiry = expiry
        self.fanout = max(1, int(np.ceil(np.log2(n))))
        # rss[i] : node_id -> freshest record known at i (never contains i).
        self.rss: dict[int, dict[int, NodeStateRecord]] = {
            i: {} for i in overlay.live
        }
        self.messages_sent = 0
        self.records_shipped = 0

    # ---------------------------------------------------------------- churn
    def add_node(self, node_id: int) -> None:
        """Start tracking a joining node (empty RSS; fills via gossip)."""
        self.rss[node_id] = {}

    def remove_node(self, node_id: int) -> None:
        """Forget a departing node's own view.

        Remote records pointing at it decay via ``expiry``; until then
        schedulers may still (incorrectly) select it — exactly the staleness
        hazard the paper attributes to node churning.
        """
        self.rss.pop(node_id, None)

    # ---------------------------------------------------------------- cycle
    def run_cycle(self, now: float) -> None:
        """One push round for every live node (cycle-driven execution)."""
        live = self.overlay.live
        # Stamp fresh self-records first so this cycle ships current loads.
        self_records: dict[int, NodeStateRecord] = {}
        for i in live:
            load, capacity = self.load_provider(i)
            self_records[i] = NodeStateRecord(
                node_id=i, capacity=capacity, total_load=load, timestamp=now, ttl=self.ttl
            )

        for i in live:
            rss_i = self.rss[i]
            targets = self.overlay.sample(i, self.fanout)
            if not targets:
                continue
            # Sample up to push_size forwardable known records once per
            # sender; all targets receive the same digest (one "message").
            forwardable = [r for r in rss_i.values() if r.ttl > 0]
            if len(forwardable) > self.push_size:
                idx = self.rng.choice(len(forwardable), size=self.push_size, replace=False)
                digest = [forwardable[int(k)].aged() for k in idx]
            else:
                digest = [r.aged() for r in forwardable]
            digest.append(self_records[i])
            for t in targets:
                self.messages_sent += 1
                self.records_shipped += len(digest)
                self._deliver(t, i, digest)

        if self.expiry is not None:
            self._expire(now)

    def _deliver(self, target: int, sender: int, records: list[NodeStateRecord]) -> None:
        rss = self.rss.get(target)
        if rss is None:  # target churned out mid-cycle
            return
        for rec in records:
            if rec.node_id == target:
                continue
            cur = rss.get(rec.node_id)
            if cur is None or rec.fresher_than(cur):
                rss[rec.node_id] = rec
        if len(rss) > self.rss_capacity:
            # Evict the stalest entries beyond capacity.
            by_age = sorted(rss.items(), key=lambda kv: kv[1].timestamp, reverse=True)
            self.rss[target] = dict(by_age[: self.rss_capacity])

    def _expire(self, now: float) -> None:
        assert self.expiry is not None
        horizon = now - self.expiry
        for i, rss in self.rss.items():
            dead = [nid for nid, rec in rss.items() if rec.timestamp < horizon]
            for nid in dead:
                del rss[nid]

    # ------------------------------------------------------------ consumers
    def rss_view(self, node_id: int) -> dict[int, NodeStateRecord]:
        """The resource set RSS(p) Algorithm 1 iterates over.

        The mapping is the live internal one: schedulers must mutate it only
        through :meth:`apply_local_update`.
        """
        return self.rss.get(node_id, {})

    def apply_local_update(
        self, owner: int, target: int, new_load: float, now: float
    ) -> None:
        """Algorithm 1 line 15: after dispatching a task to ``target``,
        overwrite the *owner's local* record of the target's load."""
        rss = self.rss.get(owner)
        if rss is None:
            return
        cur = rss.get(target)
        if cur is None:
            return
        rss[target] = NodeStateRecord(
            node_id=target,
            capacity=cur.capacity,
            total_load=new_load,
            timestamp=now,
            ttl=cur.ttl,
        )

    def mean_known_nodes(self) -> float:
        """Average RSS size over live nodes — the Fig. 11(a) metric."""
        if not self.rss:
            return 0.0
        return float(np.mean([len(v) for v in self.rss.values()]))
