"""Newscast-style membership overlay (part of substrate S5).

The paper selects gossip neighbors "randomly ... at every propagation cycle
based on the Newscast model" with a fan-out of ``log2(n)``.  Newscast
maintains, per node, a bounded cache of ``(peer, freshness)`` descriptors;
each cycle a node merges caches with a random cache entry and keeps the
freshest ``c`` descriptors.  The emergent communication graph is a small-
world random graph, which is what gives epidemic dissemination its
exponential spread.

The overlay also provides the peer-sampling service used by the epidemic and
aggregation protocols, and absorbs churn: descriptors of departed nodes age
out, joining nodes bootstrap from a random live seed.

Performance: every bounded draw on the overlay's stream goes through one
:class:`~repro.sim.fastrand.FastSampler` — the stream-identical emulation
of NumPy's bounded generation — which removes the per-call ``Generator``
overhead (the ROADMAP-named gossip hot spot) without moving a single draw.
Array shuffles stay in NumPy's C loop via the sampler's sync'd
:meth:`~repro.sim.fastrand.FastSampler.shuffle`.
"""

from __future__ import annotations

from operator import itemgetter

import numpy as np

from repro.sim.fastrand import FastSampler

__all__ = ["NewscastOverlay"]

#: C-level sort key for freshness ordering (hot path).
_BY_FRESHNESS = itemgetter(1)

#: Reusable merge/sort buffers for :meth:`NewscastOverlay._shuffle_pair` —
#: the simulation is single-threaded and shuffles never nest, so one pair
#: of scratch containers serves every overlay (two fewer tracked
#: allocations per shuffle keeps generation-0 GC pressure down).
_MERGE_SCRATCH: dict[int, float] = {}
_KEEP_SCRATCH: list[tuple[int, float]] = []


class NewscastOverlay:
    """Bounded-cache membership with per-cycle shuffles.

    Parameters
    ----------
    node_ids:
        Initially live peers.
    rng:
        Peer-sampling randomness.  All bounded draws are emulated
        stream-identically (see module docstring); callers must not draw
        from this generator directly once the overlay owns it.
    cache_size:
        Descriptors kept per node; ``None`` -> ``max(8, 2*ceil(log2 n))``
        which keeps the per-node view O(log n) as the paper requires.
    """

    def __init__(
        self,
        node_ids: list[int],
        rng: np.random.Generator,
        cache_size: int | None = None,
    ):
        self.rng = rng
        self._fast = FastSampler(rng)
        n = max(len(node_ids), 2)
        if cache_size is None:
            cache_size = max(8, 2 * int(np.ceil(np.log2(n))))
        self.cache_size = int(cache_size)
        self.live: set[int] = set(node_ids)
        # cache[i] : dict peer_id -> freshness timestamp
        self.cache: dict[int, dict[int, float]] = {i: {} for i in node_ids}
        # Membership version + per-node live-peer memo: several protocols
        # sample the same node between shuffles (epidemic then aggregation
        # each cycle), so the filtered peer list is reused until any cache
        # or liveness mutation bumps the version.
        self._version = 0
        self._peers_memo: dict[int, tuple[int, list[int]]] = {}
        #: False until the first departure: on a never-churned grid every
        #: cached descriptor is live by construction, so the per-sample
        #: liveness superset check can be skipped outright.
        self._had_removals = False
        #: Completed pairwise shuffles / degenerate-cache reseeds
        #: (observability only — never read by the protocol).
        self.shuffles = 0
        self.reseeds = 0
        self._bootstrap_random(node_ids)

    # ---------------------------------------------------------------- setup
    def _bootstrap_random(self, node_ids: list[int]) -> None:
        n = len(node_ids)
        if n < 2:
            return
        k = min(self.cache_size, n - 1)
        choice_indices = self._fast.choice_indices
        for i in node_ids:
            # Same draws as rng.choice(ids_array, size=k+1, replace=False).
            peers = [node_ids[t] for t in choice_indices(n, k + 1)]
            cache = self.cache[i]
            for p in peers:
                if p != i and len(cache) < self.cache_size:
                    cache[p] = 0.0

    # ---------------------------------------------------------------- churn
    def add_node(self, node_id: int, now: float) -> None:
        """Join: bootstrap the cache from a random live seed."""
        self._version += 1
        self.live.add(node_id)
        cache: dict[int, float] = {}
        candidates = [p for p in self.live if p != node_id]
        if candidates:
            # Same draw as rng.choice(np.asarray(candidates)) — one bounded
            # integer — without the array round-trip.
            seed = candidates[self._fast.integers(len(candidates))]
            cache.update(self.cache.get(seed, {}))
            cache.pop(node_id, None)
            cache[seed] = now
        self.cache[node_id] = dict(
            sorted(cache.items(), key=_BY_FRESHNESS, reverse=True)[: self.cache_size]
        )

    def remove_node(self, node_id: int) -> None:
        """Leave: the node's cache dies with it; remote descriptors of it
        age out naturally (no global purge — matching real gossip)."""
        self._version += 1
        self._had_removals = True
        self.live.discard(node_id)
        self.cache.pop(node_id, None)
        self._peers_memo.pop(node_id, None)

    # ---------------------------------------------------------------- cycle
    def run_cycle(self, now: float) -> None:
        """One Newscast shuffle for every live node.

        Each node contacts one random cache entry (if live), both merge the
        union of their caches plus fresh descriptors of each other, keeping
        the freshest ``cache_size`` entries.
        """
        live = self.live
        order = np.fromiter(live, dtype=np.int64, count=len(live))
        fast = self._fast
        fast.shuffle(order)
        cache_get = self.cache.get
        integers = fast.integers
        never_churned = not self._had_removals
        for i in order.tolist():
            cache = cache_get(i)
            if cache is None:
                continue
            # Fast path: with no dead descriptors every entry qualifies
            # (C-level superset check; identical list to the filter below).
            if never_churned or live.issuperset(cache):
                live_peers = list(cache)
            else:
                live_peers = [p for p in cache if p in live]
            if not live_peers:
                # Degenerate cache (all entries churned out): reseed.
                candidates = [p for p in live if p != i]
                if candidates:
                    p = candidates[integers(len(candidates))]
                    cache[p] = now
                    self._version += 1
                    self.reseeds += 1
                continue
            j = live_peers[integers(len(live_peers))]
            self._shuffle_pair(i, j, now)

    def _shuffle_pair(self, i: int, j: int, now: float) -> None:
        ci, cj = self.cache[i], self.cache[j]
        merged = _MERGE_SCRATCH
        merged.clear()
        merged.update(ci)
        merged_get = merged.get
        for p, ts in cj.items():
            cur = merged_get(p)
            if cur is None or ts > cur:
                merged[p] = ts
        merged[i] = now
        merged[j] = now
        keep = _KEEP_SCRATCH
        keep.clear()
        keep.extend(merged.items())
        keep.sort(key=_BY_FRESHNESS, reverse=True)
        cache_size = self.cache_size
        # Each output misses at most one entry of `keep` (its own owner),
        # so both caches are full within the first cache_size + 2 items —
        # the fill loop never needs the tail.
        del keep[cache_size + 2:]
        new_i: dict[int, float] = {}
        new_j: dict[int, float] = {}
        ni = nj = 0
        for p, ts in keep:
            if ni >= cache_size and nj >= cache_size:
                break
            if p != i and ni < cache_size:
                new_i[p] = ts
                ni += 1
            if p != j and nj < cache_size:
                new_j[p] = ts
                nj += 1
        self.cache[i] = new_i
        self.cache[j] = new_j
        self._version += 1
        self.shuffles += 1

    # -------------------------------------------------------------- sampling
    def sample(self, node_id: int, k: int) -> list[int]:
        """Return up to ``k`` distinct random live peers from the cache."""
        memo = self._peers_memo.get(node_id)
        if memo is not None and memo[0] == self._version:
            peers = memo[1]
        else:
            cache = self.cache.get(node_id)
            if not cache:
                return []
            live = self.live
            if not self._had_removals or live.issuperset(cache):
                # Fast path (no dead descriptors).  A node never caches
                # itself — bootstrap, shuffles and joins all filter the
                # owner — so the C-level copy needs no self-filter.
                peers = list(cache)
            else:
                peers = [p for p in cache if p in live and p != node_id]
            self._peers_memo[node_id] = (self._version, peers)
        if not peers:
            return []
        n = len(peers)
        if n <= k:
            return peers
        fast = self._fast
        if k == 1:
            # One bounded draw — stream-identical to choice(n, 1,
            # replace=False) (Floyd with an empty exclusion set and no
            # tail shuffle); this is the once-per-node-per-cycle
            # aggregation pairing.
            return [peers[fast.integers(n)]]
        return [peers[t] for t in fast.choice_indices(n, k)]

    def known_live(self, node_id: int) -> list[int]:
        """All live peers currently in the node's cache."""
        cache = self.cache.get(node_id, {})
        return [p for p in cache if p in self.live]

    def mean_descriptor_age(self, now: float) -> float:
        """Mean age (seconds) of cached peer descriptors across live nodes.

        A telemetry-snapshot helper (O(total descriptors), called once per
        run, never on the cycle hot path): young views mean the shuffle is
        keeping membership fresh; ages near the churn timescale mean stale
        neighbor sets.
        """
        total = 0.0
        count = 0
        for i in self.live:
            for ts in self.cache.get(i, {}).values():
                total += now - ts
                count += 1
        return total / count if count else 0.0
