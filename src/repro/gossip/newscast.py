"""Newscast-style membership overlay (part of substrate S5).

The paper selects gossip neighbors "randomly ... at every propagation cycle
based on the Newscast model" with a fan-out of ``log2(n)``.  Newscast
maintains, per node, a bounded cache of ``(peer, freshness)`` descriptors;
each cycle a node merges caches with a random cache entry and keeps the
freshest ``c`` descriptors.  The emergent communication graph is a small-
world random graph, which is what gives epidemic dissemination its
exponential spread.

The overlay also provides the peer-sampling service used by the epidemic and
aggregation protocols, and absorbs churn: descriptors of departed nodes age
out, joining nodes bootstrap from a random live seed.
"""

from __future__ import annotations

from operator import itemgetter

import numpy as np

__all__ = ["NewscastOverlay"]

#: C-level sort key for freshness ordering (hot path).
_BY_FRESHNESS = itemgetter(1)


class NewscastOverlay:
    """Bounded-cache membership with per-cycle shuffles.

    Parameters
    ----------
    node_ids:
        Initially live peers.
    rng:
        Peer-sampling randomness.
    cache_size:
        Descriptors kept per node; ``None`` -> ``max(8, 2*ceil(log2 n))``
        which keeps the per-node view O(log n) as the paper requires.
    """

    def __init__(
        self,
        node_ids: list[int],
        rng: np.random.Generator,
        cache_size: int | None = None,
    ):
        self.rng = rng
        n = max(len(node_ids), 2)
        if cache_size is None:
            cache_size = max(8, 2 * int(np.ceil(np.log2(n))))
        self.cache_size = int(cache_size)
        self.live: set[int] = set(node_ids)
        # cache[i] : dict peer_id -> freshness timestamp
        self.cache: dict[int, dict[int, float]] = {i: {} for i in node_ids}
        # Membership version + per-node live-peer memo: several protocols
        # sample the same node between shuffles (epidemic then aggregation
        # each cycle), so the filtered peer list is reused until any cache
        # or liveness mutation bumps the version.
        self._version = 0
        self._peers_memo: dict[int, tuple[int, list[int]]] = {}
        self._bootstrap_random(node_ids)

    # ---------------------------------------------------------------- setup
    def _bootstrap_random(self, node_ids: list[int]) -> None:
        ids = np.asarray(node_ids, dtype=np.int64)
        if len(ids) < 2:
            return
        k = min(self.cache_size, len(ids) - 1)
        for i in node_ids:
            peers = self.rng.choice(ids, size=k + 1, replace=False)
            cache = self.cache[i]
            for p in peers:
                p = int(p)
                if p != i and len(cache) < self.cache_size:
                    cache[p] = 0.0

    # ---------------------------------------------------------------- churn
    def add_node(self, node_id: int, now: float) -> None:
        """Join: bootstrap the cache from a random live seed."""
        self._version += 1
        self.live.add(node_id)
        cache: dict[int, float] = {}
        candidates = [p for p in self.live if p != node_id]
        if candidates:
            seed = int(self.rng.choice(np.asarray(candidates, dtype=np.int64)))
            cache.update(self.cache.get(seed, {}))
            cache.pop(node_id, None)
            cache[seed] = now
        self.cache[node_id] = dict(
            sorted(cache.items(), key=_BY_FRESHNESS, reverse=True)[: self.cache_size]
        )

    def remove_node(self, node_id: int) -> None:
        """Leave: the node's cache dies with it; remote descriptors of it
        age out naturally (no global purge — matching real gossip)."""
        self._version += 1
        self.live.discard(node_id)
        self.cache.pop(node_id, None)
        self._peers_memo.pop(node_id, None)

    # ---------------------------------------------------------------- cycle
    def run_cycle(self, now: float) -> None:
        """One Newscast shuffle for every live node.

        Each node contacts one random cache entry (if live), both merge the
        union of their caches plus fresh descriptors of each other, keeping
        the freshest ``cache_size`` entries.
        """
        live = self.live
        order = np.fromiter(live, dtype=np.int64, count=len(live))
        self.rng.shuffle(order)
        for i in order.tolist():
            cache = self.cache.get(i)
            if cache is None:
                continue
            # Fast path: with no dead descriptors every entry qualifies
            # (C-level superset check; identical list to the filter below).
            if live.issuperset(cache):
                live_peers = list(cache)
            else:
                live_peers = [p for p in cache if p in live]
            if not live_peers:
                # Degenerate cache (all entries churned out): reseed.
                candidates = [p for p in live if p != i]
                if candidates:
                    p = int(self.rng.choice(np.asarray(candidates, dtype=np.int64)))
                    cache[p] = now
                    self._version += 1
                continue
            j = live_peers[int(self.rng.integers(len(live_peers)))]
            self._shuffle_pair(i, j, now)

    def _shuffle_pair(self, i: int, j: int, now: float) -> None:
        ci, cj = self.cache[i], self.cache[j]
        merged: dict[int, float] = dict(ci)
        merged_get = merged.get
        for p, ts in cj.items():
            cur = merged_get(p)
            if cur is None or ts > cur:
                merged[p] = ts
        merged[i] = now
        merged[j] = now
        keep = sorted(merged.items(), key=_BY_FRESHNESS, reverse=True)
        cache_size = self.cache_size
        new_i: dict[int, float] = {}
        new_j: dict[int, float] = {}
        ni = nj = 0
        for p, ts in keep:
            if ni >= cache_size and nj >= cache_size:
                break
            if p != i and ni < cache_size:
                new_i[p] = ts
                ni += 1
            if p != j and nj < cache_size:
                new_j[p] = ts
                nj += 1
        self.cache[i] = new_i
        self.cache[j] = new_j
        self._version += 1

    # -------------------------------------------------------------- sampling
    def sample(self, node_id: int, k: int) -> list[int]:
        """Return up to ``k`` distinct random live peers from the cache."""
        memo = self._peers_memo.get(node_id)
        if memo is not None and memo[0] == self._version:
            peers = memo[1]
        else:
            cache = self.cache.get(node_id)
            if not cache:
                return []
            live = self.live
            if live.issuperset(cache):
                # Fast path (no dead descriptors); a node never caches
                # itself, but keep the self-filter for robustness to
                # hand-built caches.
                peers = [p for p in cache if p != node_id]
            else:
                peers = [p for p in cache if p in live and p != node_id]
            self._peers_memo[node_id] = (self._version, peers)
        if not peers:
            return []
        if len(peers) <= k:
            return peers
        if k == 1:
            # Stream-identical fast path: Generator.choice(n, size=1,
            # replace=False) consumes exactly one bounded draw (Floyd's
            # algorithm with an empty exclusion set and no tail shuffle),
            # so a direct integers() call replays the same value while
            # skipping choice()'s per-call setup — this is the
            # once-per-node-per-cycle aggregation pairing.
            return [peers[int(self.rng.integers(0, len(peers)))]]
        idx = self.rng.choice(len(peers), size=k, replace=False)
        return [peers[t] for t in idx.tolist()]

    def known_live(self, node_id: int) -> list[int]:
        """All live peers currently in the node's cache."""
        cache = self.cache.get(node_id, {})
        return [p for p in cache if p in self.live]
