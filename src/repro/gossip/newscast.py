"""Newscast-style membership overlay (part of substrate S5).

The paper selects gossip neighbors "randomly ... at every propagation cycle
based on the Newscast model" with a fan-out of ``log2(n)``.  Newscast
maintains, per node, a bounded cache of ``(peer, freshness)`` descriptors;
each cycle a node merges caches with a random cache entry and keeps the
freshest ``c`` descriptors.  The emergent communication graph is a small-
world random graph, which is what gives epidemic dissemination its
exponential spread.

The overlay also provides the peer-sampling service used by the epidemic and
aggregation protocols, and absorbs churn: descriptors of departed nodes age
out, joining nodes bootstrap from a random live seed.

Performance: the caches live in struct-of-arrays form — ``(n, cache_size)``
peer-id and freshness matrices plus a per-row length — and a cycle is one
*simultaneous* round: every node's partner pick is a single batched draw
(:meth:`~repro.sim.fastrand.FastSampler.random_batch` keys + a row argmin),
and all pairwise merges are applied at once from start-of-round state
through the shared :func:`repro.gossip.batch.topk_merge` kernel.  This
replaced the sequential per-node shuffle loop (PR 8's documented semantic
change): within one cycle merges no longer chain through each other, so
the RNG stream and the golden fingerprints were re-recorded, with the new
stream validated against the statistical bands in ``tests/regression``.
"""

from __future__ import annotations

import numpy as np

from repro.gossip.batch import row_topk_smallest, topk_merge
from repro.sim.fastrand import FastSampler

__all__ = ["NewscastOverlay"]


class NewscastOverlay:
    """Bounded-cache membership with batched per-cycle shuffles.

    Parameters
    ----------
    node_ids:
        Initially live peers.
    rng:
        Peer-sampling randomness.  All bounded draws are emulated
        stream-identically (see module docstring); callers must not draw
        from this generator directly once the overlay owns it.
    cache_size:
        Descriptors kept per node; ``None`` -> ``max(8, 2*ceil(log2 n))``
        which keeps the per-node view O(log n) as the paper requires.
    """

    def __init__(
        self,
        node_ids: list[int],
        rng: np.random.Generator,
        cache_size: int | None = None,
    ):
        self.rng = rng
        self._fast = FastSampler(rng)
        n = max(len(node_ids), 2)
        if cache_size is None:
            cache_size = max(8, 2 * int(np.ceil(np.log2(n))))
        self.cache_size = int(cache_size)
        self.live: set[int] = set(node_ids)
        self._n_alloc = max((max(node_ids) + 1) if node_ids else 1, 1)
        c = self.cache_size
        # Struct-of-arrays caches: row i holds node i's descriptors in
        # slots [0, _clen[i]) — peer ids in _pid, freshness stamps in
        # _fresh.  Rows never contain their owner.
        self._pid = np.zeros((self._n_alloc, c), dtype=np.int64)
        self._fresh = np.zeros((self._n_alloc, c))
        self._clen = np.zeros(self._n_alloc, dtype=np.int64)
        self._alive = np.zeros(self._n_alloc, dtype=bool)
        if node_ids:
            self._alive[np.asarray(node_ids, dtype=np.int64)] = True
        self._col = np.arange(c)
        self._live_cache: np.ndarray | None = None
        #: Completed pairwise shuffles / degenerate-cache reseeds
        #: (observability only — never read by the protocol).
        self.shuffles = 0
        self.reseeds = 0
        self._bootstrap_random(node_ids)

    # ---------------------------------------------------------------- setup
    def _bootstrap_random(self, node_ids: list[int]) -> None:
        n = len(node_ids)
        if n < 2:
            return
        k = min(self.cache_size, n - 1)
        choice_indices = self._fast.choice_indices
        for i in node_ids:
            # Same draws as rng.choice(ids_array, size=k+1, replace=False).
            m = 0
            for t in choice_indices(n, k + 1):
                p = node_ids[t]
                if p != i and m < self.cache_size:
                    self._pid[i, m] = p
                    self._fresh[i, m] = 0.0
                    m += 1
            self._clen[i] = m

    def _ensure_row(self, node_id: int) -> None:
        if node_id < self._n_alloc:
            return
        new_n = max(node_id + 1, 2 * self._n_alloc)
        c = self.cache_size
        for name, fill in (("_pid", 0), ("_fresh", 0.0), ("_clen", 0), ("_alive", False)):
            old = getattr(self, name)
            shape = (new_n, c) if old.ndim == 2 else (new_n,)
            grown = np.full(shape, fill, dtype=old.dtype)
            grown[: self._n_alloc] = old
            setattr(self, name, grown)
        self._n_alloc = new_n

    def _live_array(self) -> np.ndarray:
        """Live node ids, sorted ascending (cached between churn events)."""
        if self._live_cache is None:
            self._live_cache = np.fromiter(
                sorted(self.live), dtype=np.int64, count=len(self.live)
            )
        return self._live_cache

    # A public alias: the epidemic and aggregation protocols drive their
    # batched rounds over the same sorted id array.
    live_array = _live_array

    # ---------------------------------------------------------------- churn
    def add_node(self, node_id: int, now: float) -> None:
        """Join: bootstrap the cache from a random live seed."""
        self._ensure_row(node_id)
        if node_id in self.live:  # defensive; joins are not re-entrant
            candidates = [p for p in sorted(self.live) if p != node_id]
        else:
            # The cached sorted live array IS the candidate list (the
            # joiner is not in it yet).
            candidates = self._live_array()
        self.live.add(node_id)
        self._alive[node_id] = True
        self._live_cache = None
        m = 0
        if len(candidates):
            # Same draw as rng.choice(np.asarray(candidates)) — one bounded
            # integer — without the array round-trip.
            seed = int(candidates[self._fast.integers(len(candidates))])
            sm = int(self._clen[seed])
            pid = self._pid[seed, :sm]
            fresh = self._fresh[seed, :sm]
            keep = (pid != node_id) & (pid != seed)
            pid = np.append(pid[keep], seed)
            fresh = np.append(fresh[keep], now)
            order = np.lexsort((pid, -fresh))[: self.cache_size]
            m = int(order.size)
            self._pid[node_id, :m] = pid[order]
            self._fresh[node_id, :m] = fresh[order]
        self._clen[node_id] = m

    def remove_node(self, node_id: int) -> None:
        """Leave: the node's cache dies with it; remote descriptors of it
        age out naturally (no global purge — matching real gossip)."""
        self.live.discard(node_id)
        if 0 <= node_id < self._n_alloc:
            self._alive[node_id] = False
            self._clen[node_id] = 0
        self._live_cache = None

    # ---------------------------------------------------------------- cycle
    def _pick_one(
        self, ids: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """One uniform live cached peer per row of ``ids`` (batched).

        Returns ``(partners, has)``; ``partners[r]`` is only meaningful
        where ``has[r]``.  Consumes exactly ``len(ids) * cache_size``
        doubles from the overlay stream regardless of occupancy.
        """
        s = int(ids.size)
        rows = self._pid[ids]
        valid = (self._col[None, :] < self._clen[ids][:, None]) & self._alive[rows]
        keys = self._fast.random_batch(s * self.cache_size).reshape(
            s, self.cache_size
        )
        masked = np.where(valid, keys, np.inf)
        pick = np.argmin(masked, axis=1)
        rix = np.arange(s)
        has = valid[rix, pick]
        return rows[rix, pick], has

    def run_cycle(self, now: float) -> None:
        """One simultaneous Newscast round over every live node.

        Each node picks one random live cache entry; all pairs then merge
        the union of their start-of-round caches plus fresh descriptors of
        each other, keeping the freshest ``cache_size`` entries — computed
        for the whole system in one :func:`topk_merge` call.
        """
        live_ids = self._live_array()
        s = int(live_ids.size)
        if s == 0:
            return
        c = self.cache_size
        col = self._col
        partners, has = self._pick_one(live_ids)

        # Degenerate caches (all entries churned out): reseed from a
        # random live candidate, in ascending node order.
        empty = np.flatnonzero(~has)
        if empty.size:
            live_list = live_ids.tolist()
            for r in empty.tolist():
                if s < 2:
                    continue
                i = live_list[r]
                t = self._fast.integers(s - 1)
                p = live_list[t] if t < r else live_list[t + 1]
                self._insert_descriptor(i, p, now)
                self.reseeds += 1

        P = live_ids[has]
        J = partners[has]
        m = int(P.size)
        if m == 0:
            return
        self.shuffles += m
        pair_rank = np.arange(m, dtype=np.int64) + 1

        # Row table for the merge kernel: each pair (i, j) contributes
        # j's cache plus a fresh descriptor of j to target i, and vice
        # versa; every involved node also re-submits its own cache
        # (pref 0, so an incumbent beats a same-age delivery).
        vJ = col[None, :] < self._clen[J][:, None]
        f1 = np.flatnonzero(vJ.reshape(-1))
        r1, c1 = np.divmod(f1, c)
        vP = col[None, :] < self._clen[P][:, None]
        f2 = np.flatnonzero(vP.reshape(-1))
        r2, c2 = np.divmod(f2, c)
        # Distinct involved nodes via a flag scatter (ids are dense row
        # indices, so this beats hash-based np.unique on the row pile).
        flag = np.zeros(self._n_alloc, dtype=bool)
        flag[P] = True
        flag[J] = True
        involved = np.flatnonzero(flag)
        vE = col[None, :] < self._clen[involved][:, None]
        f0 = np.flatnonzero(vE.reshape(-1))
        r0, c0 = np.divmod(f0, c)

        a_tgt = np.concatenate(
            [involved[r0], P[r1], J[r2], P, J]
        )
        a_key = np.concatenate(
            [
                self._pid[involved[r0], c0],
                self._pid[J[r1], c1],
                self._pid[P[r2], c2],
                J,
                P,
            ]
        )
        a_ts = np.concatenate(
            [
                self._fresh[involved[r0], c0],
                self._fresh[J[r1], c1],
                self._fresh[P[r2], c2],
                np.full(2 * m, now),
            ]
        )
        a_pref = np.concatenate(
            [
                np.zeros(f0.size, dtype=np.int64),
                pair_rank[r1],
                pair_rank[r2],
                pair_rank,
                pair_rank,
            ]
        )
        keep = a_key != a_tgt  # a node never caches itself
        sel, tgt_sel, rank, uniq, counts, _ = topk_merge(
            a_tgt[keep], a_key[keep], a_ts[keep], a_pref[keep], c
        )
        if uniq.size == 0:
            return
        flat = tgt_sel * c + rank
        np.put(self._pid, flat, a_key[keep][sel])
        np.put(self._fresh, flat, a_ts[keep][sel])
        self._clen[uniq] = counts

    def _insert_descriptor(self, node_id: int, peer: int, now: float) -> None:
        """Add/refresh one descriptor, replacing the stalest when full."""
        m = int(self._clen[node_id])
        row = self._pid[node_id, :m]
        pos = np.flatnonzero(row == peer)
        if pos.size:
            self._fresh[node_id, int(pos[0])] = now
            return
        if m < self.cache_size:
            self._pid[node_id, m] = peer
            self._fresh[node_id, m] = now
            self._clen[node_id] = m + 1
            return
        stalest = int(np.argmin(self._fresh[node_id, :m]))
        self._pid[node_id, stalest] = peer
        self._fresh[node_id, stalest] = now

    # -------------------------------------------------------------- sampling
    def sample(self, node_id: int, k: int) -> list[int]:
        """Return up to ``k`` distinct random live peers from the cache.

        Scalar path (tests, cold call sites); the protocols use the
        batched :meth:`sample_rounds` / :meth:`sample_one_batch`.
        """
        if node_id not in self.live or node_id >= self._n_alloc:
            return []
        m = int(self._clen[node_id])
        if m == 0:
            return []
        row = self._pid[node_id, :m]
        peers = row[self._alive[row]].tolist()
        if not peers:
            return []
        n = len(peers)
        if n <= k:
            return peers
        fast = self._fast
        if k == 1:
            return [peers[fast.integers(n)]]
        return [peers[t] for t in fast.choice_indices(n, k)]

    def sample_rounds(
        self, senders: np.ndarray, k: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Up to ``k`` distinct live cached peers for *every* sender row.

        The whole round's fan-out selection as one batch: one random key
        per cache slot, ``k`` smallest valid keys per row.  Returns
        ``(peers, picked)`` of shape ``(len(senders), min(k, cache_size))``;
        ``peers`` is ``-1`` where ``picked`` is False.
        """
        s = int(senders.size)
        rows = self._pid[senders]
        valid = (
            self._col[None, :] < self._clen[senders][:, None]
        ) & self._alive[rows]
        keys = self._fast.random_batch(s * self.cache_size).reshape(
            s, self.cache_size
        )
        pos, picked = row_topk_smallest(keys, valid, k)
        peers = np.take_along_axis(rows, pos, axis=1)
        return np.where(picked, peers, -1), picked

    def sample_one_batch(self, ids: np.ndarray) -> np.ndarray:
        """One uniform live cached peer per id (``-1`` where none) — the
        batched form of ``sample(i, 1)`` used by the aggregation pairing."""
        partners, has = self._pick_one(ids)
        return np.where(has, partners, -1)

    # ------------------------------------------------------------- consumers
    @property
    def cache(self) -> dict[int, dict[int, float]]:
        """Dict-of-dicts snapshot of the caches (tests/diagnostics only;
        rebuilt on every access — mutate nothing through it)."""
        out: dict[int, dict[int, float]] = {}
        for i in self.live:
            m = int(self._clen[i])
            out[i] = dict(
                zip(self._pid[i, :m].tolist(), self._fresh[i, :m].tolist())
            )
        return out

    def known_live(self, node_id: int) -> list[int]:
        """All live peers currently in the node's cache."""
        if node_id >= self._n_alloc:
            return []
        m = int(self._clen[node_id])
        row = self._pid[node_id, :m]
        return row[self._alive[row]].tolist()

    def mean_descriptor_age(self, now: float) -> float:
        """Mean age (seconds) of cached peer descriptors across live nodes.

        A telemetry-snapshot helper (called once per run, never on the
        cycle hot path): young views mean the shuffle is keeping
        membership fresh; ages near the churn timescale mean stale
        neighbor sets.
        """
        live_ids = self._live_array()
        if live_ids.size == 0:
            return 0.0
        lens = self._clen[live_ids]
        count = int(lens.sum())
        if count == 0:
            return 0.0
        valid = self._col[None, :] < lens[:, None]
        ages = (now - self._fresh[live_ids]) * valid
        return float(ages.sum() / count)
