"""Aggregation gossip: decentralized averaging (substrate S6, paper ref [13]).

Jelasity, Montresor & Babaoglu's push–pull averaging: each cycle every node
pairs with one random neighbor and both replace their local estimates with
the pair mean.  The global mean is invariant under this operation and the
empirical variance contracts by ~``1/(2*sqrt(e))`` per cycle, so estimates
converge exponentially — the property the paper relies on for "low cost and
exponential converging speed".

The paper aggregates two statistics used by the eet/ett/eft estimators:
**average node capacity** and **average network bandwidth**.  The class is
metric-agnostic: register any named metric with a per-node ground-truth
callback.

Churn is handled with *epoch restarts* (also from the Jelasity paper): every
``restart_cycles`` the estimates are re-seeded from the current local truth,
so averages track join/leave within a bounded delay.

Performance: the per-cycle pairing — one random live cached peer per node —
is a single batched draw on the overlay
(:meth:`~repro.gossip.newscast.NewscastOverlay.sample_one_batch`); the
pair-mean merges then chain sequentially in ascending node order, which
preserves the protocol's mass conservation (a simultaneous merge would
not).  The former random visiting order was dropped with PR 8's batched
rounds — pairing is already uniform, so the order only permutes
within-cycle chains.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.gossip.newscast import NewscastOverlay

__all__ = ["AggregationGossip"]

ValueProvider = Callable[[int], float]
"""Callback ``node_id -> local ground-truth value`` for one metric."""


class AggregationGossip:
    """Decentralized estimation of system-wide averages.

    Parameters
    ----------
    overlay:
        Peer-sampling service (shared with the epidemic protocol).
    rng:
        Pairing randomness.
    restart_cycles:
        Re-seed period in cycles; estimates then re-converge within
        O(log n) cycles.  ``None`` disables restarts (static systems).
    """

    def __init__(
        self,
        overlay: NewscastOverlay,
        rng: np.random.Generator,
        restart_cycles: int | None = 12,
    ):
        self.overlay = overlay
        self.rng = rng
        self.restart_cycles = restart_cycles
        self._providers: dict[str, ValueProvider] = {}
        # estimates[metric][node_id] -> float
        self._estimates: dict[str, dict[int, float]] = {}
        self._cycle = 0

    # ---------------------------------------------------------------- setup
    def register_metric(self, name: str, provider: ValueProvider) -> None:
        """Track metric ``name``; every node is seeded with its local truth."""
        self._providers[name] = provider
        self._estimates[name] = {i: float(provider(i)) for i in self.overlay.live}

    def add_node(self, node_id: int) -> None:
        """A joining node starts from its local truth for every metric."""
        for name, provider in self._providers.items():
            self._estimates[name][node_id] = float(provider(node_id))

    def remove_node(self, node_id: int) -> None:
        """Drop a departing node's estimates.

        Mass conservation is restored at the next epoch restart (exactly the
        recovery mechanism of the original protocol).
        """
        for est in self._estimates.values():
            est.pop(node_id, None)

    # ---------------------------------------------------------------- cycle
    def run_cycle(self, now: float) -> None:
        """One push–pull averaging round for every live node."""
        self._cycle += 1
        if (
            self.restart_cycles is not None
            and self._cycle % self.restart_cycles == 0
        ):
            self._restart()
            return
        live_ids = self.overlay.live_array()
        if live_ids.size == 0:
            return
        partners = self.overlay.sample_one_batch(live_ids)
        estimates = list(self._estimates.values())
        for i, j in zip(live_ids.tolist(), partners.tolist()):
            if j < 0:
                continue
            for est in estimates:
                vi = est.get(i)
                vj = est.get(j)
                if vi is None or vj is None:
                    continue
                mean = 0.5 * (vi + vj)
                est[i] = mean
                est[j] = mean

    def _restart(self) -> None:
        for name, provider in self._providers.items():
            est = self._estimates[name]
            for i in self.overlay.live:
                est[i] = float(provider(i))

    # ------------------------------------------------------------ consumers
    def estimate(self, metric: str, node_id: int) -> float:
        """Node ``node_id``'s current estimate of the global average."""
        est = self._estimates[metric]
        val = est.get(node_id)
        if val is not None:
            return val
        # A node with no estimate yet (just joined mid-cycle) uses truth.
        return float(self._providers[metric](node_id))

    def true_mean(self, metric: str) -> float:
        """Ground-truth mean over live nodes (for tests/diagnostics)."""
        provider = self._providers[metric]
        live = self.overlay.live
        if not live:
            return 0.0
        return float(np.mean([provider(i) for i in live]))

    def estimate_spread(self, metric: str) -> float:
        """Max-min spread of live estimates (convergence diagnostic)."""
        est = self._estimates[metric]
        vals = [est[i] for i in self.overlay.live if i in est]
        if not vals:
            return 0.0
        return float(max(vals) - min(vals))
