"""The mixed gossip protocol (substrates S5–S6, paper §III.B).

The paper aggregates two kinds of information at every peer:

* **state information** — each node's latest total load and capacity —
  collected by an *epidemic* push gossip over a Newscast-style random
  overlay (:mod:`repro.gossip.epidemic`, :mod:`repro.gossip.newscast`), and
* **statistics** — the system-wide average node capacity and average
  bandwidth — computed by Jelasity-style *aggregation* gossip
  (:mod:`repro.gossip.aggregation`).

Both protocols are cycle-driven (the paper's gossip cycle is five minutes);
the grid system drives them from a single
:class:`~repro.sim.periodic.PeriodicActivity`.
"""

from repro.gossip.aggregation import AggregationGossip
from repro.gossip.epidemic import EpidemicGossip
from repro.gossip.messages import NodeStateRecord
from repro.gossip.newscast import NewscastOverlay

__all__ = [
    "AggregationGossip",
    "EpidemicGossip",
    "NewscastOverlay",
    "NodeStateRecord",
]
