"""Shared NumPy kernels for batched gossip rounds.

Both bounded-view gossip protocols (epidemic RSS dissemination and the
Newscast membership shuffle) reduce each cycle to the same primitive: a
pile of ``(target, key, timestamp, payload...)`` rows — every target's
existing cache contents plus everything delivered to it this round —
deduplicated per ``(target, key)`` keeping the freshest timestamp, then
trimmed to each target's ``cap`` freshest keys.  :func:`topk_merge` does
that for the *whole system at once* in a handful of vectorized passes
(two lexsorts plus segment arithmetic), replacing the per-delivery
merge-dict / sort-and-refill loops that previously dominated the gossip
hot path.

:func:`row_topk_smallest` is the batched without-replacement sampler both
protocols use: draw one random key per cache slot, then take the ``k``
smallest valid keys per row.  Each row's selection is a uniform ``k``-
subset of its valid cells, and the draw *count* depends only on the
matrix shape — never on per-row occupancy — which keeps the RNG stream
deterministic under churn.

Tie rules (all deterministic):

* duplicate ``(target, key)`` rows — fresher timestamp wins; equal
  timestamps fall back to the smaller ``pref`` (callers pass 0 for a
  target's pre-existing rows and ``sender_rank + 1`` for deliveries, so
  an incumbent beats a same-age delivery and earlier senders beat later
  ones);
* the per-target capacity cut keeps the freshest ``cap`` keys, breaking
  timestamp ties by smaller key.
"""

from __future__ import annotations

import numpy as np

__all__ = ["topk_merge", "row_topk_smallest"]


def topk_merge(
    tgt: np.ndarray,
    key: np.ndarray,
    ts: np.ndarray,
    pref: np.ndarray,
    cap: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Dedupe rows per ``(tgt, key)`` and keep the ``cap`` freshest per ``tgt``.

    Parameters are parallel row arrays: integer ``tgt`` (cache owner),
    integer ``key`` (the entry's identity within that cache), float ``ts``
    (freshness), integer ``pref`` (tie priority, lower wins).

    Returns ``(sel, tgt_sel, rank, uniq, counts, n_evicted)`` where

    * ``sel`` — indices into the input rows of every surviving entry,
      ordered by ``(tgt, ts desc, key)``;
    * ``tgt_sel`` / ``rank`` — each survivor's cache owner and its slot
      (``0 <= rank < cap``), ready for a flat ``tgt * cap + rank`` scatter;
    * ``uniq`` / ``counts`` — the distinct targets touched and their new
      entry counts;
    * ``n_evicted`` — deduplicated entries dropped by the capacity cut.
    """
    m = int(tgt.shape[0])
    if m == 0:
        z = np.zeros(0, dtype=np.int64)
        return z, z, z, z, z, 0
    # Pass 1 — winner per (tgt, key) via ONE integer sort on the composite
    # code plus segmented reductions (cheaper than a 4-key lexsort: each
    # extra lexsort key is a full stable argsort pass).
    key_bound = int(key.max()) + 1
    code = tgt * key_bound + key
    o = np.argsort(code, kind="stable")
    code_s = code[o]
    newg = np.empty(m, dtype=bool)
    newg[0] = True
    newg[1:] = code_s[1:] != code_s[:-1]
    starts = np.flatnonzero(newg)
    gidx = np.cumsum(newg) - 1
    ts_s = ts[o]
    gmax = np.maximum.reduceat(ts_s, starts)
    is_max = ts_s == gmax[gidx]
    pref_s = np.where(is_max, pref[o], np.iinfo(np.int64).max)
    gminp = np.minimum.reduceat(pref_s, starts)
    win = np.flatnonzero(is_max & (pref_s == gminp[gidx]))
    # Defensive: (ts, pref) pairs are distinct within a group by
    # construction, but keep only the first winner regardless.
    gw = gidx[win]
    fw = np.empty(win.size, dtype=bool)
    fw[0] = True
    fw[1:] = gw[1:] != gw[:-1]
    kept = o[win[fw]]  # deduped rows, sorted by (tgt, key)
    # Pass 2 — freshness rank within each target group: two stable
    # argsorts.  The first resolves timestamp ties in the incoming
    # (tgt, key) order, i.e. by ascending key; the second groups by
    # target while preserving that order — together (tgt, ts desc, key).
    t_k = tgt[kept]
    ts_k = ts[kept]
    o1 = np.argsort(-ts_k, kind="stable")
    o2 = np.argsort(t_k[o1], kind="stable")
    order2 = o1[o2]
    t_s = t_k[order2]
    mk = int(t_s.shape[0])
    newg2 = np.empty(mk, dtype=bool)
    newg2[0] = True
    newg2[1:] = t_s[1:] != t_s[:-1]
    starts2 = np.flatnonzero(newg2)
    rank = np.arange(mk, dtype=np.int64) - starts2[np.cumsum(newg2) - 1]
    within = rank < cap
    sizes = np.diff(np.append(starts2, mk))
    counts = np.minimum(sizes, cap)
    n_evicted = int((sizes - counts).sum())
    return (
        kept[order2[within]],
        t_s[within],
        rank[within],
        t_s[starts2],
        counts,
        n_evicted,
    )


def row_topk_smallest(
    keys: np.ndarray, valid: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Positions of the ``k`` smallest keys per row among ``valid`` cells.

    Returns ``(pos, picked)``: ``pos`` is ``(rows, min(k, width))`` column
    indices and ``picked`` the same-shape mask (False where a row had
    fewer than ``k`` valid cells).  The selection within a row is
    *unordered* — both call sites (fan-out targets, push digests) treat
    the result as a set, so a partial selection suffices.
    """
    r, w = keys.shape
    k = min(int(k), w)
    if k <= 0:
        pos = np.zeros((r, 0), dtype=np.int64)
        return pos, np.zeros((r, 0), dtype=bool)
    masked = np.where(valid, keys, np.inf)
    if k < w:
        pos = np.argpartition(masked, k - 1, axis=1)[:, :k]
    else:
        pos = np.broadcast_to(np.arange(w, dtype=np.int64), (r, w))
    picked = np.take_along_axis(masked, pos, axis=1) < np.inf
    return pos, picked
