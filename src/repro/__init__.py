"""repro — reproduction of *Dual-Phase Just-in-Time Workflow Scheduling in
P2P Grid Systems* (Sheng Di & Cho-Li Wang, ICPP 2010).

The package implements the paper's primary contribution — the dual-phase
just-in-time scheduling model with the Dynamic Shortest Makespan First (DSMF)
heuristic — together with every substrate its evaluation depends on:

* :mod:`repro.sim` — a discrete-event simulation kernel (replaces PeerSim),
* :mod:`repro.net` — Waxman wide-area topologies with end-to-end bottleneck
  bandwidth and landmark-based estimation (replaces Brite),
* :mod:`repro.gossip` — the mixed gossip protocol (epidemic state
  dissemination + aggregation averaging),
* :mod:`repro.workflow` — DAG workflows, random generators, critical-path and
  rest-path-makespan (RPM) analysis,
* :mod:`repro.workload` — workload sources × arrival processes and the
  named scenario registry (what is submitted, and when),
* :mod:`repro.availability` — churn models × recovery policies (who is
  alive, when — and what happens to tasks lost in a disconnection),
* :mod:`repro.grid` — the P2P grid runtime (peer nodes, transfers, churn),
* :mod:`repro.core` — the dual-phase scheduling engine, DSMF, the seven
  comparison heuristics and the full-ahead HEFT/SMF baselines,
* :mod:`repro.metrics` and :mod:`repro.experiments` — the evaluation harness
  regenerating every figure of the paper's Section IV.

Quickstart::

    from repro import quick_run
    result = quick_run(algorithm="dsmf", n_nodes=60, seed=7)
    print(result.summary())
"""

from repro._version import __version__
from repro.api import (
    available_algorithms,
    available_churn_models,
    available_recovery_policies,
    available_scenarios,
    quick_run,
    run_campaign,
    run_experiment,
    run_sweep,
)

__all__ = [
    "__version__",
    "available_algorithms",
    "available_churn_models",
    "available_recovery_policies",
    "available_scenarios",
    "quick_run",
    "run_campaign",
    "run_experiment",
    "run_sweep",
]
