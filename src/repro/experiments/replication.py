"""Multi-seed replication with confidence intervals (extension).

The paper reports single simulation runs; for a credible open-source
release the harness should quantify seed noise.  :func:`run_replications`
executes one configuration under several seeds (optionally in parallel
processes — each simulation is single-threaded) and returns per-metric
mean, standard deviation and a Student-t confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import Pool
from typing import Sequence

import numpy as np
from scipy import stats

from repro.experiments.config import ExperimentConfig

__all__ = ["MetricSummary", "ReplicationResult", "run_replications"]


@dataclass(frozen=True)
class MetricSummary:
    """Aggregated statistic across seeds."""

    mean: float
    std: float
    ci_low: float
    ci_high: float
    n: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.1f} ± {(self.ci_high - self.ci_low) / 2:.1f} (n={self.n})"


@dataclass
class ReplicationResult:
    """Outcome of :func:`run_replications`."""

    config: ExperimentConfig
    seeds: list[int]
    act: MetricSummary
    ae: MetricSummary
    completion_rate: MetricSummary

    def overlaps(self, other: "ReplicationResult", metric: str = "act") -> bool:
        """Do the two CIs overlap?  (A quick significance screen.)"""
        a: MetricSummary = getattr(self, metric)
        b: MetricSummary = getattr(other, metric)
        return a.ci_low <= b.ci_high and b.ci_low <= a.ci_high


def _summary(values: Sequence[float], confidence: float) -> MetricSummary:
    arr = np.asarray(values, dtype=float)
    n = len(arr)
    mean = float(arr.mean())
    if n < 2:
        return MetricSummary(mean, 0.0, mean, mean, n)
    std = float(arr.std(ddof=1))
    half = float(stats.t.ppf(0.5 + confidence / 2, n - 1) * std / np.sqrt(n))
    return MetricSummary(mean, std, mean - half, mean + half, n)


def _one(args: tuple[dict, int]) -> tuple[float, float, float]:
    spec, seed = args
    from repro.grid.system import P2PGridSystem

    cfg = ExperimentConfig(**{**spec, "seed": seed})
    r = P2PGridSystem(cfg).run()
    return r.act, r.ae, r.completion_rate


def run_replications(
    config: ExperimentConfig,
    seeds: Sequence[int] = (1, 2, 3, 4, 5),
    confidence: float = 0.95,
    jobs: int = 1,
) -> ReplicationResult:
    """Run ``config`` under each seed; aggregate ACT/AE/completion rate.

    Parameters
    ----------
    jobs:
        Worker processes (1 = run inline; simulations are deterministic
        per seed either way).
    """
    spec = config.describe()
    work = [(spec, int(s)) for s in seeds]
    if jobs > 1:
        with Pool(jobs) as pool:
            rows = pool.map(_one, work)
    else:
        rows = [_one(w) for w in work]
    acts, aes, rates = zip(*rows)
    return ReplicationResult(
        config=config,
        seeds=[int(s) for s in seeds],
        act=_summary(acts, confidence),
        ae=_summary(aes, confidence),
        completion_rate=_summary(rates, confidence),
    )
