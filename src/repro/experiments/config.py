"""Experiment configuration (Table I plus every model switch).

Defaults reproduce the base setting of Fig. 4–6: Table I parameters with
the figure-specific dependent-data range 10–1000 Mb (CCR ≈ 0.16) and three
workflows initially submitted per node.  The paper-scale values (n = 1000
nodes, 36 simulated hours) are expensive for CI, so harnesses usually apply
a :class:`ScaleProfile` that shrinks ``n_nodes``/``total_time`` while
keeping all per-task parameters — which preserves the result *shape*.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, replace
from typing import Optional

__all__ = ["ExperimentConfig", "ScaleProfile"]


class ScaleProfile(str, enum.Enum):
    """How large to run an experiment.

    ``PAPER`` is exactly §IV.A; ``MEDIUM`` keeps the dynamics with ~4x
    fewer nodes; ``SMALL`` is the CI/test profile.
    """

    PAPER = "paper"
    MEDIUM = "medium"
    SMALL = "small"


@dataclass(frozen=True)
class ExperimentConfig:
    """Complete description of one simulation run.

    Time quantities are seconds, loads are MI, capacities MIPS, data sizes
    megabits, bandwidths Mb/s — exactly Table I's units.
    """

    # ---------------------------------------------------------- scheduling
    algorithm: str = "dsmf"
    #: Algorithm-1 activation period ("The scheduler is activated every 15
    #: minutes").
    schedule_interval: float = 900.0
    #: Dispatch newly ready tasks immediately instead of waiting for the
    #: next cycle (ablation; the paper uses the periodic model).
    immediate_dispatch: bool = False

    # --------------------------------------------------------------- scale
    n_nodes: int = 1000
    #: Average number of workflows submitted per node (Fig. 7/8's x-axis).
    load_factor: int = 3
    #: Continuous multiplier on the submission count (total workflows =
    #: ``round(load_factor * n_nodes * workload_scale)``).  The capacity
    #: sweep driver (:mod:`repro.experiments.sweep`) bisects over this to
    #: find each heuristic's saturation point; 1.0 reproduces the integer
    #: ``load_factor`` grid exactly (same count, same RNG stream).  Ignored
    #: by ``workload_source="trace"``, which carries its own submissions.
    workload_scale: float = 1.0
    #: Simulated horizon ("The total experimental time is 36 hours").
    total_time: float = 36 * 3600.0
    seed: int = 1

    # ----------------------------------------------------------- workflows
    task_range: tuple[int, int] = (2, 30)
    fanout_range: tuple[int, int] = (1, 5)
    load_range: tuple[float, float] = (100.0, 10_000.0)
    image_range: tuple[float, float] = (10.0, 100.0)
    #: Fig. 4–6 base setting (Table I's full envelope is 100–10000, used by
    #: the CCR sweep of Fig. 9/10).
    data_range: tuple[float, float] = (10.0, 1000.0)
    capacities: tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0)

    # -------------------------------------------------------------- network
    waxman_alpha: float = 0.15
    waxman_beta: float = 0.2
    bw_min: float = 0.1
    bw_max: float = 10.0
    plane_size: float = 1000.0
    #: Model inbound link sharing between concurrent transfers (extension;
    #: the paper assumes contention-free concurrent transfers).
    transfer_contention: bool = False

    # -------------------------------------------------------------- gossip
    gossip_interval: float = 300.0
    gossip_ttl: int = 4
    gossip_push_size: int = 4
    #: RSS entries kept per node; ``None`` -> 2*ceil(log2 n).
    rss_capacity: Optional[int] = None
    #: Records older than this many gossip cycles are evicted.
    rss_expiry_cycles: float = 4.0
    aggregation_restart_cycles: int = 12
    #: ``"gossip"`` = partial, possibly stale views (the paper's model);
    #: ``"oracle"`` = perfect global load knowledge (diagnostic ablation).
    rss_mode: str = "gossip"
    #: Schedulers estimate bandwidth via landmarks (paper §III.B); set
    #: False to hand them the ground-truth matrix (ablation).
    use_landmark_bandwidth: bool = True
    n_landmarks: Optional[int] = None

    # --------------------------------------------------------------- churn
    #: Ratio of churning nodes per scheduling interval (Fig. 12–14's df).
    #: Also sizes the correlated model's failure batches.
    dynamic_factor: float = 0.0
    #: Fraction of nodes that permanently stay (and host all workflows)
    #: when churn is active; §IV.B uses 500 of 1000.
    permanent_fraction: float = 0.5
    #: What disconnection does to resident tasks.  ``"suspend"`` (default)
    #: stalls them until the node rejoins — matching the paper's
    #: observation that degraded throughput comes from "large-load tasks
    #: which cannot be finished quickly" while finished workflows keep
    #: stable ACT/AE.  ``"fail"`` loses them; the fate of the owning
    #: workflow is then the ``recovery_policy``'s call.
    churn_mode: str = "suspend"
    #: Deprecated alias for ``recovery_policy="reschedule"`` (kept for
    #: back-compat; normalized into ``recovery_policy`` on construction).
    reschedule_failed: bool = False

    # -------------------------------------------------------- availability
    #: Who is alive, when (see :mod:`repro.availability.models`):
    #: ``paper-interval`` (the paper's fixed per-interval batch, default),
    #: ``sessions`` (exponential/Weibull node lifetimes), ``trace``
    #: (replay a join/leave event log), ``correlated`` (a random Waxman
    #: subtree drops at once) or ``ramp`` (growth/shrink).  Any model
    #: other than the default activates churn even with df = 0.
    churn_model: str = "paper-interval"
    #: Fate of tasks lost in ``churn_mode="fail"`` (see
    #: :mod:`repro.availability.recovery`): ``fail`` (owning workflow
    #: fails — the paper's position), ``reschedule`` (lost tasks become
    #: schedule points again) or ``checkpoint`` (dispatch-time input
    #: checkpoints at the home re-enter lost tasks at their last completed
    #: predecessor frontier).
    recovery_policy: str = "fail"
    #: Mean volatile-node session length (``sessions`` model, seconds).
    session_mean: float = 2 * 3600.0
    #: Weibull shape of session lengths (1.0 = exponential; < 1 gives the
    #: heavy-tailed sessions real availability traces show).
    session_shape: float = 1.0
    #: Mean offline gap before a departed node rejoins
    #: (``sessions``/``correlated`` models; 0 = instant rejoin).
    rejoin_delay_mean: float = 1800.0
    #: Mean time between correlated batch-failure events (seconds).
    failure_interval: float = 4 * 3600.0
    #: ``ramp`` model direction: ``up`` (volatile nodes join over the
    #: window) or ``down`` (they progressively leave).
    ramp_direction: str = "up"
    #: Fraction of the horizon over which the ramp completes.
    ramp_window: float = 0.5
    #: Join/leave event trace for ``churn_model="trace"``.
    availability_path: Optional[str] = None

    # -------------------------------------------------------------- metrics
    metrics_interval: float = 3600.0

    # -------------------------------------------------------- observability
    #: Collect runtime telemetry (counters/gauges/histograms) into
    #: ``RunResult.telemetry`` (see :mod:`repro.obs.telemetry`).
    #: Observation-only: draws no randomness and changes no decision, so
    #: ``result_digest`` is bit-identical either way; off by default to
    #: keep the hot path guard-only.
    telemetry: bool = False

    # ------------------------------------------------------------- workload
    #: Scenario preset this config was derived from (provenance; validated
    #: against :mod:`repro.workload.scenarios`).  Applying a scenario sets
    #: this plus the preset's field overrides.
    scenario: Optional[str] = None
    #: What is submitted: ``table1`` (paper §IV.A random DAGs, default),
    #: ``structured``, ``synthetic``, ``imported`` or ``trace``.
    workload_source: str = "table1"
    #: When it is submitted: ``batch`` (all at t=0, the paper's setting),
    #: ``poisson``, ``bursty`` or ``diurnal``.
    arrival_process: str = "batch"
    #: Fraction of the horizon in which non-batch arrivals land, so late
    #: workflows still have time to finish.
    arrival_spread: float = 0.5
    #: Storm/quiet durations of the ``bursty`` process (seconds).
    burst_on: float = 1800.0
    burst_off: float = 7200.0
    #: Period of the ``diurnal`` intensity (seconds; one simulated day).
    diurnal_period: float = 86400.0
    #: Family for ``workload_source="structured"``: chain, fork-join,
    #: diamond, montage, or mixed (rotate through all four).
    structured_family: str = "mixed"
    #: DAG file/directory (``imported``) or submission trace (``trace``).
    workload_path: Optional[str] = None

    # ----------------------------------------------------------- validation
    def __post_init__(self) -> None:
        if self.n_nodes < 2:
            raise ValueError("need at least two nodes")
        if self.load_factor < 1:
            raise ValueError("load factor must be >= 1")
        if not self.workload_scale > 0 or self.workload_scale != self.workload_scale:
            raise ValueError("workload_scale must be a positive number")
        if self.total_time <= 0:
            raise ValueError("total_time must be positive")
        if self.seed < 0:
            raise ValueError("seed must be non-negative")
        if (
            self.schedule_interval <= 0
            or self.gossip_interval <= 0
            or self.metrics_interval <= 0
        ):
            raise ValueError("intervals must be positive")
        for name in ("task_range", "fanout_range"):
            lo, hi = getattr(self, name)
            if lo > hi:
                raise ValueError(f"{name} is inverted: ({lo}, {hi})")
            if lo < 1:
                raise ValueError(f"{name} lower bound must be >= 1, got {lo}")
        for name in ("load_range", "image_range", "data_range"):
            lo, hi = getattr(self, name)
            if lo > hi:
                raise ValueError(f"{name} is inverted: ({lo}, {hi})")
            if lo < 0:
                raise ValueError(f"{name} lower bound must be >= 0, got {lo}")
        if not self.capacities:
            raise ValueError("capacities must not be empty")
        if min(self.capacities) <= 0:
            raise ValueError("capacities must be positive")
        if self.bw_min <= 0 or self.bw_max < self.bw_min:
            raise ValueError(
                f"bandwidth range must satisfy 0 < bw_min <= bw_max, "
                f"got ({self.bw_min}, {self.bw_max})"
            )
        if self.gossip_ttl < 1 or self.gossip_push_size < 1:
            raise ValueError("gossip_ttl and gossip_push_size must be >= 1")
        if self.rss_capacity is not None and self.rss_capacity < 1:
            raise ValueError("rss_capacity must be >= 1 (or None for auto)")
        if self.rss_expiry_cycles <= 0:
            raise ValueError("rss_expiry_cycles must be positive")
        if not 0.0 <= self.dynamic_factor <= 1.0:
            raise ValueError("dynamic_factor must be in [0, 1]")
        if not 0.0 < self.permanent_fraction <= 1.0:
            raise ValueError("permanent_fraction must be in (0, 1]")
        if self.rss_mode not in ("gossip", "oracle"):
            raise ValueError(f"unknown rss_mode {self.rss_mode!r}")
        if self.churn_mode not in ("suspend", "fail"):
            raise ValueError(f"unknown churn_mode {self.churn_mode!r}")
        if self.session_mean <= 0 or self.session_shape <= 0:
            raise ValueError("session_mean and session_shape must be positive")
        if self.rejoin_delay_mean < 0:
            raise ValueError("rejoin_delay_mean must be >= 0")
        if self.failure_interval <= 0:
            raise ValueError("failure_interval must be positive")
        if self.ramp_direction not in ("up", "down"):
            raise ValueError(f"unknown ramp_direction {self.ramp_direction!r}")
        if not 0.0 < self.ramp_window <= 1.0:
            raise ValueError("ramp_window must be in (0, 1]")
        if not 0.0 < self.arrival_spread <= 1.0:
            raise ValueError("arrival_spread must be in (0, 1]")
        if self.burst_on <= 0 or self.burst_off < 0:
            raise ValueError("burst_on must be positive and burst_off >= 0")
        if self.diurnal_period <= 0:
            raise ValueError("diurnal_period must be positive")
        # Late imports to avoid cycles; verify registry-backed names early
        # so misconfigured sweeps fail fast rather than after setup.
        from repro.core.heuristics.registry import algorithm_names

        if self.algorithm not in algorithm_names():
            raise ValueError(
                f"unknown algorithm {self.algorithm!r}; "
                f"available: {', '.join(algorithm_names())}"
            )
        from repro.workload.arrivals import arrival_process_names
        from repro.workload.sources import (
            structured_family_names,
            workload_source_names,
        )

        if self.workload_source not in workload_source_names():
            raise ValueError(
                f"unknown workload_source {self.workload_source!r}; "
                f"available: {', '.join(workload_source_names())}"
            )
        if self.arrival_process not in arrival_process_names():
            raise ValueError(
                f"unknown arrival_process {self.arrival_process!r}; "
                f"available: {', '.join(arrival_process_names())}"
            )
        if self.structured_family not in structured_family_names():
            raise ValueError(
                f"unknown structured_family {self.structured_family!r}; "
                f"available: {', '.join(structured_family_names())}"
            )
        from repro.availability.models import churn_model_names
        from repro.availability.recovery import recovery_policy_names

        if self.churn_model not in churn_model_names():
            raise ValueError(
                f"unknown churn_model {self.churn_model!r}; "
                f"available: {', '.join(churn_model_names())}"
            )
        if self.recovery_policy not in recovery_policy_names():
            raise ValueError(
                f"unknown recovery_policy {self.recovery_policy!r}; "
                f"available: {', '.join(recovery_policy_names())}"
            )
        if self.reschedule_failed and self.recovery_policy == "fail":
            # Promote the legacy flag to its policy (deterministic, so
            # config hashing and provenance stay stable per input).
            object.__setattr__(self, "recovery_policy", "reschedule")
        if self.scenario is not None:
            from repro.workload.scenarios import scenario_names

            if self.scenario not in scenario_names():
                raise ValueError(
                    f"unknown scenario {self.scenario!r}; "
                    f"available: {', '.join(scenario_names())}"
                )

    # ------------------------------------------------------------- utility
    def with_(self, **overrides) -> "ExperimentConfig":
        """Functional update (configs are frozen)."""
        return replace(self, **overrides)

    def churn_enabled(self) -> bool:
        """Whether availability dynamics are active (volatile nodes exist).

        The paper-interval model only acts when ``dynamic_factor`` > 0;
        every other churn model defines its own intensity and is active
        whenever selected.
        """
        return self.dynamic_factor > 0.0 or self.churn_model != "paper-interval"

    def describe(self) -> dict:
        """Plain-dict dump (for EXPERIMENTS.md provenance lines)."""
        return asdict(self)

    def expected_ccr(self) -> float:
        """Rough communication-to-computation ratio of the workload.

        Matches the paper's §IV.A estimates: mean dependent-data transfer
        time over the mean link bandwidth, divided by mean execution time
        at the mean capacity.
        """
        mean_load = sum(self.load_range) / 2.0
        mean_data = sum(self.data_range) / 2.0
        mean_cap = sum(self.capacities) / len(self.capacities)
        mean_bw = (self.bw_min + self.bw_max) / 2.0
        return (mean_data / mean_bw) / (mean_load / mean_cap)


#: Per-profile overrides applied by the figure harnesses.
PROFILE_OVERRIDES: dict[ScaleProfile, dict] = {
    ScaleProfile.PAPER: {},
    ScaleProfile.MEDIUM: {"n_nodes": 250, "total_time": 36 * 3600.0},
    ScaleProfile.SMALL: {"n_nodes": 80, "total_time": 12 * 3600.0},
}


def apply_profile(config: ExperimentConfig, profile: ScaleProfile) -> ExperimentConfig:
    """Rescale a paper-parameter config for the requested profile."""
    return config.with_(**PROFILE_OVERRIDES[ScaleProfile(profile)])
