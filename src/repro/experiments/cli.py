"""Command-line interface: ``python -m repro`` / the ``repro`` script.

Subcommands
-----------
``run``        one simulation, printing the summary and hourly metrics,
``campaign``   an (algorithm × seed) sweep across worker processes with
               on-disk result caching,
``sweep``      adaptive capacity sweep: bisect each heuristic's saturation
               arrival rate per scenario and write a JSON envelope report,
``bench``      time the end-to-end perf scenarios and write a
               machine-readable ``BENCH_*.json`` report,
``serve``      run the simulation-as-a-service HTTP API (submit campaign
               manifests, poll status, fetch cached results by hash,
               scrape Prometheus metrics from ``GET /metrics``),
``trace``      summarize a Chrome trace written by ``run --trace-out``,
``figure``     regenerate a paper figure (4–14 or ``table2``) as ASCII + CSV,
``table``      print Table I (the experimental setting) or Table II,
``list``       list registered algorithm bundles,
``scenarios``  list the named workload scenario presets.

Examples
--------
::

    repro run --algorithm dsmf -n 120 --hours 24 --seed 3
    repro run -n 60 --telemetry --trace-out trace.json
    repro trace summarize trace.json
    repro campaign -a dsmf dheft --seeds 1 2 3 4 --jobs 4
    repro campaign --scenario poisson-steady -a dsmf --seeds 1 2 3
    repro sweep --scenarios paper-fig4 poisson-steady --jobs 4 -o envelope.json
    repro sweep --quick --resolution 0.5
    repro bench --quick --scenarios paper-fig4 --output BENCH_PR3.json
    repro bench --baseline BENCH_PR3.json --profile-top 15
    repro serve --port 8642 --jobs 4
    repro figure 4 --profile small --csv out/fig4.csv
    repro table 1
"""

from __future__ import annotations

import argparse
import ast
import sys
from typing import Sequence

from repro.api import (
    available_algorithms,
    available_churn_models,
    available_recovery_policies,
    available_scenarios,
    quick_run,
)
from repro.experiments.config import ScaleProfile
from repro.experiments.figures import FIGURES, table1_settings
from repro.experiments.report import ascii_plot, ascii_table, write_series_csv, write_table_csv

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Dual-Phase Just-in-Time Workflow Scheduling in "
            "P2P Grid Systems' (Di & Wang, ICPP 2010)."
        ),
    )
    sub = p.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation")
    run.add_argument("--algorithm", "-a", default="dsmf", choices=available_algorithms())
    # Workload-shaped flags default to None so an omitted flag can yield
    # to a --scenario preset's override (_cmd_run fills the usual
    # defaults: 100 nodes, load factor 3, 24 h, df 0).
    run.add_argument("--nodes", "-n", type=int, default=None, help="default 100")
    run.add_argument("--load-factor", "-l", type=int, default=None, help="default 3")
    run.add_argument("--hours", type=float, default=None, help="default 24")
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--dynamic-factor", type=float, default=None, help="default 0")
    run.add_argument(
        "--scenario", default=None, choices=available_scenarios(),
        help="workload scenario preset (see `repro scenarios`); explicit "
             "flags win over the preset's overrides",
    )
    run.add_argument(
        "--workload-path", default=None,
        help="DAG file/directory or submission trace (for the "
             "imported-dag / trace-replay scenarios)",
    )
    run.add_argument(
        "--churn-model", default=None, choices=available_churn_models(),
        help="availability model driving node joins/leaves "
             "(default paper-interval; see repro.availability)",
    )
    run.add_argument(
        "--recovery", default=None, choices=available_recovery_policies(),
        help="fate of tasks lost in churn_mode=fail "
             "(fail | reschedule | checkpoint)",
    )
    run.add_argument(
        "--telemetry", action="store_true",
        help="collect runtime counters/gauges/histograms and print the "
             "snapshot after the run (observation-only: the result digest "
             "is bit-identical either way)",
    )
    run.add_argument(
        "--trace-out", default=None, metavar="TRACE.json",
        help="record sim-time spans and write a Chrome trace-event JSON "
             "file (open in https://ui.perfetto.dev or chrome://tracing)",
    )

    camp = sub.add_parser(
        "campaign",
        help="run an (algorithm × seed) sweep in parallel, with result caching",
    )
    camp.add_argument(
        "--algorithms", "-a", nargs="+", default=["dsmf"],
        choices=available_algorithms(), metavar="ALG",
    )
    camp.add_argument("--seeds", "-s", nargs="+", type=int, default=[1])
    camp.add_argument("--jobs", "-j", type=int, default=1,
                      help="worker processes (1 = inline)")
    camp.add_argument(
        "--profile", default="small", choices=[s.value for s in ScaleProfile],
        help="scale profile for the base config",
    )
    camp.add_argument(
        "--scenario", default=None, choices=available_scenarios(),
        help="workload scenario preset applied to every cell "
             "(--set overrides win; see `repro scenarios`)",
    )
    camp.add_argument(
        "--churn-model", default=None, choices=available_churn_models(),
        help="availability model applied to every cell (--set overrides win)",
    )
    camp.add_argument(
        "--recovery", default=None, choices=available_recovery_policies(),
        help="recovery policy applied to every cell (--set overrides win)",
    )
    camp.add_argument(
        "--set", dest="overrides", action="append", default=[],
        metavar="FIELD=VALUE",
        help="override any ExperimentConfig field (repeatable), "
             "e.g. --set n_nodes=60 --set dynamic_factor=0.2",
    )
    camp.add_argument("--cache-dir", default=None,
                      help="result cache location (default .repro_cache/campaign)")
    camp.add_argument("--no-cache", action="store_true",
                      help="force fresh runs; skip cache reads and writes")
    camp.add_argument("--csv", default=None, help="also write the per-run table to CSV")
    camp.add_argument(
        "--telemetry", action="store_true",
        help="collect per-run telemetry and print the campaign-wide merged "
             "summary (cache hits, worker utilization, counter totals)",
    )
    camp.add_argument(
        "--journal", default=None, metavar="JOURNAL.jsonl",
        help="crash-safe progress journal: every finished cell is fsynced "
             "as it completes, so a killed campaign can be resumed",
    )
    camp.add_argument(
        "--resume", action="store_true",
        help="resume a killed campaign from its --journal: finished cells "
             "replay from cache (digest-checked against the journal), only "
             "the unfinished tail re-executes",
    )
    camp.add_argument(
        "--max-retries", type=int, default=2, metavar="N",
        help="re-run a cell killed by a worker-process death up to N times "
             "on a rebuilt pool (default 2; deterministic run errors are "
             "never retried)",
    )
    camp.add_argument(
        "--retry-backoff", type=float, default=0.25, metavar="SECONDS",
        help="base delay before a retry round; doubles per round, capped "
             "at 5s (default 0.25)",
    )
    camp.add_argument(
        "--inject-faults", default=None, metavar="PLAN.json",
        help="chaos testing: load a deterministic fault plan (see "
             "docs/robustness.md for the schema) and inject its scheduled "
             "worker crashes / cache IO errors / journal tears",
    )
    camp.add_argument("--quiet", action="store_true", help="suppress per-run progress")

    sw = sub.add_parser(
        "sweep",
        help="bisect each heuristic's saturation arrival rate (capacity envelope)",
    )
    sw.add_argument(
        "--scenarios", nargs="+", default=["paper-fig4", "poisson-steady"],
        choices=available_scenarios(), metavar="NAME",
        help="generated-workload scenarios to sweep (trace-replay presets "
             "are rejected: their arrival rate is fixed by the trace file)",
    )
    sw.add_argument(
        "--algorithms", "-a", nargs="+", default=["dsmf", "dheft", "heft", "smf"],
        choices=available_algorithms(), metavar="ALG",
        help="heuristics to bisect (default: the paper's four golden ones)",
    )
    sw.add_argument("--seeds", "-s", nargs="+", type=int, default=[1],
                    help="seeds averaged into each probe's completion rate")
    sw.add_argument("--threshold", type=float, default=0.95,
                    help="a probe passes when mean completion rate >= this")
    sw.add_argument("--resolution", type=float, default=0.25,
                    help="stop bisecting when the bracket is this narrow")
    sw.add_argument("--max-scale", type=float, default=8.0,
                    help="cap on the exponential growth phase")
    sw.add_argument(
        "--profile", default="small", choices=[s.value for s in ScaleProfile],
        help="scale profile for the base config",
    )
    sw.add_argument(
        "--set", dest="overrides", action="append", default=[],
        metavar="FIELD=VALUE",
        help="override any ExperimentConfig field on every probe "
             "(repeatable), e.g. --set n_nodes=60",
    )
    sw.add_argument(
        "--quick", action="store_true",
        help="CI smoke shape: tiny grid/horizon, coarse resolution, low "
             "max-scale (same code paths; minutes, not hours)",
    )
    sw.add_argument("--jobs", "-j", type=int, default=1,
                    help="worker processes per probe (1 = inline)")
    sw.add_argument("--cache-dir", default=None,
                    help="probe result cache (default .repro_cache/campaign)")
    sw.add_argument("--no-cache", action="store_true",
                    help="force fresh probes; skip cache reads and writes")
    sw.add_argument("--output", "-o", default=None, metavar="REPORT.json",
                    help="also write the capacity-envelope report as JSON")
    sw.add_argument(
        "--journal", default=None, metavar="JOURNAL.jsonl",
        help="crash-safe progress journal: every finished probe cell is "
             "fsynced as it completes, so a killed sweep can be resumed",
    )
    sw.add_argument(
        "--resume", action="store_true",
        help="resume a killed sweep from its --journal: finished probe "
             "cells replay from cache (digest-checked), the search "
             "continues from where it died",
    )
    sw.add_argument("--quiet", action="store_true", help="suppress per-probe progress")

    bench = sub.add_parser(
        "bench",
        help="time the end-to-end perf scenarios; write a BENCH_*.json report",
    )
    # Names validated lazily in _cmd_bench (keeps the per-command-import
    # convention: `repro run` never loads the perf/cProfile machinery).
    bench.add_argument(
        "--scenarios", "-s", nargs="+", default=None, metavar="NAME",
        help="presets to time: paper-fig4, poisson-steady, fig11-grid, "
             "fig10-dynamic, metro-1k (default: all)",
    )
    bench.add_argument("--quick", action="store_true",
                       help="smoke-sized configs (CI; same code paths, smaller grid)")
    bench.add_argument("--repeats", type=int, default=1,
                       help="timing repetitions per scenario; best wall time is kept")
    bench.add_argument("--profile-top", type=int, default=0, metavar="N",
                       help="embed the N hottest repo functions (cProfile)")
    bench.add_argument("--output", "-o", default=None,
                       help="report path (default: the current PR's canonical "
                            "BENCH_PR<N>.json artifact name)")
    bench.add_argument(
        "--baseline", nargs="?", const="auto", default=None, metavar="REPORT.json",
        help="previous report to compute wall-clock speedups against; with "
             "no path, auto-discovers the newest BENCH_PR*.json in the "
             "current directory whose quick flag matches this run (run from "
             "the repo root; --output is excluded)",
    )
    bench.add_argument(
        "--regression-threshold", type=float, default=None, metavar="FACTOR",
        help="exit non-zero when any common scenario's speedup vs the "
             "baseline falls below the floor; 0.8 and 1.25 both tolerate "
             "up to a 1.25x slowdown (values above 1 are read as the max "
             "slowdown factor); requires --baseline",
    )
    bench.add_argument(
        "--telemetry", action="store_true",
        help="run the scenarios with telemetry enabled and embed each "
             "scenario's counter snapshot in the report (times the "
             "instrumented path; digests are unchanged)",
    )
    bench.add_argument("--quiet", action="store_true", help="suppress per-scenario progress")

    srv = sub.add_parser(
        "serve",
        help="run the simulation-as-a-service HTTP API over the campaign cache",
    )
    srv.add_argument("--host", default="127.0.0.1")
    srv.add_argument("--port", type=int, default=8642,
                     help="TCP port (0 = ephemeral; the bound port is printed)")
    srv.add_argument("--jobs", "-j", type=int, default=1,
                     help="worker processes per campaign (1 = inline)")
    srv.add_argument("--cache-dir", default=None,
                     help="content-addressed result cache shared with "
                          "`repro campaign` (default .repro_cache/campaign)")
    srv.add_argument("--index", default=None, metavar="JSONL",
                     help="experiment index journal "
                          "(default <cache-dir>/experiments.jsonl)")
    srv.add_argument("--no-cache", action="store_true",
                     help="diagnostics only: force fresh runs (disables the "
                          "cross-campaign coalescing guarantee)")
    srv.add_argument("--journal", default=None, metavar="JSONL",
                     help="submission journal enabling restart-resume "
                          "(default <cache-dir>/service.jsonl)")
    srv.add_argument("--max-pending", type=int, default=None, metavar="N",
                     help="bound the backlog: submissions beyond N queued+"
                          "running campaigns get 429 + Retry-After "
                          "(default unbounded)")
    srv.add_argument("--verbose", action="store_true",
                     help="log every request to stderr")

    trace = sub.add_parser(
        "trace",
        help="inspect Chrome trace files written by `repro run --trace-out`",
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    tsum = trace_sub.add_parser("summarize", help="span counts/durations per category")
    tsum.add_argument("trace_file", metavar="TRACE.json")

    fig = sub.add_parser("figure", help="regenerate a paper figure")
    fig.add_argument("figure", choices=sorted(FIGURES, key=lambda s: (len(s), s)))
    fig.add_argument(
        "--profile",
        default="small",
        choices=[s.value for s in ScaleProfile],
        help="scale profile (paper = exactly Table I, expensive)",
    )
    fig.add_argument("--seed", type=int, default=1)
    fig.add_argument("--csv", default=None, help="also write the series to CSV")
    fig.add_argument("--quiet", action="store_true", help="suppress per-run progress")

    tab = sub.add_parser("table", help="print a paper table")
    tab.add_argument("table", choices=["1", "2"])
    tab.add_argument("--profile", default="small", choices=[s.value for s in ScaleProfile])
    tab.add_argument("--seed", type=int, default=1)

    sub.add_parser("list", help="list available algorithms")
    sub.add_parser("scenarios", help="list workload scenario presets")
    return p


def _cmd_run(args) -> int:
    preset: dict = {}
    if args.scenario:
        from repro.workload.scenarios import get_scenario

        preset = dict(get_scenario(args.scenario).overrides)

    def pick(value, field, default):
        """Flag value if given; else the CLI default — unless the scenario
        preset overrides the field, which an omitted flag yields to."""
        if value is not None:
            return value
        return None if field in preset else default

    kw: dict = {}
    df = pick(args.dynamic_factor, "dynamic_factor", 0.0)
    if df is not None:
        kw["dynamic_factor"] = df
    if args.workload_path is not None:
        kw["workload_path"] = args.workload_path
    if args.churn_model is not None:
        kw["churn_model"] = args.churn_model
    if args.recovery is not None:
        kw["recovery_policy"] = args.recovery
    if args.telemetry:
        kw["telemetry"] = True
    recorder = None
    if args.trace_out:
        from repro.trace.recorder import TraceRecorder

        recorder = TraceRecorder()
    try:
        result = quick_run(
            algorithm=args.algorithm,
            n_nodes=pick(args.nodes, "n_nodes", 100),
            load_factor=pick(args.load_factor, "load_factor", 3),
            duration_hours=pick(args.hours, "total_time", 24.0),
            seed=args.seed,
            scenario=args.scenario,
            recorder=recorder,
            **kw,
        )
    except ValueError as exc:  # e.g. a scenario needing --workload-path
        raise SystemExit(str(exc))
    print(result.summary())
    rows = [
        [f"{s.time / 3600:.0f}h", s.throughput, round(s.act), round(s.ae, 3)]
        for s in result.samples
    ]
    print(ascii_table(["time", "finished", "ACT (s)", "AE"], rows))
    if result.telemetry is not None:
        print("\n== telemetry ==")
        for line in result.telemetry.summary_lines():
            print(f"  {line}")
    if recorder is not None:
        from repro.obs.spans import write_chrome_trace

        trace = write_chrome_trace(args.trace_out, recorder, result)
        print(f"\nwrote {args.trace_out} ({len(trace['traceEvents'])} trace events; "
              "open in https://ui.perfetto.dev)")
    return 0


def _parse_overrides(pairs: list[str]) -> dict:
    """``FIELD=VALUE`` strings -> config overrides (literals when possible)."""
    out: dict = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--set expects FIELD=VALUE, got {pair!r}")
        key, _, raw = pair.partition("=")
        key = key.strip()
        if key in ("algorithm", "seed"):
            raise SystemExit(
                f"--set {key}=... would be overwritten per sweep cell; "
                "use --algorithms/--seeds instead"
            )
        if key == "scenario":
            raise SystemExit(
                "--set scenario=... only stamps the provenance field; "
                "use --scenario NAME to apply the preset's overrides"
            )
        try:
            out[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            out[key] = raw
    return out


def _cmd_campaign(args) -> int:
    from repro.api import run_campaign
    from repro.experiments.campaign import CampaignError
    from repro.experiments.figures import base_config

    try:
        base = base_config(args.profile)
        if args.scenario:
            from repro.workload.scenarios import apply_scenario

            base = apply_scenario(base, args.scenario)
        if args.churn_model:
            base = base.with_(churn_model=args.churn_model)
        if args.recovery:
            base = base.with_(recovery_policy=args.recovery)
        overrides = _parse_overrides(args.overrides)
        if overrides:
            base = base.with_(**overrides)
        if args.telemetry:
            base = base.with_(telemetry=True)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"invalid --set override: {exc}")
    if args.max_retries < 0:
        raise SystemExit("--max-retries must be >= 0")
    faults = None
    if args.inject_faults:
        from repro.faults import load_fault_plan

        try:
            faults = load_fault_plan(args.inject_faults)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"--inject-faults: {exc}")
    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal JOURNAL.jsonl")
    journal = None
    journal_state = None
    if args.journal:
        import os

        from repro.experiments.campaign import config_hash, sweep_specs
        from repro.experiments.journal import RunJournal, request_identity

        try:
            cells = [
                (s.label, config_hash(s.config))
                for s in sweep_specs(args.algorithms, args.seeds, base=base)
            ]
        except ValueError as exc:
            raise SystemExit(str(exc))
        identity = request_identity("campaign", cells)
        if args.resume:
            journal_state = RunJournal.load(args.journal)
            if journal_state is None:
                raise SystemExit(f"--resume: no journal at {args.journal}")
            if journal_state.identity != identity:
                raise SystemExit(
                    "--resume: the journal was written by a different request "
                    "(algorithms/seeds/config/code version changed) — "
                    "start fresh without --resume"
                )
            if not args.quiet:
                print(
                    f"resuming: {len(journal_state.done)}/{len(cells)} cells "
                    "journaled done (replayed from cache)",
                    file=sys.stderr,
                )
        else:
            # A fresh run truncates any stale journal for this path.
            try:
                os.unlink(args.journal)
            except FileNotFoundError:
                pass
        from repro.faults import NULL_FAULTS

        journal = RunJournal(args.journal, faults=faults or NULL_FAULTS)
        journal.begin(
            "campaign",
            identity,
            {
                "algorithms": list(args.algorithms),
                "seeds": [int(s) for s in args.seeds],
                "profile": args.profile,
                "scenario": args.scenario,
                "overrides": {k: repr(v) for k, v in overrides.items()},
            },
        )
    progress = None
    if not args.quiet:
        def progress(run):  # noqa: ANN001
            src = "cache" if run.from_cache else f"{run.wall_seconds:.1f}s"
            print(f"  [{run.label}] {run.result.n_done}/{run.result.n_workflows} done, "
                  f"ACT={run.result.act:.0f}s AE={run.result.ae:.3f} ({src})",
                  file=sys.stderr)
    if journal is not None:
        user_progress = progress

        def progress(run):  # noqa: ANN001
            journal.record_done(run.cache_key, run.label, run.digest())
            if user_progress is not None:
                user_progress(run)
    try:
        campaign = run_campaign(
            algorithms=args.algorithms,
            seeds=args.seeds,
            base=base,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            progress=progress,
            max_retries=args.max_retries,
            retry_backoff=args.retry_backoff,
            faults=faults,
        )
    except CampaignError as exc:  # run failures (message embeds each one)
        raise SystemExit(str(exc))
    except ValueError as exc:  # bad sweep shape, e.g. repeated seeds
        raise SystemExit(str(exc))
    finally:
        if journal is not None:
            journal.close()
    if journal is not None:
        # finish() lazily reopens the closed handle for the final record.
        journal.finish(campaign.fingerprint())
        journal.close()
    if journal_state is not None:
        mismatched = [
            run.label
            for run in campaign
            if run.cache_key in journal_state.done
            and run.digest() != journal_state.done[run.cache_key]
        ]
        if mismatched:
            raise SystemExit(
                "--resume: cached digests diverged from the journal for: "
                + ", ".join(mismatched)
            )
        replayed = sum(
            1
            for run in campaign
            if run.cache_key in journal_state.done and run.from_cache
        )
        print(
            f"resume verified: {replayed} journaled cells replayed from "
            "cache, digests match",
            file=sys.stderr,
        )
    headers = ["run", "finished", "ACT (s)", "AE", "source"]
    rows = [
        [
            run.label,
            f"{run.result.n_done}/{run.result.n_workflows}",
            round(float(run.result.act)),
            round(float(run.result.ae), 3),
            "cache" if run.from_cache else f"{run.wall_seconds:.1f}s",
        ]
        for run in campaign
    ]
    print(ascii_table(headers, rows))
    print(f"{len(campaign)} runs ({campaign.n_cached} from cache) in "
          f"{campaign.wall_seconds:.1f}s wall | fingerprint {campaign.fingerprint()}")
    if args.telemetry:
        print("\n== campaign telemetry ==")
        for line in campaign.telemetry_summary().summary_lines():
            print(f"  {line}")
    if args.csv:
        path = write_table_csv(args.csv, headers, rows)
        print(f"wrote {path}")
    return 0


def _cmd_sweep(args) -> int:
    import json

    from repro.experiments.campaign import CampaignError
    from repro.experiments.figures import base_config
    from repro.experiments.sweep import (
        SweepError,
        SweepSettings,
        format_envelope,
        run_sweep,
    )

    if args.quick:
        # CI smoke shape: same search/caching/report paths on a grid small
        # enough that the whole envelope fits in a couple of minutes.
        base = base_config(args.profile, n_nodes=24, load_factor=1,
                           total_time=8 * 3600.0)
        settings = SweepSettings(
            threshold=args.threshold,
            resolution=max(args.resolution, 0.5),
            max_scale=min(args.max_scale, 2.0),
            seeds=tuple(args.seeds),
        )
    else:
        base = base_config(args.profile)
        settings = SweepSettings(
            threshold=args.threshold,
            resolution=args.resolution,
            max_scale=args.max_scale,
            seeds=tuple(args.seeds),
        )
    try:
        overrides = _parse_overrides(args.overrides)
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"invalid --set override: {exc}")
    if args.resume and not args.journal:
        raise SystemExit("--resume requires --journal JOURNAL.jsonl")
    journal = None
    journal_state = None
    mismatched: list[str] = []
    if args.journal:
        import os

        from repro import __version__
        from repro.experiments.campaign import CACHE_SCHEMA
        from repro.experiments.journal import RunJournal, request_identity

        request = {
            "scenarios": list(args.scenarios),
            "algorithms": list(args.algorithms),
            "seeds": [int(s) for s in settings.seeds],
            "threshold": settings.threshold,
            "resolution": settings.resolution,
            "max_scale": settings.max_scale,
            "overrides": {k: repr(v) for k, v in sorted(overrides.items())},
            "profile": args.profile,
            "quick": bool(args.quick),
            "version": __version__,
            "cache_schema": CACHE_SCHEMA,
        }
        identity = request_identity("sweep", request)
        if args.resume:
            journal_state = RunJournal.load(args.journal)
            if journal_state is None:
                raise SystemExit(f"--resume: no journal at {args.journal}")
            if journal_state.identity != identity:
                raise SystemExit(
                    "--resume: the journal was written by a different sweep "
                    "request — start fresh without --resume"
                )
            if not args.quiet:
                print(
                    f"resuming: {len(journal_state.done)} probe cells "
                    "journaled done (replayed from cache)",
                    file=sys.stderr,
                )
        else:
            try:
                os.unlink(args.journal)
            except FileNotFoundError:
                pass
        journal = RunJournal(args.journal)
        journal.begin("sweep", identity, request)
    progress = None
    if not args.quiet:
        def progress(scenario, algorithm, probe):  # noqa: ANN001
            src = "cache" if probe.from_cache else "run"
            verdict = "pass" if probe.passed else "FAIL"
            print(f"  [{scenario}/{algorithm}] x{probe.scale:g}: "
                  f"{probe.n_done}/{probe.n_workflows} done "
                  f"(rate {probe.completion_rate:.3f}, {verdict}, {src})",
                  file=sys.stderr)
    run_progress = None
    if journal is not None:
        def run_progress(run):  # noqa: ANN001
            digest = run.digest()
            journal.record_done(run.cache_key, run.label, digest)
            if (
                journal_state is not None
                and journal_state.done.get(run.cache_key, digest) != digest
            ):
                mismatched.append(run.label)
    try:
        report = run_sweep(
            args.scenarios,
            args.algorithms,
            base=base,
            settings=settings,
            jobs=args.jobs,
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            progress=progress,
            run_progress=run_progress,
            **overrides,
        )
    except SweepError as exc:
        raise SystemExit(str(exc))
    except CampaignError as exc:
        raise SystemExit(str(exc))
    except (TypeError, ValueError) as exc:
        raise SystemExit(f"invalid sweep request: {exc}")
    finally:
        if journal is not None:
            journal.close()
    if journal is not None:
        from repro.experiments.journal import request_identity as _report_hash

        journal.finish(_report_hash("sweep-report", report))
        journal.close()
    if mismatched:
        raise SystemExit(
            "--resume: cached digests diverged from the journal for: "
            + ", ".join(sorted(set(mismatched)))
        )
    print(format_envelope(report))
    total = sum(
        cell["n_probes"]
        for entry in report["scenarios"]
        for cell in entry["heuristics"].values()
    )
    cached = sum(
        cell["n_cached"]
        for entry in report["scenarios"]
        for cell in entry["heuristics"].values()
    )
    print(f"{total} probes ({cached} from cache), criterion: completion rate "
          f">= {settings.threshold:g} over seeds {list(settings.seeds)}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            json.dump(report, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"wrote {args.output}")
    return 0


def _cmd_bench(args) -> int:
    import json

    from repro.perf.bench import (
        DEFAULT_REPORT_NAME,
        discover_baseline,
        run_bench,
        speedup_regressions,
        validate_report,
        write_report,
    )

    if args.output is None:
        args.output = DEFAULT_REPORT_NAME
    if args.regression_threshold is not None and not args.baseline:
        raise SystemExit("--regression-threshold requires --baseline")
    baseline = None
    baseline_path = args.baseline
    if baseline_path == "auto":
        found = discover_baseline(".", exclude=args.output, quick=args.quick)
        if found is None:
            mode = "quick" if args.quick else "full-size"
            raise SystemExit(
                f"--baseline: no {mode} BENCH_PR*.json found in the current "
                "directory to auto-discover (run from the repo root or "
                "pass an explicit report path; quick runs only match "
                "committed quick baselines and vice versa)"
            )
        baseline_path = str(found)
        print(f"baseline: {baseline_path} (auto-discovered)", file=sys.stderr)
    if baseline_path:
        try:
            with open(baseline_path) as fh:
                baseline = json.load(fh)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read baseline report {baseline_path}: {exc}")
    progress = None
    if not args.quiet:
        def progress(entry):  # noqa: ANN001
            print(f"  [{entry['name']}] {entry['wall_seconds']:.2f}s wall, "
                  f"{entry['events']} events ({entry['events_per_sec']:.0f}/s), "
                  f"{entry['n_done']}/{entry['n_workflows']} workflows done",
                  file=sys.stderr)
    try:
        report = run_bench(
            scenarios=args.scenarios,
            quick=args.quick,
            repeats=args.repeats,
            profile_top=args.profile_top,
            baseline=baseline,
            telemetry=args.telemetry,
            progress=progress,
        )
    except ValueError as exc:
        # Unknown scenario name (lists the valid ones) or a quick/full
        # baseline mode mismatch — both raised before any timing runs.
        raise SystemExit(str(exc))
    problems = validate_report(report)
    if problems:  # pragma: no cover - defensive (the harness emits valid reports)
        raise SystemExit("invalid bench report: " + "; ".join(problems))
    path = write_report(report, args.output)
    print(f"wrote {path}")
    for name, factor in report.get("speedup", {}).items():
        print(f"  {name}: {factor:.2f}x vs baseline "
              f"({report['baseline']['scenarios'][name]['wall_seconds']:.2f}s -> "
              f"{dict((s['name'], s) for s in report['scenarios'])[name]['wall_seconds']:.2f}s)")
    if args.regression_threshold is not None:
        problems = speedup_regressions(report, args.regression_threshold)
        if problems:
            raise SystemExit("performance regression: " + "; ".join(problems))
    return 0


def _cmd_trace(args) -> int:
    import json

    from repro.obs.spans import format_trace_summary, summarize_chrome_trace

    try:
        with open(args.trace_file, encoding="utf-8") as fh:
            trace = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot read trace {args.trace_file}: {exc}")
    if not isinstance(trace, dict) or "traceEvents" not in trace:
        raise SystemExit(
            f"{args.trace_file}: not a Chrome trace-event document "
            "(expected a JSON object with a traceEvents array)"
        )
    print(format_trace_summary(summarize_chrome_trace(trace)))
    return 0


def _cmd_serve(args) -> int:
    from repro.service.app import serve

    if args.jobs < 1:
        raise SystemExit("--jobs must be >= 1")
    if args.max_pending is not None and args.max_pending < 1:
        raise SystemExit("--max-pending must be >= 1")
    return serve(
        host=args.host,
        port=args.port,
        verbose=args.verbose,
        cache_dir=args.cache_dir,
        index_path=args.index,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        journal_path=args.journal,
        max_pending=args.max_pending,
    )


def _cmd_figure(args) -> int:
    harness = FIGURES[args.figure]
    progress = None
    if not args.quiet:
        def progress(label, r):  # noqa: ANN001
            print(f"  [{label}] {r.n_done}/{r.n_workflows} done, "
                  f"ACT={r.act:.0f}s AE={r.ae:.3f} ({r.wall_seconds:.1f}s wall)",
                  file=sys.stderr)
    result = harness(profile=args.profile, seed=args.seed, progress=progress)
    print(f"== {result.title} ==")
    if result.categories:
        headers = ["series"] + result.categories
        rows = []
        for label, (_, ys) in result.series.items():
            rows.append([label] + [round(y, 3) for y in ys])
        print(ascii_table(headers, rows))
    else:
        print(
            ascii_plot(
                result.series, xlabel=result.xlabel, ylabel=result.ylabel
            )
        )
        finals = result.final_values()
        rows = [[k, round(v, 3)] for k, v in sorted(finals.items(), key=lambda kv: kv[1])]
        print(ascii_table(["series", f"final {result.ylabel}"], rows))
    if args.csv:
        path = write_series_csv(args.csv, result.series)
        print(f"wrote {path}")
    return 0


def _cmd_table(args) -> int:
    if args.table == "1":
        print("== Table I: experimental setting ==")
        print(ascii_table(["parameter", "value"], table1_settings()))
        return 0
    args.figure = "table2"
    args.csv = None
    args.quiet = False
    return _cmd_figure(args)


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point (console script ``repro``)."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "campaign":
        return _cmd_campaign(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "table":
        return _cmd_table(args)
    if args.command == "list":
        for name in available_algorithms():
            print(name)
        return 0
    if args.command == "scenarios":
        from repro.workload.scenarios import get_scenario

        rows = []
        for name in available_scenarios():
            sc = get_scenario(name)
            rows.append([name, sc.kind, sc.provenance, sc.description])
        print(ascii_table(["scenario", "kind", "provenance", "description"], rows))
        return 0
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
