"""Plain-text rendering and CSV export for experiment results.

The original figures are gnuplot line/bar charts; this module renders the
same data as ASCII line plots and tables (no plotting dependency is
available offline) and writes machine-readable CSV for external plotting.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Mapping, Sequence

__all__ = ["ascii_plot", "ascii_table", "write_series_csv", "write_table_csv"]


def ascii_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]], float_fmt: str = "{:.3f}"
) -> str:
    """Render a fixed-width table."""

    def fmt(x: object) -> str:
        if isinstance(x, float):
            return float_fmt.format(x)
        return str(x)

    cells = [[fmt(x) for x in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in cells)) if cells else len(str(h))
        for i, h in enumerate(headers)
    ]
    sep = "-+-".join("-" * w for w in widths)
    out = [" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)), sep]
    for row in cells:
        out.append(" | ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(out)


def ascii_plot(
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    width: int = 72,
    height: int = 18,
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render several (x, y) series as one ASCII line chart.

    Each series gets a distinct marker; the legend maps markers to labels.
    """
    markers = "ox+*#@%&$~^"
    xs_all = [x for xs, _ in series.values() for x in xs]
    ys_all = [y for _, ys in series.values() for y in ys]
    if not xs_all:
        return "(no data)"
    xmin, xmax = min(xs_all), max(xs_all)
    ymin, ymax = min(ys_all), max(ys_all)
    if xmax == xmin:
        xmax = xmin + 1.0
    if ymax == ymin:
        ymax = ymin + 1.0
    grid = [[" "] * width for _ in range(height)]

    def put(x: float, y: float, ch: str) -> None:
        col = int((x - xmin) / (xmax - xmin) * (width - 1))
        row = int((y - ymin) / (ymax - ymin) * (height - 1))
        grid[height - 1 - row][col] = ch

    legend = []
    for k, (label, (xs, ys)) in enumerate(series.items()):
        ch = markers[k % len(markers)]
        legend.append(f"{ch}={label}")
        for x, y in zip(xs, ys):
            put(x, y, ch)

    lines = [f"{ymax:>10.3g} ┤" + "".join(grid[0])]
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{ymin:>10.3g} ┤" + "".join(grid[-1]))
    lines.append(" " * 10 + " └" + "─" * width)
    lines.append(
        " " * 12 + f"{xmin:<10.3g}{xlabel:^{max(0, width - 20)}}{xmax:>10.3g}"
    )
    lines.append("  legend: " + "  ".join(legend))
    if ylabel:
        lines.insert(0, f"  {ylabel}")
    return "\n".join(lines)


def write_series_csv(
    path: str | Path,
    series: Mapping[str, tuple[Sequence[float], Sequence[float]]],
    xname: str = "x",
) -> Path:
    """Write per-series long-form CSV: series,x,y."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(["series", xname, "value"])
        for label, (xs, ys) in series.items():
            for x, y in zip(xs, ys):
                w.writerow([label, x, y])
    return path


def write_table_csv(
    path: str | Path, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> Path:
    """Write a rectangular table as CSV."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as fh:
        w = csv.writer(fh)
        w.writerow(headers)
        w.writerows(rows)
    return path
