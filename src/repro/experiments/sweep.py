"""Adaptive capacity sweeps: bisect the arrival rate to each heuristic's
saturation point.

The paper evaluates its heuristics at fixed load factors (Fig. 7/8 step
the integer ``load_factor``); it never asks the capacity question — *how
much* workload can each scheduling heuristic absorb before the grid stops
keeping up?  This driver answers it with the drain-style adaptive search
used by NoC simulators (binary search over injection rates): per
(scenario × heuristic) it scales the submission count through the
continuous ``workload_scale`` config knob, growing exponentially until the
completion-rate criterion first fails, then bisecting the bracket down to
``resolution``.  The largest passing scale is the heuristic's **saturation
scale**; scenario by scenario the result is a *capacity envelope* the
paper never measured.

Every probe is an ordinary campaign cell executed through
:class:`~repro.experiments.campaign.CampaignRunner`, so probes are
content-hash cached: re-running a sweep replays instantly, an interrupted
sweep resumes from its cached prefix, and overlapping sweeps (tighter
resolution, more seeds) share probe results.

Entry points: :func:`run_sweep` (the driver), :func:`format_envelope`
(ASCII comparison table), ``repro sweep`` (CLI) and ``POST /sweeps``
(service submission).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.experiments.campaign import CampaignRunner, RunSpec
from repro.experiments.config import ExperimentConfig
from repro.faults import NULL_FAULTS

__all__ = [
    "SWEEP_SCHEMA",
    "SweepError",
    "SweepSettings",
    "format_envelope",
    "run_sweep",
    "validate_envelope",
]

#: Bump when the envelope report layout changes.
SWEEP_SCHEMA = 1

#: The four phase-1 heuristics the paper's figures compare.
DEFAULT_ALGORITHMS = ("dsmf", "dheft", "heft", "smf")

#: Scales are rounded to this many decimals before probing, so bisection
#: midpoints hash identically across runs (cache keys must be replayable).
_SCALE_DECIMALS = 4

#: Bisection never probes below this scale: a grid that cannot complete
#: 1/16th of its nominal workload is failing for structural reasons a
#: finer rate cannot fix.
MIN_SCALE = 1.0 / 16.0


class SweepError(ValueError):
    """A sweep request was invalid (unknown scenario, bad settings...)."""


@dataclass(frozen=True)
class SweepSettings:
    """The sweep criterion and search grid.

    A probe *passes* when its mean completion rate (``n_done /
    n_workflows`` across seeds) is at least ``threshold``.  The search
    doubles from scale 1.0 until the first failure (capped at
    ``max_scale``), halves until the first pass when 1.0 itself fails,
    then bisects the bracket until it is narrower than ``resolution``.
    """

    threshold: float = 0.95
    resolution: float = 0.25
    max_scale: float = 8.0
    seeds: tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise SweepError("threshold must be in (0, 1]")
        if self.resolution <= 0:
            raise SweepError("resolution must be positive")
        if self.max_scale < 1.0:
            raise SweepError("max_scale must be >= 1")
        if not self.seeds:
            raise SweepError("need at least one seed")


@dataclass
class _Probe:
    scale: float
    completion_rate: float
    act: float
    ae: float
    n_done: int
    n_workflows: int
    from_cache: bool
    passed: bool

    def to_dict(self) -> dict:
        return {
            "scale": self.scale,
            "completion_rate": round(self.completion_rate, 6),
            "act": round(self.act, 3),
            "ae": round(self.ae, 6),
            "n_done": self.n_done,
            "n_workflows": self.n_workflows,
            "from_cache": self.from_cache,
            "passed": self.passed,
        }


@dataclass
class _Search:
    """Bisection state for one (scenario, heuristic) cell."""

    probes: list[_Probe] = field(default_factory=list)

    def result(self, settings: SweepSettings) -> dict:
        passing = [p.scale for p in self.probes if p.passed]
        failing = [p.scale for p in self.probes if not p.passed]
        saturation = max(passing) if passing else 0.0
        # The envelope is *censored* when the search never bracketed the
        # flip: every probe passed (the grid out-absorbed max_scale) or
        # every probe failed (even MIN_SCALE was too much).
        censored = not (passing and failing)
        return {
            "saturation_scale": saturation,
            "censored": censored,
            "n_probes": len(self.probes),
            "n_cached": sum(1 for p in self.probes if p.from_cache),
            "probes": [p.to_dict() for p in sorted(self.probes, key=lambda p: p.scale)],
        }


def _round_scale(scale: float) -> float:
    return round(scale, _SCALE_DECIMALS)


def _resolve_base(
    scenario: str, base: Optional[ExperimentConfig], overrides: dict
) -> ExperimentConfig:
    from repro.workload.scenarios import apply_scenario

    cfg = apply_scenario(base if base is not None else ExperimentConfig(), scenario)
    if overrides:
        cfg = cfg.with_(**overrides)
    if cfg.workload_source == "trace":
        raise SweepError(
            f"scenario {scenario!r} replays a submission trace; its arrival "
            "rate is fixed by the trace file, so workload_scale cannot "
            "sweep it — pick a generated-workload scenario"
        )
    return cfg


def run_sweep(
    scenarios: Sequence[str],
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    base: Optional[ExperimentConfig] = None,
    settings: Optional[SweepSettings] = None,
    jobs: int = 1,
    cache_dir=None,
    use_cache: bool = True,
    progress: Optional[Callable[[str, str, "_Probe"], None]] = None,
    runner: Optional[Callable] = None,
    mp_context: Optional[str] = None,
    run_progress: Optional[Callable] = None,
    run_on_start: Optional[Callable] = None,
    max_retries: int = 2,
    retry_backoff: float = 0.25,
    faults=NULL_FAULTS,
    stats: Optional[dict] = None,
    **overrides,
) -> dict:
    """Bisect every (scenario × heuristic) cell to its saturation scale.

    Returns the capacity-envelope report (schema :data:`SWEEP_SCHEMA`).
    ``base``/``overrides`` shape the per-scenario config exactly like
    :func:`repro.api.run_campaign`; ``progress`` is called with
    ``(scenario, algorithm, probe)`` after every probe, while
    ``run_progress``/``run_on_start`` are the finer-grained per-config
    :class:`CampaignRunner` callbacks (the service layer's status hooks).
    All probes of a cell run through one shared :class:`CampaignRunner`,
    so they are content-hash cached and an interrupted sweep resumes for
    free; ``max_retries``/``retry_backoff``/``faults``/``stats`` forward
    to that runner (see :class:`CampaignRunner`).
    """
    if not scenarios:
        raise SweepError("need at least one scenario")
    if not algorithms:
        raise SweepError("need at least one algorithm")
    if len(set(algorithms)) != len(algorithms):
        raise SweepError("duplicate algorithm in sweep request")
    settings = settings or SweepSettings()
    kwargs: dict = {}
    if runner is not None:
        kwargs["runner"] = runner
    campaign_runner = CampaignRunner(
        jobs=jobs, cache_dir=cache_dir, use_cache=use_cache,
        mp_context=mp_context, progress=run_progress, on_start=run_on_start,
        max_retries=max_retries, retry_backoff=retry_backoff,
        faults=faults, stats=stats,
        **kwargs,
    )
    bases = {name: _resolve_base(name, base, overrides) for name in scenarios}

    def probe(scenario: str, algorithm: str, scale: float) -> _Probe:
        cfg = bases[scenario]
        specs = [
            RunSpec(
                f"{scenario}/{algorithm}@x{scale:g}#s{seed}",
                cfg.with_(algorithm=algorithm, seed=int(seed), workload_scale=scale),
            )
            for seed in settings.seeds
        ]
        outcome = campaign_runner.run(specs)
        rates, acts, aes = [], [], []
        n_done = n_wf = 0
        cached = True
        for run in outcome:
            r = run.result
            rates.append(r.n_done / r.n_workflows if r.n_workflows else 1.0)
            acts.append(float(r.act))
            aes.append(float(r.ae))
            n_done += r.n_done
            n_wf += r.n_workflows
            cached = cached and run.from_cache
        rate = sum(rates) / len(rates)
        return _Probe(
            scale=scale,
            completion_rate=rate,
            act=sum(acts) / len(acts),
            ae=sum(aes) / len(aes),
            n_done=n_done,
            n_workflows=n_wf,
            from_cache=cached,
            passed=rate >= settings.threshold,
        )

    def search(scenario: str, algorithm: str) -> _Search:
        state = _Search()

        def run_probe(scale: float) -> _Probe:
            p = probe(scenario, algorithm, _round_scale(scale))
            state.probes.append(p)
            if progress is not None:
                progress(scenario, algorithm, p)
            return p

        first = run_probe(1.0)
        if first.passed:
            # Exponential growth until the criterion first flips.
            lo, hi = 1.0, None
            scale = 2.0
            while scale <= settings.max_scale:
                p = run_probe(scale)
                if p.passed:
                    lo = scale
                    scale *= 2.0
                else:
                    hi = scale
                    break
            if hi is None:
                return state  # censored at max_scale
        else:
            # Already failing at the nominal rate: halve down to a pass.
            lo, hi = None, 1.0
            scale = 0.5
            while scale >= MIN_SCALE:
                p = run_probe(scale)
                if p.passed:
                    lo = scale
                    break
                hi = scale
                scale /= 2.0
            if lo is None:
                return state  # censored below MIN_SCALE
        while hi - lo > settings.resolution:
            mid = _round_scale((lo + hi) / 2.0)
            if mid in (lo, hi):  # resolution finer than _SCALE_DECIMALS
                break
            p = run_probe(mid)
            lo, hi = (mid, hi) if p.passed else (lo, mid)
        return state

    scenario_entries = []
    for name in scenarios:
        cfg = bases[name]
        heuristics = {}
        for algorithm in algorithms:
            cell = search(name, algorithm).result(settings)
            nominal = cfg.load_factor * cfg.n_nodes
            cell["saturation_workflows"] = int(round(nominal * cell["saturation_scale"]))
            cell["saturation_workflows_per_hour"] = round(
                cell["saturation_workflows"] / (cfg.total_time / 3600.0), 3
            )
            heuristics[algorithm] = cell
        scenario_entries.append(
            {
                "name": name,
                "n_nodes": cfg.n_nodes,
                "load_factor": cfg.load_factor,
                "total_time": float(cfg.total_time),
                "nominal_workflows": cfg.load_factor * cfg.n_nodes,
                "heuristics": heuristics,
            }
        )
    return {
        "schema": SWEEP_SCHEMA,
        "kind": "capacity-envelope",
        "criterion": {"metric": "completion_rate", "threshold": settings.threshold},
        "resolution": settings.resolution,
        "max_scale": settings.max_scale,
        "seeds": list(settings.seeds),
        "algorithms": list(algorithms),
        "scenarios": scenario_entries,
    }


def validate_envelope(report: dict) -> list[str]:
    """Sanity-check an envelope report; returns a list of problems."""
    problems: list[str] = []
    if report.get("schema") != SWEEP_SCHEMA:
        problems.append(f"schema must be {SWEEP_SCHEMA}, got {report.get('schema')!r}")
    if report.get("kind") != "capacity-envelope":
        problems.append(f"kind must be 'capacity-envelope', got {report.get('kind')!r}")
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        problems.append("scenarios must be a non-empty list")
        return problems
    for entry in scenarios:
        name = entry.get("name", "<unnamed>")
        heuristics = entry.get("heuristics")
        if not isinstance(heuristics, dict) or not heuristics:
            problems.append(f"{name}: heuristics must be a non-empty object")
            continue
        for alg, cell in heuristics.items():
            if not isinstance(cell.get("probes"), list) or not cell["probes"]:
                problems.append(f"{name}/{alg}: no probes recorded")
            if not isinstance(cell.get("saturation_scale"), (int, float)):
                problems.append(f"{name}/{alg}: missing saturation_scale")
            if not cell.get("censored", False):
                scales = {p["scale"]: p["passed"] for p in cell.get("probes", [])}
                if cell.get("saturation_scale") not in scales:
                    problems.append(
                        f"{name}/{alg}: saturation_scale was never probed"
                    )
    return problems


def format_envelope(report: dict) -> str:
    """Render the per-heuristic saturation table of an envelope report."""
    from repro.experiments.report import ascii_table

    headers = [
        "scenario", "heuristic", "saturation", "workflows", "wf/hour",
        "probes (cached)",
    ]
    rows = []
    for entry in report["scenarios"]:
        cells = entry["heuristics"]
        ranked = sorted(
            cells.items(), key=lambda kv: -kv[1]["saturation_scale"]
        )
        for alg, cell in ranked:
            mark = ""
            if cell["censored"]:
                mark = " (>= max)" if cell["saturation_scale"] >= 1.0 else " (< min)"
            rows.append([
                entry["name"],
                alg,
                f"x{cell['saturation_scale']:g}{mark}",
                cell["saturation_workflows"],
                f"{cell['saturation_workflows_per_hour']:g}",
                f"{cell['n_probes']} ({cell['n_cached']})",
            ])
    return ascii_table(headers, rows)
