"""Crash-safe run journal: ``repro campaign --resume`` / ``repro sweep --resume``.

A multi-hour campaign killed at cell 37/48 should not restart from cell
one.  The cache already guarantees the *results* survive (each finished
cell is an atomically-written ``<hash>.pkl``); what a crash loses is the
*bookkeeping* — which cells of which request were done, and what their
digests were.  The journal persists exactly that, one JSON object per
line, flushed and fsynced per record, so a ``SIGKILL`` can lose at most
the record being written and never corrupts earlier ones:

``begin``
    opens a journal: the request's *identity hash* (a content hash of the
    ordered cell labels + config hashes, so ``--resume`` refuses a
    journal from a different request) plus a human-readable request echo.
``done``
    one per finished cell: config hash, label, result digest.
``finish``
    the campaign completed; carries the final fingerprint.

Resume = load the journal, verify identity, re-run the same request
against the same cache: journaled-done cells replay as cache hits (no
re-execution), and their digests are checked against the journaled ones —
a mismatch means the cache changed identity mid-campaign and is an error,
not a warning.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional

from repro.faults import NULL_FAULTS

__all__ = ["JournalState", "RunJournal", "request_identity"]

JOURNAL_SCHEMA = 1


def request_identity(kind: str, payload) -> str:
    """Content hash identifying one campaign/sweep request.

    For a campaign, ``payload`` is the ordered ``(label, config_hash)``
    grid — covering the algorithms, seeds, scenario, overrides, code
    version, and cache schema (all folded into each config hash), plus
    the grid order.  For a sweep it is the JSON request dict.
    """
    blob = json.dumps([kind, payload], sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


@dataclass
class JournalState:
    """What a loaded journal says happened so far."""

    kind: str
    identity: str
    request: dict
    #: config_hash -> result digest for every journaled-done cell.
    done: dict = field(default_factory=dict)
    finished: bool = False
    fingerprint: Optional[str] = None
    #: Unparseable lines skipped on load (torn tail writes).
    skipped_lines: int = 0


class RunJournal:
    """Append-side journal handle for one campaign/sweep process.

    Not thread-safe — the CLI writes from the single-threaded
    orchestrator's progress callback.  ``faults`` may inject
    ``index.append`` tears; recovery (drop the handle, keep going,
    terminate the torn tail on reopen) is the same code path a real
    ``ENOSPC`` would take.
    """

    def __init__(self, path: "str | os.PathLike", faults=NULL_FAULTS):
        self.path = Path(path)
        self.faults = faults
        self._fh = None
        #: Appends that failed (torn writes); the in-memory campaign is
        #: unaffected, the next append reopens and repairs the tail.
        self.append_errors = 0

    # ------------------------------------------------------------- writing
    def _handle(self):
        """Lazily (re)open for append, terminating any torn tail first."""
        if self._fh is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            needs_newline = False
            if self.path.is_file() and self.path.stat().st_size > 0:
                with self.path.open("rb") as fh:
                    fh.seek(-1, os.SEEK_END)
                    needs_newline = fh.read(1) != b"\n"
            self._fh = self.path.open("a", encoding="utf-8")
            if needs_newline:
                self._fh.write("\n")
        return self._fh

    def _append(self, record: Mapping) -> None:
        line = json.dumps(dict(record), sort_keys=True, separators=(",", ":"))
        try:
            fh = self._handle()
            if self.faults.enabled and self.faults.check("index.append") is not None:
                # A torn write: half the line lands on disk, no newline,
                # and the writer sees an IO error — exactly what a crash
                # or full disk leaves behind.
                fh.write(line[: max(1, len(line) // 2)])
                fh.flush()
                raise OSError("injected torn journal append")
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        except OSError:
            self.append_errors += 1
            if self._fh is not None:
                try:
                    self._fh.close()
                except OSError:  # pragma: no cover - double-fault close
                    pass
                self._fh = None

    def begin(self, kind: str, identity: str, request: Mapping) -> None:
        self._append(
            {
                "event": "begin",
                "schema": JOURNAL_SCHEMA,
                "kind": kind,
                "identity": identity,
                "request": dict(request),
            }
        )

    def record_done(self, key: str, label: str, digest: str) -> None:
        self._append({"event": "done", "key": key, "label": label, "digest": digest})

    def finish(self, fingerprint: str) -> None:
        self._append({"event": "finish", "fingerprint": fingerprint})

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------- loading
    @staticmethod
    def load(path: "str | os.PathLike") -> Optional[JournalState]:
        """Parse a journal; ``None`` if it doesn't exist or has no valid
        ``begin`` record.  Corrupt lines (torn tails) are skipped, and a
        later ``begin`` resets the state (a resumed run re-begins)."""
        path = Path(path)
        if not path.is_file():
            return None
        state: Optional[JournalState] = None
        skipped = 0
        with path.open("r", encoding="utf-8", errors="replace") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line)
                except ValueError:
                    skipped += 1
                    continue
                if not isinstance(rec, dict):
                    skipped += 1
                    continue
                event = rec.get("event")
                if event == "begin":
                    if (
                        rec.get("schema") == JOURNAL_SCHEMA
                        and isinstance(rec.get("kind"), str)
                        and isinstance(rec.get("identity"), str)
                    ):
                        # Done cells carry across a re-begin only when it
                        # is the *same* request resuming.
                        done = (
                            state.done
                            if state is not None and state.identity == rec["identity"]
                            else {}
                        )
                        state = JournalState(
                            kind=rec["kind"],
                            identity=rec["identity"],
                            request=dict(rec.get("request") or {}),
                            done=done,
                        )
                    else:
                        skipped += 1
                elif state is None:
                    skipped += 1
                elif event == "done":
                    key, digest = rec.get("key"), rec.get("digest")
                    if isinstance(key, str) and isinstance(digest, str):
                        state.done[key] = digest
                    else:
                        skipped += 1
                elif event == "finish":
                    state.finished = True
                    fp = rec.get("fingerprint")
                    state.fingerprint = fp if isinstance(fp, str) else None
                else:
                    skipped += 1
        if state is not None:
            state.skipped_lines = skipped
        return state
