"""Regeneration harnesses for every table and figure of §IV.

Each ``figN_*`` function runs the simulations the paper's figure aggregates
and returns a :class:`FigureResult` holding the same series/bars the figure
plots.  The per-experiment index in DESIGN.md maps figures to these
functions; ``python -m repro figure <n>`` renders them as ASCII plots and
CSV.

Scale profiles (``paper`` / ``medium`` / ``small``) shrink node count and
horizon while keeping all Table I per-task parameters, preserving the
result *shape* (who wins, rough factors, crossovers) at a fraction of the
cost; EXPERIMENTS.md records which profile produced the archived numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.core.heuristics.registry import PAPER_ALGORITHMS
from repro.experiments.config import ExperimentConfig, ScaleProfile, apply_profile
from repro.grid.system import P2PGridSystem
from repro.metrics.collectors import RunResult

__all__ = [
    "FigureResult",
    "base_config",
    "fig4_throughput",
    "fig5_finish_time",
    "fig6_efficiency",
    "fig7_finish_time_vs_load",
    "fig8_efficiency_vs_load",
    "fig9_finish_time_vs_ccr",
    "fig10_efficiency_vs_ccr",
    "fig11_scalability",
    "fig12_churn_throughput",
    "fig13_churn_finish_time",
    "fig14_churn_efficiency",
    "run_static_suite",
    "table1_settings",
    "table2_fcfs_ablation",
    "FIGURES",
]


@dataclass
class FigureResult:
    """Data behind one reproduced figure/table.

    ``series`` maps a legend label to ``(x values, y values)``; for bar
    charts x values are category indices and ``categories`` names them.
    """

    figure: str
    title: str
    xlabel: str
    ylabel: str
    series: dict[str, tuple[list[float], list[float]]]
    categories: list[str] = field(default_factory=list)
    notes: str = ""

    def final_values(self) -> dict[str, float]:
        """Last y value per series (the 'converged' numbers quoted in §IV)."""
        return {k: ys[-1] for k, (xs, ys) in self.series.items() if ys}

    def as_rows(self) -> list[list[object]]:
        """Long-form rows (series, x, y) for tables/CSV."""
        out: list[list[object]] = []
        for label, (xs, ys) in self.series.items():
            for x, y in zip(xs, ys):
                name = self.categories[int(x)] if self.categories else x
                out.append([label, name, y])
        return out


# --------------------------------------------------------------------------
# Base setting (§IV.A / Fig. 4–6)
# --------------------------------------------------------------------------

def base_config(
    profile: ScaleProfile | str = ScaleProfile.SMALL, seed: int = 1, **overrides
) -> ExperimentConfig:
    """The Fig. 4–6 experimental setting at the requested scale.

    Paper values: 1000 nodes, three workflows each, loads 100–10000 MI,
    data 10–1000 Mb (CCR ≈ 0.16), 36 hours.  Explicit ``overrides`` win
    over the profile's scale values.
    """
    cfg = apply_profile(ExperimentConfig(seed=seed), ScaleProfile(profile))
    return cfg.with_(**overrides) if overrides else cfg


def _run(cfg: ExperimentConfig) -> RunResult:
    return P2PGridSystem(cfg).run()


def run_static_suite(
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    profile: ScaleProfile | str = ScaleProfile.SMALL,
    seed: int = 1,
    progress: Callable[[str, RunResult], None] | None = None,
    **overrides,
) -> dict[str, RunResult]:
    """One static run per algorithm with the shared base setting.

    This is the workhorse behind Fig. 4, 5 and 6 (they share the runs).
    """
    results: dict[str, RunResult] = {}
    for alg in algorithms:
        cfg = base_config(profile, seed=seed, **overrides).with_(algorithm=alg)
        results[alg] = _run(cfg)
        if progress is not None:
            progress(alg, results[alg])
    return results


def _series_figure(
    results: dict[str, RunResult], metric: str, figure: str, title: str, ylabel: str
) -> FigureResult:
    return FigureResult(
        figure=figure,
        title=title,
        xlabel="Time (Hour)",
        ylabel=ylabel,
        series={alg: r.series(metric) for alg, r in results.items()},
    )


def fig4_throughput(
    results: dict[str, RunResult] | None = None, **kw
) -> FigureResult:
    """Fig. 4: workflows finished over time, eight algorithms, static."""
    results = results or run_static_suite(**kw)
    return _series_figure(
        results, "throughput", "fig4",
        "Throughput of Workflows in Static P2P Grid System",
        "# of workflows finished",
    )


def fig5_finish_time(
    results: dict[str, RunResult] | None = None, **kw
) -> FigureResult:
    """Fig. 5: cumulative average finish time (Eq. 2) over time."""
    results = results or run_static_suite(**kw)
    return _series_figure(
        results, "act", "fig5",
        "Average Finish-time of Workflows in Static P2P Grid System",
        "Average finish-time (s)",
    )


def fig6_efficiency(
    results: dict[str, RunResult] | None = None, **kw
) -> FigureResult:
    """Fig. 6: cumulative average efficiency (Eq. 3) over time."""
    results = results or run_static_suite(**kw)
    return _series_figure(
        results, "ae", "fig6",
        "Average Efficiency of Workflows in Static P2P Grid System",
        "Average efficiency",
    )


# --------------------------------------------------------------------------
# Fig. 7/8 — load-factor sweep
# --------------------------------------------------------------------------

def _sweep(
    figure: str,
    title: str,
    ylabel: str,
    categories: list[str],
    configs: list[ExperimentConfig],
    algorithms: Sequence[str],
    metric: str,
    progress: Callable[[str, RunResult], None] | None = None,
) -> FigureResult:
    series: dict[str, tuple[list[float], list[float]]] = {
        alg: ([], []) for alg in algorithms
    }
    for i, cfg in enumerate(configs):
        for alg in algorithms:
            r = _run(cfg.with_(algorithm=alg))
            series[alg][0].append(float(i))
            series[alg][1].append(float(getattr(r, metric)))
            if progress is not None:
                progress(f"{alg}@{categories[i]}", r)
    return FigureResult(
        figure=figure,
        title=title,
        xlabel="case",
        ylabel=ylabel,
        series=series,
        categories=categories,
    )


def _load_factor_sweep(metric, figure, title, ylabel, load_factors, profile, seed,
                       algorithms, progress, **overrides):
    lfs = list(load_factors)
    configs = [
        base_config(profile, seed=seed, **overrides).with_(load_factor=lf)
        for lf in lfs
    ]
    return _sweep(
        figure, title, ylabel, [str(lf) for lf in lfs], configs, algorithms,
        metric, progress,
    )


def fig7_finish_time_vs_load(
    load_factors: Iterable[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    profile: ScaleProfile | str = ScaleProfile.SMALL,
    seed: int = 1,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    progress=None,
    **overrides,
) -> FigureResult:
    """Fig. 7: converged ACT as the per-node workflow count grows."""
    return _load_factor_sweep(
        "act", "fig7", "Average Finish-Time of Workflows under Different Load Factor",
        "Average finish-time (s)", load_factors, profile, seed, algorithms,
        progress, **overrides,
    )


def fig8_efficiency_vs_load(
    load_factors: Iterable[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    profile: ScaleProfile | str = ScaleProfile.SMALL,
    seed: int = 1,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    progress=None,
    **overrides,
) -> FigureResult:
    """Fig. 8: converged AE as the per-node workflow count grows."""
    return _load_factor_sweep(
        "ae", "fig8", "Average Efficiency of Workflows under Different Load Factor",
        "Average efficiency", load_factors, profile, seed, algorithms,
        progress, **overrides,
    )


# --------------------------------------------------------------------------
# Fig. 9/10 — CCR sweep
# --------------------------------------------------------------------------

#: The paper's four (task-load range, data-size range) combinations.
CCR_CASES: list[tuple[str, tuple[float, float], tuple[float, float]]] = [
    ("load:10-1000 data:10-1000", (10.0, 1000.0), (10.0, 1000.0)),
    ("load:10-1000 data:100-10000", (10.0, 1000.0), (100.0, 10_000.0)),
    ("load:100-10000 data:10-1000", (100.0, 10_000.0), (10.0, 1000.0)),
    ("load:100-10000 data:100-10000", (100.0, 10_000.0), (100.0, 10_000.0)),
]


def _ccr_sweep(metric, figure, title, ylabel, profile, seed, algorithms,
               progress, **overrides):
    configs = [
        base_config(profile, seed=seed, **overrides).with_(
            load_range=loads, data_range=data
        )
        for _, loads, data in CCR_CASES
    ]
    return _sweep(
        figure, title, ylabel, [c[0] for c in CCR_CASES], configs, algorithms,
        metric, progress,
    )


def fig9_finish_time_vs_ccr(
    profile: ScaleProfile | str = ScaleProfile.SMALL,
    seed: int = 1,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    progress=None,
    **overrides,
) -> FigureResult:
    """Fig. 9: converged ACT under the four CCR combinations."""
    return _ccr_sweep(
        "act", "fig9", "Average Finish-Time of Workflows under Different CCRs",
        "Average finish-time (s)", profile, seed, algorithms, progress, **overrides,
    )


def fig10_efficiency_vs_ccr(
    profile: ScaleProfile | str = ScaleProfile.SMALL,
    seed: int = 1,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    progress=None,
    **overrides,
) -> FigureResult:
    """Fig. 10: converged AE under the four CCR combinations."""
    return _ccr_sweep(
        "ae", "fig10", "Average Efficiency of Workflows under Different CCRs",
        "Average efficiency", profile, seed, algorithms, progress, **overrides,
    )


# --------------------------------------------------------------------------
# Fig. 11 — scalability of DSMF
# --------------------------------------------------------------------------

def fig11_scalability(
    scales: Iterable[int] = (100, 200, 400, 600, 800, 1000),
    profile: ScaleProfile | str = ScaleProfile.SMALL,
    seed: int = 1,
    progress=None,
    **overrides,
) -> FigureResult:
    """Fig. 11: DSMF vs system scale — (a) nodes known per node via the
    mixed gossip protocol, (b) average efficiency, (c) average finish time.

    The ``small`` profile shrinks the default scale list; pass ``scales``
    explicitly (e.g. 200..2000) for the paper's x-axis.
    """
    if ScaleProfile(profile) is ScaleProfile.SMALL:
        scales = tuple(s for s in scales if s <= 400) or (100, 200)
    cats = [str(s) for s in scales]
    horizon = base_config(profile, seed=seed).total_time
    known: list[float] = []
    ae: list[float] = []
    act: list[float] = []
    for s in scales:
        params: dict = dict(
            algorithm="dsmf", n_nodes=int(s), seed=seed, total_time=horizon
        )
        params.update(overrides)
        r = _run(ExperimentConfig(**params))
        known.append(r.rss_mean)
        ae.append(r.ae)
        act.append(r.act)
        if progress is not None:
            progress(f"dsmf@n={s}", r)
    idx = [float(i) for i in range(len(cats))]
    return FigureResult(
        figure="fig11",
        title="System Scalability of DSMF",
        xlabel="system scale (n)",
        ylabel="(a) known nodes / (b) AE / (c) ACT",
        series={
            "known_nodes": (idx, known),
            "avg_efficiency": (idx, ae),
            "avg_finish_time": (idx, act),
        },
        categories=cats,
    )


# --------------------------------------------------------------------------
# Fig. 12/13/14 — churn
# --------------------------------------------------------------------------

def _churn_suite(profile, seed, dynamic_factors, progress, **overrides):
    results = {}
    for df in dynamic_factors:
        cfg = base_config(profile, seed=seed, **overrides).with_(
            algorithm="dsmf", dynamic_factor=df
        )
        label = f"dynamic factor={df:g}"
        results[label] = _run(cfg)
        if progress is not None:
            progress(label, results[label])
    return results


def fig12_churn_throughput(
    dynamic_factors: Iterable[float] = (0.0, 0.1, 0.2, 0.3, 0.4),
    profile: ScaleProfile | str = ScaleProfile.SMALL,
    seed: int = 1,
    results: dict[str, RunResult] | None = None,
    progress=None,
    **overrides,
) -> FigureResult:
    """Fig. 12: DSMF throughput over time under churn."""
    results = results or _churn_suite(profile, seed, dynamic_factors, progress, **overrides)
    return _series_figure(
        results, "throughput", "fig12",
        "Throughput of DSMF in Dynamic Environment", "# of workflows finished",
    )


def fig13_churn_finish_time(
    dynamic_factors: Iterable[float] = (0.0, 0.1, 0.2, 0.3, 0.4),
    profile: ScaleProfile | str = ScaleProfile.SMALL,
    seed: int = 1,
    results: dict[str, RunResult] | None = None,
    progress=None,
    **overrides,
) -> FigureResult:
    """Fig. 13: ACT of finished workflows over time under churn."""
    results = results or _churn_suite(profile, seed, dynamic_factors, progress, **overrides)
    return _series_figure(
        results, "act", "fig13",
        "Average Finish-Time of DSMF in Dynamic Environment",
        "Average finish-time (s)",
    )


def fig14_churn_efficiency(
    dynamic_factors: Iterable[float] = (0.0, 0.1, 0.2, 0.3, 0.4),
    profile: ScaleProfile | str = ScaleProfile.SMALL,
    seed: int = 1,
    results: dict[str, RunResult] | None = None,
    progress=None,
    **overrides,
) -> FigureResult:
    """Fig. 14: AE of finished workflows over time under churn."""
    results = results or _churn_suite(profile, seed, dynamic_factors, progress, **overrides)
    return _series_figure(
        results, "ae", "fig14",
        "Average Efficiency of DSMF in Dynamic Environment", "Average efficiency",
    )


# --------------------------------------------------------------------------
# Tables
# --------------------------------------------------------------------------

def table1_settings() -> list[tuple[str, str]]:
    """Table I, as implemented by the default configuration."""
    cfg = ExperimentConfig()
    return [
        ("# of nodes", "200 ~ 2000 (config n_nodes; default 1000)"),
        ("# of tasks per workflow", f"{cfg.task_range[0]} ~ {cfg.task_range[1]}"),
        ("computing amount per task", f"{cfg.load_range[0]:g} ~ {cfg.load_range[1]:g} MI"),
        ("image size per task", f"{cfg.image_range[0]:g} ~ {cfg.image_range[1]:g} Mb"),
        ("dependent data size", "100 ~ 10000 Mb (Fig.4-6 use 10 ~ 1000)"),
        ("network bandwidth", f"{cfg.bw_min:g} ~ {cfg.bw_max:g} Mb/s"),
        ("node capacity", "1, 2, 4, 8 or 16 MIPS"),
        ("CCR", "0.16 ~ 16 (via load/data ranges)"),
        ("fan-out per task", f"{cfg.fanout_range[0]} ~ {cfg.fanout_range[1]}"),
        ("total experimental time", f"{cfg.total_time / 3600:g} hours"),
        ("scheduling interval", f"{cfg.schedule_interval / 60:g} minutes"),
        ("gossip cycle", f"{cfg.gossip_interval / 60:g} minutes, TTL {cfg.gossip_ttl}"),
    ]


def table2_fcfs_ablation(
    profile: ScaleProfile | str = ScaleProfile.SMALL,
    seed: int = 1,
    bases: Sequence[str] = ("min-min", "max-min", "sufferage", "dheft"),
    progress=None,
    **overrides,
) -> FigureResult:
    """§IV.B prose ("Table II"): converged ACT with the heuristic second
    phase vs plain FCFS at resource nodes.

    The paper reports 31977/33495/30321/30728 (heuristic) vs
    32874/33746/32781/32636 (FCFS) — FCFS is consistently worse.
    """
    series: dict[str, tuple[list[float], list[float]]] = {
        "phase2-heuristic": ([], []),
        "phase2-fcfs": ([], []),
    }
    for i, b in enumerate(bases):
        for label, name in (("phase2-heuristic", b), ("phase2-fcfs", f"{b}-fcfs")):
            cfg = base_config(profile, seed=seed, **overrides).with_(algorithm=name)
            r = _run(cfg)
            series[label][0].append(float(i))
            series[label][1].append(r.act)
            if progress is not None:
                progress(name, r)
    return FigureResult(
        figure="table2",
        title="Second-phase scheduling vs FCFS (converged ACT)",
        xlabel="base heuristic",
        ylabel="Average finish-time (s)",
        series=series,
        categories=list(bases),
    )


#: Dispatch table used by the CLI: name -> harness.
FIGURES: dict[str, Callable[..., FigureResult]] = {
    "4": fig4_throughput,
    "5": fig5_finish_time,
    "6": fig6_efficiency,
    "7": fig7_finish_time_vs_load,
    "8": fig8_efficiency_vs_load,
    "9": fig9_finish_time_vs_ccr,
    "10": fig10_efficiency_vs_ccr,
    "11": fig11_scalability,
    "12": fig12_churn_throughput,
    "13": fig13_churn_finish_time,
    "14": fig14_churn_efficiency,
    "table2": table2_fcfs_ablation,
}
