"""Evaluation harness (substrate S18): configs, scenarios, figures, CLI.

Every table and figure of the paper's Section IV has a regeneration entry
point here; see DESIGN.md's per-experiment index and
``python -m repro --help``.
"""

from repro.experiments.campaign import CampaignResult, CampaignRunner, RunSpec, sweep_specs
from repro.experiments.config import ExperimentConfig, ScaleProfile

__all__ = [
    "CampaignResult",
    "CampaignRunner",
    "ExperimentConfig",
    "RunSpec",
    "ScaleProfile",
    "sweep_specs",
]
