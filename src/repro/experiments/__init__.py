"""Evaluation harness (substrate S18): configs, scenarios, figures, CLI.

Every table and figure of the paper's Section IV has a regeneration entry
point here; see DESIGN.md's per-experiment index and
``python -m repro --help``.
"""

from repro.experiments.config import ExperimentConfig, ScaleProfile

__all__ = ["ExperimentConfig", "ScaleProfile"]
