"""Campaign orchestration: fan out many simulations, cache the results.

The paper's evaluation is a large grid of (algorithm × seed × config)
simulations.  Each run is single-threaded and deterministic given its
:class:`~repro.experiments.config.ExperimentConfig` (every stochastic
component draws from a named stream of :class:`~repro.sim.rng.RngHub`,
seeded only by ``config.seed``), which makes the campaign layer simple and
safe:

* **fan-out** — independent runs execute across worker processes
  (:class:`concurrent.futures.ProcessPoolExecutor`; spawn-safe, so it works
  on every platform start method), and the outcome is bit-identical to a
  serial sweep;
* **caching** — a completed :class:`~repro.metrics.collectors.RunResult` is
  stored on disk keyed by a content hash of the resolved config, so
  repeated benchmark/figure invocations are near-instant.

Entry points: :func:`sweep_specs` builds the (algorithm × seed × variant)
grid, :class:`CampaignRunner` executes it, and
:meth:`CampaignResult.fingerprint` digests everything but wall-clock time
for determinism checks.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import time
import traceback
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from multiprocessing import get_context
from pathlib import Path
from time import perf_counter
from typing import Callable, Mapping, Optional, Sequence

from repro._version import __version__
from repro.experiments.config import ExperimentConfig
from repro.faults import NULL_FAULTS
from repro.metrics.collectors import RunResult
from repro.obs.telemetry import TelemetrySnapshot

__all__ = [
    "CampaignError",
    "CampaignResult",
    "CampaignRun",
    "CampaignRunner",
    "QUARANTINE_DIR",
    "RunSpec",
    "config_hash",
    "default_cache_dir",
    "load_cached_result",
    "result_digest",
    "sweep_specs",
]

#: Bump to invalidate every existing cache entry when the stored layout or
#: the simulation semantics change without a version bump.
#: 2: submission moved to the repro.workload subsystem (new config fields).
#: 3: repro.availability subsystem (churn_model/recovery_policy fields,
#:    availability series on RunResult).
#: 4: observability layer (``telemetry`` config field enters every hash;
#:    RunResult grew a ``telemetry`` snapshot slot).
#: 5: capacity sweeps (``workload_scale`` config field enters every hash).
CACHE_SCHEMA = 5

def default_cache_dir() -> Path:
    """Default on-disk cache location (read per call, so tests/notebooks
    can set ``REPRO_CAMPAIGN_CACHE`` after import)."""
    return Path(os.environ.get("REPRO_CAMPAIGN_CACHE", ".repro_cache/campaign"))


#: Corrupt cache entries are moved here (under the cache dir) instead of
#: being silently shadowed — kept for postmortems, invisible to the
#: ``*.pkl`` globs of the index rebuild.
QUARANTINE_DIR = ".quarantine"


def _count(stats: "Optional[dict]", name: str, n: int = 1) -> None:
    """Increment a counter in an optional stats dict."""
    if stats is not None:
        stats[name] = stats.get(name, 0) + n


def _quarantine(path: Path, stats: "Optional[dict]" = None) -> None:
    """Move a corrupt cache entry aside and make the corruption observable."""
    qdir = path.parent / QUARANTINE_DIR
    try:
        qdir.mkdir(parents=True, exist_ok=True)
        target = qdir / path.name
        os.replace(path, target)
        moved = str(target)
    except OSError:
        # Can't move (read-only cache, races): the warning still fires.
        moved = "<unmovable>"
    _count(stats, "campaign.cache_quarantined")
    warnings.warn(
        f"quarantined corrupt cache entry {path} -> {moved}",
        RuntimeWarning,
        stacklevel=3,
    )


def load_cached_result(
    key: str,
    cache_dir: "str | os.PathLike | None" = None,
    stats: "Optional[dict]" = None,
    faults=NULL_FAULTS,
) -> Optional[RunResult]:
    """Load one cached :class:`RunResult` by its config hash.

    Returns ``None`` on a miss, an IO error, or a corrupt/foreign entry —
    the service's ``GET /results/{hash}`` route and the index rebuild both
    depend on this never raising for bad cache files.  Corrupt entries are
    *quarantined* (moved to :data:`QUARANTINE_DIR` with a
    ``RuntimeWarning`` and a counted ``campaign.cache_quarantined`` event)
    rather than silently shadowed, so a fresh write replaces them and the
    corruption stays observable.
    """
    cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
    path = cache_dir / f"{key}.pkl"
    if not path.is_file():
        return None
    try:
        if faults.enabled and faults.check("cache.read") is not None:
            raise OSError(f"injected cache read error for {key}")
        with path.open("rb") as fh:
            result = pickle.load(fh)
    except OSError:
        # Transient IO failure (EIO, permissions, injection): a miss, not
        # corruption — the entry may read fine next time.
        _count(stats, "campaign.cache_read_errors")
        return None
    except Exception:
        # Corrupt/truncated entry (e.g. an interrupted writer on an old
        # layout): quarantine it and let a fresh write replace it.
        _quarantine(path, stats)
        return None
    if not isinstance(result, RunResult):
        _quarantine(path, stats)
        return None
    return result


# --------------------------------------------------------------------------
# Content hashing
# --------------------------------------------------------------------------

def _workload_path_digest(path_str: str) -> str:
    """Content digest of the file(s) behind a path-valued config field.

    Path-backed inputs (imported DAGs, submission traces, availability
    traces) must key the cache by what the files *contain*, not just
    their name — otherwise editing a file silently replays stale cached
    results.  Missing paths hash to a marker (the run itself will fail
    with the real error).
    """
    path = Path(path_str)
    h = hashlib.sha256()
    if path.is_file():
        files = [path]
    elif path.is_dir():
        files = sorted(
            p for p in path.iterdir()
            if p.suffix.lower() in (".json", ".xml", ".dax")
        )
    else:
        return "missing"
    for p in files:
        h.update(p.name.encode("utf-8"))
        h.update(p.read_bytes())
    return h.hexdigest()


def config_hash(config: "ExperimentConfig | Mapping") -> str:
    """Content hash of a resolved experiment configuration.

    Stable across processes, dict key ordering and tuple-vs-list spelling
    (JSON canonicalization), and salted with the package version plus a
    cache schema number so stored results never outlive the code that
    produced them.  When the config references workload files
    (``workload_path``), their contents are folded in too.
    """
    payload = (
        config.describe() if isinstance(config, ExperimentConfig) else dict(config)
    )
    wpath = payload.get("workload_path")
    apath = payload.get("availability_path")
    blob = json.dumps(
        {
            "schema": CACHE_SCHEMA,
            "version": __version__,
            "config": payload,
            "workload_files": _workload_path_digest(wpath) if wpath else None,
            "availability_files": _workload_path_digest(apath) if apath else None,
        },
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def result_digest(result: RunResult) -> str:
    """Deterministic digest of a run's *outcome* (wall time excluded).

    Two runs of the same config — different processes, different worker
    counts, cache hits — must produce the same digest.
    """
    payload = {
        "algorithm": result.algorithm,
        "seed": result.seed,
        "n_nodes": result.n_nodes,
        "n_workflows": result.n_workflows,
        "total_time": float(result.total_time),
        "act": float(result.act),
        "ae": float(result.ae),
        "n_done": result.n_done,
        "n_failed": result.n_failed,
        "events": result.events_executed,
        "rss_mean": float(result.rss_mean),
        "records": [
            [
                r.wid,
                r.home_id,
                r.n_tasks,
                float(r.eft),
                float(r.submit_time),
                r.status,
                None if r.completion_time is None else float(r.completion_time),
                r.failure_reason,
            ]
            for r in result.records
        ],
        "samples": [
            [
                float(s.time),
                s.throughput,
                float(s.act),
                float(s.ae),
                float(s.rss_mean),
                s.alive_nodes,
            ]
            for s in result.samples
        ],
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------
# Specs and outcomes
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class RunSpec:
    """One cell of a campaign grid: a display label plus its full config."""

    label: str
    config: ExperimentConfig


@dataclass
class CampaignRun:
    """Outcome of one campaign cell."""

    label: str
    config: ExperimentConfig
    result: RunResult
    cache_key: str
    from_cache: bool
    #: Worker-side execution seconds (0.0 for cache hits).
    wall_seconds: float
    #: Execution attempts this cell took (0 for cache hits/dedup copies,
    #: 1 for a clean run, >1 when worker-crash retries were needed).
    attempts: int = 1

    def digest(self) -> str:
        return result_digest(self.result)


@dataclass
class CampaignResult:
    """Everything a finished campaign produced, in spec order."""

    runs: list[CampaignRun]
    #: End-to-end orchestration seconds (includes cache I/O and pool setup).
    wall_seconds: float
    #: Robustness counters for *this* run() call (retries, pool rebuilds,
    #: cache read/write errors, quarantined entries) — empty on the happy
    #: path, so fingerprints and old pickles are unaffected.
    stats: dict = field(default_factory=dict)

    def __iter__(self):
        return iter(self.runs)

    def __len__(self) -> int:
        return len(self.runs)

    @property
    def n_cached(self) -> int:
        return sum(1 for r in self.runs if r.from_cache)

    def results(self) -> dict[str, RunResult]:
        """``label -> RunResult`` (labels must be unique to use this)."""
        return {r.label: r.result for r in self.runs}

    def fingerprint(self) -> str:
        """Order-sensitive digest over every run's outcome, wall excluded.

        Identical sweeps — whatever the worker count or cache state —
        yield identical fingerprints.
        """
        blob = json.dumps(
            [[r.label, r.digest()] for r in self.runs], separators=(",", ":")
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def telemetry_summary(self) -> TelemetrySnapshot:
        """Campaign-layer telemetry, plus every run snapshot folded in.

        Always returns a snapshot: the ``campaign.*`` metrics (cache
        hits/misses, worker-busy seconds, effective parallelism =
        busy/wall) exist even when per-run telemetry was off.  Run-level
        counters are summed across runs
        (:meth:`~repro.obs.telemetry.TelemetrySnapshot.merged` semantics).
        """
        snaps = [
            r.result.telemetry
            for r in self.runs
            if getattr(r.result, "telemetry", None) is not None
        ]
        merged = TelemetrySnapshot.merged(snaps) if snaps else TelemetrySnapshot(n_runs=0)
        n = len(self.runs)
        merged.counters["campaign.runs"] = float(n)
        merged.counters["campaign.cache_hits"] = float(self.n_cached)
        merged.counters["campaign.cache_misses"] = float(n - self.n_cached)
        busy = sum(r.wall_seconds for r in self.runs)
        merged.gauges["campaign.worker_busy_seconds"] = busy
        merged.gauges["campaign.wall_seconds"] = self.wall_seconds
        merged.gauges["campaign.worker_utilization"] = (
            busy / self.wall_seconds if self.wall_seconds > 0 else 0.0
        )
        merged.counters["campaign.retries"] = float(self.stats.get("campaign.retries", 0))
        for name, value in self.stats.items():
            if name != "campaign.retries":
                merged.counters[name] = float(value)
        return merged


class CampaignError(RuntimeError):
    """One or more campaign runs failed; carries every failure."""

    def __init__(self, failures: list[tuple[str, str]]):
        self.failures = failures
        lines = "\n".join(f"  [{label}] {msg.splitlines()[0]}" for label, msg in failures)
        super().__init__(f"{len(failures)} campaign run(s) failed:\n{lines}")


# --------------------------------------------------------------------------
# Sweep construction
# --------------------------------------------------------------------------

def sweep_specs(
    algorithms: Sequence[str],
    seeds: Sequence[int],
    base: Optional[ExperimentConfig] = None,
    variants: Optional[Mapping[str, Mapping]] = None,
    **overrides,
) -> list[RunSpec]:
    """Build the (algorithm × variant × seed) grid of run specs.

    Parameters
    ----------
    base:
        Starting configuration (default: Table I paper scale — pass a
        profile-scaled config for anything CI-sized).
    variants:
        Optional named config-override axis, e.g.
        ``{"static": {}, "churn": {"dynamic_factor": 0.2}}``.
    overrides:
        Applied to every cell (on top of ``base``, under ``variants``).
    """
    cfg = base if base is not None else ExperimentConfig()
    if overrides:
        cfg = cfg.with_(**overrides)
    named_variants = dict(variants) if variants else {"": {}}
    specs: list[RunSpec] = []
    seen: set[str] = set()
    for alg in algorithms:
        for vname, vover in named_variants.items():
            for seed in seeds:
                label = alg + (f"@{vname}" if vname else "") + f"#s{int(seed)}"
                if label in seen:
                    # Label-keyed consumers (results(), the bench sweeps)
                    # would silently drop the duplicate cell downstream.
                    raise ValueError(
                        f"duplicate sweep cell {label!r} — repeated "
                        "algorithm, seed, or variant name"
                    )
                seen.add(label)
                specs.append(
                    RunSpec(
                        label,
                        cfg.with_(algorithm=alg, seed=int(seed), **dict(vover)),
                    )
                )
    return specs


# --------------------------------------------------------------------------
# Execution
# --------------------------------------------------------------------------

def _default_runner(config: ExperimentConfig) -> RunResult:
    from repro.grid.system import P2PGridSystem

    return P2PGridSystem(config).run()


#: Exit status for an injected worker-process crash — distinguishable from
#: a real SIGKILL/OOM in pool stderr, identical in recovery semantics.
_CRASH_EXIT_CODE = 86

#: Ceiling on the exponential retry backoff (seconds).
_BACKOFF_CAP = 5.0


@dataclass
class _Outcome:
    index: int
    result: Optional[RunResult]
    wall: float
    error: Optional[str] = None
    #: True only for worker-*process* deaths (real or injected) — failures
    #: the retry loop may re-run.  Application exceptions from the runner
    #: are deterministic and stay non-retryable.
    retryable: bool = False
    attempts: int = 1


def _execute(item: "tuple[int, ExperimentConfig, Callable, Optional[str]]") -> _Outcome:
    """Worker entry point (module-level, hence picklable under spawn).

    ``crash`` carries a parent-side fault-plan decision: ``"exit"``
    hard-kills this worker process (pool mode — the stand-in for an OOM
    kill, breaking the whole pool), while ``"raise"`` reports a retryable
    crash outcome instead (inline mode, where ``os._exit`` would take the
    orchestrator down with it).
    """
    index, config, runner, crash = item
    if crash == "exit":  # pragma: no cover - dies before coverage flushes
        os._exit(_CRASH_EXIT_CODE)
    if crash == "raise":
        return _Outcome(
            index, None, 0.0, error="injected worker crash (inline)", retryable=True
        )
    t0 = perf_counter()
    try:
        result = runner(config)
        return _Outcome(index, result, perf_counter() - t0)
    except Exception as exc:
        return _Outcome(
            index,
            None,
            perf_counter() - t0,
            error=f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
        )


class CampaignRunner:
    """Execute a list of :class:`RunSpec`s with fan-out and caching.

    Parameters
    ----------
    jobs:
        Worker processes (1 = run inline in this process).
    cache_dir:
        Where completed results are stored (``None`` = :func:`default_cache_dir`).
    use_cache:
        Disable to force fresh runs and skip cache writes.
    runner:
        The per-config work function (module-level, picklable); injectable
        for tests.  Default builds and runs a
        :class:`~repro.grid.system.P2PGridSystem`.
    mp_context:
        multiprocessing start method (``None`` = platform default;
        ``"spawn"`` is fully supported — workers receive only picklable
        frozen configs).
    progress:
        Optional callback invoked with each finished :class:`CampaignRun`
        (cache hits included), in completion order.
    on_start:
        Optional callback invoked with ``(spec, cache_key)`` as each
        *pending* spec (cache miss) is handed to a worker — the status
        hook the service layer uses for per-config progress.  Fires again
        on retry rounds.
    max_retries:
        How many times a cell killed by a worker-*process* death (real or
        injected) is re-run before it becomes a permanent failure.
        Application exceptions raised by ``runner`` are deterministic and
        never retried.
    retry_backoff:
        Base delay (seconds) before a retry round; doubles per round,
        capped at 5 s.  Set 0 for tests.
    faults:
        A :class:`~repro.faults.FaultPlan` (default: the zero-overhead
        :data:`~repro.faults.NULL_FAULTS`).  Decisions are made
        parent-side in this single-threaded orchestrator, so a schedule
        fires deterministically regardless of pool timing or retries.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: "str | os.PathLike | None" = None,
        use_cache: bool = True,
        runner: Callable[[ExperimentConfig], RunResult] = _default_runner,
        mp_context: Optional[str] = None,
        progress: Optional[Callable[[CampaignRun], None]] = None,
        on_start: Optional[Callable[[RunSpec, str], None]] = None,
        max_retries: int = 2,
        retry_backoff: float = 0.25,
        faults=NULL_FAULTS,
        stats: Optional[dict] = None,
    ):
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be >= 0")
        self.jobs = jobs
        self.cache_dir = Path(cache_dir) if cache_dir is not None else default_cache_dir()
        self.use_cache = use_cache
        self.runner = runner
        self.mp_context = mp_context
        self.progress = progress
        self.on_start = on_start
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        self.faults = faults
        #: Cumulative robustness counters across every run() on this
        #: runner; each :class:`CampaignResult` carries its own delta in
        #: ``.stats``.  An externally-supplied dict lets the service
        #: aggregate across runners for ``/metrics``.
        self.stats: dict = {} if stats is None else stats

    # ----------------------------------------------------------------- cache
    def _cache_path(self, key: str) -> Path:
        return self.cache_dir / f"{key}.pkl"

    def _cache_load(self, key: str) -> Optional[RunResult]:
        return load_cached_result(
            key, cache_dir=self.cache_dir, stats=self.stats, faults=self.faults
        )

    def _cache_store(self, key: str, result: RunResult) -> bool:
        """Atomically persist one result: serialize, tmp + fsync + rename.

        Returns ``False`` instead of raising on IO failure — a cache write
        error must not fail a campaign whose simulation already succeeded.
        """
        path = self._cache_path(key)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        try:
            blob = pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            if self.faults.enabled:
                if self.faults.check("cache.write") is not None:
                    raise OSError(f"injected cache write error for {key}")
                if self.faults.check("cache.corrupt") is not None:
                    # A torn writer that bypassed the tmp protocol: persist
                    # a truncated pickle for a later read to quarantine.
                    blob = blob[: max(1, len(blob) // 3)]
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            with tmp.open("wb") as fh:
                fh.write(blob)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)  # atomic: readers never see partial files
            return True
        except OSError as exc:
            _count(self.stats, "campaign.cache_write_errors")
            warnings.warn(
                f"cache write failed for {key}: {exc}", RuntimeWarning, stacklevel=2
            )
            tmp.unlink(missing_ok=True)
            return False

    # ------------------------------------------------------------------- run
    def run(self, specs: Sequence[RunSpec]) -> CampaignResult:
        """Execute every spec; returns runs in spec order.

        Raises :class:`CampaignError` after the sweep drains if any run
        failed permanently.  Worker-*process* deaths (a broken pool) are
        retried up to ``max_retries`` times on a rebuilt pool before they
        count as failures.
        """
        t0 = perf_counter()
        stats_before = dict(self.stats)
        keys = [config_hash(s.config) for s in specs]
        runs: list[Optional[CampaignRun]] = [None] * len(specs)

        # Resolve cache hits and dedupe identical configs within the sweep.
        pending: list[int] = []
        first_index_by_key: dict[str, int] = {}
        duplicates: dict[int, int] = {}
        for i, (spec, key) in enumerate(zip(specs, keys)):
            if key in first_index_by_key:
                duplicates[i] = first_index_by_key[key]
                continue
            first_index_by_key[key] = i
            cached = self._cache_load(key) if self.use_cache else None
            if cached is not None:
                runs[i] = CampaignRun(
                    label=spec.label,
                    config=spec.config,
                    result=cached,
                    cache_key=key,
                    from_cache=True,
                    wall_seconds=0.0,
                    attempts=0,
                )
                self._notify(runs[i])
            else:
                pending.append(i)

        failures: list[tuple[str, str]] = []
        for outcome in self._execute_pending(specs, keys, pending):
            i = outcome.index
            if outcome.error is not None:
                failures.append((specs[i].label, outcome.error))
                continue
            assert outcome.result is not None
            if self.use_cache:
                self._cache_store(keys[i], outcome.result)
            runs[i] = CampaignRun(
                label=specs[i].label,
                config=specs[i].config,
                result=outcome.result,
                cache_key=keys[i],
                from_cache=False,
                wall_seconds=outcome.wall,
                attempts=outcome.attempts,
            )
            self._notify(runs[i])

        if failures:
            raise CampaignError(failures)

        # Materialize deduped cells from their primary's result.
        for i, primary in duplicates.items():
            first = runs[primary]
            assert first is not None
            runs[i] = CampaignRun(
                label=specs[i].label,
                config=specs[i].config,
                result=first.result,
                cache_key=keys[i],
                from_cache=first.from_cache,
                wall_seconds=0.0,
                attempts=0,
            )
            self._notify(runs[i])

        assert all(r is not None for r in runs)
        delta = {
            k: v - stats_before.get(k, 0)
            for k, v in self.stats.items()
            if v != stats_before.get(k, 0)
        }
        return CampaignResult(
            runs=list(runs), wall_seconds=perf_counter() - t0, stats=delta
        )

    # -------------------------------------------------------------- internals
    def _notify(self, run: CampaignRun) -> None:
        if self.progress is not None:
            self.progress(run)

    def _notify_start(self, spec: RunSpec, key: str) -> None:
        if self.on_start is not None:
            self.on_start(spec, key)

    def _make_item(self, i: int, specs, crash_mode: str):
        """Build one worker item, folding in a parent-side crash decision.

        The ``worker.crash`` check runs here — in the single-threaded
        orchestrator — so a fault schedule fires on deterministic counts
        regardless of pool scheduling, and a retried cell is a *fresh*
        eligible check (letting a plan kill the same cell repeatedly).
        """
        crash = None
        if self.faults.enabled and self.faults.check("worker.crash", key=str(i)) is not None:
            _count(self.stats, "campaign.injected_crashes")
            crash = crash_mode
        return (i, specs[i].config, self.runner, crash)

    def _execute_pending(self, specs, keys, pending: list[int]):
        """Yield one :class:`_Outcome` per pending index.

        Fault-tolerant execution: outcomes marked retryable (a worker
        *process* death, real or injected) are re-run up to
        ``max_retries`` times with exponential backoff, on a fresh pool —
        a broken pool is rebuilt between rounds instead of aborting the
        campaign.  Deterministic application exceptions from the runner
        fail immediately.  The happy path is exactly one round on exactly
        one pool, same as before the retry machinery existed.
        """
        if not pending:
            return
        attempts = dict.fromkeys(pending, 0)
        queue = list(pending)
        round_no = 0
        while queue:
            if round_no and self.retry_backoff > 0:
                time.sleep(min(self.retry_backoff * 2 ** (round_no - 1), _BACKOFF_CAP))
            use_pool = self.jobs > 1 and len(queue) > 1
            rnd = self._round_pool(specs, keys, queue) if use_pool else self._round_inline(specs, keys, queue)
            retry: list[int] = []
            for outcome in rnd:
                i = outcome.index
                attempts[i] += 1
                if (
                    outcome.error is not None
                    and outcome.retryable
                    and attempts[i] <= self.max_retries
                ):
                    _count(self.stats, "campaign.retries")
                    retry.append(i)
                    continue
                outcome.attempts = attempts[i]
                yield outcome
            queue = sorted(retry)
            round_no += 1

    def _round_inline(self, specs, keys, queue: list[int]):
        for i in queue:
            self._notify_start(specs[i], keys[i])
            # Inline mode uses the "raise" crash flavor: os._exit here
            # would kill the orchestrator itself.
            yield _execute(self._make_item(i, specs, "raise"))

    def _round_pool(self, specs, keys, queue: list[int]):
        """One submission round on a fresh process pool.

        A worker-process death poisons the whole pool: every unfinished
        future resolves to :class:`BrokenProcessPool` and later submits
        raise it too.  Each affected cell becomes a retryable outcome;
        the next round gets a rebuilt pool.
        """
        ctx = get_context(self.mp_context) if self.mp_context else None
        pool = ProcessPoolExecutor(max_workers=min(self.jobs, len(queue)), mp_context=ctx)
        broke = False
        try:
            futures: dict = {}
            unsubmitted: list[tuple[int, BaseException]] = []
            for i in queue:
                item = self._make_item(i, specs, "exit")
                self._notify_start(specs[i], keys[i])
                try:
                    futures[pool.submit(_execute, item)] = i
                except BrokenProcessPool as exc:
                    unsubmitted.append((i, exc))
            for fut in as_completed(futures):
                i = futures[fut]
                exc = fut.exception()
                if exc is None:
                    yield fut.result()
                    continue
                retryable = isinstance(exc, BrokenProcessPool)
                if retryable and not broke:
                    broke = True
                    _count(self.stats, "campaign.pool_rebuilds")
                yield _Outcome(
                    i, None, 0.0,
                    error=f"{type(exc).__name__}: {exc}",
                    retryable=retryable,
                )
            for i, exc in unsubmitted:
                if not broke:
                    broke = True
                    _count(self.stats, "campaign.pool_rebuilds")
                yield _Outcome(
                    i, None, 0.0,
                    error=f"{type(exc).__name__}: {exc}",
                    retryable=True,
                )
        finally:
            pool.shutdown()
