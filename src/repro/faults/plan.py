"""Deterministic, seeded fault injection for the campaign/service stack.

The simulation itself survives node churn by design (the paper's
scheduler; ``repro.availability``).  This module exists to prove the
*infrastructure around* the simulation — the campaign runner's process
pool, the content-addressed cache, the experiment index, the HTTP
service — absorbs transient faults the same way, instead of turning one
OOM-killed worker into a permanently failed sweep cell.

Design constraints (mirroring :data:`~repro.obs.telemetry.NULL_TELEMETRY`):

* **Zero overhead and zero RNG when disabled.**  Every injection point
  holds either a :class:`FaultPlan` or the shared :data:`NULL_FAULTS`
  null object and guards with one ``faults.enabled`` attribute check.
  ``NULL_FAULTS`` draws nothing and allocates nothing, so all golden
  fingerprints stay bit-identical with injection compiled out.
* **Deterministic when enabled.**  A plan is a fixed schedule of
  :class:`FaultSpec`\\ s — *the Nth eligible invocation at this site
  fires* — so a chaos test replays the exact same fault sequence every
  run.  :meth:`FaultPlan.seeded` derives a schedule from a seed via a
  private ``random.Random`` (never the simulation's RNG streams).
* **Faults are injected, recovery is real.**  A plan only decides *when*
  something breaks; the breakage itself (a worker ``os._exit``, an
  ``OSError`` from the cache, a torn journal line, a dropped connection)
  exercises the production recovery paths, not mocks of them.

Sites (see :data:`SITES`):

========================  ====================================================
``worker.crash``          campaign worker process dies mid-cell (``os._exit``
                          under a process pool; a retryable crash marker when
                          running inline)
``cache.read``            ``OSError`` while reading a cached result
``cache.write``           ``OSError`` while writing a cached result
``cache.corrupt``         the cached pickle is written truncated (a torn
                          writer), to be quarantined by a later read
``index.append``          the experiment-index/journal append tears mid-line
``http.reset``            the service drops the connection before responding
``http.slow``             the service stalls ``delay`` seconds before
                          responding
========================  ====================================================
"""

from __future__ import annotations

import json
import random
import threading
from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "NULL_FAULTS",
    "FaultPlan",
    "FaultSpec",
    "NullFaultPlan",
    "SITES",
    "load_fault_plan",
]

#: Every injection point the plane knows about.
SITES = (
    "worker.crash",
    "cache.read",
    "cache.write",
    "cache.corrupt",
    "index.append",
    "http.reset",
    "http.slow",
)


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: *fire at the Nth eligible check of a site*.

    ``at`` is 1-based; ``count`` consecutive checks starting there all
    fire.  A spec with ``key`` set is only eligible for checks carrying
    that context key (e.g. the sweep-cell index for ``worker.crash``) and
    is counted on the per-key counter; an unkeyed spec counts every check
    of its site.  ``delay`` parameterizes ``http.slow``.
    """

    site: str
    at: int = 1
    count: int = 1
    key: Optional[str] = None
    delay: float = 0.0

    def __post_init__(self) -> None:
        if self.site not in SITES:
            raise ValueError(
                f"unknown fault site {self.site!r} (expected one of {', '.join(SITES)})"
            )
        if self.at < 1:
            raise ValueError("FaultSpec.at is 1-based and must be >= 1")
        if self.count < 1:
            raise ValueError("FaultSpec.count must be >= 1")
        if self.delay < 0:
            raise ValueError("FaultSpec.delay must be >= 0")

    def to_dict(self) -> dict:
        out: dict = {"site": self.site, "at": self.at}
        if self.count != 1:
            out["count"] = self.count
        if self.key is not None:
            out["key"] = self.key
        if self.delay:
            out["delay"] = self.delay
        return out

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultSpec":
        unknown = set(payload) - {"site", "at", "count", "key", "delay"}
        if unknown:
            raise ValueError(f"unknown FaultSpec field(s): {sorted(unknown)}")
        return cls(
            site=str(payload["site"]),
            at=int(payload.get("at", 1)),
            count=int(payload.get("count", 1)),
            key=None if payload.get("key") is None else str(payload["key"]),
            delay=float(payload.get("delay", 0.0)),
        )


class FaultPlan:
    """A deterministic schedule of faults, checked at injection sites.

    Thread-safe: the service checks ``http.*`` sites from handler
    threads.  Counters are mutable — a plan instance represents one
    chaos run; build a fresh plan (same specs) to replay the schedule.
    """

    enabled = True

    def __init__(self, specs: Iterable[FaultSpec] = ()):
        self.specs: Tuple[FaultSpec, ...] = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise TypeError(f"FaultPlan takes FaultSpecs, got {type(spec).__name__}")
        self._by_site: dict = {}
        for spec in self.specs:
            self._by_site.setdefault(spec.site, []).append(spec)
        self._counts: dict = {}
        #: Every fault that actually fired: ``(site, key, invocation_n)``.
        self.fired: List[Tuple[str, Optional[str], int]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------- checking
    def check(self, site: str, key: Optional[str] = None) -> Optional[FaultSpec]:
        """Count one eligible invocation at ``site``; return the spec that
        fires on it, or ``None``.  The caller performs the actual damage
        (raise, exit, tear, stall) so recovery code sees real failures."""
        specs = self._by_site.get(site)
        with self._lock:
            n_global = self._counts[site, None] = self._counts.get((site, None), 0) + 1
            n_keyed = 0
            if key is not None:
                n_keyed = self._counts[site, key] = self._counts.get((site, key), 0) + 1
            if not specs:
                return None
            for spec in specs:
                if spec.key is None:
                    n = n_global
                elif spec.key == key:
                    n = n_keyed
                else:
                    continue
                if spec.at <= n < spec.at + spec.count:
                    self.fired.append((site, key, n))
                    return spec
        return None

    def fired_count(self, site: Optional[str] = None) -> int:
        """How many faults fired (optionally at one site) — the chaos
        suite's way of asserting a schedule actually ran."""
        with self._lock:
            if site is None:
                return len(self.fired)
            return sum(1 for s, _, _ in self.fired if s == site)

    # -------------------------------------------------------- construction
    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        worker_crashes: int = 0,
        cache_read_errors: int = 0,
        cache_write_errors: int = 0,
        cache_corruptions: int = 0,
        torn_appends: int = 0,
        connection_resets: int = 0,
        slow_responses: int = 0,
        horizon: int = 8,
        slow_delay: float = 0.05,
    ) -> "FaultPlan":
        """Derive a deterministic schedule from ``seed``.

        Each requested fault lands on a distinct invocation count in
        ``[1, horizon]`` of its site, drawn from a private
        ``random.Random(seed)`` — same seed, same schedule, no
        interaction with any simulation RNG stream.
        """
        if horizon < 1:
            raise ValueError("horizon must be >= 1")
        rng = random.Random(seed)
        wanted = (
            ("worker.crash", worker_crashes, {}),
            ("cache.read", cache_read_errors, {}),
            ("cache.write", cache_write_errors, {}),
            ("cache.corrupt", cache_corruptions, {}),
            ("index.append", torn_appends, {}),
            ("http.reset", connection_resets, {}),
            ("http.slow", slow_responses, {"delay": slow_delay}),
        )
        specs: list[FaultSpec] = []
        for site, n, extra in wanted:
            if n < 0:
                raise ValueError(f"negative fault count for {site}")
            if n > horizon:
                raise ValueError(
                    f"{n} {site} faults cannot fit in a horizon of {horizon} checks"
                )
            for at in sorted(rng.sample(range(1, horizon + 1), n)):
                specs.append(FaultSpec(site=site, at=at, **extra))
        return cls(specs)

    # ------------------------------------------------------- serialisation
    def to_dict(self) -> dict:
        return {"schema": 1, "specs": [spec.to_dict() for spec in self.specs]}

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultPlan":
        if payload.get("schema") != 1:
            raise ValueError(f"unknown fault-plan schema {payload.get('schema')!r}")
        specs = payload.get("specs")
        if not isinstance(specs, Sequence) or isinstance(specs, (str, bytes)):
            raise ValueError("fault plan needs a 'specs' array")
        return cls(FaultSpec.from_dict(s) for s in specs)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------- pickling
    def __getstate__(self) -> dict:
        # Locks don't pickle; a copy starts with fresh counters (a plan's
        # mutable state is per-chaos-run, decisions stay parent-side).
        return {"specs": self.specs}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["specs"])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sites = ", ".join(f"{s.site}@{s.at}" for s in self.specs) or "empty"
        return f"FaultPlan({sites})"


class NullFaultPlan:
    """Injection disabled: one attribute check, no counters, no RNG."""

    __slots__ = ()
    enabled = False
    specs: Tuple[FaultSpec, ...] = ()
    fired: Tuple = ()

    def check(self, site: str, key: Optional[str] = None) -> None:
        return None

    def fired_count(self, site: Optional[str] = None) -> int:
        return 0


#: Shared null instance — safe because it is stateless.
NULL_FAULTS = NullFaultPlan()


def load_fault_plan(path) -> FaultPlan:
    """Read a JSON fault plan (the ``--inject-faults`` CLI entry point)."""
    with open(path, encoding="utf-8") as fh:
        try:
            payload = json.load(fh)
        except ValueError as exc:
            raise ValueError(f"{path}: not valid JSON: {exc}") from None
    try:
        return FaultPlan.from_dict(payload)
    except (TypeError, ValueError, KeyError) as exc:
        raise ValueError(f"{path}: invalid fault plan: {exc}") from None
