"""Deterministic fault injection for the campaign/service stack.

See :mod:`repro.faults.plan` for the design.  The usual imports::

    from repro.faults import NULL_FAULTS, FaultPlan, FaultSpec
"""

from repro.faults.plan import (
    NULL_FAULTS,
    SITES,
    FaultPlan,
    FaultSpec,
    NullFaultPlan,
    load_fault_plan,
)

__all__ = [
    "NULL_FAULTS",
    "FaultPlan",
    "FaultSpec",
    "NullFaultPlan",
    "SITES",
    "load_fault_plan",
]
