"""Workflow DAG model (paper §II.A).

A :class:`Workflow` is a directed acyclic graph whose vertices are
:class:`~repro.workflow.task.Task` objects and whose edges carry the size of
the dependent data (Mb) the successor must aggregate from the precedent.

Per the paper, every workflow is normalized to a *unique* entry task and a
*unique* exit task: when several entries (or exits) exist, a zero-cost
virtual task connecting them is added (:meth:`Workflow.normalized`).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.workflow.task import Task

__all__ = ["Workflow", "WorkflowError"]


class WorkflowError(ValueError):
    """Raised for structurally invalid workflows (cycles, dangling edges...)."""


class Workflow:
    """An immutable-after-validation workflow DAG.

    Parameters
    ----------
    wid:
        Workflow identifier, unique within an experiment (the paper's
        ``f_ij`` — we encode home node and index in the id string).
    tasks:
        The task set ``T(f)``.
    edges:
        Mapping ``(precedent_tid, successor_tid) -> data size in Mb``.

    Notes
    -----
    ``successors``/``precedents`` adjacency, the topological order and the
    entry/exit tasks are computed once at construction; the scheduling hot
    path only reads them.
    """

    def __init__(
        self,
        wid: str,
        tasks: Iterable[Task],
        edges: Mapping[tuple[int, int], float],
    ):
        self.wid = wid
        self.tasks: dict[int, Task] = {}
        for t in tasks:
            if t.tid in self.tasks:
                raise WorkflowError(f"duplicate task id {t.tid} in workflow {wid}")
            self.tasks[t.tid] = t
        if not self.tasks:
            raise WorkflowError(f"workflow {wid} has no tasks")

        self.edges: dict[tuple[int, int], float] = {}
        self.successors: dict[int, dict[int, float]] = {tid: {} for tid in self.tasks}
        self.precedents: dict[int, dict[int, float]] = {tid: {} for tid in self.tasks}
        for (u, v), data in edges.items():
            if u not in self.tasks or v not in self.tasks:
                raise WorkflowError(f"edge ({u}, {v}) references unknown task in {wid}")
            if u == v:
                raise WorkflowError(f"self-loop on task {u} in {wid}")
            if data < 0:
                raise WorkflowError(f"negative data size on edge ({u}, {v}) in {wid}")
            if (u, v) in self.edges:
                raise WorkflowError(f"duplicate edge ({u}, {v}) in {wid}")
            self.edges[(u, v)] = float(data)
            self.successors[u][v] = float(data)
            self.precedents[v][u] = float(data)

        self.topo_order: list[int] = self._toposort()
        entries = [tid for tid in self.tasks if not self.precedents[tid]]
        exits = [tid for tid in self.tasks if not self.successors[tid]]
        self.entry_ids: list[int] = entries
        self.exit_ids: list[int] = exits

    # ------------------------------------------------------------ structure
    def _toposort(self) -> list[int]:
        indeg = {tid: len(self.precedents[tid]) for tid in self.tasks}
        # Stable order: process ready tasks by ascending id for determinism.
        ready = sorted(tid for tid, d in indeg.items() if d == 0)
        order: list[int] = []
        import heapq

        heapq.heapify(ready)
        while ready:
            u = heapq.heappop(ready)
            order.append(u)
            for v in self.successors[u]:
                indeg[v] -= 1
                if indeg[v] == 0:
                    heapq.heappush(ready, v)
        if len(order) != len(self.tasks):
            raise WorkflowError(f"workflow {self.wid} contains a cycle")
        return order

    # ----------------------------------------------------------- properties
    @property
    def entry_id(self) -> int:
        """The unique entry task id (normalize first if several entries)."""
        if len(self.entry_ids) != 1:
            raise WorkflowError(
                f"workflow {self.wid} has {len(self.entry_ids)} entry tasks; "
                "call normalized() first"
            )
        return self.entry_ids[0]

    @property
    def exit_id(self) -> int:
        """The unique exit task id (normalize first if several exits)."""
        if len(self.exit_ids) != 1:
            raise WorkflowError(
                f"workflow {self.wid} has {len(self.exit_ids)} exit tasks; "
                "call normalized() first"
            )
        return self.exit_ids[0]

    @property
    def n_tasks(self) -> int:
        """|T(f)| including virtual tasks."""
        return len(self.tasks)

    @property
    def n_edges(self) -> int:
        """θ(f): number of dependency edges."""
        return len(self.edges)

    def total_load(self) -> float:
        """Sum of task loads in MI."""
        return sum(t.load for t in self.tasks.values())

    def total_data(self) -> float:
        """Sum of edge data sizes in Mb."""
        return sum(self.edges.values())

    def __iter__(self) -> Iterator[Task]:
        for tid in self.topo_order:
            yield self.tasks[tid]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Workflow({self.wid!r}, tasks={self.n_tasks}, edges={self.n_edges})"

    # -------------------------------------------------------- normalization
    def normalized(self) -> "Workflow":
        """Return a workflow with a unique entry and a unique exit task.

        If this workflow already has both, ``self`` is returned.  Otherwise
        zero-cost virtual tasks (paper §II.A) are connected to all original
        entries/exits with zero-size data edges.
        """
        if len(self.entry_ids) == 1 and len(self.exit_ids) == 1:
            return self
        tasks = list(self.tasks.values())
        edges = dict(self.edges)
        next_id = max(self.tasks) + 1
        if len(self.entry_ids) > 1:
            ventry = Task(tid=next_id, load=0.0, image_size=0.0, virtual=True, name="ventry")
            next_id += 1
            tasks.append(ventry)
            for e in self.entry_ids:
                edges[(ventry.tid, e)] = 0.0
        if len(self.exit_ids) > 1:
            vexit = Task(tid=next_id, load=0.0, image_size=0.0, virtual=True, name="vexit")
            tasks.append(vexit)
            for x in self.exit_ids:
                edges[(x, vexit.tid)] = 0.0
        return Workflow(self.wid, tasks, edges)

    # -------------------------------------------------------------- queries
    def ready_successors(self, finished: set[int]) -> list[int]:
        """Tasks whose precedents are all in ``finished`` and that are not
        themselves finished — the *schedule-point* candidates of §II.A."""
        out = []
        for tid in self.topo_order:
            if tid in finished:
                continue
            if all(p in finished for p in self.precedents[tid]):
                out.append(tid)
        return out
