"""Workflow generators (substrate S8, paper §IV.A / Table I).

The paper's random workflows have 2–30 tasks with per-task fan-out between
one and five; task loads, image sizes and dependent-data sizes are drawn
uniformly from the Table I ranges (figure-specific for the CCR study).

The random generator builds a layered random DAG:

1. draw the task count and partition tasks into layers,
2. connect every task to 1–5 targets in later layers (biased to the next
   layer, which is how Brite-era workflow generators such as the one used by
   the paper produce realistic widths), and
3. guarantee every non-entry task has a precedent, then normalize to a
   unique entry/exit with virtual tasks where needed.

Structured families (chain, fork-join, diamond, montage-like) are provided
for the examples and for tests whose critical paths are known analytically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workflow.dag import Workflow
from repro.workflow.task import Task

__all__ = [
    "WorkflowParams",
    "random_workflow",
    "chain_workflow",
    "fork_join_workflow",
    "diamond_workflow",
    "montage_like_workflow",
]


@dataclass(frozen=True)
class WorkflowParams:
    """Sampling ranges for :func:`random_workflow` (defaults = Table I).

    Attributes mirror Table I: task count 2–30, fan-out 1–5, computing
    amount 100–10000 MI, image size 10–100 Mb, dependent data 100–10000 Mb.
    The CCR experiments (Fig. 9/10) override ``load_range``/``data_range``.
    """

    task_range: tuple[int, int] = (2, 30)
    fanout_range: tuple[int, int] = (1, 5)
    load_range: tuple[float, float] = (100.0, 10_000.0)
    image_range: tuple[float, float] = (10.0, 100.0)
    data_range: tuple[float, float] = (100.0, 10_000.0)

    def __post_init__(self) -> None:
        for name in ("task_range", "fanout_range", "load_range", "image_range", "data_range"):
            lo, hi = getattr(self, name)
            if lo > hi:
                raise ValueError(f"{name}: lower bound {lo} exceeds upper bound {hi}")
        if self.task_range[0] < 1:
            raise ValueError("workflows need at least one task")
        if self.fanout_range[0] < 1:
            raise ValueError("fan-out must be at least one")


def random_workflow(
    wid: str, rng: np.random.Generator, params: WorkflowParams | None = None
) -> Workflow:
    """Generate one random workflow per the paper's §IV.A description."""
    p = params or WorkflowParams()
    n = int(rng.integers(p.task_range[0], p.task_range[1] + 1))

    tasks = [
        Task(
            tid=i,
            load=float(rng.uniform(*p.load_range)),
            image_size=float(rng.uniform(*p.image_range)),
        )
        for i in range(n)
    ]

    edges: dict[tuple[int, int], float] = {}
    if n >= 2:
        # Layered structure: split the topological order into layers of
        # random width (bounded by the max fan-out) so the DAG has realistic
        # parallelism and connectivity stays achievable within the fan-out
        # budget.
        max_fanout = p.fanout_range[1]
        layer_of = np.zeros(n, dtype=np.int64)
        layer = 0
        i = 1
        while i < n:
            width = int(rng.integers(1, min(max_fanout, n - i) + 1))
            layer += 1
            layer_of[i : i + width] = layer
            i += width
        n_layers = layer + 1
        layers = [np.flatnonzero(layer_of == k) for k in range(n_layers)]

        outdeg = np.zeros(n, dtype=np.int64)
        target_fanout = rng.integers(
            p.fanout_range[0], p.fanout_range[1] + 1, size=n
        )

        # Step 1 — connectivity: every task in layer k gets one parent from
        # layer k-1, distributed round-robin so no parent exceeds the
        # fan-out bound (layer widths are <= max_fanout).
        for k in range(1, n_layers):
            parents = layers[k - 1].copy()
            rng.shuffle(parents)
            children = layers[k].copy()
            rng.shuffle(children)
            for idx, v in enumerate(children):
                u = int(parents[idx % len(parents)])
                edges[(u, int(v))] = float(rng.uniform(*p.data_range))
                outdeg[u] += 1

        # Step 2 — extra dependencies up to each task's sampled fan-out,
        # biased to the immediately following layer.
        for u in range(n):
            lu = int(layer_of[u])
            if lu == n_layers - 1:
                continue
            budget = int(target_fanout[u] - outdeg[u])
            if budget <= 0:
                continue
            later = np.flatnonzero(layer_of > lu)
            candidates = [int(v) for v in later if (u, int(v)) not in edges]
            if not candidates:
                continue
            nxt = [v for v in candidates if layer_of[v] == lu + 1]
            pool = nxt if nxt else candidates
            take = min(budget, len(pool))
            chosen = rng.choice(np.asarray(pool), size=take, replace=False)
            for v in chosen:
                edges[(u, int(v))] = float(rng.uniform(*p.data_range))
                outdeg[u] += 1

    return Workflow(wid, tasks, edges).normalized()


# --------------------------------------------------------------------------
# Structured families (examples / analytic tests)
# --------------------------------------------------------------------------

def chain_workflow(
    wid: str, length: int, load: float = 1000.0, data: float = 500.0, image: float = 20.0
) -> Workflow:
    """A linear pipeline t0 -> t1 -> ... (critical path = the whole chain)."""
    if length < 1:
        raise ValueError("chain length must be >= 1")
    tasks = [Task(tid=i, load=load, image_size=image, name=f"stage{i}") for i in range(length)]
    edges = {(i, i + 1): data for i in range(length - 1)}
    return Workflow(wid, tasks, edges)


def fork_join_workflow(
    wid: str,
    width: int,
    load: float = 1000.0,
    data: float = 500.0,
    image: float = 20.0,
) -> Workflow:
    """split -> ``width`` parallel branches -> join (bag-of-tasks with a neck)."""
    if width < 1:
        raise ValueError("fork width must be >= 1")
    tasks = [Task(tid=0, load=load, image_size=image, name="split")]
    edges: dict[tuple[int, int], float] = {}
    join = width + 1
    for i in range(1, width + 1):
        tasks.append(Task(tid=i, load=load, image_size=image, name=f"branch{i}"))
        edges[(0, i)] = data
        edges[(i, join)] = data
    tasks.append(Task(tid=join, load=load, image_size=image, name="join"))
    return Workflow(wid, tasks, edges)


def diamond_workflow(
    wid: str, load: float = 1000.0, data: float = 500.0, image: float = 20.0
) -> Workflow:
    """The four-task diamond (A -> B,C -> D) used in scheduling textbooks."""
    tasks = [
        Task(tid=0, load=load, image_size=image, name="A"),
        Task(tid=1, load=2 * load, image_size=image, name="B"),
        Task(tid=2, load=load, image_size=image, name="C"),
        Task(tid=3, load=load, image_size=image, name="D"),
    ]
    edges = {(0, 1): data, (0, 2): data, (1, 3): data, (2, 3): data}
    return Workflow(wid, tasks, edges)


def montage_like_workflow(
    wid: str,
    n_inputs: int,
    rng: np.random.Generator,
    load_scale: float = 1000.0,
    data_scale: float = 500.0,
) -> Workflow:
    """An astronomy-mosaic shaped workflow (Montage's project/diff/concat
    /background/add structure), the archetypal "scientific workflow" the
    paper's introduction motivates.

    ``n_inputs`` projection tasks fan into pairwise difference tasks, a
    concatenation neck, per-image background corrections and a final mosaic.
    """
    if n_inputs < 2:
        raise ValueError("montage needs at least two inputs")
    tasks: list[Task] = []
    edges: dict[tuple[int, int], float] = {}
    tid = 0

    def add_task(name: str, load: float) -> int:
        nonlocal tid
        tasks.append(
            Task(tid=tid, load=load, image_size=float(rng.uniform(10, 100)), name=name)
        )
        tid += 1
        return tid - 1

    projects = [add_task(f"mProject{i}", load_scale * rng.uniform(0.8, 1.2)) for i in range(n_inputs)]
    diffs = []
    for i in range(n_inputs - 1):
        d = add_task(f"mDiff{i}", 0.4 * load_scale * rng.uniform(0.8, 1.2))
        edges[(projects[i], d)] = data_scale * rng.uniform(0.5, 1.5)
        edges[(projects[i + 1], d)] = data_scale * rng.uniform(0.5, 1.5)
        diffs.append(d)
    concat = add_task("mConcatFit", 0.8 * load_scale)
    for d in diffs:
        edges[(d, concat)] = 0.2 * data_scale
    bgs = []
    for i, p in enumerate(projects):
        b = add_task(f"mBackground{i}", 0.5 * load_scale * rng.uniform(0.8, 1.2))
        edges[(concat, b)] = 0.1 * data_scale
        edges[(p, b)] = data_scale * rng.uniform(0.5, 1.5)
        bgs.append(b)
    mosaic = add_task("mAdd", 2.0 * load_scale)
    for b in bgs:
        edges[(b, mosaic)] = data_scale * rng.uniform(0.5, 1.5)
    return Workflow(wid, tasks, edges).normalized()
