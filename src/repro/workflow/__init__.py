"""Scientific-workflow substrate (S7–S9, paper §II.A and §IV.A).

* :mod:`repro.workflow.task` / :mod:`repro.workflow.dag` — the DAG model:
  tasks with computational load (MI) and image size (Mb), edges carrying
  dependent-data sizes (Mb), normalized to a unique entry and exit task.
* :mod:`repro.workflow.generator` — the paper's random workflow generator
  (2–30 tasks, fan-out 1–5) plus structured families used by the examples.
* :mod:`repro.workflow.analysis` — critical path, expected finish time
  eft(f) (Eq. 1) and the rest-path-makespan (RPM) backward pass (Eq. 7).
"""

from repro.workflow.analysis import (
    critical_path,
    expected_finish_time,
    rest_path_after,
    upward_rank,
)
from repro.workflow.dag import Workflow, WorkflowError
from repro.workflow.generator import (
    WorkflowParams,
    chain_workflow,
    diamond_workflow,
    fork_join_workflow,
    montage_like_workflow,
    random_workflow,
)
from repro.workflow.task import Task

__all__ = [
    "Task",
    "Workflow",
    "WorkflowError",
    "WorkflowParams",
    "chain_workflow",
    "critical_path",
    "diamond_workflow",
    "expected_finish_time",
    "fork_join_workflow",
    "montage_like_workflow",
    "random_workflow",
    "rest_path_after",
    "upward_rank",
]
