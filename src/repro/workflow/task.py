"""Task model (paper §II.A / Table I).

A task ``t_k`` is characterized by its computational load ``l_k`` in million
instructions (MI) and the size of its program image in megabits; dependent
data sizes live on the DAG edges (:class:`repro.workflow.dag.Workflow`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Task"]


@dataclass(frozen=True)
class Task:
    """A workflow task (DAG vertex).

    Attributes
    ----------
    tid:
        Identifier, unique within the owning workflow.
    load:
        Computational amount in MI (Table I: 100–10000).  A node with
        capacity ``c`` MIPS executes the task in ``load / c`` seconds.
    image_size:
        Program image in Mb (Table I: 10–100), shipped from the home node to
        the selected resource node at dispatch time.
    virtual:
        True for the zero-cost entry/exit tasks added to normalize
        workflows with several entry or exit tasks (§II.A).  Virtual tasks
        complete instantaneously at the home node and are never dispatched.
    name:
        Optional human label (used by the structured families / examples).
    """

    tid: int
    load: float
    image_size: float = 0.0
    virtual: bool = False
    name: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.load < 0:
            raise ValueError(f"task load must be non-negative, got {self.load}")
        if self.image_size < 0:
            raise ValueError(f"image size must be non-negative, got {self.image_size}")
        if self.virtual and (self.load != 0 or self.image_size != 0):
            raise ValueError("virtual tasks must have zero load and image size")

    def execution_time(self, capacity: float) -> float:
        """Seconds to run on a node with ``capacity`` MIPS (``et`` of Eq. 6)."""
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        return self.load / capacity
