"""Workflow analysis: eft, critical path, RPM backward pass (Eq. 1, 7, 8).

All expected quantities use the *system-wide averages* the aggregation
gossip protocol maintains:

* ``eet(t)  = load(t) / avg_capacity``        (expected execution time)
* ``ett(e)  = data(e) / avg_bandwidth``       (expected transfer time)

and the key recursive quantity is the **rest path makespan**::

    RPM(t) = eet(t) + max over successors s of ( ett(t->s) + RPM(s) )

with ``RPM(exit) = eet(exit)``.  For a *schedule-point* task the first term
is replaced by its dynamically estimated finish time on the best candidate
resource node (Eq. 7/9); that composition lives in :mod:`repro.core.rpm` —
this module provides the purely topology/average-based parts, each DAG edge
visited exactly once (the complexity bound of §III.E).
"""

from __future__ import annotations

from repro.workflow.dag import Workflow

__all__ = [
    "expected_times",
    "upward_rank",
    "rest_path_after",
    "expected_finish_time",
    "critical_path",
]


def expected_times(
    wf: Workflow, avg_capacity: float, avg_bandwidth: float
) -> tuple[dict[int, float], dict[tuple[int, int], float]]:
    """Return ``(eet per task, ett per edge)`` under the given averages."""
    if avg_capacity <= 0:
        raise ValueError(f"avg_capacity must be positive, got {avg_capacity}")
    if avg_bandwidth <= 0:
        raise ValueError(f"avg_bandwidth must be positive, got {avg_bandwidth}")
    eet = {tid: t.load / avg_capacity for tid, t in wf.tasks.items()}
    ett = {edge: data / avg_bandwidth for edge, data in wf.edges.items()}
    return eet, ett


def _ranks(
    wf: Workflow, avg_capacity: float, avg_bandwidth: float
) -> tuple[dict[int, float], dict[int, float]]:
    """``(after, rank)`` per task — the shared backward sweep, memoized.

    The DAG is immutable while the eet/ett terms depend only on the two
    gossip-aggregated averages, so the last evaluation is cached per
    workflow keyed on those exact values: repeated scheduling passes at the
    same instant (immediate dispatch, pooled heuristics, figure harnesses)
    reuse it instead of re-deriving every transfer-time term.  Callers
    treat the returned dicts as read-only.
    """
    cached = getattr(wf, "_rank_cache", None)
    if cached is not None and cached[0] == avg_capacity and cached[1] == avg_bandwidth:
        return cached[2], cached[3]
    if avg_capacity <= 0:
        raise ValueError(f"avg_capacity must be positive, got {avg_capacity}")
    if avg_bandwidth <= 0:
        raise ValueError(f"avg_bandwidth must be positive, got {avg_bandwidth}")
    rank: dict[int, float] = {}
    after: dict[int, float] = {}
    successors = wf.successors
    tasks = wf.tasks
    for tid in reversed(wf.topo_order):
        best = 0.0
        for s, data in successors[tid].items():
            cand = data / avg_bandwidth + rank[s]
            if cand > best:
                best = cand
        after[tid] = best
        rank[tid] = tasks[tid].load / avg_capacity + best
    wf._rank_cache = (avg_capacity, avg_bandwidth, after, rank)
    return after, rank


def upward_rank(
    wf: Workflow, avg_capacity: float, avg_bandwidth: float
) -> dict[int, float]:
    """The full average-based RPM of *every* task (HEFT's upward rank).

    ``rank(t) = eet(t) + max_s (ett(t,s) + rank(s))``, one backward sweep in
    reverse topological order.
    """
    return _ranks(wf, avg_capacity, avg_bandwidth)[1]


def rest_path_after(
    wf: Workflow, avg_capacity: float, avg_bandwidth: float
) -> dict[int, float]:
    """``max_s (ett(t,s) + rank(s))`` for every task (0 for the exit task).

    This is the offspring part of a schedule-point's RPM: add the task's own
    dynamically estimated finish time to obtain Eq. (7)'s value.
    """
    return _ranks(wf, avg_capacity, avg_bandwidth)[0]


def expected_finish_time(
    wf: Workflow, avg_capacity: float, avg_bandwidth: float
) -> float:
    """eft(f) of Eq. (1): the critical-path length under average estimates.

    Equals the entry task's upward rank (the longest eet+ett path from entry
    to exit), which is the baseline the efficiency metric divides by.
    """
    rank = upward_rank(wf, avg_capacity, avg_bandwidth)
    # Workflows are normalized to a unique entry, but stay robust to several.
    return max(rank[e] for e in wf.entry_ids)


def critical_path(
    wf: Workflow, avg_capacity: float, avg_bandwidth: float
) -> list[int]:
    """The critical workflow tasks ``t*`` (§II.B), entry -> exit.

    Follows, from the entry task, the successor maximizing
    ``ett(edge) + rank(successor)`` until the exit task.
    """
    eet, ett = expected_times(wf, avg_capacity, avg_bandwidth)
    rank = upward_rank(wf, avg_capacity, avg_bandwidth)
    cur = max(wf.entry_ids, key=lambda e: rank[e])
    path = [cur]
    while wf.successors[cur]:
        cur = max(
            wf.successors[cur],
            key=lambda s: (ett[(cur, s)] + rank[s], -s),
        )
        path.append(cur)
    return path
