"""Workflow serialization (extension): JSON round-trip and DOT export.

Scientific-workflow systems exchange DAGs in Pegasus' DAX or similar
formats; this module provides an equivalent JSON schema for the
reproduction's :class:`~repro.workflow.dag.Workflow` so external workloads
can be imported and generated ones archived::

    {"wid": "...", "tasks": [{"tid": 0, "load": ..., "image_size": ...,
                               "virtual": false, "name": "..."}, ...],
     "edges": [{"src": 0, "dst": 1, "data": 42.0}, ...]}
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.workflow.dag import Workflow, WorkflowError
from repro.workflow.task import Task

__all__ = ["workflow_to_dict", "workflow_from_dict", "save_workflow",
           "load_workflow", "workflow_to_dot"]


def workflow_to_dict(wf: Workflow) -> dict:
    """Plain-dict representation (JSON-safe)."""
    return {
        "wid": wf.wid,
        "tasks": [
            {
                "tid": t.tid,
                "load": t.load,
                "image_size": t.image_size,
                "virtual": t.virtual,
                "name": t.name,
            }
            for t in wf.tasks.values()
        ],
        "edges": [
            {"src": u, "dst": v, "data": d} for (u, v), d in sorted(wf.edges.items())
        ],
    }


def workflow_from_dict(payload: dict) -> Workflow:
    """Inverse of :func:`workflow_to_dict` (validates the DAG).

    Malformed payloads — missing keys, non-numeric fields, wrong container
    shapes — raise :class:`~repro.workflow.dag.WorkflowError` naming the
    offending field, as do structural DAG problems (cycles, dangling
    edges).
    """
    try:
        tasks = [
            Task(
                tid=int(t["tid"]),
                load=float(t["load"]),
                image_size=float(t.get("image_size", 0.0)),
                virtual=bool(t.get("virtual", False)),
                name=str(t.get("name", "")),
            )
            for t in payload["tasks"]
        ]
        edges = {
            (int(e["src"]), int(e["dst"])): float(e["data"]) for e in payload["edges"]
        }
        wid = str(payload["wid"])
    except WorkflowError:
        raise
    except (KeyError, TypeError, ValueError) as exc:
        raise WorkflowError(f"malformed workflow payload: {exc!r}") from exc
    return Workflow(wid, tasks, edges)


def save_workflow(wf: Workflow, path: str | Path) -> Path:
    """Write the workflow as JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(workflow_to_dict(wf), indent=1))
    return path


def load_workflow(path: str | Path) -> Workflow:
    """Read a workflow previously saved with :func:`save_workflow`.

    Raises :class:`~repro.workflow.dag.WorkflowError` for missing files,
    invalid JSON and malformed payloads.
    """
    path = Path(path)
    if not path.is_file():
        raise WorkflowError(f"workflow file not found: {path}")
    try:
        payload = json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise WorkflowError(f"{path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise WorkflowError(f"{path}: expected a JSON object at top level")
    return workflow_from_dict(payload)


def workflow_to_dot(wf: Workflow) -> str:
    """GraphViz DOT text (tasks labelled with load, edges with data size)."""
    lines = [f'digraph "{wf.wid}" {{', "  rankdir=TB;"]
    for t in wf.tasks.values():
        shape = "ellipse" if not t.virtual else "point"
        label = t.name or f"t{t.tid}"
        lines.append(
            f'  t{t.tid} [label="{label}\\n{t.load:g} MI", shape={shape}];'
        )
    for (u, v), d in sorted(wf.edges.items()):
        label = f' [label="{d:g} Mb"]' if d > 0 else ""
        lines.append(f"  t{u} -> t{v}{label};")
    lines.append("}")
    return "\n".join(lines)
