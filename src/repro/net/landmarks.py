"""Landmark-based bandwidth estimation (substrate S4, paper ref [17]).

The paper's nodes do not know the full bandwidth matrix; each node monitors
its links to ``log2(n)`` landmark nodes and disseminates the measurement
vector via the epidemic gossip protocol, after which "the global network
conditions can be estimated at every node".

We reproduce the estimator of Maniymaran & Maheswaran's *bandwidth
landmarking*: the bandwidth between ``a`` and ``b`` is approximated from
their landmark vectors as::

    est(a, b) = max over landmarks L of min(bw(a, L), bw(L, b))

i.e. the best relay path through a landmark — a lower bound on the true
widest-path bandwidth that becomes exact when a landmark lies on the widest
path.  Schedulers can be configured to use these estimates instead of the
oracle matrix (``use_landmark_bandwidth`` in the experiment config); the
ablation bench measures the impact of the estimation error.
"""

from __future__ import annotations

import numpy as np

from repro.net.topology import Topology

__all__ = ["LandmarkEstimator"]


class LandmarkEstimator:
    """Estimate pairwise bandwidth from per-node landmark measurements.

    Parameters
    ----------
    topology:
        Ground-truth network (used only to take the landmark measurements,
        exactly like a real probe would).
    n_landmarks:
        Number of landmark nodes; the paper uses ``log2(n)``.  Pass ``None``
        for that default.
    rng:
        Generator selecting the landmark nodes.
    """

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        n_landmarks: int | None = None,
    ):
        n = topology.n
        if n_landmarks is None:
            n_landmarks = max(1, int(np.ceil(np.log2(max(n, 2)))))
        n_landmarks = min(n_landmarks, n)
        self.topology = topology
        self.landmarks = np.sort(rng.choice(n, size=n_landmarks, replace=False))
        # measurements[i, k] = measured bandwidth node i <-> landmark k.
        # Taken column-wise so the scalable topology can serve the probes
        # without materializing the O(n^2) bandwidth matrix.
        self.measurements = topology.bandwidth_columns(self.landmarks)
        # A node measuring itself as a landmark sees inf; clip to the best
        # finite link so estimates stay physical.
        finite = self.measurements[np.isfinite(self.measurements)]
        cap = finite.max() if len(finite) else 1.0
        self.measurements = np.minimum(self.measurements, cap)

    @property
    def n_landmarks(self) -> int:
        """Number of landmark nodes in use."""
        return len(self.landmarks)

    def estimate(self, u: int, v: int) -> float:
        """Estimated bandwidth between ``u`` and ``v`` in Mb/s."""
        if u == v:
            return float("inf")
        return float(np.minimum(self.measurements[u], self.measurements[v]).max())

    def estimate_row(self, u: int) -> np.ndarray:
        """Estimated bandwidth from ``u`` to every node (vectorized)."""
        est = np.minimum(self.measurements[u][None, :], self.measurements).max(axis=1)
        est[u] = np.inf
        return est

    def matrix(self) -> np.ndarray:
        """Full estimated bandwidth matrix (for analysis / tests)."""
        n = self.topology.n
        out = np.empty((n, n))
        for u in range(n):
            out[u] = self.estimate_row(u)
        return out

    def mean_absolute_relative_error(self) -> float:
        """MARE of the estimates vs. the oracle (diagnostic for the ablation)."""
        truth = self.topology._bandwidth
        est = self.matrix()
        n = self.topology.n
        off = ~np.eye(n, dtype=bool)
        t = truth[off]
        e = est[off]
        ok = np.isfinite(t) & (t > 0) & np.isfinite(e)
        if not ok.any():
            return 0.0
        return float((np.abs(e[ok] - t[ok]) / t[ok]).mean())
