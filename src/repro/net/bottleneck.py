"""All-pairs bottleneck (widest-path) bandwidth (substrate S3).

The available end-to-end bandwidth between two peers is the minimum link
bandwidth along the best path — the classic *widest path* (maximum-capacity
path) value.  Computing it pairwise with n Dijkstra runs is O(n·E log n); we
instead use the maximum-spanning-tree property: processing edges in
*descending* bandwidth order with a union-find, the edge that first merges
the components of ``u`` and ``v`` has exactly the widest-path bottleneck
bandwidth for every such pair.  One descending-Kruskal sweep therefore fills
the whole n x n matrix, with NumPy block assignments doing the O(n^2) writes.

This is the "algorithmic optimization first" rule from the hpc-parallel
guides applied to the topology substrate.
"""

from __future__ import annotations

import numpy as np

__all__ = ["all_pairs_bottleneck"]


def all_pairs_bottleneck(
    n: int, edges: np.ndarray, widths: np.ndarray
) -> np.ndarray:
    """Return the ``(n, n)`` matrix of widest-path bottleneck widths.

    Parameters
    ----------
    n:
        Number of nodes.
    edges:
        ``(m, 2)`` undirected edge index array.
    widths:
        ``(m,)`` per-edge width (bandwidth).

    Returns
    -------
    numpy.ndarray
        ``B[u, v]`` = bottleneck width of the widest ``u``–``v`` path;
        ``inf`` on the diagonal; ``0`` for disconnected pairs.
    """
    if len(edges) != len(widths):
        raise ValueError("edges and widths must have the same length")
    bott = np.zeros((n, n))
    np.fill_diagonal(bott, np.inf)
    if n <= 1 or len(edges) == 0:
        return bott

    order = np.argsort(widths)[::-1]  # descending width
    # Union-find with explicit member lists so merges can bulk-assign.
    parent = np.arange(n, dtype=np.int64)
    members: list[list[int] | None] = [[i] for i in range(n)]

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for idx in order:
        u, v = int(edges[idx, 0]), int(edges[idx, 1])
        ru, rv = find(u), find(v)
        if ru == rv:
            continue
        mu, mv = members[ru], members[rv]
        assert mu is not None and mv is not None
        # Every pair across the two components has this edge's width as its
        # bottleneck (all earlier edges were wider and failed to connect them).
        au = np.asarray(mu, dtype=np.int64)
        av = np.asarray(mv, dtype=np.int64)
        w = widths[idx]
        bott[np.ix_(au, av)] = w
        bott[np.ix_(av, au)] = w
        # Union by size.
        if len(mu) < len(mv):
            ru, rv = rv, ru
            mu, mv = mv, mu
        parent[rv] = ru
        mu.extend(mv)
        members[rv] = None

    return bott
