"""Wide-area network substrate (S2–S4, replaces the Brite tool).

* :mod:`repro.net.waxman` — Waxman random-graph generation on a 2-D plane
  (the model Brite implements for router-level topologies).
* :mod:`repro.net.topology` — the :class:`~repro.net.topology.Topology`
  facade: per-link bandwidth/latency, end-to-end bandwidth (bottleneck of the
  widest path) and latency (shortest path).
* :mod:`repro.net.bottleneck` — exact all-pairs widest-path bandwidth via
  descending-Kruskal component merging.
* :mod:`repro.net.landmarks` — landmark-based bandwidth estimation
  (Maniymaran & Maheswaran's bandwidth landmarking, the paper's ref [17]).
"""

from repro.net.landmarks import LandmarkEstimator
from repro.net.topology import Topology
from repro.net.waxman import WaxmanGraph, generate_waxman

__all__ = ["LandmarkEstimator", "Topology", "WaxmanGraph", "generate_waxman"]
