"""Waxman random topology generation (substrate S2).

The Waxman model places ``n`` routers uniformly at random on a square plane
and connects each pair ``(u, v)`` with probability::

    P(u, v) = alpha * exp(-d(u, v) / (beta * L))

where ``d`` is the Euclidean distance and ``L`` the maximum possible
distance.  This is the topology model the paper's testbed uses via the Brite
generator (refs [14], [15]).  Brite additionally guarantees a connected
graph; we reproduce that by greedily joining components with their
geographically closest cross pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["WaxmanGraph", "generate_waxman"]

#: Target candidate-pair count per evaluation block in
#: :func:`generate_waxman` (bounds peak temporary memory).
_PAIR_BLOCK = 4_000_000


@dataclass
class WaxmanGraph:
    """A generated Waxman topology.

    Attributes
    ----------
    n:
        Number of nodes.
    positions:
        ``(n, 2)`` array of plane coordinates.
    edges:
        ``(m, 2)`` int array of undirected edges, each listed once with
        ``u < v``.
    distances:
        ``(m,)`` Euclidean length of each edge.
    alpha, beta:
        Waxman parameters used.
    plane_size:
        Side length of the square plane.
    """

    n: int
    positions: np.ndarray
    edges: np.ndarray
    distances: np.ndarray
    alpha: float
    beta: float
    plane_size: float
    repaired_edges: int = field(default=0)

    @property
    def m(self) -> int:
        """Number of undirected edges."""
        return len(self.edges)

    def degree_array(self) -> np.ndarray:
        """Return the degree of every node."""
        deg = np.zeros(self.n, dtype=np.int64)
        np.add.at(deg, self.edges[:, 0], 1)
        np.add.at(deg, self.edges[:, 1], 1)
        return deg


def _connected_components(n: int, edges: np.ndarray) -> np.ndarray:
    """Label connected components with a simple union-find."""
    parent = np.arange(n, dtype=np.int64)

    def find(x: int) -> int:
        root = x
        while parent[root] != root:
            root = parent[root]
        while parent[x] != root:
            parent[x], x = root, parent[x]
        return root

    for u, v in edges:
        ru, rv = find(int(u)), find(int(v))
        if ru != rv:
            parent[ru] = rv
    return np.fromiter((find(i) for i in range(n)), dtype=np.int64, count=n)


def generate_waxman(
    n: int,
    rng: np.random.Generator,
    alpha: float = 0.15,
    beta: float = 0.2,
    plane_size: float = 1000.0,
) -> WaxmanGraph:
    """Generate a connected Waxman graph with ``n`` nodes.

    Parameters
    ----------
    n:
        Number of router nodes (>= 1).
    rng:
        NumPy random generator (use :class:`repro.sim.RngHub`).
    alpha:
        Edge-density parameter (larger => more edges).
    beta:
        Distance-decay parameter (larger => relatively more long edges).
    plane_size:
        Side of the square placement plane (Brite's default grid is
        1000x1000).

    Notes
    -----
    Edge sampling is fully vectorized: all ``n*(n-1)/2`` candidate pairs are
    evaluated in one NumPy expression (the hpc-parallel guides' "vectorize
    the inner loop" rule); for n = 2000 this is ~2M candidates, well within
    memory.
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not (0 < alpha <= 1):
        raise ValueError(f"alpha must be in (0, 1], got {alpha}")
    if beta <= 0:
        raise ValueError(f"beta must be positive, got {beta}")

    positions = rng.uniform(0.0, plane_size, size=(n, 2))
    if n == 1:
        return WaxmanGraph(
            n=1,
            positions=positions,
            edges=np.empty((0, 2), dtype=np.int64),
            distances=np.empty(0),
            alpha=alpha,
            beta=beta,
            plane_size=plane_size,
        )

    max_dist = plane_size * np.sqrt(2.0)
    # Row-blocked sweep of the upper triangle: same pair order and the same
    # RNG consumption as one flat triu_indices pass (sequential
    # ``rng.random`` calls continue the identical draw stream), but peak
    # memory stays O(block) instead of O(n^2) — at n=10k a flat pass
    # allocates several 400 MB temporaries.
    rows_per_block = max(1, _PAIR_BLOCK // max(n - 1, 1))
    e_chunks: list[np.ndarray] = []
    d_chunks: list[np.ndarray] = []
    for i0 in range(0, n - 1, rows_per_block):
        rows = np.arange(i0, min(i0 + rows_per_block, n - 1))
        counts = n - 1 - rows
        iu = np.repeat(rows, counts)
        row_off = np.repeat(np.cumsum(counts) - counts, counts)
        ju = np.arange(len(iu)) - row_off + iu + 1
        diffs = positions[iu] - positions[ju]
        dists = np.hypot(diffs[:, 0], diffs[:, 1])
        probs = alpha * np.exp(-dists / (beta * max_dist))
        mask = rng.random(len(probs)) < probs
        e_chunks.append(np.stack([iu[mask], ju[mask]], axis=1).astype(np.int64))
        d_chunks.append(dists[mask])
    edges = np.concatenate(e_chunks, axis=0)
    distances = np.concatenate(d_chunks)

    # --- connectivity repair (Brite guarantees a connected output) --------
    repaired = 0
    labels = _connected_components(n, edges)
    extra_edges: list[tuple[int, int]] = []
    extra_dists: list[float] = []
    while len(np.unique(labels)) > 1:
        comp_ids = np.unique(labels)
        # Join the first component to its geographically closest outsider.
        inside = np.flatnonzero(labels == comp_ids[0])
        outside = np.flatnonzero(labels != comp_ids[0])
        d = np.linalg.norm(
            positions[inside][:, None, :] - positions[outside][None, :, :], axis=2
        )
        k = int(np.argmin(d))
        ui = int(inside[k // len(outside)])
        vo = int(outside[k % len(outside)])
        u, v = (ui, vo) if ui < vo else (vo, ui)
        extra_edges.append((u, v))
        extra_dists.append(float(d.flat[k]))
        repaired += 1
        labels[labels == labels[vo]] = labels[ui]

    if extra_edges:
        edges = np.vstack([edges, np.asarray(extra_edges, dtype=np.int64)])
        distances = np.concatenate([distances, np.asarray(extra_dists)])

    return WaxmanGraph(
        n=n,
        positions=positions,
        edges=edges,
        distances=distances,
        alpha=alpha,
        beta=beta,
        plane_size=plane_size,
        repaired_edges=repaired,
    )
