"""Topology facade: link properties and end-to-end path metrics (S2+S3).

A :class:`Topology` owns a generated Waxman graph, assigns per-link
bandwidth (Table I: 0.1–10 Mb/s) and distance-derived latency, and exposes
the two end-to-end quantities the grid runtime needs:

* ``bandwidth(u, v)`` — bottleneck bandwidth of the widest path (Mb/s), and
* ``latency(u, v)``  — propagation delay of the shortest path (s).

``transfer_time(u, v, megabits)`` combines them the way the paper's cost
model does (``datasize / bandwidth``), plus the propagation term which is
negligible for the paper's data sizes but keeps the model physical.

Two storage regimes, switched on ``exact_paths``:

* **exact** (default up to ``_EXACT_MAX_NODES`` peers) — both end-to-end
  matrices are computed eagerly: all-pairs bottleneck bandwidth via one
  descending-Kruskal sweep and all-pairs latency via scipy's multi-source
  Dijkstra.  At the paper's largest scale (n=2000) each matrix is 32 MB and
  every lookup is an O(1) array read.
* **scalable** (``metro-10k`` and beyond) — the all-pairs matrices would
  cost O(n^2) memory (800 MB each at n=10k) and the Dijkstra sweep minutes
  of wall clock, so nothing quadratic is ever built.  Bottleneck bandwidth
  stays *exact*: the widest-path value between any pair is the minimum edge
  on their maximum-spanning-forest path, answered in O(log n) via binary
  lifting (rows in O(n) by a running-min tree walk).  Latency switches to
  the standard landmark scheme — single-source Dijkstra from ``log2 n``
  high-degree landmarks, ``lat(u, v) ~= min_k lat(u, k) + lat(k, v)`` — an
  upper bound that is exact whenever a landmark lies on the shortest path.
  ``mean_bandwidth`` is still exact, accumulated during the Kruskal sweep
  (the edge merging components of sizes ``a`` and ``b`` is the bottleneck
  for exactly ``a*b`` unordered pairs).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

import numpy as np
from scipy.sparse import csr_matrix
from scipy.sparse.csgraph import dijkstra

from repro.net.bottleneck import all_pairs_bottleneck
from repro.net.waxman import WaxmanGraph, generate_waxman

__all__ = ["Topology"]

#: Speed of signal propagation used to turn plane distance into latency.
#: The plane is unit-less; this constant maps the default 1000-unit plane to
#: a ~60 ms coast-to-coast one-way delay, a typical WAN figure.
_PROPAGATION_UNITS_PER_SECOND = 25_000.0

#: Largest node count that defaults to eager all-pairs matrices.  Above it
#: the scalable widest-forest / latency-landmark representation kicks in.
_EXACT_MAX_NODES = 4096


class Topology:
    """End-to-end network model for ``n`` peers.

    Parameters
    ----------
    graph:
        The underlying Waxman graph.
    bw_min, bw_max:
        Uniform per-link bandwidth range in Mb/s (Table I: 0.1–10).
    rng:
        Generator for the bandwidth draw.
    exact_paths:
        ``True`` forces the eager all-pairs matrices, ``False`` the
        scalable representation; ``None`` (default) picks by size.  The
        choice never touches the RNG stream, so it only affects memory,
        speed, and the latency approximation at scale.
    """

    def __init__(
        self,
        graph: WaxmanGraph,
        bw_min: float = 0.1,
        bw_max: float = 10.0,
        rng: Optional[np.random.Generator] = None,
        exact_paths: Optional[bool] = None,
    ):
        if bw_min <= 0 or bw_max < bw_min:
            raise ValueError(f"invalid bandwidth range [{bw_min}, {bw_max}]")
        self.graph = graph
        self.n = graph.n
        if rng is None:
            rng = np.random.default_rng(0)
        self.link_bandwidth = rng.uniform(bw_min, bw_max, size=graph.m)
        self.link_latency = graph.distances / _PROPAGATION_UNITS_PER_SECOND

        if exact_paths is None:
            exact_paths = self.n <= _EXACT_MAX_NODES
        self.exact_paths = bool(exact_paths)
        self._bw_mat: Optional[np.ndarray] = None
        self._lat_mat: Optional[np.ndarray] = None
        if self.exact_paths:
            self._bw_mat = all_pairs_bottleneck(
                self.n, graph.edges, self.link_bandwidth
            )
            self._lat_mat = self._all_pairs_latency()
        else:
            self._build_widest_forest()
            self._build_latency_landmarks()
            #: (u, v) -> (bandwidth, latency) memo for repeated transfer
            #: pairs (workflow edges re-ship between the same endpoints).
            self._pair_cache: dict[tuple[int, int], tuple[float, float]] = {}

    # ------------------------------------------------------------ internals
    def _adjacency(self) -> csr_matrix:
        e = self.graph.edges
        w = self.link_latency
        rows = np.concatenate([e[:, 0], e[:, 1]])
        cols = np.concatenate([e[:, 1], e[:, 0]])
        data = np.concatenate([w, w])
        return csr_matrix((data, (rows, cols)), shape=(self.n, self.n))

    def _all_pairs_latency(self) -> np.ndarray:
        n = self.n
        if n == 1 or self.graph.m == 0:
            return np.zeros((n, n))
        return dijkstra(self._adjacency(), directed=False)

    def _build_widest_forest(self) -> None:
        """Maximum-spanning forest of the link-bandwidth graph.

        Widest-path bottlenecks live entirely on this forest: the bottleneck
        between ``u`` and ``v`` is the minimum edge weight on their forest
        path.  One descending-Kruskal sweep builds the forest and, as a
        byproduct, the exact system-wide mean bottleneck bandwidth.
        """
        n = self.n
        e = self.graph.edges
        w = self.link_bandwidth
        uf = list(range(n))
        size = [1] * n

        def find(x: int) -> int:
            while uf[x] != x:
                uf[x] = uf[uf[x]]
                x = uf[x]
            return x

        order = np.argsort(w)[::-1]
        tu: list[int] = []
        tv: list[int] = []
        tw: list[float] = []
        pair_sum = 0.0
        pair_cnt = 0
        eu = e[:, 0].tolist()
        ev = e[:, 1].tolist()
        wl = w.tolist()
        for idx in order.tolist():
            ru, rv = find(eu[idx]), find(ev[idx])
            if ru == rv:
                continue
            ww = wl[idx]
            pair_sum += ww * size[ru] * size[rv]
            pair_cnt += size[ru] * size[rv]
            tu.append(eu[idx])
            tv.append(ev[idx])
            tw.append(ww)
            if size[ru] < size[rv]:
                ru, rv = rv, ru
            uf[rv] = ru
            size[ru] += size[rv]
            if len(tu) == n - 1:
                break
        self._mean_bw = pair_sum / pair_cnt if pair_cnt else 0.0

        # CSR adjacency of the (undirected) forest.
        src = np.asarray(tu + tv, dtype=np.int64)
        dst = np.asarray(tv + tu, dtype=np.int64)
        wts = np.asarray(tw + tw, dtype=np.float64)
        order2 = np.argsort(src, kind="stable")
        indptr = np.zeros(n + 1, dtype=np.int64)
        indptr[1:] = np.cumsum(np.bincount(src, minlength=n))
        self._t_indptr = indptr.tolist()
        self._t_nbr = dst[order2].tolist()
        self._t_wt = wts[order2].tolist()

        # Rooted BFS forest: parent pointers + parent-edge widths.
        parent = np.arange(n, dtype=np.int64)
        pwidth = np.full(n, np.inf)
        depth = np.zeros(n, dtype=np.int64)
        comp = np.full(n, -1, dtype=np.int64)
        indptr_l, nbr_l, wt_l = self._t_indptr, self._t_nbr, self._t_wt
        comp_l = comp.tolist()
        for root in range(n):
            if comp_l[root] != -1:
                continue
            comp_l[root] = root
            dq = deque([root])
            while dq:
                cur = dq.popleft()
                for k in range(indptr_l[cur], indptr_l[cur + 1]):
                    nb = nbr_l[k]
                    if comp_l[nb] == -1:
                        comp_l[nb] = root
                        parent[nb] = cur
                        pwidth[nb] = wt_l[k]
                        depth[nb] = depth[cur] + 1
                        dq.append(nb)
        self._comp = np.asarray(comp_l, dtype=np.int64)
        self._depth = depth
        # Binary-lifting tables: _up[k, v] is v's 2^k-th ancestor, _upw[k, v]
        # the minimum edge width on that ancestor path.  Roots self-loop with
        # width inf, so lifting past a root is a no-op.
        levels = max(1, int(np.ceil(np.log2(max(int(depth.max()), 1) + 1))) + 1)
        up = np.empty((levels, n), dtype=np.int64)
        upw = np.empty((levels, n))
        up[0] = parent
        upw[0] = pwidth
        for k in range(1, levels):
            up[k] = up[k - 1][up[k - 1]]
            upw[k] = np.minimum(upw[k - 1], upw[k - 1][up[k - 1]])
        self._up = up
        self._upw = upw
        self._levels = levels

    def _build_latency_landmarks(self) -> None:
        """Latency rows from ``log2 n`` high-degree landmark routers.

        Landmark choice is deterministic (degree, ties to the lower id) so
        the scalable path consumes no extra RNG draws.
        """
        n = self.n
        n_lm = min(n, max(1, int(np.ceil(np.log2(max(n, 2))))))
        deg = self.graph.degree_array()
        self._lat_landmarks = np.sort(np.argsort(-deg, kind="stable")[:n_lm])
        if self.graph.m == 0:
            self._lat_lm = np.zeros((n_lm, n))
            return
        self._lat_lm = dijkstra(
            self._adjacency(), directed=False, indices=self._lat_landmarks
        )

    def _widest_pair(self, u: int, v: int) -> float:
        """Exact widest-path bottleneck via binary lifting (``u != v``)."""
        comp = self._comp
        if comp[u] != comp[v]:
            return 0.0
        up, upw, depth = self._up, self._upw, self._depth
        du, dv = int(depth[u]), int(depth[v])
        if du < dv:
            u, v = v, u
            du, dv = dv, du
        mn = np.inf
        diff = du - dv
        k = 0
        while diff:
            if diff & 1:
                mn = min(mn, float(upw[k, u]))
                u = int(up[k, u])
            diff >>= 1
            k += 1
        if u == v:
            return mn
        for k in range(self._levels - 1, -1, -1):
            if up[k, u] != up[k, v]:
                mn = min(mn, float(upw[k, u]), float(upw[k, v]))
                u = int(up[k, u])
                v = int(up[k, v])
        return min(mn, float(upw[0, u]), float(upw[0, v]))

    def _widest_row(self, u: int) -> np.ndarray:
        """Bottleneck from ``u`` to every peer: one running-min tree walk."""
        out = np.zeros(self.n)
        out_l = out.tolist()
        out_l[u] = np.inf
        indptr, nbr, wt = self._t_indptr, self._t_nbr, self._t_wt
        stack = [(u, -1)]
        while stack:
            cur, prev = stack.pop()
            base = out_l[cur]
            for k in range(indptr[cur], indptr[cur + 1]):
                nb = nbr[k]
                if nb != prev:
                    w = wt[k]
                    out_l[nb] = w if w < base else base
                    stack.append((nb, cur))
        out[:] = out_l
        return out

    def _lat_pair(self, u: int, v: int) -> float:
        lm = self._lat_lm
        return float((lm[:, u] + lm[:, v]).min())

    def _pair(self, u: int, v: int) -> tuple[float, float]:
        """Memoized ``(bandwidth, latency)`` for one pair (scalable mode)."""
        key = (u, v) if u < v else (v, u)
        hit = self._pair_cache.get(key)
        if hit is None:
            hit = self._pair_cache[key] = (
                self._widest_pair(u, v),
                self._lat_pair(u, v),
            )
        return hit

    # ------------------------------------------------------------------ API
    def bandwidth(self, u: int, v: int) -> float:
        """End-to-end bandwidth between peers ``u`` and ``v`` in Mb/s.

        ``inf`` for ``u == v`` (local transfers are free).
        """
        if self._bw_mat is not None:
            return float(self._bw_mat[u, v])
        if u == v:
            return float("inf")
        return self._pair(u, v)[0]

    def latency(self, u: int, v: int) -> float:
        """One-way end-to-end propagation delay in seconds."""
        if self._lat_mat is not None:
            return float(self._lat_mat[u, v])
        if u == v:
            return 0.0
        return self._pair(u, v)[1]

    def bandwidth_row(self, u: int) -> np.ndarray:
        """Bandwidth from ``u`` to every peer (vectorized scheduling path)."""
        if self._bw_mat is not None:
            return self._bw_mat[u]
        return self._widest_row(u)

    def latency_row(self, u: int) -> np.ndarray:
        """Latency from ``u`` to every peer."""
        if self._lat_mat is not None:
            return self._lat_mat[u]
        lm = self._lat_lm
        row = (lm + lm[:, u][:, None]).min(axis=0)
        row[u] = 0.0
        return row

    def latency_between(self, src: int, targets: np.ndarray) -> np.ndarray:
        """Latency from ``src`` to each target id (vectorized)."""
        if self._lat_mat is not None:
            return self._lat_mat[src, targets]
        t = np.asarray(targets)
        lm = self._lat_lm
        out = (lm[:, t] + lm[:, src][:, None]).min(axis=0)
        out[t == src] = 0.0
        return out

    def bandwidth_columns(self, ids: np.ndarray) -> np.ndarray:
        """``(n, len(ids))`` bottleneck bandwidth to each listed peer.

        By symmetry each column is that peer's bandwidth row, so the
        scalable mode serves this without the full matrix — it is how the
        landmark estimator takes its probe measurements at any scale.
        """
        if self._bw_mat is not None:
            return self._bw_mat[:, ids].copy()
        return np.stack([self._widest_row(int(i)) for i in ids], axis=1)

    def transfer_time(self, u: int, v: int, megabits: float) -> float:
        """Seconds to ship ``megabits`` of data from ``u`` to ``v``.

        Local transfers (``u == v``) are instantaneous, matching the paper's
        model where only *remote* dependent data incurs aggregation cost.
        """
        if u == v or megabits <= 0.0:
            return 0.0
        if self._bw_mat is not None and self._lat_mat is not None:
            return megabits / self._bw_mat[u, v] + self._lat_mat[u, v]
        bw, lat = self._pair(u, v)
        if bw <= 0.0:
            return float("inf")
        return megabits / bw + lat

    def mean_bandwidth(self) -> float:
        """System-wide average end-to-end bandwidth (ground truth).

        This is the quantity the aggregation gossip protocol estimates in a
        decentralized way; experiments can use either.
        """
        n = self.n
        if n < 2:
            return float("inf")
        if self._bw_mat is None:
            return self._mean_bw
        off = ~np.eye(n, dtype=bool)
        vals = self._bw_mat[off]
        finite = vals[np.isfinite(vals) & (vals > 0)]
        return float(finite.mean()) if len(finite) else 0.0

    # --------------------------------------------------- dense-matrix views
    @property
    def _bandwidth(self) -> np.ndarray:
        """Full all-pairs bottleneck matrix.

        Always present in exact mode; in scalable mode it is materialized
        on first access (O(n^2) memory — only the full-ahead planners and
        diagnostics want it, and they are quadratic anyway).
        """
        if self._bw_mat is None:
            mat = np.empty((self.n, self.n))
            for u in range(self.n):
                mat[u] = self._widest_row(u)
            self._bw_mat = mat
        return self._bw_mat

    @property
    def _latency(self) -> np.ndarray:
        """Full all-pairs latency matrix (landmark values in scalable mode)."""
        if self._lat_mat is None:
            mat = np.empty((self.n, self.n))
            for u in range(self.n):
                mat[u] = self.latency_row(u)
            self._lat_mat = mat
        return self._lat_mat

    # ------------------------------------------------------------- factory
    @classmethod
    def waxman(
        cls,
        n: int,
        rng: np.random.Generator,
        alpha: float = 0.15,
        beta: float = 0.2,
        bw_min: float = 0.1,
        bw_max: float = 10.0,
        plane_size: float = 1000.0,
        exact_paths: Optional[bool] = None,
    ) -> "Topology":
        """Generate a Waxman graph and wrap it in a :class:`Topology`."""
        graph = generate_waxman(n, rng, alpha=alpha, beta=beta, plane_size=plane_size)
        return cls(graph, bw_min=bw_min, bw_max=bw_max, rng=rng, exact_paths=exact_paths)
